//! Integration tests for the auto-sharded `RegexSet`: the sharded
//! compilation (any budget, any backend, any execution strategy, any
//! stream feed boundary) must be *observationally identical* to the
//! single combined automaton — sharding is a compilation strategy, not a
//! semantics change.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use sfa::prelude::*;
// Both preludes export a `Strategy` (proptest's trait, sfa's execution
// enum); the explicit import wins the ambiguity for the enum.
use sfa::prelude::Strategy;
use sfa::workloads;

fn contains_builder() -> RegexBuilder {
    Regex::builder()
        .mode(MatchMode::Contains)
        .backend(BackendChoice::Auto)
        .max_dfa_states(50_000)
        .max_sfa_states(2_000)
}

/// Keywords the snort-style generator builds its rules from, used to salt
/// haystacks so a good fraction of the checks exercise true matches.
const SALT: &[&str] = &[
    "admin",
    "passwd",
    "select",
    "union",
    "attack",
    "exploit",
    "payload",
    "overflow",
    "shell",
    "script",
    "cgi-bin/phf",
    "etc/passwd",
];

/// The prefilter is an *optimization* gate: a shard skipped on a haystack
/// must be a shard that cannot match it. Rules with a required literal
/// are gated; rules without one (here the dotted-digits rule) must bypass
/// the prefilter entirely — a ruleset mixing both kinds still reports
/// exactly the per-rule truth on every input.
#[test]
fn prefilter_never_suppresses_a_true_match() {
    let rules = [
        "(?i)select[a-z0-9_]{0,8}",
        "attack[0-9]{2}",
        "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}", // literal-free
        "(?i)etc/(passwd|shadow|group)",
    ];
    let sharded = RegexSet::new(rules, &contains_builder().shard_state_budget(64)).unwrap();
    assert!(sharded.is_sharded());
    assert!(sharded.prefilter().is_some());
    // The literal-free rule's shard must not be gated.
    for shard in sharded.shards() {
        assert_eq!(shard.is_gated(), !shard.members().contains(&2), "{:?}", shard.members());
    }
    let singles: Vec<Regex> = rules.iter().map(|p| contains_builder().build(p).unwrap()).collect();
    let haystacks: [&[u8]; 8] = [
        b"GET /index.html HTTP/1.1",
        b"SELECTION bias",               // gated rule 0 fires
        b"attack42 at 10.0.0.1",         // gated rule 1 + ungated rule 2
        b"192.168.001.254",              // only the literal-free rule
        b"ETC/SHADOW",                   // case-insensitive literal
        b"se lect union-free",           // literal absent: prefilter skip
        b"",                             // empty haystack
        b"passwd attack exploit select", // literals present, rules may still miss
    ];
    for hay in haystacks {
        let m = sharded.matches(hay);
        for (i, re) in singles.iter().enumerate() {
            assert_eq!(
                m.matched(i),
                re.is_match(hay),
                "rule {i} ({:?}) on {:?}",
                rules[i],
                String::from_utf8_lossy(hay)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random rule subsets from the snort-style corpus, compiled sharded
    /// (random budget) and unsharded: identical `SetMatches` on every
    /// haystack, under every strategy, on both backends, and through a
    /// stream cut at a random boundary (plus the batch forms).
    #[test]
    fn sharded_set_agrees_with_unsharded(
        seed in any::<u64>(),
        num_rules in 2usize..6,
        budget_pick in any::<prop::sample::Index>(),
        lazy_backend in any::<bool>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = workloads::ruleset(&workloads::SnortConfig {
            count: 40,
            seed: 5,
            dot_star_fraction: 0.05,
        });
        let mut idxs: Vec<usize> = (0..pool.len()).collect();
        idxs.shuffle(&mut rng);
        let rules: Vec<&str> = idxs[..num_rules].iter().map(|&i| pool[i].as_str()).collect();

        let backend = if lazy_backend { BackendChoice::Lazy } else { BackendChoice::Auto };
        let builder = contains_builder().backend(backend);
        let budget = [64usize, 256, 1024][budget_pick.index(3)];
        // The tracked product automaton can overflow the caps where the
        // shards fit — that asymmetry is the point of sharding — so
        // agreement is only checkable when both compile.
        let Ok(unsharded) = RegexSet::new(rules.iter().copied(), &builder) else {
            return Ok(());
        };
        let sharded = RegexSet::new(
            rules.iter().copied(),
            &builder.clone().shard_state_budget(budget),
        )
        .expect("whatever compiles combined must compile sharded");
        prop_assert_eq!(sharded.len(), unsharded.len());

        // Benign log lines plus keyword-salted lines so both verdict
        // polarities occur.
        let log = workloads::http_log(30, 7, seed);
        let mut haystacks: Vec<Vec<u8>> =
            log.split(|&b| b == b'\n').map(|l| l.to_vec()).collect();
        for _ in 0..6 {
            let a = SALT.choose(&mut rng).unwrap();
            let b = SALT.choose(&mut rng).unwrap();
            let n = rng.gen_range(0..100u32);
            haystacks.push(format!("GET /{a}{n}?q={b} HTTP/1.1").into_bytes());
        }

        for hay in &haystacks {
            for strategy in [
                Strategy::Auto,
                Strategy::Sequential,
                Strategy::Parallel { threads: 3, reduction: Reduction::Tree },
            ] {
                prop_assert_eq!(
                    sharded.matches_with(hay, strategy),
                    unsharded.matches_with(hay, strategy),
                    "strategy {:?} budget {} rules {:?}",
                    strategy,
                    budget,
                    &rules
                );
            }
            prop_assert_eq!(sharded.is_match(hay), unsharded.is_match(hay));

            // Streaming: a cut anywhere must not change the verdict.
            let cut = cut.index(hay.len() + 1).min(hay.len());
            let mut ss = sharded.stream();
            let mut us = unsharded.stream();
            ss.feed(&hay[..cut]).feed(&hay[cut..]);
            us.feed(&hay[..cut]).feed(&hay[cut..]);
            prop_assert_eq!(ss.set_matches(), us.set_matches(), "cut {}", cut);
            prop_assert_eq!(ss.finish(), us.finish());
            // A decided stream verdict must equal the final verdict.
            if let Some(v) = ss.set_verdict() {
                prop_assert_eq!(&v, &ss.set_matches());
            }
        }

        let refs: Vec<&[u8]> = haystacks.iter().map(|h| h.as_slice()).collect();
        prop_assert_eq!(sharded.matches_batch(&refs), unsharded.matches_batch(&refs));
        prop_assert_eq!(sharded.match_batch(&refs), unsharded.match_batch(&refs));
    }
}
