//! End-to-end integration tests spanning every crate of the workspace:
//! pattern → NFA → DFA → minimal DFA → D-SFA → sequential / speculative /
//! parallel matching, on the paper's own examples and on the synthetic
//! SNORT-like corpus.

use sfa::prelude::*;
use sfa::workloads;

#[test]
fn paper_running_example_end_to_end() {
    // Figures 1 & 2 + Example 2 of the paper.
    let re = Regex::new("(ab)*").unwrap();
    assert_eq!(re.dfa().num_live_states(), 2);
    assert_eq!(re.sfa().num_states(), 6);

    let input = b"ababababababab"; // Example 2's 14-byte input
    assert!(re.is_match_with(input, Strategy::Sequential));
    for threads in 1..=6 {
        for reduction in [Reduction::Sequential, Reduction::Tree] {
            assert!(re.is_match_with(input, Strategy::Parallel { threads, reduction }));
            assert!(re.is_match_with(input, Strategy::Speculative { threads, reduction }));
            assert!(!re.is_match_with(b"ababa", Strategy::Parallel { threads, reduction }));
        }
    }
}

#[test]
fn rn_family_sizes_and_matching() {
    // Section VI-B: |D| = 2n; |S_d| grows quadratically, not exponentially.
    for n in [2usize, 5, 10] {
        let re = Regex::new(&workloads::rn_pattern(n)).unwrap();
        assert_eq!(re.dfa().num_live_states(), 2 * n);
        assert!(re.sfa().num_states() <= re.dfa().num_states() * re.dfa().num_states());

        let text = workloads::rn_text(n, 4096, 1);
        assert!(re.is_match_with(&text, Strategy::Sequential));
        assert!(re.is_match_with(
            &text,
            Strategy::Parallel { threads: 4, reduction: Reduction::Sequential }
        ));
        assert!(
            re.is_match_with(&text, Strategy::Parallel { threads: 7, reduction: Reduction::Tree })
        );

        let mut corrupted = text.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] = b'x';
        assert!(!re.is_match_with(&corrupted, Strategy::Sequential));
        assert!(!re.is_match_with(
            &corrupted,
            Strategy::Parallel { threads: 4, reduction: Reduction::Sequential }
        ));
    }
}

#[test]
fn snort_like_corpus_compiles_and_matches_consistently() {
    let rules = workloads::ruleset(&workloads::SnortConfig {
        count: 120,
        seed: 99,
        dot_star_fraction: 0.02,
    });
    let mut built = 0;
    for pattern in &rules {
        let Ok(re) = Regex::builder().max_dfa_states(1000).max_sfa_states(100_000).build(pattern)
        else {
            continue;
        };
        built += 1;
        // Sample an accepted word from the DFA (when the language is not
        // empty) and check all matchers agree on it and on a mangled copy.
        let Ok(sampler) = sfa::automata::DfaSampler::new(re.dfa()) else { continue };
        let mut rng = rand_seed(built);
        let word = sampler.sample(200, &mut rng);
        assert!(re.is_match_with(&word, Strategy::Sequential), "pattern {:?}", pattern);
        assert!(
            re.is_match_with(
                &word,
                Strategy::Parallel { threads: 3, reduction: Reduction::Sequential }
            ),
            "pattern {:?}",
            pattern
        );
        assert!(
            re.is_match_with(
                &word,
                Strategy::Speculative { threads: 3, reduction: Reduction::Tree }
            ),
            "pattern {:?}",
            pattern
        );
    }
    assert!(built >= 80, "most of the corpus must compile, built = {built}");
}

fn rand_seed(n: usize) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(n as u64)
}

#[test]
fn contains_semantics_parallel_consistency() {
    let re = Regex::builder().mode(MatchMode::Contains).build("needle[0-9]{3}").unwrap();
    let mut haystack = vec![b'x'; 100_000];
    assert!(!re.is_match_with(
        &haystack,
        Strategy::Parallel { threads: 8, reduction: Reduction::Sequential }
    ));
    // Plant a match straddling a chunk boundary (Theorem 3: any split
    // works, including one through the middle of the match).
    let pos = haystack.len() / 8 - 3;
    haystack.splice(pos..pos, b"needle042".iter().copied());
    assert!(re.is_match_with(&haystack, Strategy::Sequential));
    for threads in [2, 4, 8, 16] {
        assert!(re.is_match_with(
            &haystack,
            Strategy::Parallel { threads, reduction: Reduction::Sequential }
        ));
        assert!(
            re.is_match_with(&haystack, Strategy::Parallel { threads, reduction: Reduction::Tree })
        );
    }
}

#[test]
fn lazy_sfa_matches_eager_on_long_input() {
    let pattern = workloads::rn_pattern(4);
    let eager = DSfa::from_pattern(&pattern).unwrap();
    let lazy = LazyDSfa::from_pattern(&pattern).unwrap();
    let text = workloads::rn_text(4, 10_000, 3);
    assert_eq!(eager.accepts(&text), lazy.accepts(&text));
    assert!(lazy.num_states_constructed() <= eager.num_states());
}

#[test]
fn untamed_ids_scan_ruleset_runs_on_the_auto_backend() {
    // The acceptance scenario of the backend refactor: the full ids_scan
    // ruleset — untamed SQLi rule included — fails eager construction but
    // compiles under backend(Auto), matches correctly via the parallel
    // and streaming paths, and materializes a bounded number of states.
    // The 2 000-state cap keeps the (failing) eager attempts cheap in
    // debug builds; the full construction exceeds 750k states anyway.
    let builder = Regex::builder()
        .mode(MatchMode::Contains)
        .max_dfa_states(50_000)
        .max_sfa_states(2_000)
        .engine(Engine::new(4))
        .threads(4);
    let eager = RegexSet::new(
        workloads::IDS_SCAN_RULES.iter().copied(),
        &builder.clone().backend(BackendChoice::Eager),
    );
    assert!(eager.is_err(), "the untamed ruleset must overflow the eager construction");

    let set = RegexSet::new(
        workloads::IDS_SCAN_RULES.iter().copied(),
        &builder.backend(BackendChoice::Auto),
    )
    .unwrap();
    assert_eq!(set.regex().backend_kind(), BackendKind::Lazy);

    let log = workloads::http_log(5_000, 97, 0xBEEF);
    assert!(set.is_match(&log), "the log plants /cgi-bin/ hits");
    for threads in [2, 4] {
        assert!(set
            .regex()
            .is_match_with(&log, Strategy::Parallel { threads, reduction: Reduction::Sequential }));
        assert!(set
            .regex()
            .is_match_with(&log, Strategy::Parallel { threads, reduction: Reduction::Tree }));
    }
    // Streaming: arrival-time blocks, including one cutting mid-rule.
    let mut stream = set.stream();
    let sqli = b"GET /q?u=union  select name, pass from users HTTP/1.1\n";
    let clean = workloads::http_log(200, 0, 7);
    stream.feed(&clean).feed(&sqli[..17]).feed(&sqli[17..]);
    assert_eq!(stream.verdict(), Some(true), "a Contains hit saturates the stream");

    // Bounded materialization: far below the 2 000-state eager cap the
    // construction overflowed (let alone the >750k full size).
    let report = set.regex().size_report();
    assert_eq!(report.backend, BackendKind::Lazy);
    assert!(report.materialized_states < 1_000, "got {}", report.materialized_states);
    assert_eq!(report.materialized_states, report.sfa_states);

    // A clean log still reports no match on every path.
    let clean_big = workloads::http_log(2_000, 0, 0xBEEF);
    assert!(!set.is_match(&clean_big));
    assert!(!set
        .regex()
        .is_match_with(&clean_big, Strategy::Parallel { threads: 4, reduction: Reduction::Tree }));
}

#[test]
fn explosion_families_behave_as_in_section_vii() {
    // Fact 1: DFA doubles with n.
    let d4 = sfa::monoid::explosion::example3_dfa(4).unwrap().num_live_states();
    let d6 = sfa::monoid::explosion::example3_dfa(6).unwrap().num_live_states();
    assert_eq!(d4, 15);
    assert_eq!(d6, 63);
    // Fact 2: the witness DFA's D-SFA hits n^n + 1.
    let dfa = sfa::monoid::fact2_dfa(3);
    let sfa_ = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
    assert_eq!(sfa_.num_states(), 28);
    // Syntactic complexity equals the SFA size for the running example.
    assert_eq!(sfa::monoid::syntactic_complexity("(ab)*", 1000).unwrap(), Some(6));
}

#[test]
fn nsfa_and_dsfa_agree_on_language() {
    for pattern in ["(ab)*", "(a|b)*abb", "a{2,4}b?"] {
        let nfa = Nfa::from_pattern(pattern).unwrap();
        let nsfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
        let dsfa = DSfa::from_pattern(pattern).unwrap();
        for input in [&b""[..], b"ab", b"abab", b"abb", b"aab", b"aaaab", b"zz"] {
            assert_eq!(nsfa.accepts(input), dsfa.accepts(input), "{pattern:?} {input:?}");
        }
    }
}

#[test]
fn streaming_log_replay_agrees_with_whole_buffer() {
    // The streaming scenario end to end: a log cut into arrival blocks
    // (boundaries anywhere, including mid-needle) fed through a
    // StreamMatcher gives the whole-buffer verdict, for hit-free,
    // hit-bearing, sub-pool and pooled block sizes.
    let re = Regex::builder()
        .mode(MatchMode::Contains)
        .engine(Engine::new(4))
        .threads(4)
        .build("/cgi-bin/ph[a-z]{1,8}")
        .unwrap();
    for (attack_every, mean_block) in [(0usize, 256usize), (1000, 64), (97, 8192)] {
        let config = workloads::StreamConfig { lines: 3_000, attack_every, mean_block, seed: 11 };
        let blocks = workloads::log_stream(&config);
        let corpus = workloads::log_stream_bytes(&config);
        let expected = re.is_match(&corpus);
        assert_eq!(expected, attack_every != 0, "attack_every {attack_every}");

        let mut stream = re.stream();
        for block in &blocks {
            stream.feed(block);
        }
        assert_eq!(stream.finish(), expected, "attack_every {attack_every}");
        assert_eq!(stream.bytes_fed(), corpus.len() as u64);
        assert_eq!(stream.blocks_fed(), blocks.len() as u64);
        // A hit saturates the stream (constant-accept sink), so the
        // verdict is final before the end of a hit-bearing stream.
        assert_eq!(stream.verdict(), expected.then_some(true));
        stream.reset();
        assert!(!stream.finish());
    }
}

#[test]
fn batch_matching_over_request_lines() {
    let re = Regex::builder().mode(MatchMode::Contains).build("/cgi-bin/ph[a-z]{1,8}").unwrap();
    let corpus = workloads::http_log(2_000, 40, 5);
    let lines: Vec<&[u8]> = corpus.split(|&b| b == b'\n').collect();
    let expected: Vec<bool> = lines.iter().map(|l| re.is_match(l)).collect();
    assert_eq!(expected.iter().filter(|&&m| m).count(), 2_000 / 40);
    assert_eq!(re.is_match_batch(&lines), expected);
    // The RegexSet form answers "does any rule match?" per request.
    let set = RegexSet::new(
        ["/cgi-bin/ph[a-z]{1,8}", "(?i)etc/passwd"],
        &Regex::builder().mode(MatchMode::Contains),
    )
    .unwrap();
    assert_eq!(set.match_batch(&lines), expected);
}

#[test]
fn empty_regex_set_is_void_end_to_end() {
    for mode in [MatchMode::Whole, MatchMode::Contains] {
        let set = RegexSet::new([], &Regex::builder().mode(mode)).unwrap();
        assert!(!set.is_match(b""));
        assert!(!set.is_match(b"GET /index HTTP/1.1"));
        let mut stream = set.stream();
        stream.feed(b"anything").feed(b"at all");
        assert!(!stream.finish());
        // The void stream is saturated from the start: its verdict can
        // never change.
        assert_eq!(stream.verdict(), Some(false));
    }
}

#[test]
fn error_paths_are_reported_not_panicked() {
    assert!(Regex::new("(").is_err());
    assert!(Regex::new("a{10,1}").is_err());
    assert!(Regex::builder().max_dfa_states(3).build("abcdefgh").is_err());
    // Empty input, empty pattern, single byte, all fine.
    let re = Regex::new("").unwrap();
    assert!(re.is_match_with(b"", Strategy::Sequential));
    assert!(!re
        .is_match_with(b"x", Strategy::Parallel { threads: 4, reduction: Reduction::Sequential }));
}
