//! Facade-level integration tests for the match service: loopback
//! clients get exactly the in-process verdicts, tenants stay isolated,
//! unknown tenants fail typed, and cold starts resolve through the
//! artifact directory — including falling back gracefully when the
//! artifact on disk is damaged.

use sfa::prelude::*;
use sfa::server::{Client, ClientError, RegisterSource, Server, ServerConfig};

const RULES: &[&str] = &["worm", "exploit[0-9]+", "(ab)+c"];
const OTHER_RULES: &[&str] = &["(?i)etc/(passwd|shadow)", "attack[0-9]{2}"];

fn expected_verdicts(rules: &[&str], haystacks: &[&[u8]]) -> Vec<Vec<u32>> {
    let set =
        RegexSet::new(rules.iter().copied(), &Regex::builder().mode(MatchMode::Contains)).unwrap();
    set.matches_batch(haystacks).iter().map(|m| m.iter().map(|id| id as u32).collect()).collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sfa-test-srv-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const HAYSTACKS: &[&[u8]] = &[
    b"a worm in the apple",
    b"exploit99 deployed",
    b"ababc",
    b"GET /index.html HTTP/1.1",
    b"cat /etc/passwd attack42",
    b"",
];

/// Two tenants, different rule sets, several connections in flight:
/// every reply matches the in-process scan of that tenant's rules, and
/// verdicts never leak across namespaces.
#[test]
fn loopback_verdicts_match_in_process_per_tenant() {
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let mut admin = Client::connect_tcp(addr).unwrap();
    let (count, source) = admin.register("ids", RULES).unwrap();
    assert_eq!((count, source), (RULES.len(), RegisterSource::CompiledFresh));
    let (count, _) = admin.register("audit", OTHER_RULES).unwrap();
    assert_eq!(count, OTHER_RULES.len());

    let mut handles = Vec::new();
    for (tenant, rules) in [("ids", RULES), ("audit", OTHER_RULES), ("ids", RULES)] {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr).unwrap();
            for _ in 0..10 {
                let got = client.matches_batch_retrying(tenant, HAYSTACKS, 50).unwrap();
                assert_eq!(got, expected_verdicts(rules, HAYSTACKS), "tenant {tenant}");
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    server.shutdown();
}

/// Matching under a tenant nobody registered is a typed server error
/// naming the tenant — not a hang, not a protocol violation.
#[test]
fn unknown_tenant_fails_typed() {
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    match client.matches_batch("nobody", &[b"haystack"]) {
        Err(ClientError::Server(message)) => {
            assert!(message.contains("nobody"), "error names the tenant: {message}")
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    server.shutdown();
}

/// The three-tier cold start over a shared artifact directory: the first
/// server compiles fresh (writing the artifact back), a second server
/// re-registering the same namespace loads it zero-copy from disk, and
/// a *corrupted* artifact silently drops the registration back to a
/// fresh compile — same verdicts in all three lives.
#[test]
fn artifact_directory_cold_start_and_corrupt_fallback() {
    let dir = temp_dir("coldstart");
    let config = || ServerConfig { artifact_dir: Some(dir.clone()), ..Default::default() };
    let want = expected_verdicts(RULES, HAYSTACKS);

    let round = |expected_source: RegisterSource| {
        let server = Server::bind_tcp("127.0.0.1:0", config()).unwrap();
        let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
        let (count, source) = client.register("ids", RULES).unwrap();
        assert_eq!(count, RULES.len());
        assert_eq!(source, expected_source);
        let got = client.matches_batch_retrying("ids", HAYSTACKS, 50).unwrap();
        server.shutdown();
        got
    };

    assert_eq!(round(RegisterSource::CompiledFresh), want, "first life compiles");
    assert_eq!(round(RegisterSource::Artifact), want, "second life cold-starts from disk");

    // Damage every artifact in the directory mid-payload.
    let mut damaged = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        damaged += 1;
    }
    assert!(damaged > 0, "the first life must have written an artifact");

    assert_eq!(round(RegisterSource::CompiledFresh), want, "corrupt artifact falls back");
    // The fallback compile rewrote a good artifact; the next life loads it.
    assert_eq!(round(RegisterSource::Artifact), want, "fallback rewrites the artifact");

    std::fs::remove_dir_all(&dir).ok();
}

/// Re-registering an identical namespace on a server without an
/// artifact directory hits the in-memory compile cache.
#[test]
fn identical_namespaces_share_the_compile_cache() {
    let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let (_, first) = client.register("a", RULES).unwrap();
    assert_eq!(first, RegisterSource::CompiledFresh);
    assert!(server.cache_bytes() > 0, "the fresh compile warms the cache");
    let (_, second) = client.register("b", RULES).unwrap();
    assert_eq!(second, RegisterSource::Cache);
    let got = client.matches_batch_retrying("b", HAYSTACKS, 50).unwrap();
    assert_eq!(got, expected_verdicts(RULES, HAYSTACKS));
    server.shutdown();
}
