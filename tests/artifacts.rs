//! Facade-level integration tests for durable compiled artifacts: a
//! compiled regex round-trips through its binary artifact **verdict
//! exact** — in memory and through the memory-mapped file path — and a
//! damaged artifact always fails with a typed error, never a panic and
//! never a wrong-answer automaton.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use sfa::prelude::*;
use sfa::serialize::FORMAT_VERSION;
use sfa::workloads;

fn eager_contains() -> RegexBuilder {
    Regex::builder().mode(MatchMode::Contains).max_dfa_states(50_000).max_sfa_states(4_000)
}

/// Keywords the snort-style generator builds rules from; salting
/// haystacks with them makes both verdict polarities common.
const SALT: &[&str] =
    &["admin", "passwd", "select", "attack", "exploit", "shell", "cgi-bin/phf", "etc/passwd"];

fn salted_haystacks(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let log = workloads::http_log(30, 7, seed);
    let mut haystacks: Vec<Vec<u8>> = log.split(|&b| b == b'\n').map(|l| l.to_vec()).collect();
    for _ in 0..8 {
        let a = SALT.choose(&mut rng).unwrap();
        let n = rng.gen_range(0..100u32);
        haystacks.push(format!("GET /{a}{n} HTTP/1.1").into_bytes());
    }
    haystacks.push(Vec::new());
    haystacks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compile → encode → decode (both the in-memory and the mmap file
    /// path): the loaded automaton answers exactly like the original on
    /// every haystack.
    #[test]
    fn artifact_round_trip_is_verdict_exact(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let pool = workloads::ruleset(&workloads::SnortConfig {
            count: 40,
            seed: 5,
            dot_star_fraction: 0.05,
        });
        let pattern = pool[pick.index(pool.len())].as_str();
        // Rules too large for an eager automaton have no durable form;
        // nothing to round-trip.
        let Ok(re) = eager_contains().build(pattern) else { return Ok(()) };
        let Ok(artifact) = re.to_artifact() else { return Ok(()) };

        let from_memory = Regex::from_artifact(std::sync::Arc::new(artifact.clone())).unwrap();
        let dir = std::env::temp_dir().join(format!("sfa-test-art-{}-{seed:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.sfa");
        std::fs::write(&path, &artifact).unwrap();
        let from_file = Regex::load_artifact(&path).unwrap();

        for hay in salted_haystacks(seed) {
            let want = re.is_match(&hay);
            prop_assert_eq!(from_memory.is_match(&hay), want);
            prop_assert_eq!(from_file.is_match(&hay), want);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every single-byte corruption is caught: the checksum covers the
    /// whole payload and the header fields are validated individually,
    /// so a flipped artifact loads as a typed error — one of the three
    /// artifact variants — and nothing else.
    #[test]
    fn corrupt_artifacts_fail_typed(seed in any::<u64>(), flip in any::<prop::sample::Index>()) {
        let re = eager_contains().build("exploit[0-9]{1,4}").unwrap();
        let mut artifact = re.to_artifact().unwrap();
        let index = flip.index(artifact.len());
        let mut rng = StdRng::seed_from_u64(seed);
        artifact[index] ^= rng.gen_range(1..=255u8);

        let err = match Regex::from_artifact(std::sync::Arc::new(artifact)) {
            Err(err) => err,
            Ok(_) => panic!("a flipped byte must not load"),
        };
        prop_assert!(
            matches!(
                err,
                Error::ArtifactCorrupt { .. }
                    | Error::ArtifactVersionMismatch { .. }
                    | Error::ArtifactIo(_)
            ),
            "untyped artifact failure: {err}"
        );
    }
}

/// A version bump in the header is reported as exactly
/// [`Error::ArtifactVersionMismatch`], carrying both versions.
#[test]
fn version_skew_is_reported_as_such() {
    let re = eager_contains().build("(ab)+c").unwrap();
    let mut artifact = re.to_artifact().unwrap();
    // Bytes 8..12 are the little-endian format version.
    artifact[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match Regex::from_artifact(std::sync::Arc::new(artifact)) {
        Err(Error::ArtifactVersionMismatch { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }
}

/// Truncation at any prefix fails typed — including cuts inside the
/// header, inside the payload, and the empty file.
#[test]
fn truncated_artifacts_fail_typed() {
    let re = eager_contains().build("worm").unwrap();
    let artifact = re.to_artifact().unwrap();
    for cut in [0, 7, sfa::serialize::HEADER_LEN - 1, artifact.len() / 2, artifact.len() - 1] {
        let err = Regex::from_artifact(std::sync::Arc::new(artifact[..cut].to_vec()))
            .err()
            .unwrap_or_else(|| panic!("a {cut}-byte prefix must not load"));
        assert!(
            matches!(err, Error::ArtifactCorrupt { .. } | Error::ArtifactIo(_)),
            "untyped truncation failure at {cut}: {err}"
        );
    }
}
