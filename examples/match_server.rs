//! The multi-tenant match service, end to end in one process: bind a
//! loopback server, register two tenant namespaces over the wire, stream
//! request batches from concurrent connections, and cold-start a second
//! server from the artifact the first one wrote.
//!
//! The server is std-only — threads and blocking sockets, no async
//! runtime. Requests from different connections that arrive together are
//! flattened by the dispatcher into one batched scan per tenant, so
//! concurrency buys batching, not just overlap. A full admission queue
//! answers explicit `STATUS_RETRY` backpressure; the client helper
//! `matches_batch_retrying` sleeps it out.
//!
//! Run with: `cargo run --release --example match_server`

use sfa::server::{Client, RegisterSource, Server, ServerConfig};
use sfa::workloads;

fn main() {
    let artifact_dir = std::env::temp_dir().join(format!("sfa-example-srv-{}", std::process::id()));
    let config = ServerConfig { artifact_dir: Some(artifact_dir.clone()), ..Default::default() };

    // ---- first life: compile fresh, serve, leave an artifact behind ----
    let server = Server::bind_tcp("127.0.0.1:0", config.clone()).unwrap();
    let addr = server.local_addr().unwrap();

    let ids_rules = ["/cgi-bin/ph[a-z]{1,8}", "(?i)etc/(passwd|shadow|group)", "exploit[0-9]+"];
    let audit_rules = ["(?i)select[a-z0-9_]{0,8}", "attack[0-9]{2}"];

    let mut admin = Client::connect_tcp(addr).unwrap();
    let (count, source) = admin.register("ids", &ids_rules).unwrap();
    println!("registered tenant `ids`:   {count} rules, source {source:?}");
    let (count, source) = admin.register("audit", &audit_rules).unwrap();
    println!("registered tenant `audit`: {count} rules, source {source:?}");

    // Two connections per tenant, each streaming request batches carved
    // from the HTTP log corpus — the shape the dispatcher batches across.
    let traffic = workloads::ServiceConfig { requests: 8, batch: 16, ..Default::default() };
    let stream = workloads::service_requests(&traffic);
    let mut handles = Vec::new();
    for tenant in ["ids", "audit", "ids", "audit"] {
        let stream = stream.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr).unwrap();
            let mut haystacks = 0usize;
            let mut hits = 0usize;
            for request in &stream {
                let batch: Vec<&[u8]> = request.iter().map(|h| h.as_slice()).collect();
                let verdicts = client.matches_batch_retrying(tenant, &batch, 100).unwrap();
                haystacks += verdicts.len();
                hits += verdicts.iter().filter(|ids| !ids.is_empty()).count();
            }
            (tenant, haystacks, hits)
        }));
    }
    for handle in handles {
        let (tenant, haystacks, hits) = handle.join().unwrap();
        println!("tenant `{tenant}`: scanned {haystacks} haystacks, {hits} with matches");
    }
    server.shutdown();

    // ---- second life: the same namespace cold-starts from the artifact --
    let server = Server::bind_tcp("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect_tcp(server.local_addr().unwrap()).unwrap();
    let t0 = std::time::Instant::now();
    let (_, source) = client.register("ids", &ids_rules).unwrap();
    println!(
        "re-registered `ids` in {:.2?}, source {source:?} (zero-copy mmap load)",
        t0.elapsed()
    );
    assert_eq!(source, RegisterSource::Artifact);

    let verdicts =
        client.matches_batch("ids", &[b"GET /../etc/passwd HTTP/1.1", b"all quiet"]).unwrap();
    println!("verdicts after cold start: {verdicts:?}");
    assert_eq!(verdicts, vec![vec![1], vec![]]);
    server.shutdown();
    std::fs::remove_dir_all(&artifact_dir).ok();
}
