//! Streaming and batched matching: replay a log as arrival-time blocks
//! through a `StreamMatcher` (verdict identical to the whole buffer, no
//! buffering), then serve a batch of small request lines through one pool
//! batch instead of one dispatch per call.
//!
//! Run with: `cargo run --release --example streaming`

use sfa::prelude::*;
use sfa::workloads::{self, StreamConfig};

fn main() {
    let re = Regex::builder()
        .mode(MatchMode::Contains)
        .engine(Engine::new(4))
        .threads(4)
        .build("/cgi-bin/ph[a-z]{1,8}")
        .expect("pattern compiles");

    // --- Streaming: the log arrives in reads of ~1 KiB, needles may
    // straddle block boundaries.
    let config = StreamConfig { lines: 20_000, attack_every: 5_000, mean_block: 1024, seed: 7 };
    let blocks = workloads::log_stream(&config);
    let corpus = workloads::log_stream_bytes(&config);
    println!(
        "replaying {} KiB of log data as {} arrival blocks",
        corpus.len() / 1024,
        blocks.len()
    );

    let mut stream = re.stream();
    let mut decided_after = None;
    for block in &blocks {
        stream.feed(block);
        if stream.verdict().is_some() {
            decided_after = Some(stream.bytes_fed());
            break; // saturated: no further input can change the verdict
        }
    }
    assert_eq!(stream.finish(), re.is_match(&corpus));
    println!("stream verdict: {} (same as the whole buffer)", stream.finish());
    match decided_after {
        Some(bytes) => println!(
            "verdict was final after {} KiB — the remaining {} KiB were never scanned",
            bytes / 1024,
            (corpus.len() as u64 - bytes) / 1024
        ),
        None => println!("stream never saturated: every byte was scanned"),
    }

    // --- Batching: 10 000 request-sized haystacks in one pool batch.
    let requests: Vec<Vec<u8>> = (0..10_000)
        .map(|i| {
            if i % 500 == 123 {
                format!("GET /cgi-bin/phf?id={i} HTTP/1.1").into_bytes()
            } else {
                format!("GET /index/{i} HTTP/1.1").into_bytes()
            }
        })
        .collect();
    let refs: Vec<&[u8]> = requests.iter().map(|r| r.as_slice()).collect();

    let t0 = std::time::Instant::now();
    let per_call: usize = refs.iter().filter(|h| re.is_match(h)).count();
    let t_per_call = t0.elapsed();

    let t1 = std::time::Instant::now();
    let batch = re.is_match_batch(&refs).into_iter().filter(|&m| m).count();
    let t_batch = t1.elapsed();

    assert_eq!(per_call, batch);
    println!("{batch} of {} requests flagged", refs.len());
    println!("per-call is_match  : {t_per_call:>10.2?}");
    println!("one is_match_batch : {t_batch:>10.2?} (4 workers)");
}
