//! Quickstart: compile a pattern through the whole pipeline
//! (regex → NFA → DFA → minimal DFA → D-SFA) and match it sequentially and
//! in parallel.
//!
//! Run with: `cargo run --release --example quickstart`

use sfa::prelude::*;

fn main() {
    // The paper's running example (Figures 1 and 2): (ab)*.
    let re = Regex::new("(ab)*").expect("pattern compiles");
    println!("pattern        : {}", re.pattern());
    println!("DFA states     : {} ({} live)", re.dfa().num_states(), re.dfa().num_live_states());
    println!("D-SFA states   : {}   (the paper's Fig. 2 shows f0..f5)", re.sfa().num_states());

    let accepted = b"ab".repeat(1 << 20); // 2 MiB of "abab…"
    let rejected = {
        let mut t = accepted.clone();
        t.push(b'a');
        t
    };

    // Algorithm 2: one table lookup per byte, sequential.
    assert!(re.is_match_with(&accepted, Strategy::Sequential));
    assert!(!re.is_match_with(&rejected, Strategy::Sequential));

    // Algorithm 5: split anywhere, run the SFA per chunk, compose.
    for threads in [2, 4, 8] {
        assert!(re.is_match_with(
            &accepted,
            Strategy::Parallel { threads, reduction: Reduction::Sequential }
        ));
        assert!(!re
            .is_match_with(&rejected, Strategy::Parallel { threads, reduction: Reduction::Tree }));
    }
    println!("sequential and parallel matching agree on {} bytes", accepted.len());

    // The mapping view: the SFA state reached by a chunk tells you, for
    // every possible DFA start state, where that chunk would take it.
    let sfa = re.sfa();
    let f = sfa.run(b"ab");
    println!("mapping of the chunk \"ab\": {:?} (identity on the live states)", sfa.mapping(f));
}
