//! Auto-sharded rule sets: compile a few hundred SNORT-like rules with a
//! per-shard DFA state budget and scan an HTTP log through the literal
//! prefilter.
//!
//! One tracked product automaton over N rules grows like `~2^N` states —
//! four rules already need 5 668 DFA states where the individual rules
//! sum to 787 (see `examples/ids_scan.rs`). Past a few dozen rules the
//! combined automaton simply cannot be built. `RegexBuilder::
//! shard_state_budget` fixes this: the set compiler packs rules into
//! shards greedily, determinizing incrementally and closing a shard just
//! before it would exceed the budget, so compile cost scales linearly
//! with the rule count while per-shard verdicts stay exact.
//!
//! Shards whose every rule has a required literal are *gated*: an
//! Aho–Corasick pass over the haystack decides which shards can possibly
//! match, and the rest are never consulted.
//!
//! Run with: `cargo run --release --example sharded_scan`

use sfa::prelude::*;
use sfa::workloads;

fn main() {
    // 200 generated rules from the pinned 1 000-rule corpus; the full
    // corpus packs the same way (see `reproduce multimatch`), this keeps
    // the example snappy.
    let corpus = workloads::corpus_1k();
    let rules: Vec<&str> = corpus.iter().take(200).map(|s| s.as_str()).collect();
    let budget = 2_000;

    let t0 = std::time::Instant::now();
    let set = RegexSet::new(
        rules.iter().copied(),
        &Regex::builder()
            .mode(MatchMode::Contains)
            .backend(BackendChoice::Auto)
            .max_dfa_states(2_000_000)
            .max_sfa_states(2_000)
            .shard_state_budget(budget),
    )
    .expect("the packer never builds an automaton the caps reject");
    let t_compile = t0.elapsed();

    let report = set.size_report();
    let gated = set.shards().iter().filter(|s| s.is_gated()).count();
    let fallback = set.shards().iter().filter(|s| s.is_fallback()).count();
    println!(
        "{} rules -> {} shards in {t_compile:.2?} ({} gated, {} fallback singletons)",
        set.len(),
        report.shards,
        gated,
        fallback
    );
    println!(
        "largest shard DFA = {} states (budget {budget}), {} DFA states total",
        report.max_shard_dfa_states, report.dfa_states
    );
    for shard in set.shards() {
        if !shard.is_fallback() {
            assert!(shard.regex().dfa().num_states() <= budget, "packed shards respect the budget");
        }
    }

    let prefilter = set.prefilter().expect("generated rules carry required literals");
    println!(
        "prefilter: {} literals, {} nodes, {} KiB transition table",
        prefilter.literal_count(),
        prefilter.node_count(),
        prefilter.table_bytes() / 1024
    );

    // A benign log plus a few planted lines built from rule keywords.
    let mut log = workloads::http_log(20_000, 0, 0x5EED);
    log.extend_from_slice(b"GET /admin0017/export?q=select HTTP/1.1 200 12\n");
    log.extend_from_slice(b"POST /api/attack77 payload=deadbeef HTTP/1.1 500 0\n");
    let lines: Vec<&[u8]> = log.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();

    let t1 = std::time::Instant::now();
    let verdicts = set.matches_batch(&lines);
    let t_scan = t1.elapsed();
    let hot: Vec<usize> = (0..lines.len()).filter(|&i| verdicts[i].matched_any()).collect();
    println!(
        "scanned {} lines in {t_scan:.2?}: {} lines fired at least one rule",
        lines.len(),
        hot.len()
    );
    for &i in hot.iter().take(8) {
        let fired: Vec<usize> = verdicts[i].iter().collect();
        println!("  line {i}: rules {:?}  {}", fired, String::from_utf8_lossy(lines[i]));
    }
    if hot.len() > 8 {
        println!("  ... and {} more", hot.len() - 8);
    }

    // Sharding is a compilation strategy, not a semantics change: every
    // reported verdict must agree with the rule compiled on its own.
    let mut singles: std::collections::HashMap<usize, Regex> = std::collections::HashMap::new();
    for &i in &hot {
        for rule in &verdicts[i] {
            let single = singles.entry(rule).or_insert_with(|| {
                Regex::builder()
                    .mode(MatchMode::Contains)
                    .build(rules[rule])
                    .expect("every corpus rule compiles alone")
            });
            assert!(single.is_match(lines[i]), "rule {rule} agrees when compiled alone");
        }
    }

    // Streaming spans shard boundaries too — and deliberately skips the
    // prefilter, since a literal may straddle a feed boundary.
    let mut stream = set.stream();
    for block in log.chunks(4 * 1024) {
        stream.feed(block);
    }
    let streamed = stream.set_matches();
    let mut whole = vec![false; set.len()];
    for v in &verdicts {
        for rule in v {
            whole[rule] = true;
        }
    }
    for (rule, &fired) in whole.iter().enumerate() {
        assert_eq!(streamed.matched(rule), fired, "feed boundaries cannot change rule {rule}");
    }
    println!("streamed verdicts agree with the batch scan");
}
