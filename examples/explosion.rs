//! The theoretical side (Section VII of the paper): syntactic monoids,
//! syntactic complexity as "parallel complexity", and the state-explosion
//! families of Facts 1 and 2.
//!
//! Run with: `cargo run --release --example explosion`

use sfa::monoid::{fact2_dfa, pow_self, syntactic_complexity, TransitionMonoid};
use sfa::prelude::*;

fn main() {
    // Syntactic complexity = |minimal SFA| (Sect. VII-A).
    for pattern in ["(ab)*", "([0-4]{2}[5-9]{2})*", "(a|b)*abb"] {
        let complexity = syntactic_complexity(pattern, 1_000_000).unwrap().unwrap();
        let sfa = DSfa::from_pattern(pattern).unwrap();
        println!(
            "{:<24} syntactic complexity = {:>4}, |minimal SFA| = {:>4}",
            pattern,
            complexity,
            sfa.num_states()
        );
        assert_eq!(complexity, sfa.num_states());
    }

    // Fact 1: a constant-size alphabet suffices for 2^n DFA blow-up.
    println!("\nFact 1 — [ap]*[al][alp]{{n-2}} (DFA doubles with every n):");
    for n in 2..=8usize {
        let dfa = sfa::monoid::explosion::example3_dfa(n).unwrap();
        println!("  n = {n}: |D| live = {}", dfa.num_live_states());
    }

    // Fact 2: three letters generating the full transformation monoid give
    // |S_d| = |D|^|D|.
    println!("\nFact 2 — witness DFA whose D-SFA hits |D|^|D|:");
    for n in 2..=4usize {
        let dfa = fact2_dfa(n);
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let monoid = TransitionMonoid::of_dfa(&dfa, 10_000_000).unwrap();
        println!(
            "  n = {n}: |D| live = {}, |S_d| = {} (n^n + 1 = {}), |monoid| = {}",
            dfa.num_live_states(),
            sfa.num_states(),
            pow_self(n) + 1,
            monoid.len()
        );
    }
}
