//! Intrusion-detection-style scanning: compile a small ruleset of
//! SNORT-like patterns into one automaton, scan an HTTP log, and report
//! **which rules fired and how often** — the per-pattern verdicts of
//! `RegexSet::matches` / `matches_batch`, not just a single any-match
//! boolean.
//!
//! The ruleset ([`sfa::workloads::IDS_SCAN_RULES`]) is the *full* one,
//! untamed SQLi rule included: its eager D-SFA exceeds 750 000 states
//! (an earlier revision had to weaken the rule to keep eager
//! construction feasible), so the set is compiled with
//! `backend(BackendChoice::Auto)` — the builder tries the eager tables,
//! overflows the state cap, and falls back to the paper's Section V-A
//! on-the-fly construction, which materializes only the states the log
//! actually visits.
//!
//! Run with: `cargo run --release --example ids_scan`

use sfa::prelude::*;
use sfa::workloads;

fn main() {
    // A dedicated 4-worker pool so the "4 threads" figure below is honest
    // even on machines with fewer CPUs (the default engine caps the chunk
    // count at available_parallelism). The 2k-state cap keeps the doomed
    // eager attempt cheap; the full construction would blow through 750k
    // states (each interned SFA state costs O(|D|), and the per-rule DFA
    // is 5 668 states, so a high cap makes *failing* expensive).
    let set = RegexSet::new(
        workloads::IDS_SCAN_RULES.iter().copied(),
        &Regex::builder()
            .mode(MatchMode::Contains)
            .backend(BackendChoice::Auto)
            .max_dfa_states(50_000)
            .max_sfa_states(2_000)
            .engine(Engine::new(4))
            .threads(4),
    )
    .expect("ruleset compiles (Auto falls back to the lazy backend)");

    let report = set.regex().size_report();
    println!(
        "combined automaton: {} rules, DFA = {} states, backend = {} ({} SFA states materialized)",
        set.len(),
        set.regex().dfa().num_states(),
        report.backend,
        report.materialized_states
    );
    assert_eq!(report.backend, BackendKind::Lazy, "the untamed ruleset needs the lazy fallback");

    // A synthetic HTTP log with a /cgi-bin probe every 97 lines, plus a
    // handful of injected SQLi and path-traversal lines so several rules
    // have something to fire on.
    let mut log = workloads::http_log(50_000, 97, 0xBEEF);
    log.extend_from_slice(b"GET /q?u=union  select name, pass from users HTTP/1.1 200 17\n");
    log.extend_from_slice(b"GET /../../etc/passwd HTTP/1.1 403 0\n");
    log.extend_from_slice(b"GET /q?u=UNION SELECT card, cvv FROM payments HTTP/1.1 200 9\n");
    println!("scanning {} KiB of log data against {} rules", log.len() / 1024, set.len());

    // Which rules fired anywhere in the log — one pass, all verdicts.
    let t0 = std::time::Instant::now();
    let fired_seq = set.matches_with(&log, Strategy::Sequential);
    let t_seq = t0.elapsed();

    let t1 = std::time::Instant::now();
    let fired_par =
        set.matches_with(&log, Strategy::Parallel { threads: 4, reduction: Reduction::Sequential });
    let t_par = t1.elapsed();
    assert_eq!(fired_seq, fired_par, "per-rule verdicts are strategy-independent");

    // Streaming: the same log arriving in 8 KiB blocks must agree; the
    // boolean verdict freezes at the first hit, and once every rule's
    // fate is frozen the full per-rule verdict is final too.
    let mut stream = set.stream();
    let mut any_hit_at_block = None;
    for (i, block) in log.chunks(8 * 1024).enumerate() {
        stream.feed(block);
        if any_hit_at_block.is_none() && stream.verdict() == Some(true) {
            any_hit_at_block = Some(i);
        }
    }
    let fired_stream = stream.set_matches();
    assert_eq!(fired_seq, fired_stream, "feed boundaries cannot change which rules fired");
    println!(
        "any-match verdict was final after block {} of {}",
        any_hit_at_block.expect("the log plants attacks"),
        log.len().div_ceil(8 * 1024)
    );

    // Per-rule hit counts over the request lines, matched as one batch.
    let lines: Vec<&[u8]> = log.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
    let verdicts = set.matches_batch(&lines);
    let mut hits = vec![0usize; set.len()];
    for verdict in &verdicts {
        for rule in verdict {
            hits[rule] += 1;
        }
    }
    println!("per-rule hits over {} request lines:", lines.len());
    for (i, pattern) in set.patterns().iter().enumerate() {
        println!(
            "  rule {i} [{}] {:>6} hits  {}",
            if fired_seq.matched(i) { "FIRED" } else { "  -  " },
            hits[i],
            pattern
        );
    }
    // The /cgi-bin probes and both injected attack families must fire;
    // a line count is the sum of its rules' verdicts.
    assert!(fired_seq.matched(0), "/cgi-bin rule fires on the planted probes");
    assert!(fired_seq.matched(1), "etc/passwd rule fires on the injected traversal");
    assert!(fired_seq.matched(3), "the untamed SQLi rule fires on the injected queries");
    assert_eq!(hits[0], 50_000 / 97, "one /cgi-bin probe every 97 lines");
    assert_eq!(hits[3], 2, "two injected SQLi lines");

    println!("sequential DFA scan : {t_seq:>10.2?}");
    println!("parallel SFA scan   : {t_par:>10.2?} (4 threads)");

    let after = set.regex().size_report();
    println!(
        "lazy backend materialized {} states scanning the log \
         (eager construction needed > 750 000)",
        after.materialized_states
    );
    assert!(after.materialized_states < 2_000, "on-the-fly construction stays bounded");

    // A clean log must not fire any rule — including the untamed SQLi one.
    let clean = workloads::http_log(10_000, 0, 0xBEEF);
    assert!(!set.matches(&clean).matched_any());
    println!("clean log correctly reports no rule hits");
}
