//! Intrusion-detection-style scanning: compile a small ruleset of
//! SNORT-like patterns into one automaton and scan an HTTP log for hits,
//! comparing sequential and data-parallel matching.
//!
//! Run with: `cargo run --release --example ids_scan`

use sfa::prelude::*;
use sfa::workloads;

fn main() {
    let rules = [
        "/cgi-bin/ph[a-z]{1,8}",
        "(?i)etc/(passwd|shadow|group)",
        "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}",
        // A `\s+`-separated variant explodes past 750k SFA states on its
        // own (over-square growth, Section VII); the bounded separator
        // keeps the combined automaton small enough for an eager D-SFA.
        "(?i)union[ +]{1,3}select",
    ];
    // A dedicated 4-worker pool so the "4 threads" figure below is honest
    // even on machines with fewer CPUs (the default engine caps the chunk
    // count at available_parallelism).
    let set = RegexSet::new(
        rules.iter().copied(),
        &Regex::builder()
            .mode(MatchMode::Contains)
            .max_dfa_states(50_000)
            .max_sfa_states(500_000)
            .engine(Engine::new(4)),
    )
    .expect("ruleset compiles");

    println!(
        "combined automaton: DFA = {} states, D-SFA = {} states",
        set.regex().dfa().num_states(),
        set.regex().sfa().num_states()
    );

    // A synthetic HTTP log with an attack line every 97 lines.
    let log = workloads::http_log(50_000, 97, 0xBEEF);
    println!("scanning {} KiB of log data against {} rules", log.len() / 1024, rules.len());

    let t0 = std::time::Instant::now();
    let hit_seq = set.regex().is_match_sequential(&log);
    let t_seq = t0.elapsed();

    let t1 = std::time::Instant::now();
    let hit_par = set.regex().is_match_parallel(&log, 4, Reduction::Sequential);
    let t_par = t1.elapsed();

    assert_eq!(hit_seq, hit_par);
    println!("attack present: {}", hit_seq);
    println!("sequential DFA scan : {:>10.2?}", t_seq);
    println!("parallel SFA scan   : {:>10.2?} (4 threads)", t_par);

    // A clean log must not match.
    let clean = workloads::http_log(10_000, 0, 0xBEEF);
    assert!(!set.is_match(&clean));
    println!("clean log correctly reports no match");
}
