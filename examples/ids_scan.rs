//! Intrusion-detection-style scanning: compile a small ruleset of
//! SNORT-like patterns into one automaton and scan an HTTP log for hits,
//! comparing sequential, data-parallel and streaming matching.
//!
//! The ruleset ([`sfa::workloads::IDS_SCAN_RULES`]) is the *full* one,
//! untamed SQLi rule included: its eager D-SFA exceeds 750 000 states
//! (an earlier revision had to weaken the rule to keep eager
//! construction feasible), so the set is compiled with
//! `backend(BackendChoice::Auto)` — the builder tries the eager tables,
//! overflows the state cap, and falls back to the paper's Section V-A
//! on-the-fly construction, which materializes only the states the log
//! actually visits.
//!
//! Run with: `cargo run --release --example ids_scan`

use sfa::prelude::*;
use sfa::workloads;

fn main() {
    // A dedicated 4-worker pool so the "4 threads" figure below is honest
    // even on machines with fewer CPUs (the default engine caps the chunk
    // count at available_parallelism). The 50k-state cap bounds the eager
    // attempt; the full construction would blow through 750k states.
    let set = RegexSet::new(
        workloads::IDS_SCAN_RULES.iter().copied(),
        &Regex::builder()
            .mode(MatchMode::Contains)
            .backend(BackendChoice::Auto)
            .max_dfa_states(50_000)
            .max_sfa_states(50_000)
            .engine(Engine::new(4))
            .threads(4),
    )
    .expect("ruleset compiles (Auto falls back to the lazy backend)");

    let report = set.regex().size_report();
    println!(
        "combined automaton: DFA = {} states, backend = {} ({} SFA states materialized)",
        set.regex().dfa().num_states(),
        report.backend,
        report.materialized_states
    );
    assert_eq!(report.backend, BackendKind::Lazy, "the untamed ruleset needs the lazy fallback");

    // A synthetic HTTP log with an attack line every 97 lines.
    let log = workloads::http_log(50_000, 97, 0xBEEF);
    println!(
        "scanning {} KiB of log data against {} rules",
        log.len() / 1024,
        set.patterns().len()
    );

    let t0 = std::time::Instant::now();
    let hit_seq = set.regex().is_match_sequential(&log);
    let t_seq = t0.elapsed();

    let t1 = std::time::Instant::now();
    let hit_par = set.regex().is_match_parallel(&log, 4, Reduction::Sequential);
    let t_par = t1.elapsed();

    // Streaming: the same log arriving in 8 KiB blocks must agree, and a
    // Contains hit saturates the stream (the verdict is final early).
    let mut stream = set.stream();
    let mut hit_stream = false;
    for block in log.chunks(8 * 1024) {
        stream.feed(block);
        if stream.verdict() == Some(true) {
            hit_stream = true;
            break;
        }
    }

    assert_eq!(hit_seq, hit_par);
    assert_eq!(hit_seq, hit_stream);
    println!("attack present: {}", hit_seq);
    println!("sequential DFA scan : {:>10.2?}", t_seq);
    println!("parallel SFA scan   : {:>10.2?} (4 threads)", t_par);

    let after = set.regex().size_report();
    println!(
        "lazy backend materialized {} states scanning the log \
         (eager construction needed > 750 000)",
        after.materialized_states
    );
    assert!(after.materialized_states < 1_000, "on-the-fly construction stays bounded");

    // A clean log must not match — including the untamed SQLi rule.
    let clean = workloads::http_log(10_000, 0, 0xBEEF);
    assert!(!set.is_match(&clean));
    println!("clean log correctly reports no match");
}
