//! A miniature version of the paper's Figures 6–8: throughput of
//! sequential DFA matching vs. parallel SFA matching over the
//! `r_n = ([0-4]{n}[5-9]{n})*` family as the thread count grows.
//!
//! Run with: `cargo run --release --example scalability -- [n] [MiB]`

use sfa::prelude::*;
use sfa::workloads;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let mib: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let pattern = workloads::rn_pattern(n);
    println!("pattern: {pattern}");
    let re = Regex::builder().max_sfa_states(2_000_000).build(&pattern).expect("compiles");
    println!(
        "|D| = {} live states, |S_d| = {} states, SFA table = {} KiB",
        re.dfa().num_live_states(),
        re.sfa().num_states(),
        re.sfa().table_bytes() / 1024
    );

    let text = workloads::rn_text(n, mib * 1024 * 1024, 0x5FA);
    println!("input: {} MiB of text accepted by the pattern", text.len() / (1024 * 1024));

    let best = |f: &mut dyn FnMut()| {
        let mut best = std::time::Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed());
        }
        best
    };

    let mut run_seq = || assert!(re.is_match_with(&text, Strategy::Sequential));
    let seq = best(&mut run_seq);
    println!("{:>8}  {:>12}  {:>10}", "threads", "time", "GB/s");
    println!(
        "{:>8}  {:>12.2?}  {:>10.3}  (Algorithm 2, sequential DFA)",
        1,
        seq,
        text.len() as f64 / 1e9 / seq.as_secs_f64()
    );

    for threads in [2usize, 4, 8] {
        // A dedicated pool per sweep point so the scan really runs on
        // `threads` workers regardless of the machine's CPU count (the
        // default engine caps the chunk count at available_parallelism).
        let matcher = ParallelSfaMatcher::with_engine(re.sfa(), Engine::new(threads));
        let mut run_par =
            || assert!(re.dfa().is_accepting(matcher.run(&text, threads, Reduction::Sequential)));
        let par = best(&mut run_par);
        println!(
            "{:>8}  {:>12.2?}  {:>10.3}  (Algorithm 5, parallel SFA)",
            threads,
            par,
            text.len() as f64 / 1e9 / par.as_secs_f64()
        );
    }
}
