//! Workspace-local stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing the small API subset the SFA workspace uses.
//!
//! The build environment has no access to crates.io, so this shim keeps the
//! workspace self-contained. It is **not** cryptographically secure and not
//! statistically rigorous — it exists to drive test-input generation and
//! sampling, where determinism per seed is the property that matters.
//!
//! Implemented surface:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`,
//! * [`Rng`] — `gen_range` over `Range` / `RangeInclusive` of the common
//!   integer types, `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — an xoshiro256++ generator seeded via SplitMix64,
//! * [`seq::SliceRandom`] — `choose` and `shuffle`,
//! * a [`prelude`] re-exporting all of the above.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level convenience methods on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded with
    /// SplitMix64. Deterministic per seed, which is all the test and
    /// workload generation code relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random helpers.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The most commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let z = rng.gen_range(0..2u8);
            assert!(z < 2);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((600..1400).contains(&heads), "suspicious coin: {heads}/2000");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        assert_eq!([0u8; 0].choose(&mut rng), None);
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "100 elements should not shuffle to identity");
        v.sort_unstable();
        assert_eq!(v, orig);
    }
}
