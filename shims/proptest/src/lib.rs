//! Workspace-local stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset the SFA property suites use. The build
//! environment has no access to crates.io, so this shim keeps the workspace
//! self-contained while preserving the `proptest!` test-authoring style.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its **seed** instead, and seeds
//!   recorded in `proptest-regressions/seeds.txt` (one `test_name seed` pair
//!   per line) are replayed first on every run,
//! * strategies are sampled with a deterministic per-test RNG, so a given
//!   checkout always runs the same cases (`PROPTEST_CASES` scales the count),
//! * string strategies support the character-class subset actually used in
//!   this workspace (e.g. `"[a-e]{0,12}"`), not full regex syntax.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::prelude::*;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test (regression seeds run in addition).
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Deliberately small so the full workspace suite stays fast; raise
        // locally with PROPTEST_CASES=1024.
        ProptestConfig { cases: 32 }
    }
}

/// A failed test case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A value generator. The shim equivalent of proptest's `Strategy`, minus
/// shrinking: `sample` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: each of `depth` levels draws either a
    /// leaf from `self` or one application of `recurse` over the previous
    /// level. `desired_size` and `expected_branch_size` are accepted for
    /// proptest signature compatibility but not used by the shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = boxed(self);
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = boxed(recurse(current.clone()));
            current = boxed(Union::new(vec![leaf.clone(), deeper]));
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        boxed(self)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of its value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A cloneable, type-erased strategy (shared, like real proptest's).
pub struct BoxedStrategy<T>(std::sync::Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Type-erases a strategy (the building block of [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(std::sync::Arc::new(strategy))
}

/// A uniform choice between strategies of a common value type.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given branches (must be non-empty).
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].sample(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
/// Weighted branches (`weight => strategy`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: any value at all.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i32, i64);

/// String strategies from class-and-repeat patterns such as `"[a-e]{0,12}"`.
///
/// Supported atoms: literal characters, `.` (printable ASCII) and classes
/// `[x-y…]` of ranges/single characters; each atom may carry `*`, `+`, `?`,
/// `{n}` or `{lo,hi}`. Anything fancier panics — this shim backs the
/// workspace's own suites, not arbitrary patterns.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        pattern::sample_pattern(self, rng)
    }
}

mod pattern {
    use super::*;

    const UNBOUNDED_CAP: u32 = 8;

    struct Atom {
        choices: Vec<u8>,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let bytes = pattern.as_bytes();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < bytes.len() {
            let choices = match bytes[i] {
                b'[' => {
                    let close = pattern[i..]
                        .find(']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                        + i;
                    let mut choices = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && bytes[j + 1] == b'-' {
                            choices.extend(bytes[j]..=bytes[j + 2]);
                            j += 3;
                        } else {
                            choices.push(bytes[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    choices
                }
                b'.' => {
                    i += 1;
                    (0x20..=0x7e).collect()
                }
                b'\\' if pattern[i..].starts_with("\\PC") => {
                    i += 3;
                    (0x20..=0x7e).collect()
                }
                b'\\' if i + 1 < bytes.len() => {
                    i += 2;
                    vec![bytes[i - 1]]
                }
                b'(' | b')' | b'|' | b'{' | b'}' | b'*' | b'+' | b'?' => panic!(
                    "pattern {pattern:?} uses syntax the proptest shim does not support \
                     (groups/alternation); extend shims/proptest if a suite needs it"
                ),
                b => {
                    i += 1;
                    vec![b]
                }
            };
            // Optional repetition suffix.
            let (min, max) = if i < bytes.len() {
                match bytes[i] {
                    b'*' => {
                        i += 1;
                        (0, UNBOUNDED_CAP)
                    }
                    b'+' => {
                        i += 1;
                        (1, UNBOUNDED_CAP)
                    }
                    b'?' => {
                        i += 1;
                        (0, 1)
                    }
                    b'{' => {
                        let close = pattern[i..]
                            .find('}')
                            .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                            + i;
                        let body = &pattern[i + 1..close];
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("repeat lower bound"),
                                hi.trim().parse().expect("repeat upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("repeat count");
                                (n, n)
                            }
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition {min}..{max} in pattern {pattern:?}");
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = Vec::new();
        for atom in parse(pattern) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(*atom.choices.choose(rng).expect("empty class in pattern"));
            }
        }
        String::from_utf8(out).expect("patterns are ASCII")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `size.start..size.end` elements of `element` per generated vector.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helper types (`prop::sample`).
pub mod sample {
    use super::*;

    /// A position into a collection of as-yet-unknown length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Projects the index into `0..len`. Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a `proptest!`-style test needs in scope.
pub mod prelude {
    pub use crate::{
        any, boxed, prop, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof};
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn regression_seeds(path: &str, test_name: &str) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else { return Vec::new() };
    contents
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (name, seed) = line.split_once(char::is_whitespace)?;
            (name == test_name).then(|| seed.trim().parse().ok())?
        })
        .collect()
}

/// Drives one `proptest!` test: replays the committed regression seeds for
/// `test_name` from `regressions_path`, then runs `config.cases` (or
/// `$PROPTEST_CASES`) deterministically derived fresh cases.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, regressions_path: &str, f: F)
where
    F: Fn(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(config.cases);
    let mut seeds = regression_seeds(regressions_path, test_name);
    let base = fnv1a(test_name);
    seeds.extend(
        (0..cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))),
    );

    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        let failure = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(e)) => Some(e.to_string()),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                Some(format!("panicked: {msg}"))
            }
        };
        if let Some(msg) = failure {
            panic!(
                "proptest case failed: {msg}\n\
                 test: {test_name}, seed: {seed}\n\
                 To pin this case, add the line `{test_name} {seed}` to {regressions_path}"
            );
        }
    }
}

/// Defines property tests. Mirrors proptest's macro of the same name for
/// the subset grammar `fn name(arg in strategy, …) { body }`, with an
/// optional `#![proptest_config(…)]` header.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // `#[test]` arrives through `$meta`, exactly like real proptest.
            $(#[$meta])*
            fn $name() {
                let __proptest_config: $crate::ProptestConfig = $config;
                $crate::run_cases(
                    __proptest_config,
                    stringify!($name),
                    concat!(env!("CARGO_MANIFEST_DIR"), "/proptest-regressions/seeds.txt"),
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), __proptest_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the rest of the case when `cond` is false (no retry bookkeeping —
/// the case simply passes, like a proptest rejection that never exhausts).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::run_cases;
    use rand::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn string_pattern_respects_class_and_bounds(s in "[a-e]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "bad length {}", s.len());
            prop_assert!(s.bytes().all(|b| (b'a'..=b'e').contains(&b)), "bad byte in {s:?}");
        }

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!((1..8).contains(&v.len()));
        }

        #[test]
        fn ranges_are_strategies(x in 3usize..9, idx in any::<prop::sample::Index>()) {
            prop_assert!((3..9).contains(&x));
            let i = idx.index(x);
            prop_assert!(i < x);
        }
    }

    #[test]
    fn pattern_star_plus_opt_literal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"ab?c*[0-9]+", &mut rng);
            assert!(s.starts_with('a'), "{s:?}");
            let rest = &s[1..];
            let rest = rest.strip_prefix('b').unwrap_or(rest);
            let digits = rest.trim_start_matches('c');
            assert!(!digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn failing_case_reports_seed() {
        run_cases(ProptestConfig::with_cases(4), "always_fails", "/nonexistent", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn regression_seed_file_parsing() {
        let dir = std::env::temp_dir().join("sfa-proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds.txt");
        std::fs::write(&path, "# comment\nmy_test 123\nother_test 7\nmy_test 456\n").unwrap();
        let seeds = super::regression_seeds(path.to_str().unwrap(), "my_test");
        assert_eq!(seeds, vec![123, 456]);
        assert_eq!(super::regression_seeds("/nonexistent", "my_test"), Vec::<u64>::new());
    }
}
