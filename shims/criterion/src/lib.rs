//! Workspace-local stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate, providing the subset the SFA benches use. The build
//! environment has no access to crates.io, so this shim keeps
//! `cargo bench` self-contained.
//!
//! It is a plain best-of-N wall-clock harness: no outlier analysis, no
//! HTML reports, no statistical regression testing — each benchmark prints
//! one line with the best observed iteration time (and throughput when one
//! was declared via [`BenchmarkGroup::throughput`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared data volume of one iteration, used for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { id: name.to_string() }
    }
}

/// Runs one benchmark routine repeatedly.
pub struct Bencher {
    iters: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    best: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping the best observed iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let measurement_end = Instant::now() + self.measurement_time;
        let mut best = Duration::MAX;
        let mut done = 0u64;
        while done < self.iters || Instant::now() < measurement_end {
            let start = Instant::now();
            black_box(routine());
            best = best.min(start.elapsed());
            done += 1;
            if done >= self.iters && Instant::now() >= measurement_end {
                break;
            }
            if done >= 10_000_000 {
                break;
            }
        }
        self.best = Some(best);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the untimed warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the timed measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the data volume of one iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            best: None,
        };
        routine(&mut bencher);
        self.report(&id, bencher.best);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    fn report(&self, id: &BenchmarkId, best: Option<Duration>) {
        let Some(best) = best else {
            println!("{}/{}: no measurement (Bencher::iter never called)", self.name, id.id);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gb_per_sec = bytes as f64 / 1e9 / best.as_secs_f64().max(1e-12);
                format!("  ({gb_per_sec:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) => {
                let elem_per_sec = n as f64 / best.as_secs_f64().max(1e-12);
                format!("  ({elem_per_sec:.0} elem/s)")
            }
            None => String::new(),
        };
        println!("{}/{}: best {:?}{}", self.name, id.id, best, rate);
    }

    /// Ends the group (prints a trailing blank line, like criterion's
    /// summary separator).
    pub fn finish(self) {
        let _ = &self.criterion;
        println!();
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function(BenchmarkId::from_parameter("base"), routine);
        group.finish();
        self
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs >= 3, "routine must run at least sample_size times, ran {runs}");
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dfa", 5).id, "dfa/5");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    criterion_group!(smoke, noop_target);

    fn noop_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("noop");
        group.sample_size(1);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        group.bench_function("nothing", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn criterion_group_macro_produces_runnable_fn() {
        smoke();
    }
}
