//! # sfa — Simultaneous Finite Automata
//!
//! A reproduction of *"Simultaneous Finite Automata: An Efficient
//! Data-Parallel Model for Regular Expression Matching"*
//! (Ryoma Sin'ya, Kiminori Matsuzaki, Masataka Sassa — ICPP 2013).
//!
//! This facade crate re-exports the whole pipeline:
//!
//! * [`regex_syntax`] — byte-oriented pattern parsing,
//! * [`automata`] — NFA, subset construction, DFA, Hopcroft minimization,
//! * [`analysis`] — offline convergence analysis of compiled DFAs (reach
//!   sets, reset words, sink maps) steering the convergence-guided
//!   speculative matcher,
//! * [`core`] — the simultaneous finite automaton (D-SFA / N-SFA), the
//!   correspondence construction, and the pluggable eager/lazy backend
//!   abstraction ([`core::SfaBackend`]),
//! * [`matcher`] — sequential (Algorithm 2), speculative-parallel
//!   (Algorithm 3) and SFA-parallel (Algorithm 5) matching over either
//!   backend,
//! * [`monoid`] — syntactic monoids and the state-explosion families,
//! * [`workloads`] — the SNORT-like corpus and scalability inputs,
//! * [`serialize`] — durable compiled-automaton artifacts: versioned,
//!   checksummed binary format with a zero-copy loader and a compile
//!   cache,
//! * [`server`] — a multi-tenant match service with batched admission,
//!   artifact-backed cold starts and explicit backpressure.
//!
//! ## Quick start
//!
//! ```
//! use sfa::prelude::*;
//!
//! let re = Regex::new("([0-4]{2}[5-9]{2})*").unwrap();
//! let text = b"00550459".repeat(512);
//! assert!(re.is_match_with(&text, Strategy::Sequential));
//! assert!(re.is_match_with(&text, Strategy::Parallel { threads: 4, reduction: Reduction::Sequential }));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use sfa_analysis as analysis;
pub use sfa_automata as automata;
pub use sfa_core as core;
pub use sfa_matcher as matcher;
pub use sfa_monoid as monoid;
pub use sfa_regex_syntax as regex_syntax;
pub use sfa_serialize as serialize;
pub use sfa_server as server;
pub use sfa_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use sfa_analysis::{AnalysisConfig, ConvergenceClass, ConvergenceReport};
    pub use sfa_automata::{Dfa, Nfa};
    pub use sfa_automata::{PatternId, PatternSet};
    pub use sfa_core::{BackendKind, DSfa, LazyDSfa, NSfa, SfaBackend, SfaConfig};
    pub use sfa_matcher::{
        BackendChoice, Engine, Error, MatchMode, ParallelSfaMatcher, Prefilter, Reduction, Regex,
        RegexBuilder, RegexSet, SetMatches, SetStream, Shard, SpeculativeDfaMatcher, Strategy,
        StreamMatcher, WorkerPool,
    };
}
