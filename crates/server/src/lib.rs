//! # sfa-server — a multi-tenant SFA match service
//!
//! A small, std-only (no async runtime) network service over the SFA
//! matcher: tenants register pattern namespaces, clients stream batches
//! of haystacks, and the server answers with per-haystack matched
//! pattern ids.
//!
//! The design leans on the rest of the workspace for everything hard:
//!
//! * **Cold starts** come from [`sfa_serialize`] artifacts — a registered
//!   namespace loads zero-copy from a memory-mapped `.sfa` file when one
//!   exists, falls back to the in-memory compile cache, and only then
//!   compiles (writing the artifact back for next time). See
//!   [`RegisterSource`].
//! * **Throughput** comes from batched admission: concurrent small
//!   requests from different connections are flattened by the dispatcher
//!   into one `matches_batch` scan per tenant per drain, riding the
//!   lane-interleaved batch kernels instead of paying per-request
//!   dispatch.
//! * **Overload** is explicit: the admission queue is bounded, and a full
//!   queue answers `STATUS_RETRY` with a delay hint instead of silently
//!   stacking latency. Nothing is dropped after admission — shutdown
//!   drains every accepted job before the dispatcher exits.
//!
//! ```no_run
//! use sfa_server::{Client, Server, ServerConfig};
//!
//! let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//!
//! let mut client = Client::connect_tcp(addr).unwrap();
//! client.register("ids", &["worm", "exploit[0-9]+"]).unwrap();
//! let verdicts = client.matches_batch("ids", &[b"an exploit42 here"]).unwrap();
//! assert_eq!(verdicts, vec![vec![1]]);
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod config;
pub mod protocol;
mod queue;
mod server;
mod tenants;

pub use client::{Client, ClientError};
pub use config::ServerConfig;
pub use server::Server;
pub use tenants::RegisterSource;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const RULES: &[&str] = &["worm", "exploit[0-9]+", "(ab)+c"];

    #[test]
    fn loopback_register_match_shutdown() {
        let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = Client::connect_tcp(addr).unwrap();

        let (count, source) = client.register("ids", RULES).unwrap();
        assert_eq!(count, 3);
        assert_eq!(source, RegisterSource::CompiledFresh);

        let verdicts = client
            .matches_batch(
                "ids",
                &[b"clean traffic".as_slice(), b"a worm and exploit7", b"xxababcxx"],
            )
            .unwrap();
        assert_eq!(verdicts, vec![vec![], vec![0, 1], vec![2]]);

        // Unknown tenants fail with the typed error's message.
        match client.matches_batch("nobody", &[b"x".as_slice()]) {
            Err(ClientError::Server(msg)) => assert!(msg.contains("nobody"), "{msg}"),
            other => panic!("expected TenantUnknown passthrough, got {other:?}"),
        }

        client.shutdown().unwrap();
        server.shutdown();
    }

    #[test]
    fn second_registration_hits_the_cache_and_artifacts_hit_the_dir() {
        let dir = std::env::temp_dir().join(format!("sfa-server-art-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig { artifact_dir: Some(dir.clone()), ..ServerConfig::default() };
        let server = Server::bind_tcp("127.0.0.1:0", config.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = Client::connect_tcp(addr).unwrap();

        let (_, first) = client.register("a", RULES).unwrap();
        assert_eq!(first, RegisterSource::CompiledFresh);
        // Same patterns, different tenant: served from the shared cache
        // (or the artifact the first registration just wrote).
        let (_, second) = client.register("b", RULES).unwrap();
        assert!(matches!(second, RegisterSource::Cache | RegisterSource::Artifact), "{second:?}");
        assert!(server.cache_bytes() > 0);

        // Verdicts agree between the fresh and the artifact-backed tenant.
        let hay: Vec<&[u8]> = vec![b"exploit99", b"nothing", b"wormy"];
        assert_eq!(
            client.matches_batch("a", &hay).unwrap(),
            client.matches_batch("b", &hay).unwrap()
        );
        server.shutdown();

        // A fresh server over the same artifact dir cold-starts from disk.
        let server = Server::bind_tcp("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = Client::connect_tcp(addr).unwrap();
        let (_, cold) = client.register("c", RULES).unwrap();
        assert_eq!(cold, RegisterSource::Artifact);
        assert_eq!(client.matches_batch("c", &hay).unwrap(), vec![vec![1], vec![], vec![0]]);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_connections_batch_and_agree() {
        let server = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        Server::register(&server, "t", &RULES.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap();

        let hits = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for worker in 0..8 {
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                for i in 0..20 {
                    let text = format!("packet {i} from {worker} exploit{i}");
                    let verdicts =
                        client.matches_batch_retrying("t", &[text.as_bytes()], 50).unwrap();
                    assert_eq!(verdicts, vec![vec![1]], "{text}");
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 8 * 20);
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_transport_works() {
        let path = std::env::temp_dir().join(format!("sfa-server-{}.sock", std::process::id()));
        let server = Server::bind_unix(&path, ServerConfig::default()).unwrap();
        let mut client = Client::connect_unix(&path).unwrap();
        client.register("t", &["a+b"]).unwrap();
        assert_eq!(client.matches_batch("t", &[b"xaaabx".as_slice()]).unwrap(), vec![vec![0]]);
        server.shutdown();
        assert!(!path.exists(), "socket file is removed on shutdown");
    }

    #[test]
    fn tiny_queue_surfaces_retry_backpressure() {
        // Depth-1 queue, many threads: at least some submissions must see
        // STATUS_RETRY, and every retried request must still succeed.
        let config = ServerConfig { queue_depth: 1, retry_after_ms: 1, ..ServerConfig::default() };
        let server = Server::bind_tcp("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        Server::register(&server, "t", &["x+".to_string()]).unwrap();

        let mut handles = Vec::new();
        for _ in 0..6 {
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                let mut retries = 0;
                for _ in 0..30 {
                    loop {
                        match client.matches_batch("t", &[b"xxxx".as_slice()]) {
                            Ok(v) => {
                                assert_eq!(v, vec![vec![0]]);
                                break;
                            }
                            Err(ClientError::Retry(ms)) => {
                                retries += 1;
                                std::thread::sleep(std::time::Duration::from_millis(u64::from(
                                    ms.max(1),
                                )));
                            }
                            Err(other) => panic!("unexpected failure: {other}"),
                        }
                    }
                }
                retries
            }));
        }
        let total_retries: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Backpressure is load-dependent; with 6 writers against a
        // depth-1 queue it is effectively certain, but the invariant that
        // matters — retried work succeeds, nothing is lost — held above.
        let _ = total_retries;
        server.shutdown();
    }
}
