//! The service loop: accept, admit, batch, reply, drain.
//!
//! Three kinds of threads cooperate:
//!
//! * **Acceptor** — polls the (nonblocking) listener, spawning one
//!   connection thread per peer; exits on shutdown.
//! * **Connection threads** — speak the frame protocol. `REGISTER` is
//!   handled inline (it is a control operation; compile cost belongs to
//!   the caller who changed the rules, not to other tenants' match
//!   traffic). `MATCH` is submitted to the bounded admission queue and
//!   the thread parks on its reply channel — so one connection has one
//!   request in flight, and concurrency comes from many connections.
//! * **Dispatcher** (one) — drains the queue in batches, groups jobs by
//!   tenant, and issues **one** batched scan per tenant per drain:
//!   simultaneous small requests from different connections flatten into
//!   a single `matches_batch` call that rides the interleaved lane
//!   kernels.
//!
//! Shutdown is graceful by construction: the queue closes (refusing new
//! admissions with `STATUS_RETRY`-style refusals turned into errors),
//! the dispatcher finishes every job it already accepted, acceptors stop,
//! and `Server::shutdown` joins both.

use crate::config::ServerConfig;
use crate::protocol::{
    read_frame, send_frame, write_frame, PayloadReader, PayloadWriter, OP_MATCH, OP_REGISTER,
    OP_SHUTDOWN, STATUS_ERROR, STATUS_OK, STATUS_RETRY,
};
use crate::queue::{Admission, Job, Refusal};
use crate::tenants::Tenants;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often acceptor threads poll for shutdown between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

struct Shared {
    config: ServerConfig,
    tenants: Tenants,
    queue: Admission,
    shutdown: AtomicBool,
}

/// A running multi-tenant match service. Dropping the handle does **not**
/// stop the service; call [`shutdown`](Server::shutdown) to drain and
/// join.
pub struct Server {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
    #[cfg(unix)]
    socket_path: Option<std::path::PathBuf>,
}

impl Server {
    /// Binds a TCP listener (use port 0 for an OS-assigned port, then
    /// read [`local_addr`](Server::local_addr)) and starts the service.
    pub fn bind_tcp(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let mut server = Server::start(config);
        server.addr = Some(local);
        let shared = Arc::clone(&server.shared);
        server.threads.push(std::thread::spawn(move || {
            accept_loop(&shared, || match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    // Replies are small; Nagle would delay them into the
                    // peer's delayed-ACK window.
                    stream.set_nodelay(true).ok();
                    Some(Box::new(stream) as Box<dyn Conn>)
                }
                Err(_) => None,
            });
        }));
        Ok(server)
    }

    /// Binds a Unix-domain socket at `path` (removed on shutdown) and
    /// starts the service.
    #[cfg(unix)]
    pub fn bind_unix(
        path: impl AsRef<std::path::Path>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed predecessor would fail the
        // bind; remove it (connect errors, not data, live behind it).
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let mut server = Server::start(config);
        server.socket_path = Some(path);
        let shared = Arc::clone(&server.shared);
        server.threads.push(std::thread::spawn(move || {
            accept_loop(&shared, || match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    Some(Box::new(stream) as Box<dyn Conn>)
                }
                Err(_) => None,
            });
        }));
        Ok(server)
    }

    fn start(config: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            queue: Admission::new(config.queue_depth),
            tenants: Tenants::new(config.clone()),
            config,
            shutdown: AtomicBool::new(false),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatch_loop(&shared))
        };
        Server {
            shared,
            addr: None,
            threads: vec![dispatcher],
            #[cfg(unix)]
            socket_path: None,
        }
    }

    /// The bound TCP address (None for Unix-socket servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Bytes of encoded artifacts currently held by the compile cache.
    pub fn cache_bytes(&self) -> usize {
        self.shared.tenants.cache_bytes()
    }

    /// Match jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Registers a tenant in-process (the wire `REGISTER` minus the
    /// socket) — handy for pre-warming namespaces before serving.
    pub fn register(
        &self,
        tenant: &str,
        patterns: &[String],
    ) -> Result<(usize, crate::RegisterSource), String> {
        self.shared.tenants.register(tenant, patterns)
    }

    /// Graceful drain: stop admitting, finish every accepted job, stop
    /// accepting connections, join all service threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected peer: any bidirectional byte stream.
trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

fn accept_loop(shared: &Arc<Shared>, mut accept: impl FnMut() -> Option<Box<dyn Conn>>) {
    // Connection threads are detached: they exit on peer EOF, I/O error,
    // or when shutdown refuses their next request.
    while !shared.shutdown.load(Ordering::SeqCst) {
        match accept() {
            Some(stream) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || serve_connection(&shared, stream));
            }
            None => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: Box<dyn Conn>) {
    while let Ok(Some((opcode, payload))) = read_frame(&mut stream) {
        let result = handle_request(shared, opcode, payload, &mut stream);
        if result.is_err() {
            // The peer is gone or spoke garbage; drop the connection.
            break;
        }
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    opcode: u8,
    payload: Vec<u8>,
    stream: &mut Box<dyn Conn>,
) -> io::Result<()> {
    match opcode {
        OP_REGISTER => {
            let (tenant, patterns) = match parse_register(&payload) {
                Ok(parts) => parts,
                Err(e) => return reply_error(stream, &e.to_string()),
            };
            match shared.tenants.register(&tenant, &patterns) {
                Ok((count, source)) => {
                    let frame =
                        PayloadWriter::new().u32(count as u32).u8(source as u8).frame(STATUS_OK);
                    send_frame(stream, &frame)
                }
                Err(message) => reply_error(stream, &message),
            }
        }
        OP_MATCH => {
            // The haystacks stay in the request payload; the job carries
            // the buffer plus ranges, so admission is copy-free.
            let (tenant, haystacks) = match parse_match(&payload) {
                Ok(parts) => parts,
                Err(e) => return reply_error(stream, &e.to_string()),
            };
            let (reply, verdicts) = mpsc::channel();
            match shared.queue.submit(Job { tenant, payload, haystacks, reply }) {
                Ok(()) => {}
                Err(Refusal::Full) => {
                    let frame =
                        PayloadWriter::new().u32(shared.config.retry_after_ms).frame(STATUS_RETRY);
                    return send_frame(stream, &frame);
                }
                Err(Refusal::Closed) => return reply_error(stream, "server is shutting down"),
            }
            match verdicts.recv() {
                Ok(Ok(per_haystack)) => {
                    let mut body = PayloadWriter::new().u32(per_haystack.len() as u32);
                    for ids in &per_haystack {
                        body = body.u32(ids.len() as u32);
                        for &id in ids {
                            body = body.u32(id);
                        }
                    }
                    send_frame(stream, &body.frame(STATUS_OK))
                }
                Ok(Err(err)) => reply_error(stream, &err.to_string()),
                Err(_) => reply_error(stream, "server dropped the request during shutdown"),
            }
        }
        OP_SHUTDOWN => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            write_frame(stream, STATUS_OK, &[])
        }
        other => reply_error(stream, &format!("unknown opcode {other}")),
    }
}

fn reply_error(stream: &mut Box<dyn Conn>, message: &str) -> io::Result<()> {
    send_frame(stream, &PayloadWriter::new().bytes(message.as_bytes()).frame(STATUS_ERROR))
}

fn parse_register(payload: &[u8]) -> io::Result<(String, Vec<String>)> {
    let mut r = PayloadReader::new(payload);
    let tenant = r.string()?;
    let n = r.u32()? as usize;
    let mut patterns = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        patterns.push(r.string()?);
    }
    r.finish()?;
    Ok((tenant, patterns))
}

fn parse_match(payload: &[u8]) -> io::Result<(String, Vec<std::ops::Range<usize>>)> {
    let mut r = PayloadReader::new(payload);
    let tenant = r.string()?;
    let n = r.u32()? as usize;
    let mut haystacks = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        haystacks.push(r.bytes_range()?);
    }
    r.finish()?;
    Ok((tenant, haystacks))
}

/// The batching heart: drain everything admitted, group by tenant, scan
/// each tenant's flattened haystacks in **one** `matches_batch` call,
/// then scatter the verdicts back to the waiting connections.
fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some(jobs) = shared.queue.pop_batch() {
        let mut by_tenant: HashMap<String, Vec<Job>> = HashMap::new();
        for job in jobs {
            by_tenant.entry(job.tenant.clone()).or_default().push(job);
        }
        for (tenant, group) in by_tenant {
            let matcher = match shared.tenants.get(&tenant) {
                Ok(m) => m,
                Err(err) => {
                    for job in &group {
                        let _ = job.reply.send(Err(err.clone()));
                    }
                    continue;
                }
            };
            let flat: Vec<&[u8]> = group
                .iter()
                .flat_map(|j| (0..j.haystacks.len()).map(move |i| j.haystack(i)))
                .collect();
            match matcher.matches_batch(&flat) {
                Ok(mut verdicts) => {
                    // Scatter: each job takes its own haystacks' verdicts
                    // back off the front of the flattened result.
                    let mut rest = verdicts.drain(..);
                    for job in &group {
                        let own: Vec<Vec<u32>> = rest.by_ref().take(job.haystacks.len()).collect();
                        let _ = job.reply.send(Ok(own));
                    }
                }
                Err(err) => {
                    for job in &group {
                        let _ = job.reply.send(Err(err.clone()));
                    }
                }
            }
        }
    }
}
