//! Server configuration.

use sfa_matcher::MatchMode;
use std::path::PathBuf;

/// Tuning knobs for a [`Server`](crate::Server). `Default` is a sensible
/// scanning service: substring semantics, a 256-deep admission queue, a
/// 5 ms retry hint, a 64 MiB compile cache, and no artifact directory.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Match semantics for every tenant's patterns. Services usually scan
    /// ([`MatchMode::Contains`], the default); whole-input membership is
    /// the paper's semantics.
    pub mode: MatchMode,
    /// Bound on the admission queue; a full queue answers `STATUS_RETRY`
    /// instead of queueing invisibly.
    pub queue_depth: usize,
    /// The retry delay hint (milliseconds) sent with `STATUS_RETRY`.
    pub retry_after_ms: u32,
    /// Durable artifact directory: registrations load from here
    /// zero-copy when a valid artifact exists, and fresh compiles write
    /// back here (best effort) to warm the next cold start.
    pub artifact_dir: Option<PathBuf>,
    /// Byte bound of the in-memory encoded-artifact LRU shared by all
    /// tenants.
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            mode: MatchMode::Contains,
            queue_depth: 256,
            retry_after_ms: 5,
            artifact_dir: None,
            cache_bytes: 64 << 20,
        }
    }
}
