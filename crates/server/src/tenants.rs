//! Per-tenant pattern namespaces with artifact-backed cold starts.
//!
//! Registering a tenant resolves its pattern list to a matcher through
//! three tiers, cheapest first:
//!
//! 1. **Artifact directory** — a durable `.sfa` file written by a
//!    previous run (or an offline build step) is memory-mapped and loaded
//!    zero-copy: cold start skips the whole NFA → DFA → D-SFA pipeline.
//! 2. **Compile cache** — an in-memory LRU of encoded artifacts shared by
//!    all tenants of the server; two tenants registering the same rule
//!    set compile once.
//! 3. **Fresh compile** — the full pipeline; the result is encoded back
//!    into the cache and (best effort) the artifact directory so the
//!    *next* cold start takes tier 1.
//!
//! A stale, corrupt, or mode-mismatched artifact never panics and never
//! misreports: validation failures (the typed
//! [`ArtifactError`](sfa_serialize::ArtifactError) surface) simply drop
//! to the next tier.

use crate::config::ServerConfig;
use sfa_matcher::{Error, MatchMode, Regex, RegexBuilder, RegexSet};
use sfa_serialize::{fnv1a, CacheKey, CompileCache};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// Where a tenant's automaton came from at registration time (reported
/// on the wire so operators can see whether cold starts hit artifacts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegisterSource {
    /// Compiled from scratch this registration.
    CompiledFresh = 0,
    /// Loaded zero-copy from the artifact directory.
    Artifact = 1,
    /// Decoded from the in-memory compile cache.
    Cache = 2,
}

impl RegisterSource {
    /// Wire decoding (see [`STATUS_OK`](crate::protocol::STATUS_OK)).
    pub fn from_byte(b: u8) -> Option<RegisterSource> {
        Some(match b {
            0 => RegisterSource::CompiledFresh,
            1 => RegisterSource::Artifact,
            2 => RegisterSource::Cache,
            _ => return None,
        })
    }
}

/// A tenant's compiled matcher: either a freshly compiled set (which may
/// shard internally) or a single automaton borrowed from an artifact.
pub(crate) enum TenantMatcher {
    /// Fresh compile — the full [`RegexSet`] machinery (auto-sharding,
    /// prefilter) applies.
    Compiled(RegexSet),
    /// Zero-copy artifact load — one union automaton with per-pattern
    /// tracking; its tables live in the mapped artifact. Boxed: `Regex`
    /// is much larger than the `RegexSet` handle.
    Artifact(Box<Regex>),
}

impl TenantMatcher {
    /// Per-haystack matched pattern ids, via one batched scan.
    pub fn matches_batch(&self, haystacks: &[&[u8]]) -> Result<Vec<Vec<u32>>, Error> {
        let matches = match self {
            TenantMatcher::Compiled(set) => set.try_matches_batch(haystacks)?,
            TenantMatcher::Artifact(re) => re.try_matches_batch(haystacks)?,
        };
        Ok(matches.iter().map(|m| m.iter().map(|id| id as u32).collect()).collect())
    }

    /// Number of patterns in the namespace.
    pub fn pattern_count(&self) -> usize {
        match self {
            TenantMatcher::Compiled(set) => set.len(),
            TenantMatcher::Artifact(re) => re.pattern_count(),
        }
    }
}

/// The tenant registry plus the shared compile cache.
pub(crate) struct Tenants {
    config: ServerConfig,
    map: RwLock<HashMap<String, Arc<TenantMatcher>>>,
    cache: CompileCache,
}

impl Tenants {
    pub fn new(config: ServerConfig) -> Tenants {
        let cache = CompileCache::new(config.cache_bytes);
        Tenants { config, map: RwLock::new(HashMap::new()), cache }
    }

    fn builder(&self) -> RegexBuilder {
        RegexBuilder::new().mode(self.config.mode)
    }

    /// The artifact path for a pattern namespace: content-addressed over
    /// the match mode and the set label, so differently-configured
    /// servers sharing a directory never collide.
    fn artifact_path(&self, label: &str) -> Option<PathBuf> {
        let dir = self.config.artifact_dir.as_ref()?;
        let mode = match self.config.mode {
            MatchMode::Whole => 0u8,
            MatchMode::Contains => 1u8,
        };
        let mut keyed = vec![mode];
        keyed.extend_from_slice(label.as_bytes());
        Some(dir.join(format!("{:016x}.sfa", fnv1a(&keyed))))
    }

    /// Registers (or replaces) `tenant`'s namespace. See the module docs
    /// for the three-tier resolution. Errors are pre-rendered: they go
    /// straight onto the wire as `STATUS_ERROR` text.
    pub fn register(
        &self,
        tenant: &str,
        patterns: &[String],
    ) -> Result<(usize, RegisterSource), String> {
        let label = patterns.join("|");

        let (matcher, source) = if let Some(re) = self.try_artifact(&label, patterns.len()) {
            (TenantMatcher::Artifact(Box::new(re)), RegisterSource::Artifact)
        } else if let Some(re) = self.try_cache(&label, patterns.len()) {
            (TenantMatcher::Artifact(Box::new(re)), RegisterSource::Cache)
        } else {
            (self.compile(&label, patterns)?, RegisterSource::CompiledFresh)
        };

        let count = matcher.pattern_count();
        self.map.write().unwrap().insert(tenant.to_string(), Arc::new(matcher));
        Ok((count, source))
    }

    /// Tier 1: durable artifact, validated against the requested
    /// namespace before use.
    fn try_artifact(&self, label: &str, pattern_count: usize) -> Option<Regex> {
        let path = self.artifact_path(label)?;
        let re = Regex::load_artifact(&path).ok()?;
        (re.pattern() == label
            && re.pattern_count() == pattern_count
            && re.mode() == self.config.mode)
            .then_some(re)
    }

    /// Tier 2: the in-memory encoded-artifact cache.
    fn try_cache(&self, label: &str, pattern_count: usize) -> Option<Regex> {
        let key = CacheKey::new(label, &Default::default());
        let bytes = self.cache.get(&key)?;
        let re = Regex::from_artifact(bytes).ok()?;
        (re.pattern() == label
            && re.pattern_count() == pattern_count
            && re.mode() == self.config.mode)
            .then_some(re)
    }

    /// Tier 3: fresh compile, then warm the cache and the artifact
    /// directory for the next registration / next cold start.
    fn compile(&self, label: &str, patterns: &[String]) -> Result<TenantMatcher, String> {
        let set = RegexSet::new(patterns.iter().map(|p| p.as_str()), &self.builder())
            .map_err(|e| format!("compile failed: {e}"))?;
        // Only unsharded eager automata serialize; sharded or lazy sets
        // simply skip the warm-up (to_artifact refuses them typed-ly).
        if !set.is_sharded() {
            if let Ok(bytes) = set.regex().to_artifact() {
                let bytes = Arc::new(bytes);
                self.cache.insert(CacheKey::new(label, &Default::default()), Arc::clone(&bytes));
                if let Some(path) = self.artifact_path(label) {
                    // Best effort: a read-only artifact dir just means the
                    // next cold start compiles again.
                    let _ = std::fs::create_dir_all(path.parent().unwrap());
                    let _ = std::fs::write(&path, bytes.as_slice());
                }
            }
        }
        Ok(TenantMatcher::Compiled(set))
    }

    /// The tenant's matcher, cloned out of the lock so matching never
    /// holds the registry.
    pub fn get(&self, tenant: &str) -> Result<Arc<TenantMatcher>, Error> {
        self.map
            .read()
            .unwrap()
            .get(tenant)
            .cloned()
            .ok_or_else(|| Error::TenantUnknown { tenant: tenant.to_string() })
    }

    /// Observability: cached artifact bytes currently held.
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }
}
