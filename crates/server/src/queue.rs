//! Bounded admission with batch draining.
//!
//! Connection threads submit match jobs here; one dispatcher thread
//! drains *everything available* in one go, groups the jobs by tenant,
//! and issues a single batched scan per tenant — concurrent small
//! requests ride the interleaved batch kernels instead of paying one
//! pool hand-off each.
//!
//! The queue is bounded and **never blocks the submitter**: when full,
//! [`Admission::submit`] refuses immediately so the connection can answer
//! with explicit `STATUS_RETRY` backpressure instead of stacking latency
//! invisibly. Closing the queue stops new admissions but lets the
//! dispatcher drain what was already accepted — the graceful half of
//! shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// One admitted match request: a tenant's haystacks plus the channel the
/// dispatcher answers on. The haystacks are byte ranges into the request
/// payload, which travels with the job — admission moves one buffer, it
/// never re-copies megabytes of haystack data.
pub(crate) struct Job {
    /// Tenant namespace the haystacks are matched under.
    pub tenant: String,
    /// The raw `MATCH` request payload the ranges index into.
    pub payload: Vec<u8>,
    /// The request's haystacks, in order, as ranges of `payload`.
    pub haystacks: Vec<std::ops::Range<usize>>,
    /// Where the per-haystack pattern-id lists (or an error) go.
    pub reply: std::sync::mpsc::Sender<Result<Vec<Vec<u32>>, sfa_matcher::Error>>,
}

impl Job {
    /// Haystack `i` of the request.
    pub fn haystack(&self, i: usize) -> &[u8] {
        &self.payload[self.haystacks[i].clone()]
    }
}

struct State {
    queue: VecDeque<Job>,
    open: bool,
}

/// The bounded admission queue (see module docs).
pub(crate) struct Admission {
    capacity: usize,
    state: Mutex<State>,
    ready: Condvar,
}

/// [`Admission::submit`] refusal: the queue was at capacity (or closed).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Refusal {
    /// At capacity — the client should retry after a delay.
    Full,
    /// Shutting down — the client should not retry here.
    Closed,
}

impl Admission {
    pub fn new(capacity: usize) -> Admission {
        Admission {
            capacity: capacity.max(1),
            state: Mutex::new(State { queue: VecDeque::new(), open: true }),
            ready: Condvar::new(),
        }
    }

    /// Admits a job, or refuses *immediately* — admission never blocks,
    /// so a full queue turns into wire-visible backpressure at once.
    pub fn submit(&self, job: Job) -> Result<(), Refusal> {
        let mut state = self.state.lock().unwrap();
        if !state.open {
            return Err(Refusal::Closed);
        }
        if state.queue.len() >= self.capacity {
            return Err(Refusal::Full);
        }
        state.queue.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until jobs are available, then drains **all** of them (the
    /// batch the dispatcher flattens per tenant). Returns `None` once the
    /// queue is closed *and* empty — the drain is complete and the
    /// dispatcher may exit.
    pub fn pop_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap();
        loop {
            if !state.queue.is_empty() {
                return Some(state.queue.drain(..).collect());
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Stops admissions; already-accepted jobs remain for the dispatcher
    /// to drain.
    pub fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (for observability/tests).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn job(tenant: &str) -> Job {
        // The receiver is dropped — these tests exercise admission, not
        // replies, and an unsendable channel is harmless here.
        let (reply, _) = mpsc::channel();
        let haystacks = std::iter::once(0..1).collect();
        Job { tenant: tenant.to_string(), payload: b"x".to_vec(), haystacks, reply }
    }

    #[test]
    fn refuses_immediately_when_full_and_drains_after_close() {
        let q = Admission::new(2);
        q.submit(job("a")).unwrap();
        q.submit(job("b")).unwrap();
        assert_eq!(q.submit(job("c")).unwrap_err(), Refusal::Full);
        assert_eq!(q.depth(), 2);

        q.close();
        assert_eq!(q.submit(job("d")).unwrap_err(), Refusal::Closed);
        // The accepted jobs still drain, then the queue reports done.
        let batch = q.pop_batch().expect("accepted jobs drain after close");
        assert_eq!(batch.len(), 2);
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn pop_batch_takes_everything_available() {
        let q = Admission::new(16);
        for i in 0..5 {
            q.submit(job(&format!("t{i}"))).unwrap();
        }
        assert_eq!(q.pop_batch().unwrap().len(), 5);
        assert_eq!(q.depth(), 0);
    }
}
