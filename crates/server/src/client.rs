//! A blocking client for the match service.
//!
//! One connection, one request in flight — exactly the shape the server's
//! batched admission expects many of. [`Client::matches_batch`] surfaces
//! the server's backpressure as the typed [`ClientError::Retry`];
//! [`Client::matches_batch_retrying`] is the polite loop around it.

use crate::protocol::{
    read_frame, send_frame, PayloadReader, PayloadWriter, OP_MATCH, OP_REGISTER, OP_SHUTDOWN,
    STATUS_ERROR, STATUS_OK, STATUS_RETRY,
};
use crate::RegisterSource;
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered `STATUS_ERROR` with this message.
    Server(String),
    /// The server answered `STATUS_RETRY`: the request was **not**
    /// processed; resend it after the hinted delay (milliseconds).
    Retry(u32),
    /// The server answered with a frame the protocol does not define.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Retry(ms) => write!(f, "server backpressure: retry after {ms} ms"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

enum Transport {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Transport {
    fn stream(&mut self) -> &mut dyn ReadWrite {
        match self {
            Transport::Tcp(s) => s,
            #[cfg(unix)]
            Transport::Unix(s) => s,
        }
    }
}

trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    transport: Transport,
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { transport: Transport::Tcp(stream) })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> io::Result<Client> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Ok(Client { transport: Transport::Unix(stream) })
    }

    fn round_trip(
        &mut self,
        opcode: u8,
        payload: PayloadWriter,
    ) -> Result<(u8, Vec<u8>), ClientError> {
        let mut stream = self.transport.stream();
        send_frame(&mut stream, &payload.frame(opcode))?;
        match read_frame(&mut stream)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Protocol("server closed mid-request".to_string())),
        }
    }

    /// Decodes the three response statuses shared by every operation.
    fn expect_ok(frame: (u8, Vec<u8>)) -> Result<Vec<u8>, ClientError> {
        let (status, body) = frame;
        match status {
            STATUS_OK => Ok(body),
            STATUS_ERROR => {
                let mut r = PayloadReader::new(&body);
                Err(ClientError::Server(r.string().unwrap_or_else(|_| "<garbled>".to_string())))
            }
            STATUS_RETRY => {
                let mut r = PayloadReader::new(&body);
                Err(ClientError::Retry(r.u32().unwrap_or(1)))
            }
            other => Err(ClientError::Protocol(format!("unknown status {other}"))),
        }
    }

    /// Registers (or replaces) a tenant namespace; returns the pattern
    /// count and where the automaton came from (artifact, cache, or a
    /// fresh compile).
    pub fn register(
        &mut self,
        tenant: &str,
        patterns: &[&str],
    ) -> Result<(usize, RegisterSource), ClientError> {
        let mut payload = PayloadWriter::new().bytes(tenant.as_bytes()).u32(patterns.len() as u32);
        for p in patterns {
            payload = payload.bytes(p.as_bytes());
        }
        let body = Self::expect_ok(self.round_trip(OP_REGISTER, payload)?)?;
        let mut r = PayloadReader::new(&body);
        let count = r.u32()? as usize;
        let source = RegisterSource::from_byte(r.u8()?)
            .ok_or_else(|| ClientError::Protocol("bad register source".to_string()))?;
        Ok((count, source))
    }

    /// Matches a batch of haystacks under `tenant`, returning each
    /// haystack's matched pattern ids. Backpressure surfaces as
    /// [`ClientError::Retry`] — nothing was processed.
    pub fn matches_batch(
        &mut self,
        tenant: &str,
        haystacks: &[&[u8]],
    ) -> Result<Vec<Vec<u32>>, ClientError> {
        let mut payload = PayloadWriter::new().bytes(tenant.as_bytes()).u32(haystacks.len() as u32);
        for h in haystacks {
            payload = payload.bytes(h);
        }
        let body = Self::expect_ok(self.round_trip(OP_MATCH, payload)?)?;
        let mut r = PayloadReader::new(&body);
        let n = r.u32()? as usize;
        if n != haystacks.len() {
            return Err(ClientError::Protocol(format!(
                "asked about {} haystacks, answered for {n}",
                haystacks.len()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = r.u32()? as usize;
            let mut ids = Vec::with_capacity(k.min(1024));
            for _ in 0..k {
                ids.push(r.u32()?);
            }
            out.push(ids);
        }
        r.finish()?;
        Ok(out)
    }

    /// [`matches_batch`](Client::matches_batch) that sleeps out
    /// backpressure: on [`ClientError::Retry`] it waits the hinted delay
    /// and resends, up to `max_retries` times.
    pub fn matches_batch_retrying(
        &mut self,
        tenant: &str,
        haystacks: &[&[u8]],
        max_retries: usize,
    ) -> Result<Vec<Vec<u32>>, ClientError> {
        let mut attempt = 0;
        loop {
            match self.matches_batch(tenant, haystacks) {
                Err(ClientError::Retry(ms)) if attempt < max_retries => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(ms.max(1))));
                }
                other => return other,
            }
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        Self::expect_ok(self.round_trip(OP_SHUTDOWN, PayloadWriter::new())?)?;
        Ok(())
    }
}
