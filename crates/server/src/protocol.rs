//! The length-prefixed wire protocol.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 LE: length of tag + payload] [u8 tag] [payload…]
//! ```
//!
//! Request tags are opcodes ([`OP_REGISTER`], [`OP_MATCH`],
//! [`OP_SHUTDOWN`]); response tags are statuses ([`STATUS_OK`],
//! [`STATUS_ERROR`], [`STATUS_RETRY`]). Payloads are built from two
//! primitives: `u32` little-endian integers and length-prefixed byte
//! strings. Strings are UTF-8; haystacks are raw bytes.
//!
//! The protocol is deliberately synchronous per connection: one request,
//! one response, in order. Concurrency comes from many connections — the
//! server's admission queue flattens simultaneous small requests from
//! different connections into single batched scans.

use std::io::{self, Read, Write};

/// Register (or replace) a tenant's pattern namespace.
/// Payload: `str tenant · u32 n · n × str pattern`.
pub const OP_REGISTER: u8 = 1;
/// Match a batch of haystacks against a tenant's patterns.
/// Payload: `str tenant · u32 n · n × bytes haystack`.
pub const OP_MATCH: u8 = 2;
/// Ask the server to drain and stop. Payload: empty.
pub const OP_SHUTDOWN: u8 = 3;

/// Success. Payload for `REGISTER`: `u32 pattern_count · u8 source`
/// (see [`RegisterSource`](crate::RegisterSource)). Payload for `MATCH`:
/// `u32 n · n × (u32 k · k × u32 pattern_id)`. Empty for `SHUTDOWN`.
pub const STATUS_OK: u8 = 0;
/// Request failed. Payload: `str message`.
pub const STATUS_ERROR: u8 = 1;
/// The admission queue is full — explicit backpressure, not an error.
/// Payload: `u32 retry_after_ms`. The work was **not** enqueued; resend
/// the identical request after the hinted delay.
pub const STATUS_RETRY: u8 = 2;

/// Upper bound on a single frame; a peer announcing more is treated as
/// a protocol violation rather than an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one frame from a raw payload slice (control messages; bulk
/// paths build the frame in place with [`PayloadWriter::frame`] and ship
/// it with [`send_frame`] to avoid the copy).
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = (payload.len() + 1) as u32;
    // One write per frame: splitting the header from the body would let
    // Nagle hold the body hostage to the peer's delayed ACK (~40 ms per
    // round trip on loopback), which is death by a thousand stalls for a
    // request/reply protocol.
    let mut frame = Vec::with_capacity(4 + 1 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(tag);
    frame.extend_from_slice(payload);
    send_frame(w, &frame)
}

/// Ships one pre-assembled frame (see [`PayloadWriter::frame`]) in a
/// single write.
pub fn send_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary (the
/// peer hung up between requests, the normal end of a connection).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; 5];
    let mut filled = 0;
    while filled < 5 {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "mid-frame EOF")),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("frame length {len}")));
    }
    let tag = header[4];
    // The payload lands exactly where the parser reads it — the tag was
    // consumed with the header, so no post-read shuffle of a potentially
    // multi-megabyte body.
    let mut body = vec![0u8; len - 1];
    r.read_exact(&mut body)?;
    Ok(Some((tag, body)))
}

/// Payload builder (the write half of the primitives). The buffer
/// reserves the frame header up front, so [`frame`](PayloadWriter::frame)
/// finalizes in place — bulk payloads are assembled exactly once.
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl Default for PayloadWriter {
    fn default() -> PayloadWriter {
        PayloadWriter::new()
    }
}

impl PayloadWriter {
    /// Starts an empty payload (with header space reserved).
    pub fn new() -> PayloadWriter {
        PayloadWriter { buf: vec![0u8; 5] }
    }

    /// Appends a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(b);
        self
    }

    /// The finished payload, without frame header (for tests and
    /// in-process parsing).
    pub fn finish(self) -> Vec<u8> {
        let mut buf = self.buf;
        buf.drain(..5);
        buf
    }

    /// Finalizes the payload into a complete wire frame tagged `tag`,
    /// filling the reserved header in place — no copy of the body.
    pub fn frame(self, tag: u8) -> Vec<u8> {
        let mut buf = self.buf;
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        buf[4] = tag;
        buf
    }
}

/// Payload parser (the read half). All reads are bounds-checked;
/// violations surface as `InvalidData` I/O errors.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Starts parsing `buf`.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn invalid(&self, what: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed payload at byte {}: {what}", self.pos),
        )
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.invalid("truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(self.invalid("string length exceeds payload"));
        }
        self.take(len)
    }

    /// Reads a length-prefixed byte string as its byte range within the
    /// payload — lets the caller keep the payload buffer and reference
    /// slices of it instead of copying each string out.
    pub fn bytes_range(&mut self) -> io::Result<std::ops::Range<usize>> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(self.invalid("string length exceeds payload"));
        }
        let start = self.pos;
        self.pos += len;
        Ok(start..self.pos)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> io::Result<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.invalid("not UTF-8"))
    }

    /// Fails unless the payload is fully consumed.
    pub fn finish(self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.invalid("trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_MATCH, b"payload").unwrap();
        write_frame(&mut wire, STATUS_OK, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((OP_MATCH, b"payload".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((STATUS_OK, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn torn_frames_and_hostile_lengths_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_MATCH, b"payload").unwrap();
        let mut torn = &wire[..wire.len() - 2];
        assert!(read_frame(&mut torn).is_err(), "mid-frame EOF");

        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.push(OP_MATCH);
        assert!(read_frame(&mut &huge[..]).is_err(), "length above MAX_FRAME_BYTES");

        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut &zero[..]).is_err(), "tagless frame");
    }

    #[test]
    fn payload_primitives_round_trip_and_fail_closed() {
        let payload =
            PayloadWriter::new().u32(7).bytes(b"tenant").u8(2).bytes(b"\x00\xFFraw").finish();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.string().unwrap(), "tenant");
        assert_eq!(r.u8().unwrap(), 2);
        assert_eq!(r.bytes().unwrap(), b"\x00\xFFraw");
        r.finish().unwrap();

        let mut r = PayloadReader::new(&payload);
        let _ = r.u32().unwrap();
        assert!(r.finish().is_err(), "trailing bytes are a violation");

        // A string length pointing past the payload is caught before any
        // allocation of that size.
        let bad = PayloadWriter::new().u32(u32::MAX).finish();
        assert!(PayloadReader::new(&bad).bytes().is_err());
    }
}
