//! Splitting the input text into per-thread chunks.
//!
//! Theorem 3 of the paper: the computation of an SFA can be decomposed at
//! *any* division of the input word, so the matcher simply cuts the text
//! into `p` contiguous, nearly equal chunks — exactly what the paper's
//! pthread implementation does with its static partitioning.
//!
//! The same splitter is applied a *second* time inside each worker when
//! the plan carries an interleave lane count
//! ([`ChunkPlan::lanes`](crate::pool::ChunkPlan::lanes) > 1): the
//! worker's chunk is cut into `L` sub-chunks that advance in lockstep
//! through one batched scan, hiding transition-table load latency
//! (scalar) or filling SIMD gather lanes.

/// Splits `input` into at most `chunks` contiguous slices of nearly equal
/// length (the first `len % chunks` slices are one byte longer).
///
/// Fewer slices are returned when the input is shorter than the requested
/// chunk count; an empty input yields a single empty slice so that callers
/// always have at least one unit of work. A `chunks` of `0` is treated as
/// `1` — the [crate-wide `0 ⇒ 1` clamp](crate) (see "The `0 ⇒ 1`
/// parallelism clamp" in the crate docs).
pub fn split_chunks(input: &[u8], chunks: usize) -> Vec<&[u8]> {
    let chunks = chunks.max(1);
    if input.is_empty() {
        return vec![input];
    }
    let count = chunks.min(input.len());
    let base = input.len() / count;
    let extra = input.len() % count;
    let mut out = Vec::with_capacity(count);
    let mut start = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        out.push(&input[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, input.len());
    out
}

/// Like [`split_chunks`] but returns `(offset, slice)` pairs.
pub fn split_chunks_with_offsets(input: &[u8], chunks: usize) -> Vec<(usize, &[u8])> {
    let mut offset = 0;
    split_chunks(input, chunks)
        .into_iter()
        .map(|chunk| {
            let entry = (offset, chunk);
            offset += chunk.len();
            entry
        })
        .collect()
}

/// Like [`split_chunks_with_offsets`], but nudges every interior chunk
/// boundary forward to sit just *after* the first likely-synchronizing
/// byte (per `is_sync`) within `window` bytes of the even split point.
///
/// Theorem 3 makes any split correct; this one is merely *faster* for the
/// convergence-guided speculative matcher: a chunk that begins right
/// after a synchronizing byte has a minimal entry set (see
/// `sfa_analysis::ConvergenceReport::is_synchronizing_byte`), so the
/// downstream worker simulates from almost nothing instead of from every
/// survivor. Boundaries never move past the following chunk's territory
/// (each nudge is capped one byte short of the next split point), so the
/// result is always at most `chunks` non-empty contiguous slices covering
/// the input exactly — the same contract as [`split_chunks`].
pub fn split_chunks_guided<F>(
    input: &[u8],
    chunks: usize,
    window: usize,
    is_sync: F,
) -> Vec<(usize, &[u8])>
where
    F: Fn(u8) -> bool,
{
    let even = split_chunks_with_offsets(input, chunks);
    if even.len() <= 1 {
        return even;
    }
    // Nudge each interior boundary: boundary b covers input[b - 1] as the
    // previous chunk's last byte, so searching j ∈ [b-1, …] for a sync
    // byte and cutting at j + 1 puts that byte *behind* the boundary.
    let mut bounds: Vec<usize> = Vec::with_capacity(even.len() + 1);
    bounds.push(0);
    for w in even.windows(2) {
        bounds.push(w[1].0);
    }
    bounds.push(input.len());
    for i in 1..bounds.len() - 1 {
        let b = bounds[i];
        let next = bounds[i + 1];
        // Keep the next chunk non-empty (≤ next - 2 ⇒ new boundary ≤
        // next - 1) and stay inside the input.
        let hi = (b - 1 + window).min(next.saturating_sub(2)).min(input.len() - 2);
        if hi < b - 1 {
            continue;
        }
        if let Some(offset) = input[b - 1..=hi].iter().position(|&byte| is_sync(byte)) {
            bounds[i] = b + offset;
        }
    }
    debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "boundaries stay strictly increasing");
    bounds.windows(2).map(|w| (w[0], &input[w[0]..w[1]])).collect()
}

/// Packs consecutive items into groups bounded by total size: each
/// returned range covers adjacent indices of `sizes` whose sum stays
/// within `max_bytes`. An item larger than `max_bytes` on its own gets a
/// singleton group (it is never split — callers that need to cut a single
/// oversized item use [`split_chunks`] on it instead). The ranges
/// partition `0..sizes.len()` in order; an empty `sizes` yields no
/// groups.
///
/// This is the batch dual of [`split_chunks`]: instead of cutting one
/// large input into per-worker chunks, it glues many small work items
/// into per-worker jobs big enough to amortize a pool hand-off. The two
/// compose with lane interleaving from opposite directions — a packed
/// group of small haystacks is *already* a ready-made batch for the
/// interleaved `run_from_many` scan (each item is its own lane), while a
/// worker holding one oversized item re-applies [`split_chunks`] to make
/// lanes out of it (see
/// [`Engine::plan_chunks_interleaved`](crate::pool::Engine::plan_chunks_interleaved)).
pub fn pack_by_bytes(sizes: &[usize], max_bytes: usize) -> Vec<std::ops::Range<usize>> {
    pack_by_bytes_lanes(sizes, max_bytes, 1)
}

/// [`pack_by_bytes`] with a lane-count constraint: a group is only closed
/// at a multiple of `lanes` items, so every group except possibly the
/// last carries full lane complements. Backends that interleave `lanes`
/// independent inputs per scan (the SIMD gather kernels walk
/// [`INTERLEAVE_LANES`] haystacks in lockstep) only engage the wide
/// kernel on full lane groups — byte-balanced groups that strand one or
/// two items at the tail of *every* group keep such batches on the scalar
/// remainder path. The byte bound becomes soft by up to `lanes − 1`
/// items: a group may overshoot `max_bytes` while filling out its lane
/// complement.
///
/// `lanes = 1` (or 0) is exactly [`pack_by_bytes`]; the ranges always
/// partition `0..sizes.len()` in order.
///
/// [`INTERLEAVE_LANES`]: sfa_core::dsfa::INTERLEAVE_LANES
pub fn pack_by_bytes_lanes(
    sizes: &[usize],
    max_bytes: usize,
    lanes: usize,
) -> Vec<std::ops::Range<usize>> {
    let lanes = lanes.max(1);
    let mut groups = Vec::new();
    let mut start = 0;
    let mut total = 0usize;
    for (i, &size) in sizes.iter().enumerate() {
        if i > start && (i - start) % lanes == 0 && total + size > max_bytes {
            groups.push(start..i);
            start = i;
            total = 0;
        }
        total += size;
    }
    if start < sizes.len() {
        groups.push(start..sizes.len());
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reassemble(chunks: &[&[u8]]) -> Vec<u8> {
        chunks.iter().flat_map(|c| c.iter().copied()).collect()
    }

    #[test]
    fn chunks_cover_input_exactly() {
        let input: Vec<u8> = (0..=255u8).collect();
        for p in [1usize, 2, 3, 7, 12, 100, 256, 1000] {
            let chunks = split_chunks(&input, p);
            assert_eq!(reassemble(&chunks), input, "p = {}", p);
            assert!(chunks.len() <= p);
            assert!(chunks.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let input = vec![0u8; 1003];
        let chunks = split_chunks(&input, 4);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![251, 251, 251, 250]);
    }

    #[test]
    fn empty_input_yields_single_empty_chunk() {
        let chunks = split_chunks(b"", 8);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
    }

    #[test]
    fn more_chunks_than_bytes() {
        let chunks = split_chunks(b"abc", 16);
        assert_eq!(chunks.len(), 3);
        assert_eq!(reassemble(&chunks), b"abc");
    }

    #[test]
    fn zero_chunks_treated_as_one() {
        let chunks = split_chunks(b"xyz", 0);
        assert_eq!(chunks, vec![&b"xyz"[..]]);
    }

    #[test]
    fn pack_by_bytes_partitions_in_order() {
        // Groups close when the next item would overflow the bound.
        let sizes = [100, 100, 100, 100, 100];
        assert_eq!(pack_by_bytes(&sizes, 250), vec![0..2, 2..4, 4..5]);
        // An oversized item gets its own group without splitting, and
        // never drags its neighbors past the bound.
        let sizes = [10, 5000, 10, 10];
        assert_eq!(pack_by_bytes(&sizes, 100), vec![0..1, 1..2, 2..4]);
        // One giant item alone.
        assert_eq!(pack_by_bytes(&[9999], 10), vec![0..1]);
        // Everything fits in one group.
        assert_eq!(pack_by_bytes(&[1, 2, 3], 100), vec![0..3]);
        // Zero-size items pack densely; empty input yields no groups.
        assert_eq!(pack_by_bytes(&[0, 0, 0], 0), vec![0..3]);
        assert_eq!(pack_by_bytes(&[], 100), Vec::<std::ops::Range<usize>>::new());
        // The groups always partition the index space exactly.
        for bound in [1, 7, 50, 1000] {
            let sizes = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
            let groups = pack_by_bytes(&sizes, bound);
            let mut covered = Vec::new();
            for g in &groups {
                covered.extend(g.clone());
            }
            assert_eq!(covered, (0..sizes.len()).collect::<Vec<_>>(), "bound {bound}");
        }
    }

    #[test]
    fn lane_packing_closes_groups_on_lane_multiples() {
        // With lanes = 1 the two functions are identical.
        let sizes = [100, 100, 100, 100, 100];
        assert_eq!(pack_by_bytes_lanes(&sizes, 250, 1), pack_by_bytes(&sizes, 250));

        // lanes = 4: the byte bound (250) would close after two items,
        // but the group only closes at the next multiple of 4.
        assert_eq!(pack_by_bytes_lanes(&sizes, 250, 4), vec![0..4, 4..5]);

        // Exactly-full lane groups close on the bound like before.
        let sizes = [100; 8];
        assert_eq!(pack_by_bytes_lanes(&sizes, 400, 4), vec![0..4, 4..8]);

        // lanes = 0 is clamped to 1, and the partition property holds for
        // every (bound, lanes) combination.
        let sizes = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        assert_eq!(pack_by_bytes_lanes(&sizes, 7, 0), pack_by_bytes(&sizes, 7));
        for bound in [1, 7, 50, 1000] {
            for lanes in [1, 2, 4, 8] {
                let groups = pack_by_bytes_lanes(&sizes, bound, lanes);
                let mut covered = Vec::new();
                for g in &groups {
                    covered.extend(g.clone());
                }
                // Every group but the last is a full lane complement.
                for g in &groups[..groups.len() - 1] {
                    assert_eq!(g.len() % lanes, 0, "bound {bound} lanes {lanes} group {g:?}");
                }
                assert_eq!(covered, (0..sizes.len()).collect::<Vec<_>>(), "bound {bound}");
            }
        }
    }

    #[test]
    fn guided_split_nudges_boundaries_after_sync_bytes() {
        // Sync byte = b'.'. The even 2-way split of 10 bytes cuts at 5;
        // the '.' at index 6 is within the window, so the boundary moves
        // to 7 (just past it).
        let input = b"abcabc.abc";
        let got = split_chunks_guided(input, 2, 8, |b| b == b'.');
        assert_eq!(got, vec![(0, &b"abcabc."[..]), (7, &b"abc"[..])]);
        // No sync byte in the window: the even split stands.
        let got = split_chunks_guided(input, 2, 8, |b| b == b'!');
        assert_eq!(got, vec![(0, &b"abcab"[..]), (5, &b"c.abc"[..])]);
        // A sync byte right past the even split moves the cut one byte.
        let got = split_chunks_guided(b"abcde.fgh", 2, 1, |b| b == b'.');
        assert_eq!(got[1].0, 6);
    }

    #[test]
    fn guided_split_keeps_the_split_contract() {
        let input: Vec<u8> = (0..=255u8).cycle().take(1003).collect();
        for p in [1usize, 2, 3, 7, 12, 100, 1000, 1003, 5000] {
            for window in [0usize, 1, 7, 64, 10_000] {
                // An adversarial predicate that fires on most bytes.
                let got = split_chunks_guided(&input, p, window, |b| b % 3 == 0);
                let reassembled: Vec<u8> =
                    got.iter().flat_map(|(_, c)| c.iter().copied()).collect();
                assert_eq!(reassembled, input, "p={p} window={window}");
                assert!(got.len() <= p.max(1));
                assert!(got.iter().all(|(_, c)| !c.is_empty()));
                let mut offset = 0;
                for (o, c) in &got {
                    assert_eq!(*o, offset);
                    offset += c.len();
                }
            }
        }
        // Degenerate inputs fall back to the plain splitter.
        assert_eq!(split_chunks_guided(b"", 4, 8, |_| true), vec![(0, &b""[..])]);
        assert_eq!(split_chunks_guided(b"x", 4, 8, |_| true), vec![(0, &b"x"[..])]);
    }

    #[test]
    fn offsets_are_cumulative() {
        let input = b"abcdefghij";
        let chunks = split_chunks_with_offsets(input, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], (0, &b"abcd"[..]));
        assert_eq!(chunks[1], (4, &b"efg"[..]));
        assert_eq!(chunks[2], (7, &b"hij"[..]));
    }
}
