//! Splitting the input text into per-thread chunks.
//!
//! Theorem 3 of the paper: the computation of an SFA can be decomposed at
//! *any* division of the input word, so the matcher simply cuts the text
//! into `p` contiguous, nearly equal chunks — exactly what the paper's
//! pthread implementation does with its static partitioning.

/// Splits `input` into at most `chunks` contiguous slices of nearly equal
/// length (the first `len % chunks` slices are one byte longer).
///
/// Fewer slices are returned when the input is shorter than the requested
/// chunk count; an empty input yields a single empty slice so that callers
/// always have at least one unit of work. A `chunks` of `0` is treated as
/// `1` — the [crate-wide `0 ⇒ 1` clamp](crate) (see "The `0 ⇒ 1`
/// parallelism clamp" in the crate docs).
pub fn split_chunks(input: &[u8], chunks: usize) -> Vec<&[u8]> {
    let chunks = chunks.max(1);
    if input.is_empty() {
        return vec![input];
    }
    let count = chunks.min(input.len());
    let base = input.len() / count;
    let extra = input.len() % count;
    let mut out = Vec::with_capacity(count);
    let mut start = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        out.push(&input[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, input.len());
    out
}

/// Like [`split_chunks`] but returns `(offset, slice)` pairs.
pub fn split_chunks_with_offsets(input: &[u8], chunks: usize) -> Vec<(usize, &[u8])> {
    let mut offset = 0;
    split_chunks(input, chunks)
        .into_iter()
        .map(|chunk| {
            let entry = (offset, chunk);
            offset += chunk.len();
            entry
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reassemble(chunks: &[&[u8]]) -> Vec<u8> {
        chunks.iter().flat_map(|c| c.iter().copied()).collect()
    }

    #[test]
    fn chunks_cover_input_exactly() {
        let input: Vec<u8> = (0..=255u8).collect();
        for p in [1usize, 2, 3, 7, 12, 100, 256, 1000] {
            let chunks = split_chunks(&input, p);
            assert_eq!(reassemble(&chunks), input, "p = {}", p);
            assert!(chunks.len() <= p);
            assert!(chunks.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let input = vec![0u8; 1003];
        let chunks = split_chunks(&input, 4);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![251, 251, 251, 250]);
    }

    #[test]
    fn empty_input_yields_single_empty_chunk() {
        let chunks = split_chunks(b"", 8);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
    }

    #[test]
    fn more_chunks_than_bytes() {
        let chunks = split_chunks(b"abc", 16);
        assert_eq!(chunks.len(), 3);
        assert_eq!(reassemble(&chunks), b"abc");
    }

    #[test]
    fn zero_chunks_treated_as_one() {
        let chunks = split_chunks(b"xyz", 0);
        assert_eq!(chunks, vec![&b"xyz"[..]]);
    }

    #[test]
    fn offsets_are_cumulative() {
        let input = b"abcdefghij";
        let chunks = split_chunks_with_offsets(input, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], (0, &b"abcd"[..]));
        assert_eq!(chunks[1], (4, &b"efg"[..]));
        assert_eq!(chunks[2], (7, &b"hij"[..]));
    }
}
