//! The unified match-strategy selector.
//!
//! Every way this crate can execute a match — Algorithm 2's sequential
//! scan, Algorithm 5's chunk-parallel SFA run, Algorithm 3's speculative
//! baseline — is one value of [`Strategy`], consumed by the single
//! [`Regex::run`](crate::Regex::run) core. `is_match`, the batch APIs and
//! [`RegexSet::matches`](crate::RegexSet::matches) all route through it,
//! so a new execution scenario means a new `Strategy` variant, not a new
//! `is_match_*` method for every verdict shape.

use crate::Reduction;

/// How a single match call executes. See the [module docs](self).
///
/// The per-call knobs (`threads`, `reduction`) live *in* the variant, so
/// one composable value replaces the former
/// `is_match_parallel(threads, reduction)`-style parameter soup;
/// [`Strategy::Auto`] defers to the knobs configured on the
/// [`RegexBuilder`](crate::RegexBuilder).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Use the builder-configured defaults plus the offline convergence
    /// analysis: sequential when the regex was built with one thread;
    /// otherwise convergence-guided speculative matching when the
    /// automaton is
    /// [`Synchronizing`](crate::ConvergenceClass::Synchronizing) (entry
    /// sets collapse, so speculation stops paying `O(|Q|)` per byte) and
    /// parallel SFA matching for everything else. This is what
    /// [`Regex::is_match`](crate::Regex::is_match) does; the decision is
    /// observable via [`Regex::auto_strategy`](crate::Regex::auto_strategy).
    #[default]
    Auto,
    /// **Algorithm 2**: the sequential DFA scan on the calling thread.
    Sequential,
    /// **Algorithm 5**: data-parallel SFA matching. `threads` caps the
    /// chunk count (further capped at the engine's worker count; the
    /// crate-wide [`0 ⇒ 1` clamp](crate) applies) and `reduction` picks
    /// how the per-chunk states are folded.
    Parallel {
        /// Maximum number of chunks the input is cut into.
        threads: usize,
        /// How the per-chunk partial results are combined.
        reduction: Reduction,
    },
    /// **Algorithm 3**, convergence-guided: speculative DFA simulation
    /// restricted to the analysis entry sets, with guided chunk
    /// boundaries and in-chunk state compaction (see
    /// [`SpeculativeDfaMatcher::with_analysis`](crate::SpeculativeDfaMatcher::with_analysis)).
    /// The prior-art all-states baseline — `O(|D|)` per byte — remains
    /// available by constructing a bare
    /// [`SpeculativeDfaMatcher`](crate::SpeculativeDfaMatcher) directly.
    Speculative {
        /// Maximum number of chunks the input is cut into.
        threads: usize,
        /// How the per-chunk simulations are combined.
        reduction: Reduction,
    },
}

impl Strategy {
    /// Parallel SFA matching with the [`Reduction::Sequential`] fold —
    /// the common case, as a shorthand.
    pub fn parallel(threads: usize) -> Strategy {
        Strategy::Parallel { threads, reduction: Reduction::Sequential }
    }

    /// Speculative DFA matching with the [`Reduction::Sequential`] fold.
    pub fn speculative(threads: usize) -> Strategy {
        Strategy::Speculative { threads, reduction: Reduction::Sequential }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_auto() {
        assert_eq!(Strategy::default(), Strategy::Auto);
    }

    #[test]
    fn shorthands_use_sequential_reduction() {
        assert_eq!(
            Strategy::parallel(4),
            Strategy::Parallel { threads: 4, reduction: Reduction::Sequential }
        );
        assert_eq!(
            Strategy::speculative(2),
            Strategy::Speculative { threads: 2, reduction: Reduction::Sequential }
        );
    }
}
