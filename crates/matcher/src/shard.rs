//! Auto-sharding for [`RegexSet`](crate::RegexSet): budget-bounded
//! shards instead of one exponentially-growing product automaton.
//!
//! Tracking which rule of a `Contains`-mode set matched makes the
//! combined DFA remember *which* rules already hit — and since every
//! hit-combination of independent rules is reachable, the product DFA
//! grows with up to `2^rules` (the ids_scan ruleset: 787 states untracked
//! → 5 668 tracked, for only four rules). No budget on the union can fix
//! that; the fix is to stop building one union.
//!
//! The packer here is a greedy next-fit bin-packer driven by the real
//! cost function: it extends the current shard one rule at a time,
//! re-running the budget-capped subset construction as the fit test, and
//! closes the shard the moment a candidate rule would push the
//! determinized DFA past the per-shard state budget. The last successful
//! trial DFA is reused as the closed shard's DFA, so nothing determinizes
//! twice. A rule that busts the budget *alone* becomes a singleton
//! fallback shard compiled under the builder's full
//! [`max_dfa_states`](crate::RegexBuilder::max_dfa_states) limit — one
//! pathological rule degrades only itself, not its neighbors' packing.
//!
//! After packing, every rule's AST is run through
//! [required-literal clause extraction](sfa_regex_syntax::required_literal_clauses):
//! a conjunction of any-of literal sets, every clause of which must be
//! satisfied for the rule to match (`login.{0,64}passwd` requires *both*
//! tokens). Shards whose *every* member yields a clause list are
//! **gated** behind one shared [`Prefilter`] over the distinct literals:
//! a gated shard's automaton runs only on haystacks where some member
//! rule has at least one literal of each of its clauses present.
//! Extraction runs on the raw (pre-wrap) AST, which is sound in both
//! match modes — a `Contains` match contains a word of the raw pattern,
//! which satisfies every required clause.

use crate::chunk::pack_by_bytes_lanes;
use crate::error::Error;
use crate::pool::MIN_POOL_CHUNK_BYTES;
use crate::prefilter::Prefilter;
use crate::regex::{set_label, union_nfa, Regex, RegexBuilder};
use crate::strategy::Strategy;
use sfa_automata::{determinize, CompileError, Dfa, DfaConfig, PatternId, PatternSet, StateId};
use sfa_core::{SfaStateId, SizeReport, StateIdRepr};
use sfa_regex_syntax::literal::required_literal_clauses;
use sfa_regex_syntax::Ast;
use std::collections::HashMap;

/// One shard of a sharded [`RegexSet`](crate::RegexSet): a compiled
/// sub-automaton covering a contiguous (in packing order) group of the
/// set's distinct rules. Returned by
/// [`RegexSet::shards`](crate::RegexSet::shards).
#[derive(Clone, Debug)]
pub struct Shard {
    regex: Regex,
    members: Vec<PatternId>,
    gated: bool,
    fallback: bool,
}

impl Shard {
    /// The compiled automaton of this shard's rules. Verdict index `i`
    /// of its [`matches`](Regex::matches) is rule `members()[i]` of the
    /// owning set.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The rules in this shard, as indices into the owning set's
    /// deduplicated pattern universe (equal to the set's pattern indices
    /// whenever the set has no duplicate patterns).
    pub fn members(&self) -> &[PatternId] {
        &self.members
    }

    /// The number of rules in this shard.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// A shard always has at least one rule; this exists for clippy's
    /// `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether this shard sits behind the set's literal [`Prefilter`]:
    /// every member rule proved a required-literal clause list, so the
    /// shard's automaton is only consulted on haystacks where some member
    /// has a literal of *each* of its clauses present (`login.{0,64}passwd`
    /// needs both tokens before its shard runs).
    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Whether this is a singleton fallback shard: the rule's own DFA
    /// exceeded the per-shard budget, so it was compiled alone under the
    /// builder's full [`max_dfa_states`](crate::RegexBuilder::max_dfa_states)
    /// limit and may exceed the budget.
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// The packed state-id width of this shard's transition tables
    /// ([`StateIdRepr::U32`] when the shard fell back to the lazy
    /// backend). Budget-bounded shards are exactly what makes packing
    /// pay: a few thousand determinized states keep `|S_d|` under
    /// 65 536, so sharded sets typically scan `u16` (often `u8`) tables
    /// throughout — the set-wide maximum is
    /// [`SizeReport::state_id_bytes`](sfa_core::SizeReport::state_id_bytes).
    pub fn repr(&self) -> StateIdRepr {
        self.regex.sfa().repr()
    }
}

/// The sharded compilation of a [`RegexSet`](crate::RegexSet): the
/// shards, the shared prefilter gating the literal-only ones, and the
/// merge logic that makes the per-shard verdicts look like one automaton.
/// All verdicts are over the set's deduplicated pattern universe; the
/// owning `RegexSet` lifts them to caller indices.
#[derive(Clone, Debug)]
pub(crate) struct ShardedSet {
    pub(crate) shards: Vec<Shard>,
    pub(crate) prefilter: Option<Prefilter>,
    pub(crate) budget: usize,
    pub(crate) unique: usize,
    pub(crate) tracked: bool,
    /// Per deduplicated rule, its required-literal clauses as prefilter
    /// tags: the rule can only match a haystack where every inner `Vec`
    /// has at least one marked tag. `None` for rules without a provable
    /// clause list (their shards are ungated, so it is never consulted).
    rule_reqs: Vec<Option<Vec<Vec<u32>>>>,
    /// Per shard, whether it runs unconditionally — the `!gated` template
    /// the per-haystack activity vector starts from.
    ungated: Vec<bool>,
}

impl ShardedSet {
    /// Packs and compiles `asts` (the deduplicated rules, with `texts`
    /// their pattern strings) into budget-bounded shards; see the
    /// [module docs](self) for the algorithm.
    pub(crate) fn build(
        builder: &RegexBuilder,
        texts: &[String],
        asts: &[Ast],
        budget: usize,
    ) -> Result<ShardedSet, CompileError> {
        debug_assert_eq!(texts.len(), asts.len());
        // The fit test: determinize under the shard budget (never above
        // the builder's own DFA limit).
        let trial_cfg =
            DfaConfig { max_states: budget.min(builder.dfa.max_states), ..builder.dfa.clone() };
        // Packing order: biggest solo DFA first. Next-fit is sensitive to
        // arrival order — a large rule arriving at a nearly-full shard
        // closes it with most of the budget unused. Sorting by each rule's
        // own budget-capped trial size (the classic next-fit-decreasing
        // heuristic) lets big rules claim fresh shards and small rules
        // backfill the remainder, which packs the same ruleset into
        // measurably fewer shards. Rules that bust the budget alone sort
        // first and take their fallback singletons immediately.
        let mut solo_states: Vec<usize> = Vec::with_capacity(asts.len());
        for ast in asts {
            let (wrapped, _) = builder.wrap_branches(vec![ast.clone()]);
            let nfa = union_nfa(&wrapped)?;
            match determinize(&nfa, &trial_cfg) {
                Ok(dfa) => solo_states.push(dfa.num_states()),
                Err(CompileError::TooManyStates { .. }) => solo_states.push(usize::MAX),
                Err(e) => return Err(e),
            }
        }
        let mut order: Vec<usize> = (0..asts.len()).collect();
        // Stable sort: equal-size rules keep their user-given order.
        order.sort_by_key(|&u| std::cmp::Reverse(solo_states[u]));
        let mut shards: Vec<Shard> = Vec::new();
        let mut open: Vec<PatternId> = Vec::new();
        let mut open_good: Option<(usize, Dfa)> = None;
        let mut pos = 0;
        while pos < order.len() {
            let i = order[pos];
            let mut candidate = open.clone();
            candidate.push(i as PatternId);
            let branches: Vec<Ast> = candidate.iter().map(|&u| asts[u as usize].clone()).collect();
            let (wrapped, _) = builder.wrap_branches(branches);
            let nfa = union_nfa(&wrapped)?;
            match determinize(&nfa, &trial_cfg) {
                Ok(dfa) => {
                    open = candidate;
                    open_good = Some((nfa.num_states(), dfa));
                    pos += 1;
                }
                Err(CompileError::TooManyStates { .. }) if open.is_empty() => {
                    // The rule busts the budget alone: singleton fallback
                    // under the builder's full limits.
                    let (wrapped, _) = builder.wrap_branches(vec![asts[i].clone()]);
                    let nfa = union_nfa(&wrapped)?;
                    let dfa = determinize(&nfa, &builder.dfa)?;
                    let regex =
                        builder.finish_regex(texts[i].clone(), nfa.num_states(), &dfa, false)?;
                    shards.push(Shard {
                        regex,
                        members: vec![i as PatternId],
                        gated: false,
                        fallback: true,
                    });
                    pos += 1;
                }
                Err(CompileError::TooManyStates { .. }) => {
                    // Close the open shard on its last good trial; rule i
                    // retries against a fresh shard (pos not advanced).
                    let (nfa_states, dfa) = open_good.take().expect("open shard had a good trial");
                    shards.push(close_shard(
                        builder,
                        texts,
                        std::mem::take(&mut open),
                        nfa_states,
                        &dfa,
                    )?);
                }
                Err(e) => return Err(e),
            }
        }
        if let Some((nfa_states, dfa)) = open_good.take() {
            if !open.is_empty() {
                shards.push(close_shard(builder, texts, open, nfa_states, &dfa)?);
            }
        }

        // Gate shards whose every rule proves a required-literal clause
        // list; one prefilter serves them all, tagged by distinct literal
        // (shared literals share a tag).
        let clauses: Vec<Option<Vec<Vec<Vec<u8>>>>> =
            asts.iter().map(required_literal_clauses).collect();
        let mut tag_of: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut pairs: Vec<(Vec<u8>, u32)> = Vec::new();
        let mut rule_reqs: Vec<Option<Vec<Vec<u32>>>> = vec![None; asts.len()];
        for shard in shards.iter_mut() {
            if shard.members.iter().any(|&u| clauses[u as usize].is_none()) {
                continue;
            }
            shard.gated = true;
            for &u in &shard.members {
                let reqs = clauses[u as usize]
                    .as_ref()
                    .expect("checked above")
                    .iter()
                    .map(|clause| {
                        clause
                            .iter()
                            .map(|lit| {
                                *tag_of.entry(lit.clone()).or_insert_with(|| {
                                    pairs.push((lit.clone(), pairs.len() as u32));
                                    (pairs.len() - 1) as u32
                                })
                            })
                            .collect()
                    })
                    .collect();
                rule_reqs[u as usize] = Some(reqs);
            }
        }
        let prefilter = if pairs.is_empty() { None } else { Some(Prefilter::new(pairs)) };
        let ungated: Vec<bool> = shards.iter().map(|s| !s.gated).collect();

        Ok(ShardedSet {
            shards,
            prefilter,
            budget,
            unique: asts.len(),
            tracked: builder.track_patterns,
            rule_reqs,
            ungated,
        })
    }

    /// `Err(PatternTrackingDisabled)` when the shards were compiled
    /// collapsed (see [`RegexBuilder::track_patterns`](crate::RegexBuilder::track_patterns)).
    pub(crate) fn check_tracking(&self) -> Result<(), Error> {
        if self.tracked {
            Ok(())
        } else {
            Err(Error::PatternTrackingDisabled)
        }
    }

    /// The prefilter's tag universe (0 without a prefilter) — the scratch
    /// size [`Self::active_shards_into`] needs for its literal marks.
    fn tag_count(&self) -> usize {
        self.prefilter.as_ref().map_or(0, Prefilter::tag_count)
    }

    /// Computes into `active` which shards must run on `haystack`:
    /// ungated shards always, gated shards only when some member rule has
    /// every required-literal clause satisfied. `marks` is reusable
    /// scratch of at least [`Self::tag_count`] bools (overwritten here);
    /// batch callers pass the same buffers for every haystack so the
    /// per-haystack cost is one prefilter scan and zero allocations.
    fn active_shards_into(&self, haystack: &[u8], marks: &mut [bool], active: &mut Vec<bool>) {
        active.clear();
        active.extend_from_slice(&self.ungated);
        let Some(prefilter) = &self.prefilter else { return };
        marks.fill(false);
        if prefilter.scan_into(haystack, marks) == 0 {
            // No literal occurs at all: no gated shard can activate.
            return;
        }
        for (a, shard) in active.iter_mut().zip(&self.shards) {
            if !*a {
                *a = shard.members.iter().any(|&u| {
                    self.rule_reqs[u as usize]
                        .as_ref()
                        .expect("gated shards' members all have clauses")
                        .iter()
                        .all(|clause| clause.iter().any(|&t| marks[t as usize]))
                });
            }
        }
    }

    /// One-shot [`Self::active_shards_into`] for the single-haystack
    /// entry points.
    fn active_shards(&self, haystack: &[u8]) -> Vec<bool> {
        let mut marks = vec![false; self.tag_count()];
        let mut active = Vec::with_capacity(self.shards.len());
        self.active_shards_into(haystack, &mut marks, &mut active);
        active
    }

    /// Any-match over the active shards, earliest hit wins.
    pub(crate) fn is_match(&self, haystack: &[u8]) -> bool {
        self.active_shards(haystack)
            .into_iter()
            .zip(&self.shards)
            .any(|(active, shard)| active && shard.regex.is_match(haystack))
    }

    /// Per-rule verdict over the deduplicated universe: every active
    /// shard's verdict, scattered through its member map. Skipped gated
    /// shards contribute nothing — sound, because without a required
    /// literal in the haystack none of their rules can match.
    pub(crate) fn matches_with(
        &self,
        haystack: &[u8],
        strategy: Strategy,
    ) -> Result<PatternSet, Error> {
        self.check_tracking()?;
        let active = self.active_shards(haystack);
        let mut out = PatternSet::new(self.unique);
        for (shard, active) in self.shards.iter().zip(active) {
            if !active {
                continue;
            }
            let local = shard.regex.try_matches_with(haystack, strategy)?;
            for hit in local.iter() {
                out.insert(shard.members[hit]);
            }
        }
        Ok(out)
    }

    /// One prefilter pass per haystack, flattened: bit `i * shards + sid`
    /// says shard `sid` must run on haystack `i`. A single allocation for
    /// the whole batch (plus reused scan scratch).
    fn batch_actives(&self, haystacks: &[&[u8]]) -> Vec<bool> {
        let ns = self.shards.len();
        let mut actives = vec![false; haystacks.len() * ns];
        let mut marks = vec![false; self.tag_count()];
        let mut active = Vec::with_capacity(ns);
        for (i, h) in haystacks.iter().enumerate() {
            self.active_shards_into(h, &mut marks, &mut active);
            actives[i * ns..(i + 1) * ns].copy_from_slice(&active);
        }
        actives
    }

    /// Any-match for a batch: each shard sees only the haystacks that are
    /// still undecided *and* active for it, as one sub-batch.
    pub(crate) fn match_batch(&self, haystacks: &[&[u8]]) -> Vec<bool> {
        let ns = self.shards.len();
        let actives = self.batch_actives(haystacks);
        let mut out = vec![false; haystacks.len()];
        for (sid, shard) in self.shards.iter().enumerate() {
            let idxs: Vec<usize> =
                (0..haystacks.len()).filter(|&i| actives[i * ns + sid] && !out[i]).collect();
            if idxs.is_empty() {
                continue;
            }
            let subs: Vec<&[u8]> = idxs.iter().map(|&i| haystacks[i]).collect();
            for (&i, hit) in idxs.iter().zip(shard.regex.is_match_batch(&subs)) {
                out[i] |= hit;
            }
        }
        out
    }

    /// Per-rule verdicts for a batch, over the deduplicated universe.
    ///
    /// The whole cross product of active shards × haystacks is submitted
    /// as **one** scoped engine batch: every (shard, haystack-group) pair
    /// becomes a job, and all jobs from all shards drain through the pool
    /// together. The per-shard sequential loop this replaces paid one
    /// pool hand-off per shard and left workers idle whenever one shard's
    /// sub-batch was smaller than the pool — with hundreds of shards the
    /// hand-offs dominated. Groups are byte-bounded (consecutive active
    /// haystacks up to [`MIN_POOL_CHUNK_BYTES`]-scaled job sizes, an
    /// oversized haystack alone in its own job) and closed only on full
    /// lane complements of the shard backend's
    /// [`preferred_lanes`](sfa_core::SfaBackend::preferred_lanes), so job
    /// granularity is balanced regardless of haystack skew *and* the
    /// interleaved kernel runs wide on every group.
    ///
    /// Inside a job the haystacks are scanned with
    /// [`SfaBackend::run_from_many`], which walks [`INTERLEAVE_LANES`]
    /// independent inputs in lockstep on eager backends — the
    /// cache-latency-hiding path the packed tables were built for.
    ///
    /// [`MIN_POOL_CHUNK_BYTES`]: crate::pool::MIN_POOL_CHUNK_BYTES
    /// [`INTERLEAVE_LANES`]: sfa_core::dsfa::INTERLEAVE_LANES
    /// [`SfaBackend::run_from_many`]: sfa_core::SfaBackend::run_from_many
    pub(crate) fn matches_batch(&self, haystacks: &[&[u8]]) -> Result<Vec<PatternSet>, Error> {
        self.check_tracking()?;
        let ns = self.shards.len();
        let actives = self.batch_actives(haystacks);
        let mut out: Vec<PatternSet> =
            (0..haystacks.len()).map(|_| PatternSet::new(self.unique)).collect();
        if ns == 0 || haystacks.is_empty() {
            return Ok(out);
        }
        let engine = self.shards[0].regex.engine().clone();
        // One job = one shard × one byte-bounded group of its active
        // haystacks. Total bytes decide whether the pool is worth it.
        let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut total = 0usize;
        for sid in 0..ns {
            let idxs: Vec<usize> =
                (0..haystacks.len()).filter(|&i| actives[i * ns + sid]).collect();
            if idxs.is_empty() {
                continue;
            }
            let sizes: Vec<usize> = idxs.iter().map(|&i| haystacks[i].len()).collect();
            total += sizes.iter().sum::<usize>();
            // Close groups only on full lane complements so the shard's
            // interleaved kernel (the AVX2 gather path under `simd`) runs
            // wide on every group instead of paying a scalar remainder
            // per group (see [`pack_by_bytes_lanes`]).
            let lanes = self.shards[sid].regex.sfa().preferred_lanes();
            for range in pack_by_bytes_lanes(&sizes, MIN_POOL_CHUNK_BYTES, lanes) {
                jobs.push((sid, idxs[range].to_vec()));
            }
        }
        let parallel = engine.workers() > 1 && total >= MIN_POOL_CHUNK_BYTES;
        let scanned: Vec<(usize, Vec<usize>, Vec<StateId>)> =
            engine.map_chunks(jobs, parallel, |_, (sid, idxs)| {
                let backend = self.shards[sid].regex.sfa();
                let init = backend.initial();
                let scan: Vec<(SfaStateId, &[u8])> =
                    idxs.iter().map(|&i| (init, haystacks[i])).collect();
                let finals = backend
                    .run_from_many(&scan)
                    .into_iter()
                    .map(|f| backend.apply(f, backend.dfa_start()))
                    .collect();
                (sid, idxs, finals)
            });
        for (sid, idxs, finals) in scanned {
            let shard = &self.shards[sid];
            for (&i, q) in idxs.iter().zip(finals) {
                for hit in shard.regex.dfa().accept_set(q).iter() {
                    out[i].insert(shard.members[hit as usize]);
                }
            }
        }
        Ok(out)
    }

    /// The combined size report: per-shard sums plus the shard count and
    /// the largest per-shard DFA (see [`SizeReport::combine`]).
    pub(crate) fn size_report(&self) -> SizeReport {
        let reports: Vec<SizeReport> = self.shards.iter().map(|s| s.regex.size_report()).collect();
        SizeReport::combine(&reports)
    }
}

/// Compiles a closed shard from its last successful trial DFA.
fn close_shard(
    builder: &RegexBuilder,
    texts: &[String],
    members: Vec<PatternId>,
    nfa_states: usize,
    dfa: &Dfa,
) -> Result<Shard, CompileError> {
    let member_texts: Vec<String> = members.iter().map(|&u| texts[u as usize].clone()).collect();
    let collapsed = !builder.track_patterns && members.len() > 1;
    let regex = builder.finish_regex(set_label(&member_texts), nfa_states, dfa, collapsed)?;
    Ok(Shard { regex, members, gated: false, fallback: false })
}

#[cfg(test)]
mod tests {
    use crate::regex::{BackendChoice, MatchMode, Regex, RegexSet};
    use crate::Error;

    fn builder() -> crate::RegexBuilder {
        // The caps keep the (deliberately mis-sized) combined automata in
        // these tests cheap to build: overflowing eager SFAs fall back to
        // the lazy backend instead of materializing huge tables.
        Regex::builder()
            .mode(MatchMode::Contains)
            .backend(BackendChoice::Auto)
            .max_dfa_states(50_000)
            .max_sfa_states(2_000)
    }

    const RULES: [&str; 6] = [
        "attack[0-9]{2}",
        "exploit[a-z]{2}",
        "(?i)etc/passwd",
        "overflow(ed)?",
        "payload=[a-f0-9]{4,16}",
        "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}",
    ];

    /// A subset of [`RULES`] whose *tracked product* automaton stays
    /// small enough to build as the unsharded reference in debug tests.
    const AGREE_RULES: [&str; 4] =
        ["attack[0-9]{2}", "exploit[a-z]{2}", "(?i)etc/passwd", "overflow(ed)?"];

    #[test]
    fn tiny_budget_forces_many_shards_same_verdicts() {
        let unsharded = RegexSet::new(AGREE_RULES, &builder()).unwrap();
        let sharded = RegexSet::new(AGREE_RULES, &builder().shard_state_budget(64)).unwrap();
        assert!(sharded.is_sharded());
        assert!(!unsharded.is_sharded());
        assert!(sharded.shards().len() > 1, "64 states cannot hold all four rules");
        assert_eq!(sharded.shard_state_budget(), Some(64));
        // Every rule lives in exactly one shard.
        let mut seen: Vec<u32> =
            sharded.shards().iter().flat_map(|s| s.members()).copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..AGREE_RULES.len() as u32).collect::<Vec<_>>());
        // Non-fallback shards respect the budget.
        for shard in sharded.shards() {
            if !shard.is_fallback() {
                assert!(shard.regex().dfa().num_states() <= 64);
            }
        }
        for hay in [
            &b"GET /attack42 HTTP/1.1"[..],
            b"exploitok and ETC/PASSWD",
            b"overflowed",
            b"benign line",
            b"",
        ] {
            assert_eq!(sharded.matches(hay), unsharded.matches(hay), "{hay:?}");
            assert_eq!(sharded.is_match(hay), unsharded.is_match(hay), "{hay:?}");
        }
        let hays: Vec<&[u8]> = vec![b"attack77", b"nothing", b"overflowed exploitme"];
        assert_eq!(sharded.matches_batch(&hays), unsharded.matches_batch(&hays));
        assert_eq!(sharded.match_batch(&hays), unsharded.match_batch(&hays));
    }

    #[test]
    fn generous_budget_keeps_one_shard() {
        let sharded = RegexSet::new(
            ["attack[0-9]{2}", "exploit[a-z]{2}"],
            &builder().shard_state_budget(100_000),
        )
        .unwrap();
        assert_eq!(sharded.shards().len(), 1);
        // Members are in packing order (largest solo DFA first), not rule
        // order; both rules still land in the one shard.
        let mut members = sharded.shards()[0].members().to_vec();
        members.sort_unstable();
        assert_eq!(members, &[0, 1]);
        assert!(sharded.matches(b"attack42 exploitok").iter().eq([0, 1]));
    }

    #[test]
    fn pathological_rule_gets_a_fallback_singleton() {
        // The bounded-gap rule needs > 200 DFA states on its own (the
        // counter alone is 200 wide); under a 150-state budget it must
        // become a fallback shard while the small rules still pack.
        let rules = ["attack[0-9]{2}", "select.{0,200}from", "exploit[a-z]{2}"];
        let sharded = RegexSet::new(rules, &builder().shard_state_budget(150)).unwrap();
        let fallbacks: Vec<_> = sharded.shards().iter().filter(|s| s.is_fallback()).collect();
        assert_eq!(fallbacks.len(), 1);
        assert_eq!(fallbacks[0].members(), &[1]);
        assert!(fallbacks[0].regex().dfa().num_states() > 150);
        let m = sharded.matches(b"u=select name, pass from users");
        assert!(m.matched(1) && !m.matched(0) && !m.matched(2));
    }

    #[test]
    fn prefilter_gates_literal_shards_only() {
        let sharded = RegexSet::new(RULES, &builder().shard_state_budget(64)).unwrap();
        // Rules 0–4 all have required literals; rule 5 (dotted digits)
        // has none, so its shard must stay ungated.
        let prefilter = sharded.prefilter().expect("literal rules gate their shards");
        assert!(prefilter.literal_count() > 0);
        for shard in sharded.shards() {
            let has_ip_rule = shard.members().contains(&5);
            assert_eq!(!shard.is_gated(), has_ip_rule, "members {:?}", shard.members());
        }
        // A haystack matching only the literal-free rule: the gated
        // shards are skipped, the verdict still complete.
        let m = sharded.matches(b"GET / from 192.168.0.1");
        assert!(m.iter().eq([5]));
    }

    #[test]
    fn proximity_rules_gate_on_both_tokens() {
        // `login.{0,32}passwd` proves two clauses: `login` AND `passwd`.
        // Its shard must stay inactive when only one token occurs — the
        // conjunctive gate is what keeps trigger-happy first tokens from
        // waking the expensive bounded-gap automaton.
        let rules = ["login.{0,32}passwd", "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"];
        let set = RegexSet::new(rules, &builder().shard_state_budget(64)).unwrap();
        let crate::regex::SetInner::Sharded(sharded) = set.inner() else {
            panic!("a shard budget was set");
        };
        let sid =
            |rule: u32| sharded.shards.iter().position(|s| s.members().contains(&rule)).unwrap();
        let (proximity, ip) = (sid(0), sid(1));
        assert_ne!(proximity, ip, "a 64-state budget cannot merge these rules");
        assert!(sharded.shards[proximity].is_gated());
        assert!(!sharded.shards[ip].is_gated(), "the literal-free rule stays ungated");
        for (hay, expect) in [
            (&b"GET /login/session HTTP/1.1"[..], false), // first token only
            (b"old passwd file", false),                  // second token only
            (b"login: passwd", true),                     // both tokens
            (b"totally benign", false),
        ] {
            let active = sharded.active_shards(hay);
            assert_eq!(active[proximity], expect, "{:?}", String::from_utf8_lossy(hay));
            assert!(active[ip], "ungated shards always run");
        }
        // And the gate never costs a true match.
        let m = set.matches(b"login=admin&passwd=hunter2 from 10.0.0.1");
        assert!(m.matched(0) && m.matched(1));
        assert!(!set.matches(b"login only").matched(0));
    }

    #[test]
    fn untracked_sharded_set_does_any_match_only() {
        let sharded =
            RegexSet::new(RULES, &builder().shard_state_budget(64).track_patterns(false)).unwrap();
        let tracked = RegexSet::new(RULES, &builder().shard_state_budget(64)).unwrap();
        assert!(!sharded.tracks_patterns());
        for hay in [&b"attack42"[..], b"benign", b"10.0.0.1"] {
            assert_eq!(sharded.is_match(hay), tracked.is_match(hay));
        }
        assert_eq!(sharded.try_matches(b"attack42"), Err(Error::PatternTrackingDisabled));
        assert_eq!(
            sharded.try_matches_batch(&[&b"attack42"[..]]),
            Err(Error::PatternTrackingDisabled)
        );
    }

    #[test]
    fn duplicate_rules_share_a_bit_across_shards() {
        let rules = ["attack[0-9]{2}", "exploit[a-z]{2}", "attack[0-9]{2}", "(exploit)[a-z]{2}"];
        let sharded = RegexSet::new(rules, &builder().shard_state_budget(64)).unwrap();
        assert_eq!(sharded.len(), 4);
        // Two distinct rules; duplicates (including the alias spelled
        // with a group) never enter the packer.
        let total: usize = sharded.shards().iter().map(|s| s.len()).sum();
        assert_eq!(total, 2);
        let m = sharded.matches(b"attack42");
        assert!(m.iter().eq([0, 2]));
        let m = sharded.matches(b"exploitok");
        assert!(m.iter().eq([1, 3]));
    }

    #[test]
    fn sharded_size_report_counts_shards() {
        use sfa_core::{BackendKind, StateIdRepr};
        let sharded = RegexSet::new(RULES, &builder().shard_state_budget(64)).unwrap();
        let report = sharded.size_report();
        assert_eq!(report.shards, sharded.shards().len());
        assert!(report.shards > 1);
        assert!(report.max_shard_dfa_states <= 64);
        // Budget-bounded shards pack: every eager shard's SFA fits a
        // narrow id, lazy fallbacks report the u32 cache width, and the
        // combined report carries the set-wide maximum.
        for shard in sharded.shards() {
            match shard.regex().backend_kind() {
                BackendKind::Eager => assert!(shard.repr().bytes() <= 2, "{:?}", shard.members()),
                BackendKind::Lazy => assert_eq!(shard.repr(), StateIdRepr::U32),
                BackendKind::Borrowed => {
                    unreachable!("fresh compiles never produce borrowed backends")
                }
            }
        }
        let widest = sharded.shards().iter().map(|s| s.repr().bytes()).max().unwrap();
        assert_eq!(report.state_id_bytes, widest);
        assert_eq!(
            report.dfa_states,
            sharded.shards().iter().map(|s| s.regex().dfa().num_states()).sum::<usize>()
        );
        // The unsharded single automaton reports itself as one shard.
        let unsharded = RegexSet::new(AGREE_RULES, &builder()).unwrap();
        let single = unsharded.size_report();
        assert_eq!(single.shards, 1);
        assert_eq!(single.max_shard_dfa_states, single.dfa_states);
    }

    #[test]
    #[should_panic(expected = "no single combined automaton")]
    fn regex_accessor_panics_on_sharded_sets() {
        let sharded = RegexSet::new(RULES, &builder().shard_state_budget(64)).unwrap();
        let _ = sharded.regex();
    }
}
