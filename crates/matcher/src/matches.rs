//! Per-pattern match results for multi-pattern (rule-set) matching.
//!
//! A [`RegexSet`](crate::RegexSet) compiles many rules into one automaton;
//! [`SetMatches`] is what a single pass over the input yields: the set of
//! rules that fired. The per-rule identities are threaded through the
//! whole pipeline at *compile* time (see [`sfa_automata::pattern`]), so
//! reading the verdict is one interned-bitset lookup at the final state —
//! no per-rule rescan, and the same answer under every
//! [`Strategy`](crate::Strategy) and both backends.

use sfa_automata::{PatternId, PatternSet};
use std::fmt;

/// The set of patterns of a [`RegexSet`](crate::RegexSet) (or
/// multi-pattern [`Regex`](crate::Regex)) that matched an input.
///
/// Backed by the automaton's interned accept bitset. Pattern indices
/// correspond to the order the patterns were given at compile time.
///
/// ```
/// use sfa_matcher::{Regex, RegexSet};
///
/// let set = RegexSet::new(["(ab)*", "a+", "b"], &Regex::builder()).unwrap();
/// let m = set.matches(b"ab");
/// assert!(m.matched(0) && !m.matched(1) && !m.matched(2));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![0]);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SetMatches {
    set: PatternSet,
}

impl SetMatches {
    /// Wraps an accept set produced by the automaton.
    pub(crate) fn new(set: PatternSet) -> SetMatches {
        SetMatches { set }
    }

    /// Returns true if the pattern with the given index matched.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below
    /// [`pattern_count`](SetMatches::pattern_count).
    pub fn matched(&self, index: usize) -> bool {
        assert!(index < self.set.patterns(), "pattern index out of range");
        self.set.contains(index as PatternId)
    }

    /// Returns true if at least one pattern matched (the any-match
    /// verdict of [`is_match`](crate::RegexSet::is_match)).
    pub fn matched_any(&self) -> bool {
        !self.set.is_empty()
    }

    /// The number of patterns that matched.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns true if no pattern matched.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The total number of patterns the set was compiled from (matched or
    /// not).
    pub fn pattern_count(&self) -> usize {
        self.set.patterns()
    }

    /// Iterates over the indices of the matched patterns in increasing
    /// order.
    pub fn iter(&self) -> SetMatchesIter<'_> {
        SetMatchesIter { inner: self.set.iter() }
    }

    /// The underlying pattern bitset.
    pub fn as_pattern_set(&self) -> &PatternSet {
        &self.set
    }
}

impl fmt::Debug for SetMatches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a SetMatches {
    type Item = usize;
    type IntoIter = SetMatchesIter<'a>;

    fn into_iter(self) -> SetMatchesIter<'a> {
        self.iter()
    }
}

/// Iterator over the matched pattern indices of a [`SetMatches`].
pub struct SetMatchesIter<'a> {
    inner: sfa_automata::pattern::PatternSetIter<'a>,
}

impl Iterator for SetMatchesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.inner.next().map(|id| id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_iteration() {
        let m = SetMatches::new(PatternSet::from_iter(5, [1u32, 3]));
        assert!(m.matched_any());
        assert!(!m.is_empty());
        assert_eq!(m.len(), 2);
        assert_eq!(m.pattern_count(), 5);
        assert!(!m.matched(0) && m.matched(1) && m.matched(3) && !m.matched(4));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!((&m).into_iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(format!("{m:?}"), "{1, 3}");
    }

    #[test]
    fn empty_verdict() {
        let m = SetMatches::new(PatternSet::new(3));
        assert!(!m.matched_any());
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "pattern index out of range")]
    fn matched_out_of_range_panics() {
        SetMatches::new(PatternSet::new(2)).matched(2);
    }
}
