//! # sfa-matcher
//!
//! Sequential and data-parallel regular-expression matching on top of the
//! SFA pipeline — the executable half of *"Simultaneous Finite Automata: An
//! Efficient Data-Parallel Model for Regular Expression Matching"*
//! (Sin'ya, Matsuzaki, Sassa — ICPP 2013).
//!
//! Three matchers are provided, matching the paper's algorithms — all
//! selected through one composable [`Strategy`] value consumed by the
//! single [`Regex::run`] execution core:
//!
//! | Paper | [`Strategy`] | Implementation | Work per byte |
//! |---|---|---|---|
//! | Algorithm 2 | `Sequential` | [`sfa_automata::Dfa::accepts`] | 1 lookup |
//! | Algorithm 3 | `Speculative { .. }` | [`SpeculativeDfaMatcher`] | `|D|` lookups |
//! | Algorithm 5 | `Parallel { .. }` | [`ParallelSfaMatcher`] | 1 lookup |
//!
//! plus the chunking and reduction machinery they share, a high-level
//! [`Regex`] / [`RegexSet`] front end, and two request-serving workload
//! shapes built on the same decomposition property: streaming matching
//! over arriving blocks ([`stream::StreamMatcher`]) and batched matching
//! of many small haystacks ([`Regex::is_match_batch`]).
//!
//! ## Per-pattern (rule-set) verdicts
//!
//! A [`RegexSet`] compiles many rules into **one** automaton and reports
//! *which* rules matched, not just whether any did:
//! [`RegexSet::matches`] returns a [`SetMatches`] bitset from a single
//! pass over the input, [`RegexSet::matches_batch`] does it for a whole
//! batch, and [`StreamMatcher::set_matches`] /
//! [`StreamMatcher::set_verdict`] report it incrementally over a stream.
//! The rule identities are threaded through compilation (every layer
//! from the NFA down carries pattern accept sets — see
//! [`sfa_automata::pattern`]), so the verdict costs one interned-bitset
//! lookup at the final state and is identical under every [`Strategy`]
//! and both backends: only the accept predicate got richer, the
//! Theorem 3 chunk composition is untouched.
//!
//! Tracking makes the combined product DFA grow with up to `2^rules`;
//! for large rulesets, [`RegexBuilder::shard_state_budget`] splits the
//! set into budget-bounded [`Shard`]s gated behind a multi-literal
//! [`Prefilter`] — same verdicts, bounded compile (see the
//! [`shard`] module docs).
//!
//! ## Backends
//!
//! Every SFA matcher in this crate runs over the pluggable
//! [`SfaBackend`]: the eager
//! [`DSfa`](sfa_core::DSfa) tables, or the on-the-fly
//! [`LazyDSfa`](sfa_core::LazyDSfa) of the paper's Section V-A, which
//! materializes at most one state per input byte and therefore stays
//! feasible on patterns whose eager D-SFA explodes.
//! [`RegexBuilder::backend`] picks one — or [`BackendChoice::Auto`],
//! which compiles eagerly and falls back to lazy when
//! [`RegexBuilder::max_sfa_states`] is exceeded. Which builder knobs each
//! backend honors is tabulated in the [`sfa_core`] crate docs; the
//! README's "Backends & state explosion" section walks through the
//! trade-off on a real ruleset.
//!
//! ## Execution model
//!
//! Parallel matching runs on a persistent worker pool (the
//! [`pool::Engine`]): `p` long-lived threads parked on a condvar — the
//! paper's pthread model — created once and reused for every call, so a
//! server issuing millions of `is_match` calls keeps a constant thread
//! count. A `threads` argument caps the number of chunks (itself capped at
//! the pool's worker count); it never spawns threads. Inputs too small to
//! amortize the pool hand-off run inline on the calling thread.
//!
//! ## The `0 ⇒ 1` parallelism clamp
//!
//! One rule applies crate-wide, everywhere a degree of parallelism is
//! requested: **requesting `0` units of parallelism means `1`** —
//! sequential execution, never an error and never "no work at all". The
//! rule is enforced (and its tests live) at every entry point that takes a
//! count: [`RegexBuilder::threads`], [`split_chunks`],
//! [`Engine::plan_chunks`](pool::Engine::plan_chunks) and
//! [`WorkerPool::new`](pool::WorkerPool::new); their docs link back here
//! rather than restating the rule.
//!
//! The same rule governs the *intra-chunk lane* knob: each pool worker
//! may split its slice of one haystack into `L` sub-chunks and drive
//! them through a single interleaved batched scan
//! ([`SfaBackend::run_from_many`]), recombining with `compose_states`
//! so verdicts are bit-for-bit those of a sequential scan.
//! [`Engine::plan_chunks_interleaved`](pool::Engine::plan_chunks_interleaved)
//! clamps the requested lane count (the backend's
//! [`preferred_lanes`](SfaBackend::preferred_lanes): 8 for the SIMD
//! gather kernel, 4 for the scalar lockstep loop, 1 otherwise) against
//! the same [`MIN_POOL_CHUNK_BYTES`] floor that gates pool hand-off —
//! a lane below ~4 KiB costs more in per-lane tail handling and state
//! composition than the interleaving recovers, so the lane count
//! degrades toward `1` (never `0`) exactly like the thread count does.
//!
//! ## Example
//!
//! ```
//! use sfa_matcher::{Regex, Strategy};
//!
//! let re = Regex::new("([0-4]{2}[5-9]{2})*").unwrap();
//! let text = b"00550459".repeat(1000);
//! assert!(re.is_match_with(&text, Strategy::Sequential));  // Algorithm 2
//! assert!(re.is_match_with(&text, Strategy::parallel(4))); // Algorithm 5
//! ```

#![deny(missing_docs)]
// The only unsafe code in the crate is the scoped-job lifetime erasure in
// `pool` (see the safety comment there); everything else stays checked.
#![deny(unsafe_code)]

pub mod chunk;
pub mod error;
pub mod executor;
pub mod matches;
pub mod parallel;
pub mod pool;
pub mod prefilter;
pub mod regex;
pub mod shard;
pub mod speculative;
pub mod strategy;
pub mod stream;

pub use chunk::{
    pack_by_bytes, pack_by_bytes_lanes, split_chunks, split_chunks_guided,
    split_chunks_with_offsets,
};
pub use error::Error;
pub use executor::{map_chunks, tree_reduce};
pub use matches::SetMatches;
pub use parallel::{ParallelNSfaMatcher, ParallelSfaMatcher};
pub use pool::{ChunkPlan, Engine, WorkerPool, MIN_POOL_CHUNK_BYTES};
pub use prefilter::Prefilter;
pub use regex::{default_threads, BackendChoice, MatchMode, Regex, RegexBuilder, RegexSet};
// Re-exported so `Regex::backend_kind` / `Regex::sfa` /
// `RegexBuilder::state_id_repr` / `SetMatches::as_pattern_set` types are
// nameable from this crate alone.
pub use sfa_analysis::{AnalysisConfig, ConvergenceClass, ConvergenceReport};
pub use sfa_automata::{PatternId, PatternSet};
pub use sfa_core::{BackendKind, SfaBackend, StateIdRepr};
pub use shard::Shard;
pub use speculative::{ChunkMap, SpeculativeDfaMatcher};
pub use strategy::Strategy;
pub use stream::{SetStream, StreamMatcher};

/// How the per-chunk partial results are combined (Section V-B of the
/// paper: "we reduce the results either in parallel with associative binary
/// operator ⋄ or in sequential").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// `O(p)` sequential walk over the partial results: start from the
    /// DFA's start state and look the state up in each chunk's mapping.
    Sequential,
    /// Logarithmic-depth tree of mapping compositions
    /// (`O(|D| log p)` for D-SFA, `O(|N|³ log p)` for N-SFA).
    Tree,
}

#[cfg(test)]
mod proptests {
    // The deprecated wrappers stay under property coverage until removal:
    // they are one-line shims over the `Strategy` core, and these suites
    // prove shim and core agree on every generated case.
    #![allow(deprecated)]

    use super::*;
    // `proptest::prelude::Strategy` (the generator trait) shadows our
    // execution-strategy enum inside this module; alias ours.
    use crate::strategy::Strategy as Exec;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfa_automata::{determinize, minimize, DfaConfig, Nfa};
    use sfa_core::{DSfa, SfaBackend, SfaConfig};
    use sfa_regex_syntax::generator::{AstGenerator, GeneratorConfig};
    use sfa_regex_syntax::ByteSet;

    fn small_generator() -> AstGenerator {
        AstGenerator::with_config(GeneratorConfig {
            max_depth: 3,
            max_width: 3,
            max_repeat: 3,
            alphabet: ByteSet::range(b'a', b'c'),
            repeat_bias: 0.4,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// All matchers agree with the sequential DFA on random patterns,
        /// random inputs, random thread counts and both reductions.
        #[test]
        fn all_matchers_agree(
            seed in any::<u64>(),
            input in "[a-c]{0,60}",
            threads in 1usize..9,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = small_generator().generate(&mut rng);
            let Ok(nfa) = Nfa::from_ast(&ast) else { return Ok(()) };
            let Ok(dfa) = determinize(&nfa, &DfaConfig { max_states: 400, ..Default::default() }) else { return Ok(()) };
            let dfa = minimize(&dfa);
            let Ok(sfa) = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 100_000, ..SfaConfig::default() }) else { return Ok(()) };
            let backend = SfaBackend::from(sfa);

            let expected = dfa.accepts(input.as_bytes());
            let spec = SpeculativeDfaMatcher::new(&dfa);
            let par = ParallelSfaMatcher::new(&backend);
            for reduction in [Reduction::Sequential, Reduction::Tree] {
                prop_assert_eq!(spec.accepts(input.as_bytes(), threads, reduction), expected);
                prop_assert_eq!(par.accepts(input.as_bytes(), threads, reduction), expected);
            }
        }

        /// The convergence-guided speculative matcher reaches exactly the
        /// sequential DFA's end state on random automata × thread counts
        /// × reductions × chunk boundaries, whatever the automaton's
        /// convergence class — entry sets only over-approximate, so
        /// guidance can never change the verdict. The analysis artifacts
        /// themselves are sanity-checked on every case (reach sets shrink,
        /// a found reset word really resets, entry sets cover the true
        /// boundary state).
        #[test]
        fn convergence_guided_speculation_agrees_with_sequential(
            seed in any::<u64>(),
            input in "[a-c]{0,60}",
            threads in 1usize..9,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = small_generator().generate(&mut rng);
            let Ok(nfa) = Nfa::from_ast(&ast) else { return Ok(()) };
            let Ok(dfa) = determinize(&nfa, &DfaConfig { max_states: 400, ..Default::default() }) else { return Ok(()) };
            let dfa = minimize(&dfa);
            prop_assert_eq!(dfa.validate(), Ok(()));
            let report = ConvergenceReport::analyze(&dfa);

            // Analysis sanity: the reach chain shrinks monotonically…
            for k in 1..=report.reach_horizon() {
                prop_assert!(report.reach_set(k).len() <= report.reach_set(k - 1).len());
            }
            // …a reset word, when claimed, really merges every state…
            if let Some(word) = report.reset_word() {
                let mut targets: Vec<_> =
                    (0..dfa.num_states() as u32).map(|q| dfa.run_from(q, word)).collect();
                targets.sort_unstable();
                targets.dedup();
                prop_assert_eq!(targets.len(), 1);
            }
            // …and the entry set of every prefix split covers the state
            // the true run is in at that boundary.
            let bytes = input.as_bytes();
            for split in [bytes.len() / 3, bytes.len() / 2] {
                if split == 0 { continue; }
                let entry = report.entry_set(&dfa, split, bytes[split - 1]);
                let truth = dfa.run(&bytes[..split]);
                prop_assert!(entry.binary_search(&truth).is_ok());
            }

            let expected = dfa.run(bytes);
            let guided = SpeculativeDfaMatcher::new(&dfa).with_analysis(&report);
            for reduction in [Reduction::Sequential, Reduction::Tree] {
                prop_assert_eq!(guided.run(bytes, threads, reduction), expected);
            }
        }

        /// Pool-based execution agrees with inline execution for random
        /// patterns and inputs: the same chunk batch, mapped through a
        /// multi-worker pool and through the calling thread, produces
        /// identical partial states and identical verdicts.
        #[test]
        fn pool_and_inline_execution_agree(
            seed in any::<u64>(),
            input in "[a-c]{0,200}",
            chunks in 1usize..7,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = small_generator().generate(&mut rng);
            let Ok(nfa) = Nfa::from_ast(&ast) else { return Ok(()) };
            let Ok(dfa) = determinize(&nfa, &DfaConfig { max_states: 400, ..Default::default() }) else { return Ok(()) };
            let dfa = minimize(&dfa);
            let Ok(sfa) = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 100_000, ..SfaConfig::default() }) else { return Ok(()) };
            let backend = SfaBackend::from(sfa);

            // One shared engine across all generated cases — spawning a
            // fresh pool per case would be pure thread-creation churn.
            static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
            let engine = ENGINE.get_or_init(|| Engine::new(4));
            let pieces = split_chunks(input.as_bytes(), chunks);
            let pooled = engine.map_chunks(pieces.clone(), true, |_, c| backend.run(c));
            let inline = engine.map_chunks(pieces, false, |_, c| backend.run(c));
            prop_assert_eq!(pooled, inline);

            // End to end: a matcher on the dedicated pool agrees with the
            // sequential DFA whatever the plan decides.
            let matcher = ParallelSfaMatcher::with_engine(&backend, engine.clone());
            let expected = dfa.accepts(input.as_bytes());
            for reduction in [Reduction::Sequential, Reduction::Tree] {
                prop_assert_eq!(matcher.accepts(input.as_bytes(), chunks, reduction), expected);
            }
        }

        /// Chunking never loses or duplicates bytes.
        #[test]
        fn chunking_partitions_input(input in prop::collection::vec(any::<u8>(), 0..200), threads in 1usize..20) {
            let chunks = split_chunks(&input, threads);
            let glued: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            prop_assert_eq!(glued, input);
        }

        /// Sequential, parallel, speculative and streaming matching agree
        /// in `Contains` mode under adversarial chunk and feed boundaries —
        /// including every split through the middle of a planted match
        /// occurrence (the paper's Theorem 3: any division of the word
        /// works, so a boundary inside the needle must not lose the match).
        #[test]
        fn contains_mode_all_matchers_and_streaming_agree(
            needle in "[a-c]{2,5}",
            prefix in "[a-c]{0,30}",
            suffix in "[a-c]{0,30}",
            plant in any::<bool>(),
            threads in 1usize..9,
            extra_cut in any::<prop::sample::Index>(),
        ) {
            // A shared multi-worker engine so the parallel paths exercise
            // real chunking even on single-CPU CI machines.
            static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
            let engine = ENGINE.get_or_init(|| Engine::new(4));
            let re = Regex::builder()
                .mode(MatchMode::Contains)
                .threads(threads)
                .engine(engine.clone())
                .build(&needle)
                .unwrap();

            let mut haystack = prefix.clone().into_bytes();
            let needle_at = haystack.len();
            if plant {
                haystack.extend_from_slice(needle.as_bytes());
            }
            haystack.extend_from_slice(suffix.as_bytes());

            let expected = re.is_match_sequential(&haystack);
            if plant {
                // The needle is literally present, so Contains must hit.
                prop_assert!(expected);
            }
            for reduction in [Reduction::Sequential, Reduction::Tree] {
                prop_assert_eq!(re.is_match_parallel(&haystack, threads, reduction), expected);
                prop_assert_eq!(re.is_match_speculative(&haystack, threads, reduction), expected);
            }

            // Streaming: cut at every boundary through the needle's
            // occurrence (splitting the match mid-pattern), plus one
            // arbitrary extra cut elsewhere.
            let other = extra_cut.index(haystack.len() + 1);
            for cut in needle_at..=(needle_at + needle.len()).min(haystack.len()) {
                let cuts = [cut.min(other), cut.max(other)];
                let mut stream = re.stream();
                let mut start = 0;
                for &c in &cuts {
                    if c > start {
                        stream.feed(&haystack[start..c]);
                        start = c;
                    }
                }
                stream.feed(&haystack[start..]);
                prop_assert_eq!(stream.finish(), expected);
            }

            // Byte-at-a-time feeding is the most adversarial split of all.
            let mut stream = re.stream();
            for b in &haystack {
                stream.feed(std::slice::from_ref(b));
            }
            prop_assert_eq!(stream.finish(), expected);
        }

        /// Packed table widths are invisible to every execution surface:
        /// a forced-`u8`/`u16` regex reaches the same final DFA state as
        /// the forced-`u32` baseline and the lazy backend under every
        /// strategy, and streams to the same verdict across arbitrary
        /// feed boundaries.
        #[test]
        fn packed_reprs_agree_across_strategies_and_streams(
            seed in any::<u64>(),
            input in "[a-c]{0,60}",
            threads in 1usize..7,
            cut in any::<prop::sample::Index>(),
        ) {
            use sfa_core::StateIdRepr;
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = small_generator().generate(&mut rng);
            let pattern = sfa_regex_syntax::to_pattern(&ast);
            static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
            let engine = ENGINE.get_or_init(|| Engine::new(4));
            let build = |b: RegexBuilder| {
                b.engine(engine.clone())
                    .threads(threads)
                    .max_dfa_states(400)
                    .max_sfa_states(100_000)
                    .build(&pattern)
            };
            let Ok(baseline) = build(Regex::builder().state_id_repr(StateIdRepr::U32)) else {
                return Ok(());
            };
            let bytes = input.as_bytes();
            let expected = baseline.run(bytes, Exec::Sequential);
            // The packed sequential path lands exactly where Algorithm 2
            // does (Lemma 1).
            prop_assert_eq!(expected, baseline.dfa().run(bytes));
            let variants = [
                build(Regex::builder()).unwrap(), // auto: narrowest fit
                build(Regex::builder().state_id_repr(StateIdRepr::U8)).unwrap(),
                build(Regex::builder().state_id_repr(StateIdRepr::U16)).unwrap(),
                build(Regex::builder().backend(BackendChoice::Lazy)).unwrap(),
            ];
            for re in &variants {
                prop_assert_eq!(re.run(bytes, Exec::Sequential), expected);
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    prop_assert_eq!(re.run(bytes, Exec::Parallel { threads, reduction }), expected);
                    prop_assert_eq!(
                        re.run(bytes, Exec::Speculative { threads, reduction }),
                        expected
                    );
                }
                let c = cut.index(bytes.len() + 1).min(bytes.len());
                let mut stream = re.stream();
                stream.feed(&bytes[..c]).feed(&bytes[c..]);
                prop_assert_eq!(stream.finish(), baseline.dfa().is_accepting(expected));
            }
        }

        /// The eager and lazy backends agree everywhere: same verdicts on
        /// the sequential, parallel (both reductions), speculative and
        /// streaming paths for random patterns and inputs; the lazy cache
        /// never materializes more states than the eager `|S_d|`, and
        /// once driven to a fixpoint it materializes exactly `|S_d|`.
        #[test]
        fn eager_and_lazy_backends_agree(
            seed in any::<u64>(),
            inputs in prop::collection::vec("[a-c]{0,40}", 1..5),
            threads in 1usize..9,
            cut in any::<prop::sample::Index>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = small_generator().generate(&mut rng);
            let pattern = sfa_regex_syntax::to_pattern(&ast);
            static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
            let engine = ENGINE.get_or_init(|| Engine::new(4));
            let builder = Regex::builder()
                .threads(threads)
                .engine(engine.clone())
                .max_dfa_states(400)
                .max_sfa_states(100_000);
            let Ok(eager) = builder.clone().backend(BackendChoice::Eager).build(&pattern) else { return Ok(()) };
            let lazy = builder.backend(BackendChoice::Lazy).build(&pattern).unwrap();
            prop_assert_eq!(lazy.backend_kind(), sfa_core::BackendKind::Lazy);

            for input in &inputs {
                let bytes = input.as_bytes();
                let expected = eager.is_match_sequential(bytes);
                prop_assert_eq!(lazy.is_match_sequential(bytes), expected);
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    prop_assert_eq!(eager.is_match_parallel(bytes, threads, reduction), expected);
                    prop_assert_eq!(lazy.is_match_parallel(bytes, threads, reduction), expected);
                    prop_assert_eq!(lazy.is_match_speculative(bytes, threads, reduction), expected);
                }
                // Streaming: one arbitrary cut, then byte-at-a-time.
                let cut = cut.index(bytes.len() + 1).min(bytes.len());
                let mut se = eager.stream();
                let mut sl = lazy.stream();
                se.feed(&bytes[..cut]).feed(&bytes[cut..]);
                sl.feed(&bytes[..cut]).feed(&bytes[cut..]);
                prop_assert_eq!(se.finish(), expected);
                prop_assert_eq!(sl.finish(), expected);
                let mut sl = lazy.stream();
                for b in bytes {
                    sl.feed(std::slice::from_ref(b));
                }
                prop_assert_eq!(sl.finish(), expected);
            }

            // The lazy cache is bounded by the eager state count…
            let full = eager.sfa().num_states();
            prop_assert!(lazy.sfa().num_states() <= full);
            // …and driving every transition of every materialized state
            // to a fixpoint materializes exactly the eager SFA.
            let cache = lazy.sfa().lazy().expect("lazy backend");
            let mut done = 0;
            while done < cache.num_states_constructed() {
                for class in 0..cache.num_classes() as u16 {
                    cache.next_by_class(done as sfa_core::SfaStateId, class);
                }
                done += 1;
            }
            prop_assert_eq!(cache.num_states_constructed(), full);
        }

        /// `RegexSet::matches` agrees with compiling each pattern
        /// individually — for random pattern sets and inputs, in both
        /// match modes, across the sequential / parallel / speculative
        /// strategies (both reductions) and both backends, and through
        /// streaming under adversarial feed boundaries (an arbitrary cut
        /// plus byte-at-a-time).
        #[test]
        fn set_matches_agree_with_individual_patterns(
            seed in any::<u64>(),
            num_patterns in 1usize..5,
            inputs in prop::collection::vec("[a-c]{0,30}", 1..4),
            threads in 1usize..9,
            contains in any::<bool>(),
            lazy_backend in any::<bool>(),
            cut in any::<prop::sample::Index>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let generator = small_generator();
            let patterns: Vec<String> = (0..num_patterns)
                .map(|_| sfa_regex_syntax::to_pattern(&generator.generate(&mut rng)))
                .collect();
            let pattern_refs: Vec<&str> = patterns.iter().map(|s| s.as_str()).collect();

            static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
            let engine = ENGINE.get_or_init(|| Engine::new(4));
            let mode = if contains { MatchMode::Contains } else { MatchMode::Whole };
            let backend =
                if lazy_backend { BackendChoice::Lazy } else { BackendChoice::Eager };
            let builder = Regex::builder()
                .mode(mode)
                .threads(threads)
                .engine(engine.clone())
                .max_dfa_states(20_000)
                .max_sfa_states(500_000);
            // The combined automaton can explode where the singles fit
            // (or vice versa); skip such cases — agreement is only
            // defined when everything compiles.
            let Ok(set) = RegexSet::new(pattern_refs.iter().copied(), &builder.clone().backend(backend)) else { return Ok(()) };
            let Ok(singles) = pattern_refs
                .iter()
                .map(|p| builder.build(p))
                .collect::<Result<Vec<_>, _>>() else { return Ok(()) };
            prop_assert_eq!(set.len(), num_patterns);

            for input in &inputs {
                let bytes = input.as_bytes();
                let expected: Vec<bool> =
                    singles.iter().map(|re| re.is_match_with(bytes, Exec::Sequential)).collect();

                let mut strategies = vec![Exec::Auto, Exec::Sequential];
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    strategies.push(Exec::Parallel { threads, reduction });
                    strategies.push(Exec::Speculative { threads, reduction });
                }
                for strategy in strategies {
                    let m = set.matches_with(bytes, strategy);
                    prop_assert_eq!(m.pattern_count(), num_patterns);
                    for (i, &want) in expected.iter().enumerate() {
                        prop_assert_eq!(
                            m.matched(i), want,
                            "pattern {} ({:?}) input {:?} strategy {:?} mode {:?} backend {:?}",
                            i, &patterns[i], input, strategy, mode, backend
                        );
                    }
                    prop_assert_eq!(m.matched_any(), set.is_match(bytes));
                }

                // The batch form agrees with the per-call form.
                let batch = set.matches_batch(&[bytes, bytes]);
                prop_assert_eq!(&batch[0], &set.matches(bytes));
                prop_assert_eq!(&batch[1], &batch[0]);

                // Streaming: an arbitrary cut, then byte-at-a-time — the
                // per-rule verdict must survive any feed boundary.
                let cut = cut.index(bytes.len() + 1).min(bytes.len());
                let mut stream = set.stream();
                stream.feed(&bytes[..cut]).feed(&bytes[cut..]);
                let streamed = stream.set_matches();
                for (i, &want) in expected.iter().enumerate() {
                    prop_assert_eq!(streamed.matched(i), want, "stream cut {} pattern {}", cut, i);
                }
                // A decided set verdict must equal the final verdict.
                if let Some(final_set) = stream.set_verdict() {
                    prop_assert_eq!(&final_set, &streamed);
                }
                let mut stream = set.stream();
                for b in bytes {
                    stream.feed(std::slice::from_ref(b));
                }
                prop_assert_eq!(&stream.set_matches(), &streamed);
            }
        }
    }
}
