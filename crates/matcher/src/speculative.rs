//! **Algorithm 3** — the parallel DFA matcher based on speculative
//! simulation (Section III of the paper) — plus the convergence-guided
//! variant built on `sfa-analysis`.
//!
//! The baseline form has every worker process its chunk by maintaining a
//! full vector `T_i : Q → Q` ("from every possible state, where would the
//! DFA be now?"), updated for *every* state on *every* byte — which is
//! where the `O(|D| · n / p)` term of Table II comes from and why this
//! approach loses to the sequential matcher as soon as the DFA is large.
//!
//! [`with_analysis`](SpeculativeDfaMatcher::with_analysis) attaches an
//! offline [`ConvergenceReport`] and turns the same matcher into the
//! convergence-guided version:
//!
//! * chunk boundaries are nudged after likely-synchronizing bytes
//!   ([`split_chunks_guided`]), so downstream entry sets start minimal;
//! * each non-first chunk simulates only from its **entry set**
//!   `δ(R_{len-1}, last byte)` — the analysis-proven superset of every
//!   state the boundary can be in — instead of from all of `Q`;
//! * within a chunk the state vector is **compacted** at doubling
//!   checkpoints seeded by the analysis horizon: once the survivors of a
//!   synchronizing automaton collapse (usually to one or two states), the
//!   per-byte cost drops from `|entry|` to `|image|` transitions.
//!
//! Guided partial results are [`ChunkMap`]s — sparse domain-restricted
//! mappings with the dense [`Transformation`] kept as fallback when the
//! entry set is close to `|Q|`. Soundness does not depend on the analysis
//! being *tight*: entry sets only over-approximate, so the composed
//! verdict is exactly Algorithm 3's (asserted by the crate proptests).
//!
//! Like [`ParallelSfaMatcher`](crate::ParallelSfaMatcher), chunks run on a
//! persistent [`Engine`] — the `threads` argument caps the chunk count at
//! the pool's worker count and never spawns threads.
//!
//! Unlike the SFA matchers, this matcher is independent of the
//! [`SfaBackend`](crate::SfaBackend) choice: it simulates the *DFA*
//! directly (recomputing per chunk what an SFA pre-computes), so a
//! `Regex` on the lazy backend still exposes it unchanged. For the same
//! reason it is untouched by the packed
//! [`StateIdRepr`](sfa_core::StateIdRepr) tables — its per-chunk state
//! vectors are over the DFA's `u32` state space, and the SIMD transition
//! kernels and intra-chunk lane interleaving
//! ([`ChunkPlan::lanes`](crate::pool::ChunkPlan::lanes)) likewise do not
//! apply here: a speculative worker already advances `|entry|` states per
//! byte, so it has no idle lanes to fill.

use crate::chunk::{split_chunks, split_chunks_guided};
use crate::pool::Engine;
use crate::Reduction;
use sfa_analysis::ConvergenceReport;
use sfa_automata::{Dfa, StateId};
use sfa_core::Transformation;
use std::cell::RefCell;
use std::collections::HashMap;

/// How far past the even split point [`split_chunks_guided`] searches for
/// a synchronizing byte. Small: a boundary nudge only saves the entry-set
/// difference, so long hunts cannot pay for the imbalance they create.
const BOUNDARY_WINDOW: usize = 64;

/// The speculative-simulation parallel DFA matcher — Algorithm 3 as-is,
/// or its convergence-guided refinement when an analysis is attached.
#[derive(Clone, Debug)]
pub struct SpeculativeDfaMatcher<'a> {
    dfa: &'a Dfa,
    engine: Engine,
    report: Option<&'a ConvergenceReport>,
}

thread_local! {
    /// Per-worker identity-table template (satellite of the guided work:
    /// `simulate_chunk` used to collect `0..n` afresh for every chunk; a
    /// worker thread now keeps the template alive across chunks and
    /// `memcpy`s it into the output instead of re-deriving it).
    static IDENTITY_SCRATCH: RefCell<Vec<StateId>> = const { RefCell::new(Vec::new()) };
}

/// The partial result of one guided chunk: where the chunk's bytes send
/// every state the boundary can actually be in.
///
/// `Sparse` restricts the domain to the analysis entry set (`keys`,
/// sorted); `Dense` is the full Algorithm 3 transformation, kept for
/// chunks whose entry set is close to `|Q|` (a sparse map would then cost
/// more in binary searches than it saves in simulation).
#[derive(Clone, Debug)]
pub enum ChunkMap {
    /// Full-domain mapping, as in the baseline algorithm.
    Dense(Transformation),
    /// Domain-restricted mapping: `keys[i] ↦ vals[i]`, `keys` sorted.
    Sparse {
        /// The sorted entry set this chunk was simulated from.
        keys: Vec<StateId>,
        /// `vals[i]` = state reached from `keys[i]` after the chunk.
        vals: Vec<StateId>,
    },
}

impl ChunkMap {
    /// Where the chunk sends state `q`.
    ///
    /// Panics if `q` is outside a sparse map's domain — the guided runner
    /// never lets that happen (entry sets over-approximate every state an
    /// upstream composition can produce; see
    /// [`ConvergenceReport::entry_set`]).
    pub fn apply(&self, q: StateId) -> StateId {
        match self {
            ChunkMap::Dense(t) => t.apply(q),
            ChunkMap::Sparse { keys, vals } => {
                let i = keys
                    .binary_search(&q)
                    .expect("analysis entry set covers every reachable boundary state");
                vals[i]
            }
        }
    }

    /// Functional composition `self ∘ then other`: a map with `self`'s
    /// domain sending `q` to `other.apply(self.apply(q))`. Sound because
    /// every value of `self` lies in `other`'s entry set (the sets are
    /// built from worst-case predecessors, so composition order cannot
    /// escape them).
    pub fn then(&self, other: &ChunkMap) -> ChunkMap {
        match self {
            ChunkMap::Dense(t) => ChunkMap::Dense(Transformation::from_vec(
                t.as_slice().iter().map(|&v| other.apply(v)).collect(),
            )),
            ChunkMap::Sparse { keys, vals } => ChunkMap::Sparse {
                keys: keys.clone(),
                vals: vals.iter().map(|&v| other.apply(v)).collect(),
            },
        }
    }

    /// Number of states this map was actually simulated for — the guided
    /// win is this being far below `|Q|`.
    pub fn domain_len(&self) -> usize {
        match self {
            ChunkMap::Dense(t) => t.degree(),
            ChunkMap::Sparse { keys, .. } => keys.len(),
        }
    }
}

/// One guided work item: a chunk plus what the analysis needs to know
/// about its left context.
struct GuidedJob<'b> {
    chunk: &'b [u8],
    /// Length and final byte of the previous chunk; `None` for the first
    /// chunk (which runs from the start state, no speculation at all).
    prev: Option<(usize, u8)>,
}

impl<'a> SpeculativeDfaMatcher<'a> {
    /// Creates a matcher over the given DFA, running on the shared
    /// [global engine](Engine::global).
    pub fn new(dfa: &'a Dfa) -> SpeculativeDfaMatcher<'a> {
        SpeculativeDfaMatcher::with_engine(dfa, Engine::global().clone())
    }

    /// Creates a matcher over the given DFA, running on a specific engine.
    pub fn with_engine(dfa: &'a Dfa, engine: Engine) -> SpeculativeDfaMatcher<'a> {
        SpeculativeDfaMatcher { dfa, engine, report: None }
    }

    /// Attaches an offline convergence analysis: `run` switches from the
    /// all-states baseline to entry-set-restricted simulation with
    /// guided chunk boundaries. The report must have been computed from
    /// this matcher's DFA.
    pub fn with_analysis(mut self, report: &'a ConvergenceReport) -> SpeculativeDfaMatcher<'a> {
        assert_eq!(
            report.num_states(),
            self.dfa.num_states(),
            "convergence report does not describe this DFA"
        );
        self.report = Some(report);
        self
    }

    /// Whether a convergence analysis is attached (the guided path).
    pub fn is_guided(&self) -> bool {
        self.report.is_some()
    }

    /// Simulates one chunk from **all** states simultaneously (lines 1–7
    /// of Algorithm 3) and returns the resulting mapping `T_i`.
    pub fn simulate_chunk(&self, chunk: &[u8]) -> Transformation {
        let n = self.dfa.num_states();
        // The output vector must be owned, but its identity initialization
        // needn't be re-derived per chunk: copy a per-worker template.
        let mut table: Vec<StateId> = IDENTITY_SCRATCH.with(|scratch| {
            let mut template = scratch.borrow_mut();
            let have = template.len();
            if have < n {
                template.extend(have as StateId..n as StateId);
            }
            template[..n].to_vec()
        });
        for &byte in chunk {
            let class = self.dfa.classes().class_of(byte);
            for entry in table.iter_mut() {
                *entry = self.dfa.next_by_class(*entry, class);
            }
        }
        Transformation::from_vec(table)
    }

    /// Simulates one chunk from the given entry set only, compacting the
    /// state vector at doubling checkpoints starting at the analysis
    /// horizon. Returns the reached state per entry state.
    fn simulate_from(&self, entry: &[StateId], chunk: &[u8], horizon: usize) -> Vec<StateId> {
        // `uniq` holds the distinct current states; `slot[j]` says which
        // of them entry state `j` currently sits in. Compaction dedupes
        // `uniq` once states start collapsing, so a synchronizing chunk
        // quickly costs ~1 transition per byte instead of `|entry|`.
        let mut uniq: Vec<StateId> = entry.to_vec();
        let mut slot: Vec<u32> = (0..entry.len() as u32).collect();
        let mut checkpoint = horizon.clamp(8, 4096);
        for (pos, &byte) in chunk.iter().enumerate() {
            let class = self.dfa.classes().class_of(byte);
            for u in uniq.iter_mut() {
                *u = self.dfa.next_by_class(*u, class);
            }
            if pos + 1 == checkpoint {
                checkpoint = checkpoint.saturating_mul(2);
                if uniq.len() > 1 {
                    compact(&mut uniq, &mut slot);
                }
            }
        }
        slot.iter().map(|&s| uniq[s as usize]).collect()
    }

    /// Builds the [`ChunkMap`] for one guided job: the first chunk runs
    /// sequentially from the start state; later chunks simulate from
    /// their analysis entry set, falling back to the dense all-states
    /// table when the set covers most of `Q` anyway.
    fn simulate_job(&self, job: &GuidedJob<'_>, report: &ConvergenceReport) -> ChunkMap {
        let n = self.dfa.num_states();
        match job.prev {
            None => {
                let start = self.dfa.start();
                ChunkMap::Sparse { keys: vec![start], vals: vec![self.dfa.run(job.chunk)] }
            }
            Some((prev_len, prev_byte)) => {
                let entry = report.entry_set(self.dfa, prev_len, prev_byte);
                if entry.len() * 4 >= n * 3 {
                    ChunkMap::Dense(self.simulate_chunk(job.chunk))
                } else {
                    let vals = self.simulate_from(&entry, job.chunk, report.compaction_horizon());
                    ChunkMap::Sparse { keys: entry, vals }
                }
            }
        }
    }

    /// The convergence-guided run: boundary nudging, entry-set-restricted
    /// simulation, sparse composition.
    fn run_guided(
        &self,
        input: &[u8],
        threads: usize,
        reduction: Reduction,
        report: &ConvergenceReport,
    ) -> StateId {
        let plan = self.engine.plan_chunks(input.len(), threads);
        if plan.chunks <= 1 {
            return self.dfa.run(input);
        }
        let chunks = split_chunks_guided(input, plan.chunks, BOUNDARY_WINDOW, |b| {
            report.is_synchronizing_byte(b)
        });
        let mut jobs: Vec<GuidedJob<'_>> = Vec::with_capacity(chunks.len());
        let mut prev: Option<(usize, u8)> = None;
        for &(_, chunk) in &chunks {
            jobs.push(GuidedJob { chunk, prev });
            prev = chunk.last().map(|&b| (chunk.len(), b));
        }
        let partials =
            self.engine.map_chunks(jobs, plan.use_pool, |_, job| self.simulate_job(&job, report));
        match reduction {
            Reduction::Sequential => {
                let mut q = self.dfa.start();
                for map in &partials {
                    q = map.apply(q);
                }
                q
            }
            Reduction::Tree => {
                let combined = self
                    .engine
                    .tree_reduce(partials, plan.use_pool, |a, b| a.then(b))
                    .expect("at least one chunk");
                combined.apply(self.dfa.start())
            }
        }
    }

    /// Runs the parallel computation and returns the final DFA state
    /// reached from the start state. The input is cut into at most
    /// `threads.min(workers)` chunks. With an attached analysis this is
    /// the guided variant; without one, the faithful Algorithm 3
    /// baseline.
    pub fn run(&self, input: &[u8], threads: usize, reduction: Reduction) -> StateId {
        if let Some(report) = self.report {
            return self.run_guided(input, threads, reduction, report);
        }
        let plan = self.engine.plan_chunks(input.len(), threads);
        let chunks = split_chunks(input, plan.chunks);
        let partials =
            self.engine.map_chunks(chunks, plan.use_pool, |_, chunk| self.simulate_chunk(chunk));
        match reduction {
            Reduction::Sequential => {
                // qfinal ← q0; for i: qfinal ← T_i[qfinal]
                let mut q = self.dfa.start();
                for t in &partials {
                    q = t.apply(q);
                }
                q
            }
            Reduction::Tree => {
                let combined = self
                    .engine
                    .tree_reduce(partials, plan.use_pool, |a, b| a.then(b))
                    .expect("at least one chunk");
                combined.apply(self.dfa.start())
            }
        }
    }

    /// Whole-input membership test.
    pub fn accepts(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        self.dfa.is_accepting(self.run(input, threads, reduction))
    }
}

/// Dedupes `uniq` in place and remaps `slot` indices accordingly.
fn compact(uniq: &mut Vec<StateId>, slot: &mut [u32]) {
    let mut first_slot: HashMap<StateId, u32> = HashMap::with_capacity(uniq.len());
    let mut kept: Vec<StateId> = Vec::with_capacity(uniq.len());
    let mut remap: Vec<u32> = Vec::with_capacity(uniq.len());
    for &state in uniq.iter() {
        let next = kept.len() as u32;
        let idx = *first_slot.entry(state).or_insert_with(|| {
            kept.push(state);
            next
        });
        remap.push(idx);
    }
    if kept.len() < uniq.len() {
        for s in slot.iter_mut() {
            *s = remap[*s as usize];
        }
        *uniq = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::minimal_dfa_from_pattern;

    fn test_engine() -> Engine {
        Engine::new(8)
    }

    fn check(pattern: &str, inputs: &[&[u8]]) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        let baseline = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
        let guided = SpeculativeDfaMatcher::with_engine(&dfa, test_engine()).with_analysis(&report);
        for &input in inputs {
            let expected = dfa.accepts(input);
            for threads in [1usize, 2, 3, 4, 7] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    for matcher in [&baseline, &guided] {
                        assert_eq!(
                            matcher.accepts(input, threads, reduction),
                            expected,
                            "pattern {:?}, input len {}, {} threads, {:?}, guided: {}",
                            pattern,
                            input.len(),
                            threads,
                            reduction,
                            matcher.is_guided(),
                        );
                        assert_eq!(matcher.run(input, threads, reduction), dfa.run(input));
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_sequential_dfa() {
        check("(ab)*", &[b"", b"ab", b"abab", b"aba", b"abababababab", b"abx"]);
        check("([0-4]{2}[5-9]{2})*", &[b"", b"0055", b"005504590459", b"00550", b"555500"]);
        check("(a|b)*abb", &[b"abb", b"aababb", b"ab", b"abba"]);
    }

    #[test]
    fn chunk_simulation_is_the_word_transformation() {
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let matcher = SpeculativeDfaMatcher::new(&dfa);
        let t = matcher.simulate_chunk(b"ab");
        // From the start (accepting) state, "ab" loops back to it.
        assert_eq!(t.apply(dfa.start()), dfa.start());
        // The empty chunk is the identity.
        assert!(matcher.simulate_chunk(b"").is_identity());
        // The identity-template reuse never leaks a previous chunk's
        // state: a second simulation still starts from the identity.
        let t2 = matcher.simulate_chunk(b"ab");
        assert_eq!(t.as_slice(), t2.as_slice());
    }

    #[test]
    fn scratch_template_survives_differently_sized_automata() {
        // Simulate with a large automaton first, then a small one, on the
        // same thread: the template is longer than the small |Q| and must
        // be truncated per use, not reused wholesale.
        let big = minimal_dfa_from_pattern("([0-4]{3}[5-9]{3})*").unwrap();
        let small = minimal_dfa_from_pattern("a").unwrap();
        assert!(big.num_states() > small.num_states());
        let t_big = SpeculativeDfaMatcher::new(&big).simulate_chunk(b"01");
        assert_eq!(t_big.degree(), big.num_states());
        let t_small = SpeculativeDfaMatcher::new(&small).simulate_chunk(b"a");
        assert_eq!(t_small.degree(), small.num_states());
    }

    #[test]
    fn guided_chunk_maps_match_the_dense_transformation() {
        let dfa = minimal_dfa_from_pattern("(a|b)*abb").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        let matcher = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
        // For any synthetic boundary context, the sparse map agrees with
        // the dense transformation on its whole domain.
        let chunk = b"abbaabab";
        let dense = matcher.simulate_chunk(chunk);
        for (prev_len, prev_byte) in [(1usize, b'a'), (3, b'b'), (100, b'x')] {
            let entry = report.entry_set(&dfa, prev_len, prev_byte);
            let vals = matcher.simulate_from(&entry, chunk, report.compaction_horizon());
            for (k, v) in entry.iter().zip(&vals) {
                assert_eq!(dense.apply(*k), *v, "entry state {k} diverged");
            }
        }
    }

    #[test]
    fn compaction_collapses_duplicate_states() {
        let mut uniq = vec![3, 1, 3, 2, 1];
        let mut slot: Vec<u32> = (0..5).collect();
        compact(&mut uniq, &mut slot);
        assert_eq!(uniq, vec![3, 1, 2]);
        let resolved: Vec<StateId> = slot.iter().map(|&s| uniq[s as usize]).collect();
        assert_eq!(resolved, vec![3, 1, 3, 2, 1]);
        // Compacting an already-unique vector is a no-op.
        let mut uniq = vec![5, 7];
        let mut slot = vec![1u32, 0];
        compact(&mut uniq, &mut slot);
        assert_eq!(uniq, vec![5, 7]);
        assert_eq!(slot, vec![1, 0]);
    }

    #[test]
    fn guided_entry_sets_shrink_the_simulated_domain() {
        // A Contains-style needle automaton: entry sets after an ordinary
        // byte are tiny compared to |Q|.
        let dfa = minimal_dfa_from_pattern("(?s).*coffee(?s).*").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        assert!(report.prefers_speculation());
        let entry = report.entry_set(&dfa, 1000, b'x');
        assert!(
            entry.len() * 4 < dfa.num_states() * 3,
            "entry set {} of |Q| = {} states should take the sparse path",
            entry.len(),
            dfa.num_states()
        );
    }

    #[test]
    fn more_threads_than_bytes() {
        let dfa = minimal_dfa_from_pattern("a{3}").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        let matcher = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
        assert!(matcher.accepts(b"aaa", 64, Reduction::Tree));
        assert!(!matcher.accepts(b"aa", 64, Reduction::Sequential));
        let guided = SpeculativeDfaMatcher::with_engine(&dfa, test_engine()).with_analysis(&report);
        assert!(guided.accepts(b"aaa", 64, Reduction::Tree));
        assert!(!guided.accepts(b"aa", 64, Reduction::Sequential));
    }

    #[test]
    fn pool_sized_inputs_agree_with_sequential_dfa() {
        let dfa = minimal_dfa_from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        let text = b"00550459".repeat(8 * 1024); // 64 KiB
        for guided in [false, true] {
            let matcher = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
            let matcher = if guided { matcher.with_analysis(&report) } else { matcher };
            for threads in [2usize, 8, 1_000_000] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert!(matcher.accepts(&text, threads, reduction), "guided: {guided}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not describe this DFA")]
    fn mismatched_report_is_rejected() {
        let a = minimal_dfa_from_pattern("(ab)*").unwrap();
        let b = minimal_dfa_from_pattern("([0-4]{3}[5-9]{3})*").unwrap();
        assert_ne!(a.num_states(), b.num_states());
        let report = ConvergenceReport::analyze(&b);
        let _ = SpeculativeDfaMatcher::new(&a).with_analysis(&report);
    }
}
