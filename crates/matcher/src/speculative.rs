//! **Algorithm 3** — the prior-art parallel DFA matcher based on
//! speculative simulation (Section III of the paper).
//!
//! Every worker processes its chunk by maintaining a full vector
//! `T_i : Q → Q` ("from every possible state, where would the DFA be
//! now?"), updated for *every* state on *every* byte — which is where the
//! `O(|D| · n / p)` term of Table II comes from and why this approach loses
//! to the sequential matcher as soon as the DFA is large. It is implemented
//! here as the baseline that the SFA matcher (Algorithm 5) is compared
//! against.
//!
//! Like [`ParallelSfaMatcher`](crate::ParallelSfaMatcher), chunks run on a
//! persistent [`Engine`] — the `threads` argument caps the chunk count at
//! the pool's worker count and never spawns threads.
//!
//! Unlike the SFA matchers, this baseline is independent of the
//! [`SfaBackend`](crate::SfaBackend) choice: it simulates the *DFA*
//! directly (recomputing per chunk what an SFA pre-computes), so a
//! `Regex` on the lazy backend still exposes it unchanged. For the same
//! reason it is untouched by the packed
//! [`StateIdRepr`](sfa_core::StateIdRepr) tables — its per-chunk state
//! vectors are over the DFA's `u32` state space, faithfully reproducing
//! the prior art's memory behavior (that is what makes it a baseline).

use crate::chunk::split_chunks;
use crate::pool::Engine;
use crate::Reduction;
use sfa_automata::{Dfa, StateId};
use sfa_core::Transformation;

/// The speculative-simulation parallel DFA matcher.
#[derive(Clone, Debug)]
pub struct SpeculativeDfaMatcher<'a> {
    dfa: &'a Dfa,
    engine: Engine,
}

impl<'a> SpeculativeDfaMatcher<'a> {
    /// Creates a matcher over the given DFA, running on the shared
    /// [global engine](Engine::global).
    pub fn new(dfa: &'a Dfa) -> SpeculativeDfaMatcher<'a> {
        SpeculativeDfaMatcher::with_engine(dfa, Engine::global().clone())
    }

    /// Creates a matcher over the given DFA, running on a specific engine.
    pub fn with_engine(dfa: &'a Dfa, engine: Engine) -> SpeculativeDfaMatcher<'a> {
        SpeculativeDfaMatcher { dfa, engine }
    }

    /// Simulates one chunk from **all** states simultaneously (lines 1–7 of
    /// Algorithm 3) and returns the resulting mapping `T_i`.
    pub fn simulate_chunk(&self, chunk: &[u8]) -> Transformation {
        let n = self.dfa.num_states();
        let mut table: Vec<StateId> = (0..n as StateId).collect();
        for &byte in chunk {
            let class = self.dfa.classes().class_of(byte);
            for entry in table.iter_mut() {
                *entry = self.dfa.next_by_class(*entry, class);
            }
        }
        Transformation::from_vec(table)
    }

    /// Runs the parallel computation and returns the final DFA state
    /// reached from the start state. The input is cut into at most
    /// `threads.min(workers)` chunks.
    pub fn run(&self, input: &[u8], threads: usize, reduction: Reduction) -> StateId {
        let plan = self.engine.plan_chunks(input.len(), threads);
        let chunks = split_chunks(input, plan.chunks);
        let partials =
            self.engine.map_chunks(chunks, plan.use_pool, |_, chunk| self.simulate_chunk(chunk));
        match reduction {
            Reduction::Sequential => {
                // qfinal ← q0; for i: qfinal ← T_i[qfinal]
                let mut q = self.dfa.start();
                for t in &partials {
                    q = t.apply(q);
                }
                q
            }
            Reduction::Tree => {
                let combined = self
                    .engine
                    .tree_reduce(partials, plan.use_pool, |a, b| a.then(b))
                    .expect("at least one chunk");
                combined.apply(self.dfa.start())
            }
        }
    }

    /// Whole-input membership test.
    pub fn accepts(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        self.dfa.is_accepting(self.run(input, threads, reduction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::minimal_dfa_from_pattern;

    fn test_engine() -> Engine {
        Engine::new(8)
    }

    fn check(pattern: &str, inputs: &[&[u8]]) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let matcher = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
        for &input in inputs {
            let expected = dfa.accepts(input);
            for threads in [1usize, 2, 3, 4, 7] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(
                        matcher.accepts(input, threads, reduction),
                        expected,
                        "pattern {:?}, input len {}, {} threads, {:?}",
                        pattern,
                        input.len(),
                        threads,
                        reduction
                    );
                    assert_eq!(matcher.run(input, threads, reduction), dfa.run(input));
                }
            }
        }
    }

    #[test]
    fn agrees_with_sequential_dfa() {
        check("(ab)*", &[b"", b"ab", b"abab", b"aba", b"abababababab", b"abx"]);
        check("([0-4]{2}[5-9]{2})*", &[b"", b"0055", b"005504590459", b"00550", b"555500"]);
        check("(a|b)*abb", &[b"abb", b"aababb", b"ab", b"abba"]);
    }

    #[test]
    fn chunk_simulation_is_the_word_transformation() {
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let matcher = SpeculativeDfaMatcher::new(&dfa);
        let t = matcher.simulate_chunk(b"ab");
        // From the start (accepting) state, "ab" loops back to it.
        assert_eq!(t.apply(dfa.start()), dfa.start());
        // The empty chunk is the identity.
        assert!(matcher.simulate_chunk(b"").is_identity());
    }

    #[test]
    fn more_threads_than_bytes() {
        let dfa = minimal_dfa_from_pattern("a{3}").unwrap();
        let matcher = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
        assert!(matcher.accepts(b"aaa", 64, Reduction::Tree));
        assert!(!matcher.accepts(b"aa", 64, Reduction::Sequential));
    }

    #[test]
    fn pool_sized_inputs_agree_with_sequential_dfa() {
        let dfa = minimal_dfa_from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let matcher = SpeculativeDfaMatcher::with_engine(&dfa, test_engine());
        let text = b"00550459".repeat(8 * 1024); // 64 KiB
        for threads in [2usize, 8, 1_000_000] {
            for reduction in [Reduction::Sequential, Reduction::Tree] {
                assert!(matcher.accepts(&text, threads, reduction));
            }
        }
    }
}
