//! A persistent worker-pool execution engine.
//!
//! The paper's matcher runs on `p` *long-lived* pthreads that each own one
//! contiguous chunk of the input. The first cut of this crate approximated
//! that with `std::thread::scope`, which spawns (and joins) one fresh OS
//! thread per chunk on **every call** — fine for a single 1 GB scan,
//! catastrophic for a server answering millions of small `is_match`
//! requests, and a `Strategy::Parallel { threads: 10_000, .. }` call
//! would happily ask the OS for 10 000 threads.
//!
//! This module replaces that executor with the paper's actual execution
//! model:
//!
//! * [`WorkerPool`] — `p` long-lived worker threads parked on a condvar,
//!   created once and reused for every batch. No work stealing: a batch is
//!   a FIFO queue of chunk jobs that workers (and the submitting thread,
//!   which helps drain the queue instead of going to sleep) pop until the
//!   batch's completion latch trips.
//! * [`Engine`] — a cheaply cloneable handle to a pool, with the
//!   [`map_chunks`](Engine::map_chunks) / [`tree_reduce`](Engine::tree_reduce)
//!   combinators the matchers are built on, plus the shared process-wide
//!   [`Engine::global`] instance (sized at `available_parallelism`, built
//!   lazily on first use).
//! * [`ChunkPlan`] — the shared policy decision: how many chunks to cut
//!   (capped at the pool's worker count, so absurd `threads` arguments can
//!   no longer request one thread per byte) and whether the input is big
//!   enough for the pool to pay for the hand-off (tiny inputs run inline on
//!   the calling thread and never touch the pool).
//!
//! # Lifecycle
//!
//! A pool's threads are spawned in [`WorkerPool::new`] and parked on a
//! condvar while idle; they are woken per batch, and shut down (signalled
//! and joined) when the pool is dropped. The global engine's pool lives for
//! the rest of the process once created. Submitting from inside a pool job
//! (nested batches) is supported: a submitter never sleeps while the queue
//! is non-empty, so nested batches drain instead of deadlocking.
//!
//! # Safety
//!
//! Chunk jobs borrow the input text and the automaton from the submitting
//! stack frame, while worker threads are `'static`. Like every scoped pool
//! (crossbeam, rayon), the hand-off therefore erases the job's lifetime in
//! one well-contained `unsafe` spot (`erase`) whose soundness rests on
//! the batch protocol: `scope_map` does not return — by value or by
//! unwinding — until the completion latch has counted every job as
//! finished *and dropped*, so no erased job can outlive the data it
//! borrows. This is the only unsafe code in the crate.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Inputs whose per-chunk share is below this many bytes run inline on the
/// calling thread: at roughly a byte per nanosecond of matching work, a
/// smaller chunk would be dominated by the condvar hand-off to a worker.
pub const MIN_POOL_CHUNK_BYTES: usize = 4096;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Erases the lifetime of a job so it can sit in the pool's `'static`
/// queue.
///
/// # Safety
///
/// The caller must guarantee the job is executed (or dropped) before `'a`
/// ends. `scope_map` upholds this by blocking on a completion latch that
/// every job trips only *after* its closure has been consumed, and by
/// never returning — normally or by panic — before the latch reads zero.
#[allow(unsafe_code)]
fn erase<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> StaticJob {
    // SAFETY: see above; both types are fat pointers of identical layout
    // differing only in the lifetime bound.
    unsafe { std::mem::transmute(job) }
}

/// Counts a batch's outstanding jobs; trips when all have completed.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panicked: bool,
}

impl Latch {
    fn new(jobs: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState { remaining: jobs, panicked: false }),
            done: Condvar::new(),
        }
    }

    /// Marks one job finished (its closure already consumed and freed).
    fn complete(&self, panicked: bool) {
        let mut s = self.state.lock().expect("latch poisoned");
        s.remaining -= 1;
        s.panicked |= panicked;
        if s.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch poisoned").remaining == 0
    }

    /// Blocks until every job completed; returns whether any panicked.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().expect("latch poisoned");
        while s.remaining > 0 {
            s = self.done.wait(s).expect("latch poisoned");
        }
        s.panicked
    }
}

struct Task {
    job: StaticJob,
    latch: Arc<Latch>,
}

impl Task {
    /// Runs the job (consuming and freeing its closure), then trips the
    /// latch. Panics are caught so a failing job poisons its batch, not the
    /// worker thread.
    fn run(self) {
        let panicked = catch_unwind(AssertUnwindSafe(self.job)).is_err();
        self.latch.complete(panicked);
    }
}

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

impl Shared {
    fn pop(&self) -> Option<Task> {
        self.queue.lock().expect("pool queue poisoned").tasks.pop_front()
    }
}

/// A fixed-size pool of long-lived worker threads parked on a condvar —
/// the paper's `p` pthreads. See the [module docs](self) for the batch
/// protocol.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers.max(1)` long-lived threads (named
    /// `sfa-worker-<i>`), parked until work arrives — `0` workers means a
    /// pool of one (the [crate-wide `0 ⇒ 1` clamp](crate)).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { tasks: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sfa-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `work` over every item of `items` on the pool and returns the
    /// results in item order. The calling thread helps drain the queue
    /// rather than sleeping, so a pool of `p` workers applies `p + 1`
    /// threads' worth of compute and nested calls cannot deadlock.
    pub fn scope_map<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| work(i, item)).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let latch = Arc::new(Latch::new(n));
        {
            let work = &work;
            let slots = &slots;
            // Build every job before publishing any, so there is no panic
            // point between the first enqueue and the latch wait below.
            let tasks: Vec<Task> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| Task {
                    job: erase(Box::new(move || {
                        let r = work(i, item);
                        *slots[i].lock().expect("result slot poisoned") = Some(r);
                    })),
                    latch: Arc::clone(&latch),
                })
                .collect();
            self.shared.queue.lock().expect("pool queue poisoned").tasks.extend(tasks);
            self.shared.available.notify_all();
            // Help: drain the queue (our jobs, or earlier batches') until
            // our batch completes or there is nothing left to pop.
            while !latch.is_done() {
                match self.shared.pop() {
                    Some(task) => task.run(),
                    None => break,
                }
            }
        }
        // From here on every erased job has been consumed and freed; the
        // borrows of `work`, `slots` and the items are provably over.
        if latch.wait() {
            panic!("a pool job panicked");
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("result slot poisoned").expect("latch guarantees a result")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish_non_exhaustive()
    }
}

/// One worker: pop → run → repeat; park on the condvar while the queue is
/// empty; exit once shut down *and* drained (a queued job is never
/// abandoned).
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(task) = q.tasks.pop_front() {
                    break Some(task);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.available.wait(q).expect("pool queue poisoned");
            }
        };
        match task {
            Some(task) => task.run(),
            None => return,
        }
    }
}

/// How a matcher call should be executed: how many chunks to cut and
/// whether to engage the pool. Produced by [`Engine::plan_chunks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Number of chunks to split the input into: the requested thread
    /// count clamped to `1..=workers` (the chunk-count cap — a request for
    /// 10 000 "threads" gets the pool's worker count, not 10 000 threads).
    pub chunks: usize,
    /// Whether the chunk batch should be submitted to the pool. False when
    /// a single chunk suffices or when the per-chunk share of the input is
    /// under [`MIN_POOL_CHUNK_BYTES`] — such batches run inline on the
    /// calling thread and never touch the pool.
    pub use_pool: bool,
    /// Number of interleaved sub-chunks each worker cuts its chunk into
    /// and drives through one batched scan (`run_from_many`), composing
    /// the sub-chunk states back into the chunk's state (Lemma 1 — same
    /// verdicts, same per-chunk result). `1` means the chunk is scanned
    /// as a single chain. [`Engine::plan_chunks`] always plans `1`;
    /// [`Engine::plan_chunks_interleaved`] raises it for backends whose
    /// scan kernel profits from independent lanes, clamped so every
    /// sub-chunk keeps at least [`MIN_POOL_CHUNK_BYTES`] — the same floor
    /// that keeps whole chunks off the pool keeps lanes from degenerating
    /// into composition overhead.
    pub lanes: usize,
}

/// A cheaply cloneable handle to a [`WorkerPool`], carrying the chunking
/// policy and the `map`/`reduce` combinators the matchers run on.
#[derive(Clone)]
pub struct Engine {
    pool: Arc<WorkerPool>,
}

impl Engine {
    /// An engine backed by a dedicated pool of `workers.max(1)` threads.
    pub fn new(workers: usize) -> Engine {
        Engine { pool: Arc::new(WorkerPool::new(workers)) }
    }

    /// The process-wide shared engine, created on first use with one
    /// worker per available CPU. All matchers use this engine unless given
    /// another one explicitly, so a server answering millions of requests
    /// keeps a constant thread count.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Engine::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        })
    }

    /// Number of worker threads backing this engine.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Decides chunk count and pool usage for an input of `input_len`
    /// bytes and a requested parallelism of `threads` (`0` is treated as
    /// `1` — the [crate-wide `0 ⇒ 1` clamp](crate)). The plan's `lanes`
    /// is always `1`; see
    /// [`plan_chunks_interleaved`](Engine::plan_chunks_interleaved) for
    /// the intra-chunk interleaving knob.
    pub fn plan_chunks(&self, input_len: usize, threads: usize) -> ChunkPlan {
        let chunks = threads.clamp(1, self.workers());
        let use_pool = chunks > 1 && input_len / chunks >= MIN_POOL_CHUNK_BYTES;
        ChunkPlan { chunks, use_pool, lanes: 1 }
    }

    /// Like [`plan_chunks`](Engine::plan_chunks), but additionally plans
    /// up to `max_lanes` interleaved sub-chunks per worker chunk
    /// (`ChunkPlan::lanes`): each worker splits its slice of the haystack
    /// into that many independent lanes, drives them through one batched
    /// `run_from_many` scan — lockstep scalar or SIMD-gather, whichever
    /// the backend's kernel is — and composes the lane states back into
    /// the chunk state it would have produced anyway (Theorem 3 at a
    /// second, intra-worker level).
    ///
    /// `max_lanes` comes from the backend
    /// (`SfaBackend::preferred_lanes`): 8 for the AVX2 gather kernel, 4
    /// for the scalar lockstep walk, 1 when splitting cannot help
    /// (shuffle kernel, lazy backend, no premultiplied table). The plan
    /// clamps it so every lane keeps at least [`MIN_POOL_CHUNK_BYTES`] —
    /// below that floor the O(|D|) compositions and ragged tails outweigh
    /// the latency hiding, the same economics as the inline floor for
    /// pool hand-offs (`max_lanes` of `0` is treated as `1` — the
    /// [crate-wide `0 ⇒ 1` clamp](crate)).
    pub fn plan_chunks_interleaved(
        &self,
        input_len: usize,
        threads: usize,
        max_lanes: usize,
    ) -> ChunkPlan {
        let mut plan = self.plan_chunks(input_len, threads);
        let share = input_len / plan.chunks;
        plan.lanes = max_lanes.min(share / MIN_POOL_CHUNK_BYTES).max(1);
        plan
    }

    /// Runs `work` over every item — on the pool when `parallel` is true
    /// and there is more than one item, inline on the calling thread
    /// otherwise — and returns the results in item order.
    pub fn map_chunks<T, R, F>(&self, items: Vec<T>, parallel: bool, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if !parallel || items.len() <= 1 {
            items.into_iter().enumerate().map(|(i, item)| work(i, item)).collect()
        } else {
            self.pool.scope_map(items, work)
        }
    }

    /// Tree (logarithmic-depth) reduction with an associative operator:
    /// each round combines adjacent pairs, on the pool when `parallel` is
    /// true. This is the `O(c · log p)` reduction of Table II, where `c`
    /// is the cost of one composition.
    pub fn tree_reduce<T, F>(&self, mut values: Vec<T>, parallel: bool, combine: F) -> Option<T>
    where
        T: Send,
        F: Fn(&T, &T) -> T + Sync,
    {
        if values.is_empty() {
            return None;
        }
        while values.len() > 1 {
            let pairs: Vec<(T, Option<T>)> = {
                let mut it = values.into_iter();
                let mut pairs = Vec::new();
                while let Some(a) = it.next() {
                    pairs.push((a, it.next()));
                }
                pairs
            };
            values = self.map_chunks(pairs, parallel, |_, (a, b)| match b {
                Some(b) => combine(&a, &b),
                None => a,
            });
        }
        values.pop()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("workers", &self.workers()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_map_preserves_order_with_borrowed_data() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..97).collect();
        // The closure borrows `data` from this stack frame — the scoped
        // hand-off the whole module exists for.
        let out = pool.scope_map((0..data.len()).collect(), |i, idx| {
            assert_eq!(i, idx);
            data[idx] * 2 + 1
        });
        let expected: Vec<u64> = data.iter().map(|x| x * 2 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn pool_is_reused_across_many_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..500u64 {
            let out = pool.scope_map(vec![round, round + 1, round + 2], |_, x| x * x);
            assert_eq!(out, vec![round * round, (round + 1).pow(2), (round + 2).pow(2)]);
        }
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn batches_larger_than_the_pool_queue_up() {
        let pool = WorkerPool::new(2);
        let out = pool.scope_map((0..1000u32).collect(), |_, x| x + 1);
        assert_eq!(out, (1..=1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.scope_map(vec![1, 2, 3], |_, x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn job_panic_propagates_to_the_submitter_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_map(vec![0u32, 1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(result.is_err());
        // The workers caught the unwind and are still alive.
        assert_eq!(pool.scope_map(vec![5u32, 6], |_, x| x), vec![5, 6]);
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = WorkerPool::new(2);
        let out = pool.scope_map(vec![10u64, 20, 30], |_, base| {
            pool.scope_map(vec![1u64, 2, 3], |_, d| base + d).into_iter().sum::<u64>()
        });
        assert_eq!(out, vec![36, 66, 96]);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let engine = Engine::new(2);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let engine = engine.clone();
                scope.spawn(move || {
                    for round in 0..50u64 {
                        let items: Vec<u64> = (0..5).map(|i| t * 1000 + round + i).collect();
                        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
                        assert_eq!(engine.map_chunks(items, true, |_, x| x * 3), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn dropping_the_pool_joins_all_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.scope_map(vec![1u8, 2], |_, x| x), vec![1, 2]);
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn plan_caps_chunks_at_worker_count() {
        let engine = Engine::new(4);
        // The headline bug: absurd thread counts no longer request one
        // unit of work per byte.
        assert_eq!(engine.plan_chunks(1 << 20, 10_000).chunks, 4);
        assert_eq!(engine.plan_chunks(1 << 20, 3).chunks, 3);
        // 0 clamps to 1, the crate-wide rule.
        assert_eq!(
            engine.plan_chunks(1 << 20, 0),
            ChunkPlan { chunks: 1, use_pool: false, lanes: 1 }
        );
    }

    #[test]
    fn plan_keeps_tiny_inputs_off_the_pool() {
        let engine = Engine::new(8);
        // 1 KB across 8 workers: far below the per-chunk floor.
        assert!(!engine.plan_chunks(1024, 8).use_pool);
        // Big input: pool engages, all workers used.
        let plan = engine.plan_chunks(4 << 20, 8);
        assert_eq!(plan, ChunkPlan { chunks: 8, use_pool: true, lanes: 1 });
        // Single chunk never uses the pool.
        assert!(!engine.plan_chunks(4 << 20, 1).use_pool);
    }

    #[test]
    fn interleaved_plan_clamps_lanes_to_the_per_lane_floor() {
        let engine = Engine::new(4);
        // 8 MiB over 4 workers: 2 MiB per chunk — plenty for 8 lanes.
        let plan = engine.plan_chunks_interleaved(8 << 20, 4, 8);
        assert_eq!(plan, ChunkPlan { chunks: 4, use_pool: true, lanes: 8 });
        // The chunk/pool decisions are exactly plan_chunks'.
        let base = engine.plan_chunks(8 << 20, 4);
        assert_eq!((plan.chunks, plan.use_pool), (base.chunks, base.use_pool));
        // Each lane keeps MIN_POOL_CHUNK_BYTES: a 24 KiB share allows 6.
        assert_eq!(engine.plan_chunks_interleaved(96 << 10, 4, 8).lanes, 6);
        // Tiny shares collapse to a single chain, never to zero lanes —
        // and a max_lanes of 0 clamps to 1 (the crate-wide rule).
        assert_eq!(engine.plan_chunks_interleaved(1024, 4, 8).lanes, 1);
        assert_eq!(engine.plan_chunks_interleaved(0, 1, 8).lanes, 1);
        assert_eq!(engine.plan_chunks_interleaved(8 << 20, 4, 0).lanes, 1);
        // A backend preferring fewer lanes than the share allows wins.
        assert_eq!(engine.plan_chunks_interleaved(8 << 20, 4, 4).lanes, 4);
    }

    #[test]
    fn global_engine_is_shared_and_sized_by_cpu_count() {
        let a = Engine::global();
        let b = Engine::global();
        assert_eq!(a.workers(), b.workers());
        assert!(a.workers() >= 1);
        let out = a.map_chunks(vec![1u32, 2, 3], true, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn tree_reduce_on_engine_matches_sequential_fold() {
        let engine = Engine::new(3);
        let values: Vec<String> = (0..13).map(|i| format!("{i}-")).collect();
        let expected = values.concat();
        for parallel in [false, true] {
            let got = engine.tree_reduce(values.clone(), parallel, |a, b| format!("{a}{b}"));
            assert_eq!(got.unwrap(), expected, "parallel = {parallel}");
        }
        assert_eq!(engine.tree_reduce(Vec::<u32>::new(), true, |a, b| a + b), None);
        assert_eq!(engine.tree_reduce(vec![7u32], true, |a, b| a + b), Some(7));
    }
}
