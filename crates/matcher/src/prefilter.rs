//! Multi-literal prefilter: a byte-class-compressed Aho–Corasick scanner
//! that maps haystacks to the set of *tags* whose literals occur.
//!
//! A sharded [`RegexSet`](crate::RegexSet) attaches one tag per *gated*
//! shard — a shard whose every rule has a
//! [required literal](sfa_regex_syntax::required_literals). Scanning the
//! haystack once through the prefilter tells the set which shards can
//! possibly match; the remaining shards' automata are never consulted.
//! On rule-scanning workloads, where most bytes are benign, most bytes
//! therefore touch no DFA at all: the prefilter spends its time in a
//! root-state skip loop over bytes that occur in no literal.
//!
//! The automaton is the textbook construction (goto trie, BFS failure
//! links, outputs merged along suffix links) DFA-ified into a dense
//! next-state table — but over *compressed byte classes*: each distinct
//! byte occurring in some literal gets its own class and every other
//! byte shares class 0, so the table is `nodes × (distinct bytes + 1)`
//! instead of `nodes × 256`.

/// The missing-child sentinel in the goto trie during construction.
const NONE: u32 = u32::MAX;

/// A compiled multi-literal scanner; see the [module docs](self).
///
/// Each literal carries a `u32` tag (shard ids, in the sharded-set use);
/// several literals may share a tag, and [`Prefilter::find`] reports the
/// set of tags with at least one occurring literal.
#[derive(Clone, Debug)]
pub struct Prefilter {
    /// Byte → class; class 0 is the shared "occurs in no literal" class.
    classes: [u8; 256],
    /// Byte → "the root loops on it": no literal *starts* with this byte,
    /// so at the root it can be skipped without a table lookup — a
    /// strictly larger set than class 0 (bytes occurring only in literal
    /// middles/ends also loop on the root).
    root_skip: [bool; 256],
    num_classes: usize,
    /// Dense DFA table, `node * num_classes + class` → node.
    next: Vec<u32>,
    /// Tags completed at each node (own + along failure links), deduped.
    outputs: Vec<Vec<u32>>,
    /// Tags of empty literals: they occur in every haystack.
    always: Vec<u32>,
    literals: usize,
    tags: usize,
}

impl Prefilter {
    /// Compiles `literals` — `(needle, tag)` pairs — into a scanner.
    ///
    /// An empty needle occurs in every haystack (its tag is always
    /// reported); an empty `literals` list yields a scanner that reports
    /// nothing.
    pub fn new<I>(literals: I) -> Prefilter
    where
        I: IntoIterator<Item = (Vec<u8>, u32)>,
    {
        let mut always = Vec::new();
        let needles: Vec<(Vec<u8>, u32)> = literals
            .into_iter()
            .filter(|(lit, tag)| {
                if lit.is_empty() {
                    always.push(*tag);
                    false
                } else {
                    true
                }
            })
            .collect();
        always.sort_unstable();
        always.dedup();

        let mut classes = [0u8; 256];
        let mut num_classes = 1usize;
        for (lit, _) in &needles {
            for &b in lit {
                if classes[b as usize] == 0 {
                    classes[b as usize] = num_classes as u8;
                    num_classes += 1;
                }
            }
        }
        debug_assert!(num_classes <= 256);

        // Goto trie over classes. Node 0 is the root.
        let mut goto: Vec<Vec<u32>> = vec![vec![NONE; num_classes]];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        for (lit, tag) in &needles {
            let mut node = 0usize;
            for &b in lit {
                let c = classes[b as usize] as usize;
                if goto[node][c] == NONE {
                    goto[node][c] = goto.len() as u32;
                    goto.push(vec![NONE; num_classes]);
                    outputs.push(Vec::new());
                }
                node = goto[node][c] as usize;
            }
            outputs[node].push(*tag);
        }

        // BFS: failure links + DFA-ification + output merging, in one
        // pass (parents are finalized before their children enqueue).
        let nodes = goto.len();
        let mut next = vec![0u32; nodes * num_classes];
        let mut fail = vec![0u32; nodes];
        let mut queue = std::collections::VecDeque::new();
        for c in 0..num_classes {
            let child = goto[0][c];
            if child != NONE {
                next[c] = child;
                queue.push_back(child);
            }
        }
        while let Some(u) = queue.pop_front() {
            let (u, f) = (u as usize, fail[u as usize] as usize);
            let merged: Vec<u32> = outputs[f].clone();
            let out = &mut outputs[u];
            out.extend(merged);
            out.sort_unstable();
            out.dedup();
            for c in 0..num_classes {
                let child = goto[u][c];
                let via_fail = next[f * num_classes + c];
                if child == NONE {
                    next[u * num_classes + c] = via_fail;
                } else {
                    next[u * num_classes + c] = child;
                    fail[child as usize] = via_fail;
                    queue.push_back(child);
                }
            }
        }

        let tags = needles
            .iter()
            .map(|&(_, t)| t)
            .chain(always.iter().copied())
            .map(|t| t as usize + 1)
            .max()
            .unwrap_or(0);
        let literals = needles.len() + always.len();
        let mut root_skip = [false; 256];
        for (b, skip) in root_skip.iter_mut().enumerate() {
            *skip = next[classes[b] as usize] == 0;
        }
        Prefilter { classes, root_skip, num_classes, next, outputs, always, literals, tags }
    }

    /// The number of literals compiled in (empty ones included).
    pub fn literal_count(&self) -> usize {
        self.literals
    }

    /// The tag universe: one more than the largest tag, 0 when empty.
    pub fn tag_count(&self) -> usize {
        self.tags
    }

    /// The number of DFA nodes (the trie plus the root).
    pub fn node_count(&self) -> usize {
        self.outputs.len()
    }

    /// Heap footprint of the transition table, in bytes.
    pub fn table_bytes(&self) -> usize {
        self.next.len() * std::mem::size_of::<u32>()
    }

    /// The sorted tags whose literals occur in `haystack`.
    pub fn find(&self, haystack: &[u8]) -> Vec<u32> {
        let mut active = vec![false; self.tags];
        self.scan_into(haystack, &mut active);
        (0..self.tags as u32).filter(|&t| active[t as usize]).collect()
    }

    /// Marks `active[tag] = true` for every tag whose literals occur in
    /// `haystack`, early-exiting once every tag in `active` is marked.
    /// `active.len()` must be at least [`Self::tag_count`]. Returns how
    /// many tags this scan *newly* marked — 0 means the haystack added
    /// nothing over the incoming marks.
    pub(crate) fn scan_into(&self, haystack: &[u8], active: &mut [bool]) -> usize {
        let mut marked = 0usize;
        for &t in &self.always {
            if !active[t as usize] {
                active[t as usize] = true;
                marked += 1;
            }
        }
        let mut remaining = active.iter().filter(|&&a| !a).count();
        if remaining == 0 || self.outputs.len() <= 1 {
            return marked;
        }
        let nc = self.num_classes;
        let mut state = 0usize;
        let mut i = 0;
        while i < haystack.len() {
            if state == 0 {
                // Root fast path: bytes no literal starts with loop on
                // the root, so skip them without touching the table —
                // 8-wide and branchless per block, so the common "benign
                // stretch" case retires several bytes per cycle.
                let t = &self.root_skip;
                while i + 8 <= haystack.len() {
                    let all = t[haystack[i] as usize]
                        & t[haystack[i + 1] as usize]
                        & t[haystack[i + 2] as usize]
                        & t[haystack[i + 3] as usize]
                        & t[haystack[i + 4] as usize]
                        & t[haystack[i + 5] as usize]
                        & t[haystack[i + 6] as usize]
                        & t[haystack[i + 7] as usize];
                    if !all {
                        break;
                    }
                    i += 8;
                }
                while i < haystack.len() && t[haystack[i] as usize] {
                    i += 1;
                }
                if i >= haystack.len() {
                    return marked;
                }
            }
            let c = self.classes[haystack[i] as usize] as usize;
            state = self.next[state * nc + c] as usize;
            let out = &self.outputs[state];
            if !out.is_empty() {
                for &tag in out {
                    if !active[tag as usize] {
                        active[tag as usize] = true;
                        marked += 1;
                        remaining -= 1;
                    }
                }
                if remaining == 0 {
                    return marked;
                }
            }
            i += 1;
        }
        marked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(lits: &[(&str, u32)]) -> Prefilter {
        Prefilter::new(lits.iter().map(|&(l, t)| (l.as_bytes().to_vec(), t)))
    }

    #[test]
    fn classic_overlapping_needles() {
        // The textbook Aho–Corasick example: suffix links must fire
        // `he` inside `she` and `his`/`hers` around it.
        let p = filter(&[("he", 0), ("she", 1), ("his", 2), ("hers", 3)]);
        assert_eq!(p.find(b"ushers"), vec![0, 1, 3]);
        assert_eq!(p.find(b"this"), vec![2]);
        // a[his]hers also contains s-h-e across the seam: all four fire.
        assert_eq!(p.find(b"ahishers"), vec![0, 1, 2, 3]);
        assert_eq!(p.find(b"nothing of note"), Vec::<u32>::new());
    }

    #[test]
    fn shared_tags_and_gaps() {
        let p = filter(&[("select", 7), ("union", 7), ("attack", 2)]);
        assert_eq!(p.find(b"a union of attackers"), vec![2, 7]);
        assert_eq!(p.find(b"s-e-l-e-c-t"), Vec::<u32>::new());
        assert_eq!(p.tag_count(), 8);
        assert_eq!(p.literal_count(), 3);
    }

    #[test]
    fn needle_split_across_nothing_matches_only_contiguous() {
        let p = filter(&[("abc", 0)]);
        assert_eq!(p.find(b"ab c abc"), vec![0]);
        assert_eq!(p.find(b"ab cab c"), Vec::<u32>::new());
        assert_eq!(p.find(b""), Vec::<u32>::new());
    }

    #[test]
    fn empty_needle_always_fires() {
        let p = filter(&[("", 1), ("xyz", 0)]);
        assert_eq!(p.find(b""), vec![1]);
        assert_eq!(p.find(b"wxyz"), vec![0, 1]);
    }

    #[test]
    fn empty_prefilter_reports_nothing() {
        let p = Prefilter::new(Vec::<(Vec<u8>, u32)>::new());
        assert_eq!(p.find(b"anything"), Vec::<u32>::new());
        assert_eq!(p.tag_count(), 0);
        assert_eq!(p.table_bytes(), 4, "just the root over the catch-all class");
    }

    #[test]
    fn scan_into_respects_already_active_tags() {
        let p = filter(&[("aa", 0), ("bb", 1)]);
        let mut active = vec![true, false];
        assert_eq!(p.scan_into(b"xxbbxx", &mut active), 1, "only `bb` is newly marked");
        assert_eq!(active, vec![true, true]);
        // All-active: the early exit must not clear anything.
        let mut active = vec![true, true];
        assert_eq!(p.scan_into(b"no needles here", &mut active), 0);
        assert_eq!(active, vec![true, true]);
    }

    #[test]
    fn high_bytes_and_class_compression() {
        let p = Prefilter::new(vec![(vec![0xFF, 0x00, 0xFF], 0)]);
        assert_eq!(p.find(&[0x01, 0xFF, 0x00, 0xFF, 0x02]), vec![0]);
        assert_eq!(p.find(&[0xFF, 0x00, 0x00, 0xFF]), Vec::<u32>::new());
        // Two distinct bytes + the catch-all class.
        assert_eq!(p.table_bytes(), p.node_count() * 3 * 4);
    }

    #[test]
    fn long_benign_stretch_exercises_the_root_skip() {
        let mut hay = vec![b'.'; 1 << 16];
        hay.extend_from_slice(b"needle");
        hay.extend(vec![b'.'; 1 << 16]);
        let p = filter(&[("needle", 0)]);
        assert_eq!(p.find(&hay), vec![0]);
    }
}
