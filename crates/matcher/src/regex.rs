//! A high-level regular-expression matcher bundling the whole pipeline:
//! pattern → NFA → DFA → minimal DFA → D-SFA, with sequential (Algorithm 2),
//! speculative-parallel (Algorithm 3) and SFA-parallel (Algorithm 5)
//! execution.
//!
//! This is the API a downstream user of the library is expected to touch;
//! the lower-level crates stay available for research use.

use crate::parallel::ParallelSfaMatcher;
use crate::pool::{Engine, MIN_POOL_CHUNK_BYTES};
use crate::speculative::SpeculativeDfaMatcher;
use crate::stream::StreamMatcher;
use crate::Reduction;
use sfa_automata::{determinize, minimize, CompileError, Dfa, DfaConfig, Nfa};
use sfa_core::{BackendKind, DSfa, LazyDSfa, SfaBackend, SfaConfig, SizeReport};
use sfa_regex_syntax::ast::Ast;
use sfa_regex_syntax::class::{perl, ByteSet};
use sfa_regex_syntax::{Parser, ParserConfig};

/// How the pattern is applied to the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// The whole input must match the pattern (the paper's membership
    /// semantics: `w ∈ L(A)`).
    Whole,
    /// Some substring of the input must match the pattern (SNORT-style
    /// scanning). Implemented by matching `(?s:.)* pattern (?s:.)*` against
    /// the whole input, which keeps the data-parallel property intact.
    Contains,
}

/// Which D-SFA [backend](SfaBackend) the builder compiles, chosen via
/// [`RegexBuilder::backend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Always build the eager [`DSfa`] (Algorithm 4). Compilation fails
    /// with [`CompileError::TooManyStates`] when the automaton exceeds
    /// [`RegexBuilder::max_sfa_states`] — the historical behavior, and
    /// the default.
    #[default]
    Eager,
    /// Always build the on-the-fly [`LazyDSfa`] (Section V-A): states
    /// materialize at match time, at most one per input byte, so
    /// compilation never hits a state limit.
    Lazy,
    /// Compile eagerly, and **fall back to the lazy backend** when the
    /// eager construction exceeds [`RegexBuilder::max_sfa_states`] —
    /// instead of returning `TooManyStates`. This is how production
    /// engines pick a representation per pattern: dense tables when they
    /// fit, on-the-fly construction when they explode.
    Auto,
}

/// Builder for [`Regex`] with all pipeline knobs.
#[derive(Clone, Debug)]
pub struct RegexBuilder {
    parser: ParserConfig,
    dfa: DfaConfig,
    sfa: SfaConfig,
    backend: BackendChoice,
    mode: MatchMode,
    threads: usize,
    reduction: Reduction,
    engine: Option<Engine>,
}

impl Default for RegexBuilder {
    fn default() -> Self {
        RegexBuilder {
            parser: ParserConfig::default(),
            dfa: DfaConfig::default(),
            sfa: SfaConfig::default(),
            backend: BackendChoice::default(),
            mode: MatchMode::Whole,
            threads: default_threads(),
            reduction: Reduction::Sequential,
            engine: None,
        }
    }
}

/// The default worker count: one per available CPU.
///
/// Queried from the OS once and cached for the rest of the process, so
/// per-request hot paths can construct a [`RegexBuilder`] (which calls
/// this) without a syscall.
pub fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

impl RegexBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> RegexBuilder {
        RegexBuilder::default()
    }

    /// Case-insensitive matching.
    pub fn case_insensitive(mut self, yes: bool) -> Self {
        self.parser.case_insensitive = yes;
        self
    }

    /// Let `.` match `\n` too.
    pub fn dot_matches_newline(mut self, yes: bool) -> Self {
        self.parser.dot_matches_newline = yes;
        self
    }

    /// Whole-input or substring semantics.
    pub fn mode(mut self, mode: MatchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Disable or enable byte-class alphabet compression (enabled by
    /// default; disabling reproduces the paper's fixed 256-entry rows).
    pub fn compress_alphabet(mut self, yes: bool) -> Self {
        self.dfa.compress_alphabet = yes;
        self
    }

    /// DFA state limit.
    pub fn max_dfa_states(mut self, limit: usize) -> Self {
        self.dfa.max_states = limit;
        self
    }

    /// SFA state limit for the **eager** construction. What happens when
    /// it is exceeded depends on [`backend`](RegexBuilder::backend):
    /// `Eager` fails compilation, `Auto` falls back to the lazy backend,
    /// and `Lazy` never runs the eager construction at all (the lazy
    /// cache is bounded by the input, not by this limit — see the
    /// [knob matrix](sfa_core) in the core crate docs).
    pub fn max_sfa_states(mut self, limit: usize) -> Self {
        self.sfa.max_states = limit;
        self
    }

    /// Which D-SFA backend to compile: eager tables, on-the-fly (lazy)
    /// construction, or [`Auto`](BackendChoice::Auto) — eager with a lazy
    /// fallback when [`max_sfa_states`](RegexBuilder::max_sfa_states) is
    /// exceeded. Defaults to [`Eager`](BackendChoice::Eager).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Default parallelism used by `is_match` (and streaming / batching):
    /// the number of chunks the input is cut into, further capped at the
    /// engine's worker count at match time.
    ///
    /// `0` is treated as `1` — the [crate-wide `0 ⇒ 1` clamp](crate)
    /// (see "The `0 ⇒ 1` parallelism clamp" in the crate docs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Default reduction strategy used by `is_match`.
    pub fn reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// Execution engine for parallel matching. Defaults to the shared
    /// process-wide pool ([`Engine::global`], one worker per CPU); pass a
    /// dedicated [`Engine`] to control the worker count or pool lifetime.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Compiles the pattern through the full pipeline.
    pub fn build(&self, pattern: &str) -> Result<Regex, CompileError> {
        let parser = Parser::with_config(self.parser.clone());
        let ast = parser.parse(pattern)?;
        self.build_from_ast(pattern.to_string(), ast)
    }

    /// Compiles an already-parsed AST (shared by [`build`](Self::build) and
    /// [`RegexSet::new`], which needs to hand in ASTs no pattern string
    /// produces — e.g. the void language of an empty set).
    fn build_from_ast(&self, pattern: String, ast: Ast) -> Result<Regex, CompileError> {
        let ast = match self.mode {
            MatchMode::Whole => ast,
            MatchMode::Contains => Ast::concat(vec![
                Ast::star(Ast::Class(perl::any())),
                ast,
                Ast::star(Ast::Class(perl::any())),
            ]),
        };
        let nfa = Nfa::from_ast(&ast)?;
        let dfa = minimize(&determinize(&nfa, &self.dfa)?);
        let backend = match self.backend {
            BackendChoice::Eager => SfaBackend::Eager(DSfa::from_dfa(&dfa, &self.sfa)?),
            BackendChoice::Lazy => SfaBackend::Lazy(LazyDSfa::new(dfa.clone())),
            BackendChoice::Auto => match DSfa::from_dfa(&dfa, &self.sfa) {
                Ok(sfa) => SfaBackend::Eager(sfa),
                Err(CompileError::TooManyStates { .. }) => {
                    SfaBackend::Lazy(LazyDSfa::new(dfa.clone()))
                }
                Err(e) => return Err(e),
            },
        };
        Ok(Regex {
            pattern,
            mode: self.mode,
            threads: self.threads,
            reduction: self.reduction,
            engine: self.engine.clone(),
            nfa_states: nfa.num_states(),
            dfa,
            backend,
        })
    }
}

/// A compiled pattern with sequential and parallel matching.
///
/// Parallel matching runs on a persistent worker pool (the shared
/// [`Engine::global`] unless one was set via [`RegexBuilder::engine`]):
/// repeated `is_match` calls reuse the same long-lived threads, so the
/// process thread count stays constant however many matches are issued.
#[derive(Clone, Debug)]
pub struct Regex {
    pattern: String,
    mode: MatchMode,
    threads: usize,
    reduction: Reduction,
    engine: Option<Engine>,
    nfa_states: usize,
    dfa: Dfa,
    backend: SfaBackend,
}

impl Regex {
    /// Compiles a pattern with default settings (whole-input semantics).
    pub fn new(pattern: &str) -> Result<Regex, CompileError> {
        RegexBuilder::default().build(pattern)
    }

    /// Starts a builder.
    pub fn builder() -> RegexBuilder {
        RegexBuilder::default()
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The match semantics this regex was compiled with.
    pub fn mode(&self) -> MatchMode {
        self.mode
    }

    /// The minimal DFA backing this regex.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The D-SFA backend backing this regex — eager tables or the
    /// on-the-fly construction, depending on
    /// [`RegexBuilder::backend`] (and, for
    /// [`Auto`](BackendChoice::Auto), on whether the eager construction
    /// fit [`RegexBuilder::max_sfa_states`]).
    pub fn sfa(&self) -> &SfaBackend {
        &self.backend
    }

    /// Which backend this regex compiled to — useful for observing the
    /// [`Auto`](BackendChoice::Auto) decision.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Number of states of the intermediate NFA (Table II's `|N|`).
    pub fn nfa_states(&self) -> usize {
        self.nfa_states
    }

    /// Size report for this pattern (the Figure 3 data point). With a
    /// lazy backend the SFA-side numbers are a live snapshot of the
    /// materialized cache — query again after matching to see how many
    /// states the traffic visited (see [`SizeReport`]).
    pub fn size_report(&self) -> SizeReport {
        SizeReport::of_backend(&self.dfa, &self.backend)
    }

    /// The execution engine parallel matching runs on (the shared global
    /// pool unless one was configured via [`RegexBuilder::engine`]).
    pub fn engine(&self) -> &Engine {
        self.engine.as_ref().unwrap_or_else(|| Engine::global())
    }

    /// The default parallelism configured via [`RegexBuilder::threads`]
    /// (used by [`is_match`](Regex::is_match), streaming and batching).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Starts a [`StreamMatcher`]: incremental matching over input that
    /// arrives in blocks, with the same verdict as [`is_match`] on the
    /// concatenated stream. See [`crate::stream`].
    ///
    /// [`is_match`]: Regex::is_match
    ///
    /// ```
    /// use sfa_matcher::Regex;
    ///
    /// let re = Regex::new("(ab)*").unwrap();
    /// let mut stream = re.stream();
    /// stream.feed(b"aba").feed(b"bab");
    /// assert!(stream.finish()); // same as re.is_match(b"ababab")
    /// ```
    pub fn stream(&self) -> StreamMatcher<'_> {
        StreamMatcher::new(self)
    }

    /// Matches using the configured default thread count and reduction
    /// (parallel SFA matching when more than one thread is configured).
    pub fn is_match(&self, input: &[u8]) -> bool {
        if self.threads <= 1 {
            self.is_match_sequential(input)
        } else {
            self.is_match_parallel(input, self.threads, self.reduction)
        }
    }

    /// **Algorithm 2**: sequential DFA matching.
    pub fn is_match_sequential(&self, input: &[u8]) -> bool {
        self.dfa.accepts(input)
    }

    /// **Algorithm 5**: parallel SFA matching with an explicit parallelism
    /// degree and reduction strategy.
    ///
    /// `threads` caps the chunk count — the work runs on the configured
    /// persistent engine, so no threads are spawned per call and a request
    /// like `is_match_parallel(input, 10_000, ..)` uses at most the pool's
    /// worker count.
    pub fn is_match_parallel(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        ParallelSfaMatcher::with_engine(&self.backend, self.engine().clone())
            .accepts(input, threads, reduction)
    }

    /// **Algorithm 3**: the prior-art speculative parallel DFA matcher
    /// (kept as a baseline).
    pub fn is_match_speculative(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        SpeculativeDfaMatcher::with_engine(&self.dfa, self.engine().clone())
            .accepts(input, threads, reduction)
    }

    /// Matches many haystacks as **one** pool batch, returning one verdict
    /// per haystack (in order).
    ///
    /// This is the request-serving dual of chunk parallelism: instead of
    /// splitting one large input across workers, it spreads many (typically
    /// small) inputs across workers, paying one pool hand-off for the whole
    /// batch instead of one dispatch decision per call. Each small haystack
    /// is scanned sequentially (Algorithm 2) inside its worker — for the
    /// per-request inputs this API exists for, that is the fastest path. A
    /// haystack large enough that a plain [`is_match`](Regex::is_match)
    /// would cut it into pool chunks is matched that way instead, so a
    /// size-skewed batch never serializes its biggest element on one
    /// worker.
    ///
    /// The small haystacks are cut into at most
    /// [`threads`](RegexBuilder::threads) contiguous shards (capped at the
    /// engine's worker count); batches whose total size is too small to
    /// amortize the hand-off run inline.
    ///
    /// ```
    /// use sfa_matcher::Regex;
    ///
    /// let re = Regex::new("(ab)*").unwrap();
    /// let verdicts = re.is_match_batch(&[&b"abab"[..], b"aba", b""]);
    /// assert_eq!(verdicts, vec![true, false, true]);
    /// ```
    pub fn is_match_batch(&self, haystacks: &[&[u8]]) -> Vec<bool> {
        let engine = self.engine();
        let shards = self.threads.clamp(1, engine.workers());
        let mut out = vec![false; haystacks.len()];
        // Oversized haystacks go through their own chunk-parallel plan;
        // everything below the pool threshold is collected for sharding.
        let mut small: Vec<usize> = Vec::with_capacity(haystacks.len());
        for (i, h) in haystacks.iter().enumerate() {
            if engine.plan_chunks(h.len(), self.threads).use_pool {
                out[i] = self.is_match_parallel(h, self.threads, self.reduction);
            } else {
                small.push(i);
            }
        }
        let total: usize = small.iter().map(|&i| haystacks[i].len()).sum();
        if shards <= 1 || small.len() <= 1 || total / shards < MIN_POOL_CHUNK_BYTES {
            for &i in &small {
                out[i] = self.is_match_sequential(haystacks[i]);
            }
            return out;
        }
        let shard_len = small.len().div_ceil(shards);
        let verdicts = engine
            .map_chunks(small.chunks(shard_len).collect(), true, |_, shard| {
                shard.iter().map(|&i| self.is_match_sequential(haystacks[i])).collect::<Vec<_>>()
            })
            .concat();
        for (&i, v) in small.iter().zip(verdicts) {
            out[i] = v;
        }
        out
    }
}

/// A set of patterns compiled into one automaton ("does any pattern
/// match?"), the way an IDS engine batches its ruleset.
#[derive(Clone, Debug)]
pub struct RegexSet {
    patterns: Vec<String>,
    regex: Regex,
}

impl RegexSet {
    /// Compiles the alternation of all patterns with the given builder
    /// settings.
    ///
    /// An **empty** pattern list compiles to the *void* language: a set
    /// with no rules matches nothing, in either match mode. (The union of
    /// zero languages is empty — it is not the empty *string*, which an
    /// empty alternation AST would otherwise collapse to.)
    pub fn new<'a, I>(patterns: I, builder: &RegexBuilder) -> Result<RegexSet, CompileError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let patterns: Vec<String> = patterns.into_iter().map(|s| s.to_string()).collect();
        if patterns.is_empty() {
            let void = Ast::Class(ByteSet::EMPTY);
            let label = sfa_regex_syntax::to_pattern(&void);
            let regex = builder.build_from_ast(label, void)?;
            return Ok(RegexSet { patterns, regex });
        }
        let parser = Parser::with_config(builder.parser.clone());
        let mut branches = Vec::with_capacity(patterns.len());
        for p in &patterns {
            branches.push(parser.parse(p)?);
        }
        let union = sfa_regex_syntax::to_pattern(&Ast::alternation(branches));
        let regex = builder.build(&union)?;
        Ok(RegexSet { patterns, regex })
    }

    /// The individual patterns.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// The combined regex.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// True if any pattern matches (under the builder's match mode).
    pub fn is_match(&self, input: &[u8]) -> bool {
        self.regex.is_match(input)
    }

    /// Matches many haystacks as one pool batch — "does any pattern match
    /// this request?", amortized across the whole batch. Verdicts are in
    /// haystack order. See [`Regex::is_match_batch`].
    pub fn match_batch(&self, haystacks: &[&[u8]]) -> Vec<bool> {
        self.regex.is_match_batch(haystacks)
    }

    /// Starts a [`StreamMatcher`] over the combined automaton: incremental
    /// "does any pattern match?" over input arriving in blocks. See
    /// [`crate::stream`].
    pub fn stream(&self) -> StreamMatcher<'_> {
        self.regex.stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_match_defaults() {
        let re = Regex::new("(ab)*").unwrap();
        assert!(re.is_match(b"abab"));
        assert!(!re.is_match(b"aba"));
        assert!(re.is_match_sequential(b""));
        assert_eq!(re.pattern(), "(ab)*");
        assert_eq!(re.mode(), MatchMode::Whole);
        assert!(re.nfa_states() > 0);
        assert_eq!(re.size_report().sfa_states, re.sfa().num_states());
    }

    #[test]
    fn all_three_algorithms_agree() {
        let re = Regex::new("([0-4]{3}[5-9]{3})*").unwrap();
        let inputs: Vec<&[u8]> = vec![b"", b"000555", b"000555111666", b"00055", b"555000"];
        for input in inputs {
            let expected = re.is_match_sequential(input);
            for threads in [1, 2, 4] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(re.is_match_parallel(input, threads, reduction), expected);
                    assert_eq!(re.is_match_speculative(input, threads, reduction), expected);
                }
            }
        }
    }

    #[test]
    fn contains_mode_scans_substrings() {
        let re = Regex::builder().mode(MatchMode::Contains).build("attack[0-9]{2}").unwrap();
        assert!(re.is_match(b"GET /attack42/index.html"));
        assert!(re.is_match(b"attack99"));
        assert!(!re.is_match(b"attack"));
        assert!(!re.is_match(b"benign traffic"));
        // Parallel contains matching agrees with sequential.
        let text = b"xxxxxxxxxxxxxxxxattack77yyyyyyyyyyyyyyyy";
        for threads in [2, 4, 8] {
            assert!(re.is_match_parallel(text, threads, Reduction::Sequential));
        }
    }

    #[test]
    fn case_insensitive_builder() {
        let re = Regex::builder().case_insensitive(true).build("select").unwrap();
        assert!(re.is_match(b"SELECT"));
        assert!(re.is_match(b"SeLeCt"));
        assert!(!re.is_match(b"SELEC"));
    }

    #[test]
    fn threads_and_reduction_defaults_apply() {
        let re = Regex::builder().threads(3).reduction(Reduction::Tree).build("(ab)*").unwrap();
        assert!(re.is_match(b"ababab"));
        assert!(!re.is_match(b"b"));
    }

    #[test]
    fn state_limits_propagate() {
        let err = Regex::builder().max_sfa_states(4).build("([0-4]{3}[5-9]{3})*").unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 4 });
        let err = Regex::builder().max_dfa_states(2).build("abcdef").unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 2 });
    }

    #[test]
    fn explicit_lazy_backend_matches_like_eager() {
        let eager = Regex::builder().backend(BackendChoice::Eager).build("(ab)*").unwrap();
        let lazy = Regex::builder().backend(BackendChoice::Lazy).build("(ab)*").unwrap();
        assert_eq!(eager.backend_kind(), sfa_core::BackendKind::Eager);
        assert_eq!(lazy.backend_kind(), sfa_core::BackendKind::Lazy);
        for input in [&b""[..], b"ab", b"abab", b"aba", b"zz"] {
            assert_eq!(eager.is_match(input), lazy.is_match(input), "{input:?}");
            for threads in [1, 4] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(
                        eager.is_match_parallel(input, threads, reduction),
                        lazy.is_match_parallel(input, threads, reduction)
                    );
                }
            }
        }
        // The lazy report is live: it grows as inputs visit states.
        assert!(lazy.size_report().materialized_states <= eager.size_report().sfa_states);
    }

    #[test]
    fn auto_backend_falls_back_to_lazy_when_eager_explodes() {
        // Under the 4-state cap the eager construction fails…
        let pattern = "([0-4]{3}[5-9]{3})*";
        let eager_err =
            Regex::builder().max_sfa_states(4).backend(BackendChoice::Eager).build(pattern);
        assert!(matches!(eager_err, Err(CompileError::TooManyStates { limit: 4 })));
        // …so Auto compiles the same pattern lazily instead of erroring.
        let auto =
            Regex::builder().max_sfa_states(4).backend(BackendChoice::Auto).build(pattern).unwrap();
        assert_eq!(auto.backend_kind(), sfa_core::BackendKind::Lazy);
        assert!(auto.is_match(b"000555"));
        assert!(!auto.is_match(b"00055"));
        assert!(auto.is_match_parallel(&b"000555111666".repeat(64), 4, Reduction::Tree));
        // The lazy cache may exceed the *eager* cap — that cap is about
        // up-front construction, not about visited states.
        let report = auto.size_report();
        assert_eq!(report.backend, sfa_core::BackendKind::Lazy);
        assert!(report.materialized_states >= 1);

        // When the eager construction fits, Auto keeps it.
        let auto = Regex::builder().backend(BackendChoice::Auto).build("(ab)*").unwrap();
        assert_eq!(auto.backend_kind(), sfa_core::BackendKind::Eager);
        assert_eq!(auto.size_report().sfa_states, 6);

        // Non-state-limit errors still propagate under Auto.
        assert!(Regex::builder().backend(BackendChoice::Auto).build("(unclosed").is_err());
        let err = Regex::builder().backend(BackendChoice::Auto).max_dfa_states(2).build("abcdef");
        assert!(matches!(err, Err(CompileError::TooManyStates { limit: 2 })));
    }

    #[test]
    fn auto_fallback_streams_and_batches_correctly() {
        let auto = Regex::builder()
            .max_sfa_states(8)
            .backend(BackendChoice::Auto)
            .mode(MatchMode::Contains)
            .build("needle[0-9]{3}")
            .unwrap();
        assert_eq!(auto.backend_kind(), sfa_core::BackendKind::Lazy);
        let mut stream = auto.stream();
        stream.feed(b"xxxneed").feed(b"le04").feed(b"2yyy");
        assert!(stream.finish());
        assert_eq!(stream.verdict(), Some(true), "Contains hit saturates on the lazy backend too");
        assert_eq!(
            auto.is_match_batch(&[&b"needle042"[..], b"needle04", b"zz needle123 zz"]),
            vec![true, false, true]
        );
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("a{5,2}").is_err());
    }

    #[test]
    fn regex_set_matches_any_pattern() {
        let set = RegexSet::new(
            ["GET /[a-z]+", "POST /login", "HEAD /status"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        assert_eq!(set.patterns().len(), 3);
        assert!(set.is_match(b"GET /index HTTP/1.1"));
        assert!(set.is_match(b"POST /login HTTP/1.1"));
        assert!(set.is_match(b"HEAD /status"));
        assert!(!set.is_match(b"PUT /upload"));
        assert!(set.regex().sfa().num_states() > 0);
    }

    #[test]
    fn empty_regex_set_matches_nothing() {
        // The empty union is the empty *language*, not the empty string:
        // previously Ast::alternation([]) collapsed to Ast::Empty, so an
        // empty set matched "" in Whole mode and *everything* in Contains
        // mode.
        let set = RegexSet::new([], &Regex::builder()).unwrap();
        assert!(set.patterns().is_empty());
        assert!(!set.is_match(b""));
        assert!(!set.is_match(b"anything"));

        let contains = RegexSet::new([], &Regex::builder().mode(MatchMode::Contains)).unwrap();
        assert!(!contains.is_match(b""));
        assert!(!contains.is_match(b"GET /index HTTP/1.1"));
        assert_eq!(contains.match_batch(&[&b""[..], b"x", b"attack"]), vec![false; 3]);

        // A single-pattern set still behaves exactly like its one pattern.
        let single = RegexSet::new(["(ab)*"], &Regex::builder()).unwrap();
        assert_eq!(single.patterns().len(), 1);
        assert!(single.is_match(b"abab"));
        assert!(single.is_match(b""));
        assert!(!single.is_match(b"aba"));
    }

    #[test]
    fn default_threads_is_cached_and_sane() {
        let first = default_threads();
        assert!(first >= 1);
        // Cached: repeated calls agree (and are a single atomic load).
        for _ in 0..1000 {
            assert_eq!(default_threads(), first);
        }
        assert_eq!(RegexBuilder::default().threads, first);
    }

    #[test]
    fn batch_matching_agrees_with_per_call() {
        let engine = Engine::new(4);
        let re = Regex::builder().engine(engine).threads(4).build("(ab)*").unwrap();
        // Haystacks big enough (in total) to engage the pool.
        let accepted = b"ab".repeat(4096);
        let rejected = b"ab".repeat(4095 + 1)[..8191].to_vec();
        // One oversized haystack (its own plan engages the pool) mixed into
        // the small ones: it takes the chunk-parallel path, not a shard.
        let huge = b"ab".repeat(128 * 1024);
        let mut haystacks: Vec<&[u8]> = Vec::new();
        for i in 0..64 {
            haystacks.push(if i % 3 == 0 { &rejected } else { &accepted });
        }
        haystacks.push(b"");
        haystacks.push(b"ab");
        haystacks.push(&huge);
        haystacks.push(b"ba");
        let expected: Vec<bool> = haystacks.iter().map(|h| re.is_match(h)).collect();
        assert_eq!(re.is_match_batch(&haystacks), expected);
        // Degenerate batches stay inline and correct.
        assert_eq!(re.is_match_batch(&[]), Vec::<bool>::new());
        assert_eq!(re.is_match_batch(&[&b"abab"[..]]), vec![true]);
    }

    #[test]
    fn zero_parallelism_clamps_to_one_everywhere() {
        // The crate-wide rule: requesting 0 units of parallelism means
        // sequential execution — identical to requesting 1, never a panic
        // and never "no work".
        let re = Regex::builder().threads(0).build("(ab)*").unwrap();
        assert!(re.is_match(b"abab"));
        assert!(!re.is_match(b"aba"));
        assert!(re.is_match_parallel(b"abab", 0, Reduction::Tree));
        assert!(re.is_match_speculative(b"abab", 0, Reduction::Sequential));
        // split_chunks applies the same clamp…
        assert_eq!(crate::split_chunks(b"xyz", 0), crate::split_chunks(b"xyz", 1));
        // …and so do the pool and the chunk planner.
        let engine = Engine::new(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.plan_chunks(1 << 20, 0).chunks, 1);
    }

    #[test]
    fn dedicated_engine_is_used_for_parallel_matching() {
        let engine = Engine::new(3);
        let re = Regex::builder()
            .engine(engine)
            .threads(3)
            .reduction(Reduction::Tree)
            .build("([0-4]{2}[5-9]{2})*")
            .unwrap();
        assert_eq!(re.engine().workers(), 3);
        let text = b"00550459".repeat(8 * 1024); // 64 KiB → pool path
        assert!(re.engine().plan_chunks(text.len(), 3).use_pool);
        assert!(re.is_match(&text));
        assert!(re.is_match_parallel(&text, 3, Reduction::Sequential));
        // Default-engine regexes report the shared global pool.
        let plain = Regex::new("(ab)*").unwrap();
        assert_eq!(plain.engine().workers(), Engine::global().workers());
    }

    #[test]
    fn uncompressed_alphabet_option() {
        let re = Regex::builder().compress_alphabet(false).build("(ab)*").unwrap();
        assert_eq!(re.dfa().num_classes(), 256);
        assert!(re.is_match(b"abab"));
    }
}
