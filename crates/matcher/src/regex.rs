//! A high-level regular-expression matcher bundling the whole pipeline:
//! pattern → NFA → DFA → minimal DFA → D-SFA, with sequential (Algorithm 2),
//! speculative-parallel (Algorithm 3) and SFA-parallel (Algorithm 5)
//! execution.
//!
//! This is the API a downstream user of the library is expected to touch;
//! the lower-level crates stay available for research use.

use crate::error::Error;
use crate::matches::SetMatches;
use crate::parallel::ParallelSfaMatcher;
use crate::pool::{Engine, MIN_POOL_CHUNK_BYTES};
use crate::prefilter::Prefilter;
use crate::shard::{Shard, ShardedSet};
use crate::speculative::SpeculativeDfaMatcher;
use crate::strategy::Strategy;
use crate::stream::{SetStream, StreamMatcher};
use crate::Reduction;
use sfa_automata::{
    determinize, minimize, CompileError, Dfa, DfaConfig, Nfa, PatternId, PatternSet, StateId,
};
use sfa_core::{BackendKind, DSfa, LazyDSfa, SfaBackend, SfaConfig, SizeReport, StateIdRepr};
use sfa_regex_syntax::ast::Ast;
use sfa_regex_syntax::class::perl;
use sfa_regex_syntax::{Parser, ParserConfig};
use std::collections::HashMap;

/// How the pattern is applied to the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// The whole input must match the pattern (the paper's membership
    /// semantics: `w ∈ L(A)`).
    Whole,
    /// Some substring of the input must match the pattern (SNORT-style
    /// scanning). Implemented by matching `(?s:.)* pattern (?s:.)*` against
    /// the whole input, which keeps the data-parallel property intact.
    Contains,
}

/// Which D-SFA [backend](SfaBackend) the builder compiles, chosen via
/// [`RegexBuilder::backend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Always build the eager [`DSfa`] (Algorithm 4). Compilation fails
    /// with [`CompileError::TooManyStates`] when the automaton exceeds
    /// [`RegexBuilder::max_sfa_states`] — the historical behavior, and
    /// the default.
    #[default]
    Eager,
    /// Always build the on-the-fly [`LazyDSfa`] (Section V-A): states
    /// materialize at match time, at most one per input byte, so
    /// compilation never hits a state limit.
    Lazy,
    /// Compile eagerly, and **fall back to the lazy backend** when the
    /// eager construction exceeds [`RegexBuilder::max_sfa_states`] —
    /// instead of returning `TooManyStates`. This is how production
    /// engines pick a representation per pattern: dense tables when they
    /// fit, on-the-fly construction when they explode.
    Auto,
}

/// Builder for [`Regex`] with all pipeline knobs.
#[derive(Clone, Debug)]
pub struct RegexBuilder {
    pub(crate) parser: ParserConfig,
    pub(crate) dfa: DfaConfig,
    pub(crate) sfa: SfaConfig,
    pub(crate) backend: BackendChoice,
    pub(crate) mode: MatchMode,
    pub(crate) threads: usize,
    pub(crate) reduction: Reduction,
    pub(crate) engine: Option<Engine>,
    pub(crate) track_patterns: bool,
    pub(crate) shard_budget: Option<usize>,
}

impl Default for RegexBuilder {
    fn default() -> Self {
        RegexBuilder {
            parser: ParserConfig::default(),
            dfa: DfaConfig::default(),
            sfa: SfaConfig::default(),
            backend: BackendChoice::default(),
            mode: MatchMode::Whole,
            threads: default_threads(),
            reduction: Reduction::Sequential,
            engine: None,
            track_patterns: true,
            shard_budget: None,
        }
    }
}

/// The default worker count: one per available CPU.
///
/// Queried from the OS once and cached for the rest of the process, so
/// per-request hot paths can construct a [`RegexBuilder`] (which calls
/// this) without a syscall.
pub fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

impl RegexBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> RegexBuilder {
        RegexBuilder::default()
    }

    /// Case-insensitive matching.
    pub fn case_insensitive(mut self, yes: bool) -> Self {
        self.parser.case_insensitive = yes;
        self
    }

    /// Let `.` match `\n` too.
    pub fn dot_matches_newline(mut self, yes: bool) -> Self {
        self.parser.dot_matches_newline = yes;
        self
    }

    /// Whole-input or substring semantics.
    pub fn mode(mut self, mode: MatchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Disable or enable byte-class alphabet compression (enabled by
    /// default; disabling reproduces the paper's fixed 256-entry rows).
    pub fn compress_alphabet(mut self, yes: bool) -> Self {
        self.dfa.compress_alphabet = yes;
        self
    }

    /// DFA state limit.
    pub fn max_dfa_states(mut self, limit: usize) -> Self {
        self.dfa.max_states = limit;
        self
    }

    /// SFA state limit for the **eager** construction. What happens when
    /// it is exceeded depends on [`backend`](RegexBuilder::backend):
    /// `Eager` fails compilation, `Auto` falls back to the lazy backend,
    /// and `Lazy` never runs the eager construction at all (the lazy
    /// cache is bounded by the input, not by this limit — see the
    /// [knob matrix](sfa_core) in the core crate docs).
    pub fn max_sfa_states(mut self, limit: usize) -> Self {
        self.sfa.max_states = limit;
        self
    }

    /// Which D-SFA backend to compile: eager tables, on-the-fly (lazy)
    /// construction, or [`Auto`](BackendChoice::Auto) — eager with a lazy
    /// fallback when [`max_sfa_states`](RegexBuilder::max_sfa_states) is
    /// exceeded. Defaults to [`Eager`](BackendChoice::Eager).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Forces the packed state-id width of the **eager** D-SFA transition
    /// tables instead of the automatic narrowest-fit choice (`u8` up to
    /// 256 SFA states, `u16` up to 65 536, `u32` beyond). An override
    /// narrower than the automaton requires is silently widened — it can
    /// never truncate a state id — so the practical use is forcing a
    /// *wider* width, e.g. [`StateIdRepr::U32`] to benchmark the packed
    /// tables against the unpacked baseline on identical automata. Lazy
    /// backends ignore it (see [`SfaConfig::repr`]).
    pub fn state_id_repr(mut self, repr: StateIdRepr) -> Self {
        self.sfa.repr = Some(repr);
        self
    }

    /// Default parallelism used by `is_match` (and streaming / batching):
    /// the number of chunks the input is cut into, further capped at the
    /// engine's worker count at match time.
    ///
    /// `0` is treated as `1` — the [crate-wide `0 ⇒ 1` clamp](crate)
    /// (see "The `0 ⇒ 1` parallelism clamp" in the crate docs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Default reduction strategy used by `is_match`.
    pub fn reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// Execution engine for parallel matching. Defaults to the shared
    /// process-wide pool ([`Engine::global`], one worker per CPU); pass a
    /// dedicated [`Engine`] to control the worker count or pool lifetime.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Whether a multi-pattern [`RegexSet`] keeps each pattern's identity
    /// through compilation (default `true`).
    ///
    /// Per-rule verdicts have an automaton-size cost: the DFA must
    /// remember *which* rules already matched, and every hit-combination
    /// of independent `Contains` rules is reachable, so it can grow with
    /// `2^rules`. A set that will only ever be asked the any-match
    /// questions ([`RegexSet::is_match`] / [`RegexSet::match_batch`] /
    /// [`StreamMatcher::finish`]) can pass `false` to compile the plain
    /// union instead — the pre-per-rule automaton, often several times
    /// smaller. On such a set the per-rule APIs ([`RegexSet::matches`]
    /// and friends) panic rather than misreport.
    ///
    /// Single-pattern [`Regex::new`]/[`build`](RegexBuilder::build)
    /// compilations are unaffected (one pattern tracks for free).
    pub fn track_patterns(mut self, yes: bool) -> Self {
        self.track_patterns = yes;
        self
    }

    /// Auto-shard multi-pattern [`RegexSet`] compilations so that no
    /// shard's product DFA exceeds `budget` determinized states.
    ///
    /// Tracked `Contains`-mode rule sets pay an exponential price for
    /// per-rule verdicts: the combined DFA must remember which rules
    /// already hit, and every hit-combination of independent rules is
    /// reachable, so it can grow with `2^rules`. With a budget set, the
    /// builder instead packs the rules greedily into **shards** — each
    /// extended one rule at a time for as long as an incremental
    /// determinization stays within the budget — and compiles each shard
    /// through the ordinary [`backend`](RegexBuilder::backend) path. The
    /// per-shard verdicts are merged behind the unchanged
    /// [`RegexSet::matches`] / [`RegexSet::matches_batch`] /
    /// [`SetStream::set_matches`] API, so callers only see that compile
    /// time and memory stop exploding.
    ///
    /// A rule whose *own* DFA exceeds the budget gets a **singleton
    /// shard** compiled under the full
    /// [`max_dfa_states`](RegexBuilder::max_dfa_states) limit instead
    /// (marked [`Shard::is_fallback`]) — one pathological rule degrades
    /// only itself. Shards whose every rule has a
    /// [required literal](sfa_regex_syntax::required_literals) are
    /// additionally gated behind a multi-literal [`Prefilter`]: their
    /// automata are only consulted on haystacks where a literal occurs.
    ///
    /// Only [`RegexSet::new`] with ≥ 2 distinct patterns shards;
    /// single-pattern and [`build`](RegexBuilder::build) compilations
    /// ignore the budget.
    pub fn shard_state_budget(mut self, budget: usize) -> Self {
        self.shard_budget = Some(budget);
        self
    }

    /// Compiles the pattern through the full pipeline.
    pub fn build(&self, pattern: &str) -> Result<Regex, CompileError> {
        let parser = Parser::with_config(self.parser.clone());
        let ast = parser.parse(pattern)?;
        self.build_from_asts(pattern.to_string(), vec![ast])
    }

    /// Compiles already-parsed pattern ASTs, one per branch (shared by
    /// [`build`](Self::build) and [`RegexSet::new`], which hands its
    /// branches in directly — no re-serialize/re-parse round trip).
    ///
    /// Each branch keeps its identity: branch `i`'s accept states are
    /// tagged with pattern id `i` through the NFA → DFA → D-SFA pipeline,
    /// so [`Regex::matches`] can report *which* branches fired. In
    /// `Contains` mode every branch is wrapped in `(?s:.)*…(?s:.)*`
    /// individually, preserving per-branch verdicts for substring scans.
    /// An empty branch list compiles to the void language (the union of
    /// zero languages).
    fn build_from_asts(&self, pattern: String, branches: Vec<Ast>) -> Result<Regex, CompileError> {
        let (branches, collapsed_patterns) = self.wrap_branches(branches);
        let nfa = union_nfa(&branches)?;
        let dfa = determinize(&nfa, &self.dfa)?;
        self.finish_regex(pattern, nfa.num_states(), &dfa, collapsed_patterns)
    }

    /// Applies the pre-NFA AST transformations: collapse into a plain
    /// union when tracking is off (the historical any-match automaton —
    /// never for an empty list: `Ast::alternation([])` is the empty
    /// *string*, not the empty language, see [`RegexSet::new`]), then the
    /// per-branch `(?s:.)*…(?s:.)*` wrap in `Contains` mode. Returns the
    /// transformed branches and whether they were collapsed. Shared with
    /// the shard packer, whose trial determinizations must measure
    /// exactly what the final compile will build.
    pub(crate) fn wrap_branches(&self, branches: Vec<Ast>) -> (Vec<Ast>, bool) {
        let collapsed = !self.track_patterns && branches.len() > 1;
        let branches = if collapsed { vec![Ast::alternation(branches)] } else { branches };
        let branches = branches
            .into_iter()
            .map(|ast| match self.mode {
                MatchMode::Whole => ast,
                MatchMode::Contains => Ast::concat(vec![
                    Ast::star(Ast::Class(perl::any())),
                    ast,
                    Ast::star(Ast::Class(perl::any())),
                ]),
            })
            .collect();
        (branches, collapsed)
    }

    /// The back half of the pipeline: minimize a determinized DFA, pick
    /// the D-SFA backend, and assemble the [`Regex`]. Split from
    /// [`build`](Self::build) so the shard packer can reuse the DFA of
    /// its last successful trial determinization instead of running the
    /// subset construction twice.
    pub(crate) fn finish_regex(
        &self,
        pattern: String,
        nfa_states: usize,
        raw_dfa: &Dfa,
        collapsed_patterns: bool,
    ) -> Result<Regex, CompileError> {
        let dfa = minimize(raw_dfa);
        debug_assert_eq!(dfa.validate(), Ok(()), "minimized DFA failed invariant validation");
        let backend = match self.backend {
            BackendChoice::Eager => SfaBackend::Eager(DSfa::from_dfa(&dfa, &self.sfa)?),
            BackendChoice::Lazy => SfaBackend::Lazy(LazyDSfa::new(dfa.clone())),
            BackendChoice::Auto => match DSfa::from_dfa(&dfa, &self.sfa) {
                Ok(sfa) => SfaBackend::Eager(sfa),
                Err(CompileError::TooManyStates { .. }) => {
                    SfaBackend::Lazy(LazyDSfa::new(dfa.clone()))
                }
                Err(e) => return Err(e),
            },
        };
        Ok(Regex {
            pattern,
            mode: self.mode,
            threads: self.threads,
            reduction: self.reduction,
            engine: self.engine.clone(),
            nfa_states,
            dfa,
            backend,
            collapsed_patterns,
            decided: std::sync::OnceLock::new(),
            convergence: std::sync::OnceLock::new(),
            convergence_summary: None,
        })
    }
}

/// The NFA of a branch list. The single-branch path skips the shared
/// ε-start state of the tagged union, keeping solo compilations
/// byte-identical to the historical pipeline.
pub(crate) fn union_nfa(branches: &[Ast]) -> Result<Nfa, CompileError> {
    match branches {
        [only] => Nfa::from_ast(only),
        many => Nfa::from_asts(many),
    }
}

/// A compiled pattern with sequential and parallel matching.
///
/// Parallel matching runs on a persistent worker pool (the shared
/// [`Engine::global`] unless one was set via [`RegexBuilder::engine`]):
/// repeated `is_match` calls reuse the same long-lived threads, so the
/// process thread count stays constant however many matches are issued.
#[derive(Clone, Debug)]
pub struct Regex {
    pattern: String,
    mode: MatchMode,
    threads: usize,
    reduction: Reduction,
    engine: Option<Engine>,
    nfa_states: usize,
    dfa: Dfa,
    backend: SfaBackend,
    /// True when multiple patterns were collapsed into one any-match
    /// union by [`RegexBuilder::track_patterns`]`(false)`: per-rule
    /// verdict APIs must refuse rather than misreport.
    collapsed_patterns: bool,
    /// Per-DFA-state verdict-finality bitmaps for streaming, computed on
    /// first use (only streams consult them; plain matching never pays).
    decided: std::sync::OnceLock<DecidedMaps>,
    /// Offline convergence analysis of the DFA, computed on first use
    /// (by [`Strategy::Auto`] resolution, speculative runs and
    /// [`Regex::size_report`]).
    convergence: std::sync::OnceLock<sfa_analysis::ConvergenceReport>,
    /// The durable projection of the convergence analysis carried by an
    /// artifact ([`Regex::from_artifact`]). Lets [`Strategy::Auto`] and
    /// [`Regex::size_report`] answer without re-running the reach-set
    /// analysis; an actual guided speculative run still computes the full
    /// report (it needs the per-state entry sets, not just the class).
    convergence_summary: Option<sfa_analysis::ConvergenceSummary>,
}

/// Which stream verdicts are final in which DFA states (see
/// [`Dfa::verdict_decided_states`] / [`Dfa::accept_set_decided_states`]).
#[derive(Clone, Debug)]
pub(crate) struct DecidedMaps {
    /// The boolean any-match verdict can no longer change.
    pub(crate) any: Vec<bool>,
    /// The full per-pattern accept set can no longer change.
    pub(crate) set: Vec<bool>,
}

impl Regex {
    /// Compiles a pattern with default settings (whole-input semantics).
    pub fn new(pattern: &str) -> Result<Regex, CompileError> {
        RegexBuilder::default().build(pattern)
    }

    /// Starts a builder.
    pub fn builder() -> RegexBuilder {
        RegexBuilder::default()
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The match semantics this regex was compiled with.
    pub fn mode(&self) -> MatchMode {
        self.mode
    }

    /// The minimal DFA backing this regex.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The D-SFA backend backing this regex — eager tables or the
    /// on-the-fly construction, depending on
    /// [`RegexBuilder::backend`] (and, for
    /// [`Auto`](BackendChoice::Auto), on whether the eager construction
    /// fit [`RegexBuilder::max_sfa_states`]).
    pub fn sfa(&self) -> &SfaBackend {
        &self.backend
    }

    /// Which backend this regex compiled to — useful for observing the
    /// [`Auto`](BackendChoice::Auto) decision.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Number of states of the intermediate NFA (Table II's `|N|`).
    pub fn nfa_states(&self) -> usize {
        self.nfa_states
    }

    /// Size report for this pattern (the Figure 3 data point). With a
    /// lazy backend the SFA-side numbers are a live snapshot of the
    /// materialized cache — query again after matching to see how many
    /// states the traffic visited (see [`SizeReport`]).
    pub fn size_report(&self) -> SizeReport {
        let mut report = SizeReport::of_backend(&self.dfa, &self.backend);
        // The durable summary answers the report's two convergence fields
        // without the full reach-set analysis — on artifact-loaded
        // regexes, size reporting stays a metadata read.
        let (horizon, survivors) = match (self.convergence.get(), &self.convergence_summary) {
            (Some(full), _) => (full.compaction_horizon(), full.survivor_count()),
            (None, Some(summary)) => (summary.compaction_horizon(), summary.survivor_count()),
            (None, None) => {
                let full = self.convergence_report();
                (full.compaction_horizon(), full.survivor_count())
            }
        };
        report.convergence_horizon = horizon;
        report.survivor_states = survivors;
        report
    }

    /// The offline convergence analysis of this regex's DFA, computed on
    /// first use and cached for the regex's lifetime: reach sets, reset
    /// word, dead/sink maps and the
    /// [`ConvergenceClass`](sfa_analysis::ConvergenceClass) verdict that
    /// steers [`Strategy::Auto`] (see [`Regex::auto_strategy`]).
    pub fn convergence_report(&self) -> &sfa_analysis::ConvergenceReport {
        self.convergence.get_or_init(|| sfa_analysis::ConvergenceReport::analyze(&self.dfa))
    }

    /// Serializes this regex's compiled automata into a durable artifact
    /// (see [`sfa_serialize`]): the DFA, the eager D-SFA tables at their
    /// packed width, the decided-state bitmaps, and the convergence
    /// summary (computed now if it never ran — artifact encoding is the
    /// build-time step, so the analysis cost belongs here, not at load).
    ///
    /// Only eager backends serialize
    /// ([`Error::ArtifactRequiresEagerBackend`] otherwise): a lazy
    /// backend has no complete table set, and a borrowed backend already
    /// *is* an artifact.
    ///
    /// ```
    /// use sfa_matcher::Regex;
    /// use std::sync::Arc;
    ///
    /// let re = Regex::new("(ab)*").unwrap();
    /// let artifact = re.to_artifact().unwrap();
    /// let loaded = Regex::from_artifact(Arc::new(artifact)).unwrap();
    /// assert!(loaded.is_match(b"abab"));
    /// assert!(!loaded.is_match(b"aba"));
    /// ```
    pub fn to_artifact(&self) -> Result<Vec<u8>, Error> {
        let Some(sfa) = self.backend.eager() else {
            return Err(Error::ArtifactRequiresEagerBackend);
        };
        let maps = self.decided_maps();
        let summary = self.convergence_report().summary();
        Ok(sfa_serialize::ArtifactSource {
            pattern: &self.pattern,
            mode: match self.mode {
                MatchMode::Whole => 0,
                MatchMode::Contains => 1,
            },
            collapsed: self.collapsed_patterns,
            nfa_states: self.nfa_states as u32,
            dfa: &self.dfa,
            sfa,
            decided_verdict: &maps.any,
            decided_accept: &maps.set,
            convergence: Some(&summary),
        }
        .encode_to_vec())
    }

    /// Reconstructs a regex from an artifact buffer **zero-copy**: the
    /// big transition tables are borrowed from `data` (the
    /// [`BackendKind::Borrowed`](sfa_core::BackendKind) backend), not
    /// rebuilt and not copied, so cold start is a validation pass instead
    /// of a compile. Corrupt or version-skewed artifacts fail closed with
    /// the typed [`Error::ArtifactCorrupt`] /
    /// [`Error::ArtifactVersionMismatch`] variants.
    ///
    /// The loaded regex answers with the exact verdicts of the regex that
    /// encoded the artifact. Runtime knobs (threads, engine, reduction)
    /// are not part of the artifact; the defaults apply.
    pub fn from_artifact(data: sfa_core::ArtifactBytes) -> Result<Regex, Error> {
        Self::from_loaded(sfa_serialize::load(data)?)
    }

    /// [`from_artifact`](Regex::from_artifact) over a memory-mapped file:
    /// the mapping stays alive for the regex's lifetime and its table
    /// pages are faulted in on demand by actual matching.
    pub fn load_artifact(path: impl AsRef<std::path::Path>) -> Result<Regex, Error> {
        Self::from_loaded(sfa_serialize::load_file(path)?)
    }

    fn from_loaded(loaded: sfa_serialize::LoadedArtifact) -> Result<Regex, Error> {
        let mode = match loaded.mode {
            0 => MatchMode::Whole,
            1 => MatchMode::Contains,
            // Offset 13 is the mode byte's position in the header.
            other => {
                return Err(Error::ArtifactCorrupt {
                    offset: 13,
                    reason: format!("unknown match mode {other}"),
                })
            }
        };
        let decided = std::sync::OnceLock::new();
        decided
            .set(DecidedMaps { any: loaded.decided_verdict, set: loaded.decided_accept })
            .expect("fresh OnceLock accepts its first value");
        Ok(Regex {
            pattern: loaded.pattern,
            mode,
            threads: default_threads(),
            reduction: Reduction::Sequential,
            engine: None,
            nfa_states: loaded.nfa_states as usize,
            dfa: loaded.dfa,
            backend: SfaBackend::Borrowed(loaded.sfa),
            collapsed_patterns: loaded.collapsed,
            decided,
            convergence: std::sync::OnceLock::new(),
            convergence_summary: loaded.convergence,
        })
    }

    /// The execution engine parallel matching runs on (the shared global
    /// pool unless one was configured via [`RegexBuilder::engine`]).
    pub fn engine(&self) -> &Engine {
        self.engine.as_ref().unwrap_or_else(|| Engine::global())
    }

    /// The default parallelism configured via [`RegexBuilder::threads`]
    /// (used by [`is_match`](Regex::is_match), streaming and batching).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Starts a [`StreamMatcher`]: incremental matching over input that
    /// arrives in blocks, with the same verdict as [`is_match`] on the
    /// concatenated stream. See [`crate::stream`].
    ///
    /// [`is_match`]: Regex::is_match
    ///
    /// ```
    /// use sfa_matcher::Regex;
    ///
    /// let re = Regex::new("(ab)*").unwrap();
    /// let mut stream = re.stream();
    /// stream.feed(b"aba").feed(b"bab");
    /// assert!(stream.finish()); // same as re.is_match(b"ababab")
    /// ```
    pub fn stream(&self) -> StreamMatcher<'_> {
        StreamMatcher::new(self)
    }

    /// Resolves [`Strategy::Auto`] against the builder-configured
    /// defaults; every other strategy passes through unchanged.
    fn resolve(&self, strategy: Strategy) -> Strategy {
        match strategy {
            Strategy::Auto => self.auto_strategy(),
            other => other,
        }
    }

    /// What [`Strategy::Auto`] resolves to for this regex: `Sequential`
    /// for single-threaded builds; otherwise the convergence analysis
    /// decides — a
    /// [`Synchronizing`](sfa_analysis::ConvergenceClass::Synchronizing)
    /// automaton gets guided `Speculative` matching (entry sets collapse,
    /// so each chunk costs ~`O(n/p)` like the sequential scan but in
    /// parallel), everything else keeps the SFA-composition `Parallel`
    /// path, whose per-chunk cost never depends on convergence.
    pub fn auto_strategy(&self) -> Strategy {
        if self.threads <= 1 {
            Strategy::Sequential
        } else if self.prefers_speculation() {
            Strategy::Speculative { threads: self.threads, reduction: self.reduction }
        } else {
            Strategy::Parallel { threads: self.threads, reduction: self.reduction }
        }
    }

    /// Whether [`Strategy::Auto`] should pick guided speculation,
    /// answered from the cheapest available source: an already-computed
    /// full report, else the durable summary an artifact carried, else a
    /// fresh analysis.
    fn prefers_speculation(&self) -> bool {
        if let Some(full) = self.convergence.get() {
            return full.prefers_speculation();
        }
        if let Some(summary) = &self.convergence_summary {
            return summary.prefers_speculation();
        }
        self.convergence_report().prefers_speculation()
    }

    /// The single execution core every verdict API routes through: runs
    /// the input under the given [`Strategy`] and returns the **final DFA
    /// state** — Algorithm 2's end state, or the state the chunk
    /// reduction lands on (identical by Theorem 3, whatever the split).
    ///
    /// Every verdict is a view of that state: [`is_match`](Regex::is_match)
    /// asks whether it accepts, [`matches`](Regex::matches) reads its
    /// per-pattern accept set, and the batch APIs map it over many
    /// haystacks. Parallel strategies execute on the configured persistent
    /// engine — no threads are spawned per call, and `threads` only caps
    /// the chunk count (the crate-wide [`0 ⇒ 1` clamp](crate) applies).
    ///
    /// ```
    /// use sfa_matcher::{Regex, Strategy};
    ///
    /// let re = Regex::new("(ab)*").unwrap();
    /// let q = re.run(b"abab", Strategy::Sequential);
    /// assert!(re.dfa().is_accepting(q));
    /// assert_eq!(q, re.run(b"abab", Strategy::parallel(4)));
    /// ```
    pub fn run(&self, input: &[u8], strategy: Strategy) -> StateId {
        match self.resolve(strategy) {
            Strategy::Sequential => self.run_sequential(input),
            Strategy::Parallel { threads, reduction } => {
                ParallelSfaMatcher::with_engine(&self.backend, self.engine().clone())
                    .run(input, threads, reduction)
            }
            Strategy::Speculative { threads, reduction } => {
                SpeculativeDfaMatcher::with_engine(&self.dfa, self.engine().clone())
                    .with_analysis(self.convergence_report())
                    .run(input, threads, reduction)
            }
            Strategy::Auto => unreachable!("resolve() eliminated Auto"),
        }
    }

    /// The byte-table size up to which [`Strategy::Sequential`] scans the
    /// eager premultiplied D-SFA instead of the DFA (128 KiB — small
    /// enough to stay cache-resident; a `u8`-packed 256-state table is
    /// 64 KiB).
    ///
    /// The SFA byte table folds the byte-class indirection away — one
    /// dependent load per byte instead of the DFA's two — and the packed
    /// width keeps the whole table in L1/L2, so for small automata this is
    /// the fastest sequential path. Above the threshold the class-
    /// compressed DFA rows win (the dense SFA table would thrash the
    /// cache), so big automata keep the classic Algorithm 2 scan.
    const SEQ_BYTE_TABLE_MAX_BYTES: usize = 128 << 10;

    /// Algorithm 2 with a cache-conscious twist: sequential scanning
    /// through whichever table representation is fastest for this
    /// automaton. The final DFA state is identical either way — the SFA
    /// end state's mapping applied to the DFA start state *is* the DFA
    /// run (Lemma 1).
    fn run_sequential(&self, input: &[u8]) -> StateId {
        if let SfaBackend::Eager(sfa) = &self.backend {
            if sfa.premultiplied() && sfa.byte_table_bytes() <= Self::SEQ_BYTE_TABLE_MAX_BYTES {
                return sfa.mapping(sfa.run(input)).apply(self.dfa.start());
            }
        }
        self.dfa.run(input)
    }

    /// Matches under an explicit [`Strategy`].
    pub fn is_match_with(&self, input: &[u8], strategy: Strategy) -> bool {
        self.dfa.is_accepting(self.run(input, strategy))
    }

    /// Matches using the configured defaults ([`Strategy::Auto`]:
    /// sequential for single-threaded builds, parallel SFA matching
    /// otherwise).
    pub fn is_match(&self, input: &[u8]) -> bool {
        self.is_match_with(input, Strategy::Auto)
    }

    /// The per-pattern verdict under the configured defaults: which of
    /// the compiled patterns match the input. For a plain single-pattern
    /// regex the set has one slot; the interesting case is a
    /// [`RegexSet`]-compiled automaton, where one pass yields every
    /// rule's verdict. See [`RegexSet::matches`].
    pub fn matches(&self, input: &[u8]) -> SetMatches {
        self.matches_with(input, Strategy::Auto)
    }

    /// The per-pattern verdict under an explicit [`Strategy`]. The accept
    /// predicate is richer than [`is_match_with`](Regex::is_match_with) —
    /// a pattern *set* instead of a boolean — but the execution is the
    /// same single pass: Theorem 3's composition is untouched, so the
    /// verdict is identical under every strategy and both backends.
    ///
    /// A documented wrapper around
    /// [`try_matches_with`](Regex::try_matches_with) that panics on
    /// [`Error::PatternTrackingDisabled`].
    pub fn matches_with(&self, input: &[u8], strategy: Strategy) -> SetMatches {
        match self.try_matches_with(input, strategy) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`matches`](Regex::matches): `Err` instead of a panic
    /// when this automaton was compiled with
    /// [`RegexBuilder::track_patterns`]`(false)`.
    pub fn try_matches(&self, input: &[u8]) -> Result<SetMatches, Error> {
        self.try_matches_with(input, Strategy::Auto)
    }

    /// Fallible [`matches_with`](Regex::matches_with): `Err` instead of a
    /// panic when this automaton was compiled with
    /// [`RegexBuilder::track_patterns`]`(false)`.
    pub fn try_matches_with(&self, input: &[u8], strategy: Strategy) -> Result<SetMatches, Error> {
        self.check_tracking()?;
        Ok(SetMatches::new(self.dfa.accept_set(self.run(input, strategy)).clone()))
    }

    /// Number of original patterns compiled into this automaton: 1 for
    /// [`Regex::new`]-style builds, the rule count for a [`RegexSet`].
    pub fn pattern_count(&self) -> usize {
        self.dfa.pattern_count()
    }

    /// Whether per-pattern identities survived compilation. Only false
    /// when a multi-pattern set was compiled with
    /// [`RegexBuilder::track_patterns`]`(false)` — the per-rule verdict
    /// APIs ([`matches`](Regex::matches) and friends, and the stream's
    /// [`set_matches`](StreamMatcher::set_matches)) panic on such a
    /// regex rather than attribute the any-match union verdict to
    /// pattern 0.
    pub fn tracks_patterns(&self) -> bool {
        !self.collapsed_patterns
    }

    /// The typed form of the tracking precondition: `Err` when per-rule
    /// verdicts were compiled away. Every `try_*` verdict API starts
    /// here; the panicking APIs are wrappers over the `try_*` ones.
    pub(crate) fn check_tracking(&self) -> Result<(), Error> {
        if self.tracks_patterns() {
            Ok(())
        } else {
            Err(Error::PatternTrackingDisabled)
        }
    }

    /// The verdict-finality bitmaps streams use to finalize early,
    /// computed once per compiled regex on first use.
    pub(crate) fn decided_maps(&self) -> &DecidedMaps {
        self.decided.get_or_init(|| {
            let (any, set) = self.dfa.verdict_and_accept_set_decided_states();
            DecidedMaps { any, set }
        })
    }

    /// **Algorithm 2**: sequential DFA matching.
    #[deprecated(
        since = "0.1.0",
        note = "use `is_match_with(input, Strategy::Sequential)` (or `run`) instead"
    )]
    pub fn is_match_sequential(&self, input: &[u8]) -> bool {
        self.is_match_with(input, Strategy::Sequential)
    }

    /// **Algorithm 5**: parallel SFA matching with an explicit parallelism
    /// degree and reduction strategy.
    #[deprecated(
        since = "0.1.0",
        note = "use `is_match_with(input, Strategy::Parallel { threads, reduction })` instead"
    )]
    pub fn is_match_parallel(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        self.is_match_with(input, Strategy::Parallel { threads, reduction })
    }

    /// **Algorithm 3**: the prior-art speculative parallel DFA matcher
    /// (kept as a baseline).
    #[deprecated(
        since = "0.1.0",
        note = "use `is_match_with(input, Strategy::Speculative { threads, reduction })` instead"
    )]
    pub fn is_match_speculative(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        self.is_match_with(input, Strategy::Speculative { threads, reduction })
    }

    /// Matches many haystacks as **one** pool batch, returning one verdict
    /// per haystack (in order).
    ///
    /// This is the request-serving dual of chunk parallelism: instead of
    /// splitting one large input across workers, it spreads many (typically
    /// small) inputs across workers, paying one pool hand-off for the whole
    /// batch instead of one dispatch decision per call. Each small haystack
    /// is scanned sequentially (Algorithm 2) inside its worker — for the
    /// per-request inputs this API exists for, that is the fastest path. A
    /// haystack large enough that a plain [`is_match`](Regex::is_match)
    /// would cut it into pool chunks is matched that way instead, so a
    /// size-skewed batch never serializes its biggest element on one
    /// worker.
    ///
    /// The small haystacks are cut into at most
    /// [`threads`](RegexBuilder::threads) contiguous shards (capped at the
    /// engine's worker count); batches whose total size is too small to
    /// amortize the hand-off run inline.
    ///
    /// ```
    /// use sfa_matcher::Regex;
    ///
    /// let re = Regex::new("(ab)*").unwrap();
    /// let verdicts = re.is_match_batch(&[&b"abab"[..], b"aba", b""]);
    /// assert_eq!(verdicts, vec![true, false, true]);
    /// ```
    pub fn is_match_batch(&self, haystacks: &[&[u8]]) -> Vec<bool> {
        self.run_batch(haystacks).into_iter().map(|q| self.dfa.is_accepting(q)).collect()
    }

    /// The per-pattern verdict for many haystacks as one pool batch —
    /// [`matches`](Regex::matches) what [`is_match_batch`](Regex::is_match_batch)
    /// is to [`is_match`](Regex::is_match); same sharding plan, richer
    /// verdict. See [`RegexSet::matches_batch`].
    ///
    /// A documented wrapper around
    /// [`try_matches_batch`](Regex::try_matches_batch) that panics on
    /// [`Error::PatternTrackingDisabled`].
    pub fn matches_batch(&self, haystacks: &[&[u8]]) -> Vec<SetMatches> {
        match self.try_matches_batch(haystacks) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`matches_batch`](Regex::matches_batch): `Err` instead of
    /// a panic when this automaton was compiled with
    /// [`RegexBuilder::track_patterns`]`(false)`.
    pub fn try_matches_batch(&self, haystacks: &[&[u8]]) -> Result<Vec<SetMatches>, Error> {
        self.check_tracking()?;
        Ok(self
            .run_batch(haystacks)
            .into_iter()
            .map(|q| SetMatches::new(self.dfa.accept_set(q).clone()))
            .collect())
    }

    /// The batch execution core: the final DFA state of every haystack,
    /// computed with the adaptive plan described on
    /// [`is_match_batch`](Regex::is_match_batch). Both batch verdict APIs
    /// are views of this, exactly as the single-shot APIs are views of
    /// [`run`](Regex::run).
    fn run_batch(&self, haystacks: &[&[u8]]) -> Vec<StateId> {
        let engine = self.engine();
        let shards = self.threads.clamp(1, engine.workers());
        let mut out = vec![self.dfa.start(); haystacks.len()];
        // Oversized haystacks go through their own chunk-parallel plan;
        // everything below the pool threshold is collected for sharding.
        let mut small: Vec<usize> = Vec::with_capacity(haystacks.len());
        for (i, h) in haystacks.iter().enumerate() {
            if engine.plan_chunks(h.len(), self.threads).use_pool {
                out[i] = self.run(
                    h,
                    Strategy::Parallel { threads: self.threads, reduction: self.reduction },
                );
            } else {
                small.push(i);
            }
        }
        let total: usize = small.iter().map(|&i| haystacks[i].len()).sum();
        if shards <= 1 || small.len() <= 1 || total / shards < MIN_POOL_CHUNK_BYTES {
            for &i in &small {
                out[i] = self.run_sequential(haystacks[i]);
            }
            return out;
        }
        let shard_len = small.len().div_ceil(shards);
        let finals = engine
            .map_chunks(small.chunks(shard_len).collect(), true, |_, shard| {
                shard.iter().map(|&i| self.run_sequential(haystacks[i])).collect::<Vec<_>>()
            })
            .concat();
        for (&i, q) in small.iter().zip(finals) {
            out[i] = q;
        }
        out
    }
}

/// A set of patterns compiled with **per-pattern verdicts**, the way an
/// IDS engine batches its ruleset: one pass over the input answers both
/// "does any rule match?" ([`is_match`](RegexSet::is_match)) and
/// "*which* rules match?" ([`matches`](RegexSet::matches)).
///
/// By default the whole set compiles into one combined automaton. With
/// [`RegexBuilder::shard_state_budget`] set, it compiles into several
/// budget-bounded **shards** plus an optional literal [`Prefilter`]
/// instead — same API, same verdicts, without the `~2^rules` product-DFA
/// blowup of large tracked rule sets.
#[derive(Clone, Debug)]
pub struct RegexSet {
    patterns: Vec<String>,
    /// Global pattern index → index in the deduplicated universe the
    /// automata run over (identical patterns share a verdict bit).
    dup_of: Vec<PatternId>,
    /// Size of the deduplicated universe.
    unique: usize,
    inner: SetInner,
}

/// How a [`RegexSet`] was compiled.
#[derive(Clone, Debug)]
pub(crate) enum SetInner {
    /// One combined automaton (no shard budget, or < 2 distinct rules).
    Single(Box<Regex>),
    /// Budget-bounded shards with an optional literal prefilter.
    Sharded(Box<ShardedSet>),
}

/// The display label of a pattern list (the union's `Regex::pattern`).
pub(crate) fn set_label(texts: &[String]) -> String {
    match texts {
        [] => "[]".to_string(),
        [only] => only.clone(),
        many => many.join("|"),
    }
}

impl RegexSet {
    /// Compiles all patterns with the given builder settings, preserving
    /// each pattern's identity (pattern `i` of the iterator is index `i`
    /// of every [`SetMatches`] verdict).
    ///
    /// Each pattern is parsed once and its AST handed straight into the
    /// pipeline — no union re-serialization round trip. **Duplicate**
    /// patterns (identical ASTs — `(a)b` duplicates `ab`) compile once
    /// and share a verdict bit, so they cannot inflate the product DFA;
    /// the duplicate indices still report independently in every verdict.
    /// An **empty** pattern list compiles to the *void* language: a set
    /// with no rules matches nothing, in either match mode. (The union of
    /// zero languages is empty — it is not the empty *string*.)
    ///
    /// With [`RegexBuilder::shard_state_budget`] set and ≥ 2 distinct
    /// patterns, the set compiles sharded; see that method for the model.
    pub fn new<'a, I>(patterns: I, builder: &RegexBuilder) -> Result<RegexSet, CompileError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let patterns: Vec<String> = patterns.into_iter().map(|s| s.to_string()).collect();
        let parser = Parser::with_config(builder.parser.clone());
        let mut seen: HashMap<Ast, PatternId> = HashMap::new();
        let mut dup_of: Vec<PatternId> = Vec::with_capacity(patterns.len());
        let mut unique_asts: Vec<Ast> = Vec::new();
        let mut unique_texts: Vec<String> = Vec::new();
        for p in &patterns {
            let ast = parser.parse(p)?;
            let id = *seen.entry(ast.clone()).or_insert_with(|| {
                unique_asts.push(ast);
                unique_texts.push(p.clone());
                (unique_asts.len() - 1) as PatternId
            });
            dup_of.push(id);
        }
        let unique = unique_asts.len();
        let inner = match builder.shard_budget {
            Some(budget) if unique > 1 => SetInner::Sharded(Box::new(ShardedSet::build(
                builder,
                &unique_texts,
                &unique_asts,
                budget,
            )?)),
            _ => SetInner::Single(Box::new(
                builder.build_from_asts(set_label(&unique_texts), unique_asts)?,
            )),
        };
        Ok(RegexSet { patterns, dup_of, unique, inner })
    }

    /// The individual patterns, in verdict-index order.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// The number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns true if the set contains no patterns (and therefore
    /// matches nothing).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The combined regex backing a single-automaton set.
    ///
    /// # Panics
    ///
    /// Panics when the set was compiled with
    /// [`RegexBuilder::shard_state_budget`] — a sharded set has no single
    /// combined automaton. Inspect [`shards`](RegexSet::shards) and
    /// [`size_report`](RegexSet::size_report) instead (or check
    /// [`is_sharded`](RegexSet::is_sharded) first).
    pub fn regex(&self) -> &Regex {
        match &self.inner {
            SetInner::Single(regex) => regex,
            SetInner::Sharded(_) => panic!(
                "RegexSet::regex(): this set was compiled with \
                 RegexBuilder::shard_state_budget and has no single combined automaton; \
                 inspect shards() or size_report() instead"
            ),
        }
    }

    /// Whether this set compiled into budget-bounded shards (see
    /// [`RegexBuilder::shard_state_budget`]).
    pub fn is_sharded(&self) -> bool {
        matches!(self.inner, SetInner::Sharded(_))
    }

    /// The shards of a sharded set, in packing order; empty for a
    /// single-automaton set.
    pub fn shards(&self) -> &[Shard] {
        match &self.inner {
            SetInner::Single(_) => &[],
            SetInner::Sharded(sharded) => &sharded.shards,
        }
    }

    /// The multi-literal prefilter gating this set's literal-only shards,
    /// if any shard is gated (sharded sets only).
    pub fn prefilter(&self) -> Option<&Prefilter> {
        match &self.inner {
            SetInner::Single(_) => None,
            SetInner::Sharded(sharded) => sharded.prefilter.as_ref(),
        }
    }

    /// The per-shard DFA state budget this set was compiled under, or
    /// `None` for a single-automaton set.
    pub fn shard_state_budget(&self) -> Option<usize> {
        match &self.inner {
            SetInner::Single(_) => None,
            SetInner::Sharded(sharded) => Some(sharded.budget),
        }
    }

    /// Size report for the whole set: the single automaton's report, or
    /// the [combination](SizeReport::combine) of the per-shard reports
    /// (sums plus [`SizeReport::shards`] /
    /// [`SizeReport::max_shard_dfa_states`]).
    pub fn size_report(&self) -> SizeReport {
        match &self.inner {
            SetInner::Single(regex) => regex.size_report(),
            SetInner::Sharded(sharded) => sharded.size_report(),
        }
    }

    /// Whether this set was compiled with per-pattern tracking (see
    /// [`RegexBuilder::track_patterns`]). When `false`, only the
    /// any-match APIs are available — the per-rule ones panic (or return
    /// [`Error::PatternTrackingDisabled`] from the `try_*` variants).
    pub fn tracks_patterns(&self) -> bool {
        match &self.inner {
            SetInner::Single(regex) => regex.tracks_patterns(),
            SetInner::Sharded(sharded) => sharded.tracked,
        }
    }

    /// True if any pattern matches (under the builder's match mode). On a
    /// sharded set, prefilter-gated shards whose literals do not occur in
    /// the input are skipped entirely.
    pub fn is_match(&self, input: &[u8]) -> bool {
        match &self.inner {
            SetInner::Single(regex) => regex.is_match(input),
            SetInner::Sharded(sharded) => sharded.is_match(input),
        }
    }

    /// **Which** patterns match the input — the full per-rule verdict in
    /// a single pass over the haystack, under the configured defaults.
    ///
    /// The verdict is identical to compiling every pattern individually
    /// and asking each for [`Regex::is_match`], but costs one scan of the
    /// combined automaton instead of `N` (see `benches/multimatch.rs`),
    /// and is the same under every [`Strategy`], both backends, and
    /// sharded or not.
    ///
    /// A documented wrapper around
    /// [`try_matches`](RegexSet::try_matches) that panics on
    /// [`Error::PatternTrackingDisabled`].
    ///
    /// ```
    /// use sfa_matcher::{MatchMode, Regex, RegexSet};
    ///
    /// let set = RegexSet::new(
    ///     ["GET /[a-z]+", "POST /login", "HEAD /status"],
    ///     &Regex::builder().mode(MatchMode::Contains),
    /// )
    /// .unwrap();
    /// let m = set.matches(b"POST /login HTTP/1.1");
    /// assert!(m.matched(1));
    /// assert!(!m.matched(0) && !m.matched(2));
    /// ```
    pub fn matches(&self, input: &[u8]) -> SetMatches {
        self.matches_with(input, Strategy::Auto)
    }

    /// [`matches`](RegexSet::matches) under an explicit [`Strategy`].
    pub fn matches_with(&self, input: &[u8], strategy: Strategy) -> SetMatches {
        match self.try_matches_with(input, strategy) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`matches`](RegexSet::matches): `Err` instead of a panic
    /// when the set was compiled with
    /// [`RegexBuilder::track_patterns`]`(false)`.
    pub fn try_matches(&self, input: &[u8]) -> Result<SetMatches, Error> {
        self.try_matches_with(input, Strategy::Auto)
    }

    /// Fallible [`matches_with`](RegexSet::matches_with).
    pub fn try_matches_with(&self, input: &[u8], strategy: Strategy) -> Result<SetMatches, Error> {
        let uniq = match &self.inner {
            SetInner::Single(regex) => regex.try_matches_with(input, strategy)?,
            SetInner::Sharded(sharded) => SetMatches::new(sharded.matches_with(input, strategy)?),
        };
        Ok(self.expand(uniq))
    }

    /// Matches many haystacks as one pool batch — "does any pattern match
    /// this request?", amortized across the whole batch. Verdicts are in
    /// haystack order. See [`Regex::is_match_batch`].
    pub fn match_batch(&self, haystacks: &[&[u8]]) -> Vec<bool> {
        match &self.inner {
            SetInner::Single(regex) => regex.is_match_batch(haystacks),
            SetInner::Sharded(sharded) => sharded.match_batch(haystacks),
        }
    }

    /// Per-pattern verdicts for many haystacks as one pool batch (the
    /// rule-set dual of [`match_batch`](RegexSet::match_batch)): one
    /// [`SetMatches`] per haystack, in order. See
    /// [`Regex::matches_batch`].
    ///
    /// A documented wrapper around
    /// [`try_matches_batch`](RegexSet::try_matches_batch) that panics on
    /// [`Error::PatternTrackingDisabled`].
    pub fn matches_batch(&self, haystacks: &[&[u8]]) -> Vec<SetMatches> {
        match self.try_matches_batch(haystacks) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`matches_batch`](RegexSet::matches_batch): `Err` instead
    /// of a panic when the set was compiled with
    /// [`RegexBuilder::track_patterns`]`(false)`.
    pub fn try_matches_batch(&self, haystacks: &[&[u8]]) -> Result<Vec<SetMatches>, Error> {
        let uniq: Vec<SetMatches> = match &self.inner {
            SetInner::Single(regex) => regex.try_matches_batch(haystacks)?,
            SetInner::Sharded(sharded) => {
                sharded.matches_batch(haystacks)?.into_iter().map(SetMatches::new).collect()
            }
        };
        Ok(uniq.into_iter().map(|m| self.expand(m)).collect())
    }

    /// Starts a [`SetStream`]: incremental matching over input arriving
    /// in blocks — any-match via [`finish`](SetStream::finish), per-rule
    /// via [`set_matches`](SetStream::set_matches) /
    /// [`set_verdict`](SetStream::set_verdict). On a sharded set this
    /// runs one stream per shard; the prefilter is **not** used (a
    /// literal may straddle feed boundaries that already scrolled past a
    /// skipped shard, so streaming always feeds every shard). See
    /// [`crate::stream`].
    pub fn stream(&self) -> SetStream<'_> {
        SetStream::new(self)
    }

    /// The compiled representation, for the stream driver.
    pub(crate) fn inner(&self) -> &SetInner {
        &self.inner
    }

    /// Lifts a verdict over the deduplicated universe to the caller's
    /// pattern indices (identity when the set has no duplicates).
    pub(crate) fn expand(&self, uniq: SetMatches) -> SetMatches {
        if self.dup_of.len() == self.unique {
            return uniq;
        }
        let mut out = PatternSet::new(self.patterns.len());
        for (i, &u) in self.dup_of.iter().enumerate() {
            if uniq.as_pattern_set().contains(u) {
                out.insert(i as PatternId);
            }
        }
        SetMatches::new(out)
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `is_match_*` wrappers are exercised on purpose: they
    // must keep returning exactly what the `Strategy`-based core returns
    // until they are removed.
    #![allow(deprecated)]

    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn whole_match_defaults() {
        let re = Regex::new("(ab)*").unwrap();
        assert!(re.is_match(b"abab"));
        assert!(!re.is_match(b"aba"));
        assert!(re.is_match_sequential(b""));
        assert_eq!(re.pattern(), "(ab)*");
        assert_eq!(re.mode(), MatchMode::Whole);
        assert!(re.nfa_states() > 0);
        assert_eq!(re.size_report().sfa_states, re.sfa().num_states());
    }

    #[test]
    fn all_three_algorithms_agree() {
        let re = Regex::new("([0-4]{3}[5-9]{3})*").unwrap();
        let inputs: Vec<&[u8]> = vec![b"", b"000555", b"000555111666", b"00055", b"555000"];
        for input in inputs {
            let expected = re.is_match_sequential(input);
            for threads in [1, 2, 4] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(re.is_match_parallel(input, threads, reduction), expected);
                    assert_eq!(re.is_match_speculative(input, threads, reduction), expected);
                }
            }
        }
    }

    #[test]
    fn contains_mode_scans_substrings() {
        let re = Regex::builder().mode(MatchMode::Contains).build("attack[0-9]{2}").unwrap();
        assert!(re.is_match(b"GET /attack42/index.html"));
        assert!(re.is_match(b"attack99"));
        assert!(!re.is_match(b"attack"));
        assert!(!re.is_match(b"benign traffic"));
        // Parallel contains matching agrees with sequential.
        let text = b"xxxxxxxxxxxxxxxxattack77yyyyyyyyyyyyyyyy";
        for threads in [2, 4, 8] {
            assert!(re.is_match_parallel(text, threads, Reduction::Sequential));
        }
    }

    #[test]
    fn case_insensitive_builder() {
        let re = Regex::builder().case_insensitive(true).build("select").unwrap();
        assert!(re.is_match(b"SELECT"));
        assert!(re.is_match(b"SeLeCt"));
        assert!(!re.is_match(b"SELEC"));
    }

    #[test]
    fn threads_and_reduction_defaults_apply() {
        let re = Regex::builder().threads(3).reduction(Reduction::Tree).build("(ab)*").unwrap();
        assert!(re.is_match(b"ababab"));
        assert!(!re.is_match(b"b"));
    }

    #[test]
    fn state_limits_propagate() {
        let err = Regex::builder().max_sfa_states(4).build("([0-4]{3}[5-9]{3})*").unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 4 });
        let err = Regex::builder().max_dfa_states(2).build("abcdef").unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 2 });
    }

    #[test]
    fn explicit_lazy_backend_matches_like_eager() {
        let eager = Regex::builder().backend(BackendChoice::Eager).build("(ab)*").unwrap();
        let lazy = Regex::builder().backend(BackendChoice::Lazy).build("(ab)*").unwrap();
        assert_eq!(eager.backend_kind(), sfa_core::BackendKind::Eager);
        assert_eq!(lazy.backend_kind(), sfa_core::BackendKind::Lazy);
        for input in [&b""[..], b"ab", b"abab", b"aba", b"zz"] {
            assert_eq!(eager.is_match(input), lazy.is_match(input), "{input:?}");
            for threads in [1, 4] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(
                        eager.is_match_parallel(input, threads, reduction),
                        lazy.is_match_parallel(input, threads, reduction)
                    );
                }
            }
        }
        // The lazy report is live: it grows as inputs visit states.
        assert!(lazy.size_report().materialized_states <= eager.size_report().sfa_states);
    }

    #[test]
    fn auto_backend_falls_back_to_lazy_when_eager_explodes() {
        // Under the 4-state cap the eager construction fails…
        let pattern = "([0-4]{3}[5-9]{3})*";
        let eager_err =
            Regex::builder().max_sfa_states(4).backend(BackendChoice::Eager).build(pattern);
        assert!(matches!(eager_err, Err(CompileError::TooManyStates { limit: 4 })));
        // …so Auto compiles the same pattern lazily instead of erroring.
        let auto =
            Regex::builder().max_sfa_states(4).backend(BackendChoice::Auto).build(pattern).unwrap();
        assert_eq!(auto.backend_kind(), sfa_core::BackendKind::Lazy);
        assert!(auto.is_match(b"000555"));
        assert!(!auto.is_match(b"00055"));
        assert!(auto.is_match_parallel(&b"000555111666".repeat(64), 4, Reduction::Tree));
        // The lazy cache may exceed the *eager* cap — that cap is about
        // up-front construction, not about visited states.
        let report = auto.size_report();
        assert_eq!(report.backend, sfa_core::BackendKind::Lazy);
        assert!(report.materialized_states >= 1);

        // When the eager construction fits, Auto keeps it.
        let auto = Regex::builder().backend(BackendChoice::Auto).build("(ab)*").unwrap();
        assert_eq!(auto.backend_kind(), sfa_core::BackendKind::Eager);
        assert_eq!(auto.size_report().sfa_states, 6);

        // Non-state-limit errors still propagate under Auto.
        assert!(Regex::builder().backend(BackendChoice::Auto).build("(unclosed").is_err());
        let err = Regex::builder().backend(BackendChoice::Auto).max_dfa_states(2).build("abcdef");
        assert!(matches!(err, Err(CompileError::TooManyStates { limit: 2 })));
    }

    #[test]
    fn auto_fallback_streams_and_batches_correctly() {
        let auto = Regex::builder()
            .max_sfa_states(8)
            .backend(BackendChoice::Auto)
            .mode(MatchMode::Contains)
            .build("needle[0-9]{3}")
            .unwrap();
        assert_eq!(auto.backend_kind(), sfa_core::BackendKind::Lazy);
        let mut stream = auto.stream();
        stream.feed(b"xxxneed").feed(b"le04").feed(b"2yyy");
        assert!(stream.finish());
        assert_eq!(stream.verdict(), Some(true), "Contains hit saturates on the lazy backend too");
        assert_eq!(
            auto.is_match_batch(&[&b"needle042"[..], b"needle04", b"zz needle123 zz"]),
            vec![true, false, true]
        );
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("a{5,2}").is_err());
    }

    #[test]
    fn regex_set_matches_any_pattern() {
        let set = RegexSet::new(
            ["GET /[a-z]+", "POST /login", "HEAD /status"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        assert_eq!(set.patterns().len(), 3);
        assert!(set.is_match(b"GET /index HTTP/1.1"));
        assert!(set.is_match(b"POST /login HTTP/1.1"));
        assert!(set.is_match(b"HEAD /status"));
        assert!(!set.is_match(b"PUT /upload"));
        assert!(set.regex().sfa().num_states() > 0);
    }

    #[test]
    fn empty_regex_set_matches_nothing() {
        // The empty union is the empty *language*, not the empty string:
        // previously Ast::alternation([]) collapsed to Ast::Empty, so an
        // empty set matched "" in Whole mode and *everything* in Contains
        // mode.
        let set = RegexSet::new([], &Regex::builder()).unwrap();
        assert!(set.patterns().is_empty());
        assert!(!set.is_match(b""));
        assert!(!set.is_match(b"anything"));

        let contains = RegexSet::new([], &Regex::builder().mode(MatchMode::Contains)).unwrap();
        assert!(!contains.is_match(b""));
        assert!(!contains.is_match(b"GET /index HTTP/1.1"));
        assert_eq!(contains.match_batch(&[&b""[..], b"x", b"attack"]), vec![false; 3]);

        // A single-pattern set still behaves exactly like its one pattern.
        let single = RegexSet::new(["(ab)*"], &Regex::builder()).unwrap();
        assert_eq!(single.patterns().len(), 1);
        assert!(single.is_match(b"abab"));
        assert!(single.is_match(b""));
        assert!(!single.is_match(b"aba"));
    }

    #[test]
    fn run_is_the_single_core_for_every_strategy() {
        let engine = Engine::new(4);
        let re = Regex::builder().engine(engine).threads(4).build("([0-4]{2}[5-9]{2})*").unwrap();
        let inputs: [&[u8]; 4] = [b"", b"00550459", b"0055045", &b"00550459".repeat(16 * 1024)];
        for input in inputs {
            let expected = re.dfa().run(input);
            assert_eq!(re.run(input, Strategy::Sequential), expected);
            assert_eq!(re.run(input, Strategy::Auto), expected);
            for threads in [1, 3, 8] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(re.run(input, Strategy::Parallel { threads, reduction }), expected);
                    assert_eq!(
                        re.run(input, Strategy::Speculative { threads, reduction }),
                        expected
                    );
                }
            }
            // The deprecated wrappers are views of the same core.
            assert_eq!(re.is_match_sequential(input), re.dfa().is_accepting(expected));
            assert_eq!(re.is_match_parallel(input, 3, Reduction::Tree), re.is_match(input));
            assert_eq!(re.is_match_speculative(input, 3, Reduction::Tree), re.is_match(input));
        }
    }

    #[test]
    fn auto_strategy_follows_builder_defaults_and_convergence() {
        // threads == 1 resolves to Sequential regardless of the analysis.
        let seq = Regex::builder().threads(1).build("(ab)*").unwrap();
        assert_eq!(seq.resolve(Strategy::Auto), Strategy::Sequential);
        // (ab)* is synchronizing (any byte outside the language drives
        // every state into the dead sink), so Auto picks the guided
        // speculative path for multi-threaded builds.
        let sync = Regex::builder().threads(4).reduction(Reduction::Tree).build("(ab)*").unwrap();
        assert!(sync.convergence_report().prefers_speculation());
        assert_eq!(
            sync.auto_strategy(),
            Strategy::Speculative { threads: 4, reduction: Reduction::Tree }
        );
        // The byte-parity automaton never converges — no dead state, no
        // two states ever merge — so Auto keeps the SFA composition path.
        let par =
            Regex::builder().threads(4).reduction(Reduction::Tree).build("((?s).(?s).)*").unwrap();
        assert!(!par.convergence_report().prefers_speculation());
        assert_eq!(
            par.resolve(Strategy::Auto),
            Strategy::Parallel { threads: 4, reduction: Reduction::Tree }
        );
        // Explicit strategies pass through untouched.
        assert_eq!(par.resolve(Strategy::Sequential), Strategy::Sequential);
        assert_eq!(
            sync.resolve(Strategy::parallel(2)),
            Strategy::Parallel { threads: 2, reduction: Reduction::Sequential }
        );
    }

    #[test]
    fn single_pattern_matches_reports_one_slot() {
        let re = Regex::new("(ab)*").unwrap();
        assert_eq!(re.pattern_count(), 1);
        let m = re.matches(b"abab");
        assert!(m.matched(0) && m.matched_any());
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0]);
        assert!(re.matches(b"aba").is_empty());
    }

    #[test]
    fn regex_set_reports_which_patterns_matched() {
        let set = RegexSet::new(
            ["GET /[a-z]+", "POST /login", "HEAD /status", "(?i)etc/passwd"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert_eq!(set.regex().pattern_count(), 4);

        let m = set.matches(b"GET /index HTTP/1.1");
        assert!(m.matched(0));
        assert!(!m.matched(1) && !m.matched(2) && !m.matched(3));
        assert_eq!(m.len(), 1);

        // Two rules firing on one input, in one pass.
        let m = set.matches(b"GET /files?path=ETC/PASSWD");
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);

        let m = set.matches(b"PUT /upload");
        assert!(!m.matched_any());
        assert_eq!(m.pattern_count(), 4);

        // The per-pattern verdict is strategy-independent.
        let input = b"xxxPOST /login HTTP/1.1yyy";
        let expected = set.matches_with(input, Strategy::Sequential);
        for threads in [1, 4] {
            for reduction in [Reduction::Sequential, Reduction::Tree] {
                assert_eq!(
                    set.matches_with(input, Strategy::Parallel { threads, reduction }),
                    expected
                );
                assert_eq!(
                    set.matches_with(input, Strategy::Speculative { threads, reduction }),
                    expected
                );
            }
        }
    }

    #[test]
    fn regex_set_matches_agrees_with_individual_patterns() {
        let patterns = ["(ab)*", "a+b", "[ab]{3}", "b?a"];
        for mode in [MatchMode::Whole, MatchMode::Contains] {
            let builder = Regex::builder().mode(mode);
            let set = RegexSet::new(patterns, &builder).unwrap();
            let singles: Vec<Regex> = patterns.iter().map(|p| builder.build(p).unwrap()).collect();
            for input in [&b""[..], b"a", b"ab", b"abab", b"aab", b"bbb", b"ba", b"zzabz"] {
                let m = set.matches(input);
                for (i, single) in singles.iter().enumerate() {
                    assert_eq!(
                        m.matched(i),
                        single.is_match(input),
                        "pattern {i} ({:?}) input {:?} mode {:?}",
                        patterns[i],
                        input,
                        mode
                    );
                }
                assert_eq!(m.matched_any(), set.is_match(input));
            }
        }
    }

    #[test]
    fn matches_batch_agrees_with_per_call() {
        let set = RegexSet::new(
            ["/cgi-bin/ph[a-z]{1,8}", "(?i)etc/passwd", "[0-9]{1,3}\\.[0-9]{1,3}"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        let haystacks: Vec<&[u8]> = vec![
            b"GET /cgi-bin/phf HTTP/1.1",
            b"GET /index.html",
            b"cat /etc/passwd at 10.0.0.1",
            b"",
            b"192.168",
        ];
        let batch = set.matches_batch(&haystacks);
        assert_eq!(batch.len(), haystacks.len());
        for (h, m) in haystacks.iter().zip(&batch) {
            assert_eq!(m, &set.matches(h), "haystack {:?}", h);
        }
        assert_eq!(batch[2].iter().collect::<Vec<_>>(), vec![1, 2]);
        // The any-match batch is the projection of the set batch.
        assert_eq!(
            set.match_batch(&haystacks),
            batch.iter().map(|m| m.matched_any()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn regex_set_matches_on_both_backends() {
        let patterns = ["select[a-z ]{0,10}from", "union", "[0-9]{4}"];
        for choice in [BackendChoice::Eager, BackendChoice::Lazy] {
            let set = RegexSet::new(
                patterns,
                &Regex::builder().mode(MatchMode::Contains).backend(choice),
            )
            .unwrap();
            let m = set.matches(b"q=select name from users; union all 2024");
            assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 2], "{choice:?}");
            let m = set.matches(b"plain request");
            assert!(m.is_empty(), "{choice:?}");
        }
    }

    #[test]
    fn untracked_set_compiles_the_plain_union() {
        let patterns = ["attack[0-9]{2}", "exploit[a-z]{2}", "(?i)etc/passwd"];
        let tracked = RegexSet::new(patterns, &Regex::builder().mode(MatchMode::Contains)).unwrap();
        let untracked = RegexSet::new(
            patterns,
            &Regex::builder().mode(MatchMode::Contains).track_patterns(false),
        )
        .unwrap();
        assert!(tracked.tracks_patterns());
        assert!(!untracked.tracks_patterns());
        assert_eq!(untracked.len(), 3, "the pattern list is still the user's");
        assert_eq!(untracked.regex().pattern_count(), 1, "but the automaton is one union");
        // The any-match automaton is strictly smaller: it need not
        // remember which rules already hit.
        assert!(untracked.regex().dfa().num_states() < tracked.regex().dfa().num_states());
        // Any-match verdicts agree everywhere.
        for input in [&b"GET /attack42"[..], b"exploitok", b"cat etc/passwd", b"benign", b"attack4"]
        {
            assert_eq!(untracked.is_match(input), tracked.is_match(input), "{input:?}");
        }
        let haystacks: Vec<&[u8]> = vec![b"attack99 exploitme", b"nothing"];
        assert_eq!(untracked.match_batch(&haystacks), tracked.match_batch(&haystacks));
        // A single-pattern (or empty) set tracks for free either way.
        let single = RegexSet::new(["(ab)*"], &Regex::builder().track_patterns(false)).unwrap();
        assert!(single.tracks_patterns());
        assert!(single.matches(b"abab").matched(0));
        let empty = RegexSet::new([], &Regex::builder().track_patterns(false)).unwrap();
        assert!(!empty.is_match(b""), "the empty set stays the void language");
    }

    #[test]
    #[should_panic(expected = "per-rule verdicts require pattern tracking")]
    fn untracked_set_panics_on_per_rule_apis() {
        let set = RegexSet::new(["a", "b"], &Regex::builder().track_patterns(false)).unwrap();
        let _ = set.matches(b"a");
    }

    #[test]
    #[should_panic(expected = "per-rule verdicts require pattern tracking")]
    fn untracked_set_panics_on_stream_set_matches() {
        // The stream path must refuse too — otherwise the union verdict
        // would be silently attributed to rule 0.
        let set = RegexSet::new(["a", "b"], &Regex::builder().track_patterns(false)).unwrap();
        let mut stream = set.stream();
        stream.feed(b"b");
        let _ = stream.set_matches();
    }

    #[test]
    #[should_panic(expected = "per-rule verdicts require pattern tracking")]
    fn untracked_set_panics_on_stream_set_verdict() {
        let set = RegexSet::new(["a", "b"], &Regex::builder().track_patterns(false)).unwrap();
        let _ = set.stream().set_verdict();
    }

    #[test]
    fn empty_regex_set_has_empty_verdicts() {
        let set = RegexSet::new([], &Regex::builder().mode(MatchMode::Contains)).unwrap();
        assert_eq!(set.len(), 0);
        assert!(set.is_empty());
        let m = set.matches(b"anything");
        assert_eq!(m.pattern_count(), 0);
        assert!(!m.matched_any());
        assert_eq!(set.matches_batch(&[&b"x"[..], b"y"]).len(), 2);
    }

    #[test]
    fn default_threads_is_cached_and_sane() {
        let first = default_threads();
        assert!(first >= 1);
        // Cached: repeated calls agree (and are a single atomic load).
        for _ in 0..1000 {
            assert_eq!(default_threads(), first);
        }
        assert_eq!(RegexBuilder::default().threads, first);
    }

    #[test]
    fn batch_matching_agrees_with_per_call() {
        let engine = Engine::new(4);
        let re = Regex::builder().engine(engine).threads(4).build("(ab)*").unwrap();
        // Haystacks big enough (in total) to engage the pool.
        let accepted = b"ab".repeat(4096);
        let rejected = b"ab".repeat(4095 + 1)[..8191].to_vec();
        // One oversized haystack (its own plan engages the pool) mixed into
        // the small ones: it takes the chunk-parallel path, not a shard.
        let huge = b"ab".repeat(128 * 1024);
        let mut haystacks: Vec<&[u8]> = Vec::new();
        for i in 0..64 {
            haystacks.push(if i % 3 == 0 { &rejected } else { &accepted });
        }
        haystacks.push(b"");
        haystacks.push(b"ab");
        haystacks.push(&huge);
        haystacks.push(b"ba");
        let expected: Vec<bool> = haystacks.iter().map(|h| re.is_match(h)).collect();
        assert_eq!(re.is_match_batch(&haystacks), expected);
        // Degenerate batches stay inline and correct.
        assert_eq!(re.is_match_batch(&[]), Vec::<bool>::new());
        assert_eq!(re.is_match_batch(&[&b"abab"[..]]), vec![true]);
    }

    #[test]
    fn zero_parallelism_clamps_to_one_everywhere() {
        // The crate-wide rule: requesting 0 units of parallelism means
        // sequential execution — identical to requesting 1, never a panic
        // and never "no work".
        let re = Regex::builder().threads(0).build("(ab)*").unwrap();
        assert!(re.is_match(b"abab"));
        assert!(!re.is_match(b"aba"));
        assert!(re.is_match_parallel(b"abab", 0, Reduction::Tree));
        assert!(re.is_match_speculative(b"abab", 0, Reduction::Sequential));
        // split_chunks applies the same clamp…
        assert_eq!(crate::split_chunks(b"xyz", 0), crate::split_chunks(b"xyz", 1));
        // …and so do the pool and the chunk planner.
        let engine = Engine::new(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.plan_chunks(1 << 20, 0).chunks, 1);
    }

    #[test]
    fn dedicated_engine_is_used_for_parallel_matching() {
        let engine = Engine::new(3);
        let re = Regex::builder()
            .engine(engine)
            .threads(3)
            .reduction(Reduction::Tree)
            .build("([0-4]{2}[5-9]{2})*")
            .unwrap();
        assert_eq!(re.engine().workers(), 3);
        let text = b"00550459".repeat(8 * 1024); // 64 KiB → pool path
        assert!(re.engine().plan_chunks(text.len(), 3).use_pool);
        assert!(re.is_match(&text));
        assert!(re.is_match_parallel(&text, 3, Reduction::Sequential));
        // Default-engine regexes report the shared global pool.
        let plain = Regex::new("(ab)*").unwrap();
        assert_eq!(plain.engine().workers(), Engine::global().workers());
    }

    #[test]
    fn uncompressed_alphabet_option() {
        let re = Regex::builder().compress_alphabet(false).build("(ab)*").unwrap();
        assert_eq!(re.dfa().num_classes(), 256);
        assert!(re.is_match(b"abab"));
    }
}
