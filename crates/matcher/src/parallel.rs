//! **Algorithm 5** — the SFA-based data-parallel matcher, the paper's main
//! contribution.
//!
//! Every worker runs the (deterministic) SFA over its chunk starting from
//! the identity state — one table lookup per byte, no per-state loop — and
//! produces a single SFA state `f_i`. The partial results are then reduced
//! either sequentially in `O(p)` (walk the mappings starting from the DFA's
//! start state) or as a logarithmic-depth tree of mapping compositions.
//!
//! Chunks execute on a persistent [`Engine`] (the paper's long-lived
//! pthreads; see [`crate::pool`]): by default the process-wide shared pool,
//! or a dedicated one via [`ParallelSfaMatcher::with_engine`]. The
//! requested `threads` count only caps the chunk count — it never spawns
//! threads — and inputs too small to amortize the pool hand-off run inline
//! on the calling thread.
//!
//! The matcher is written against [`SfaBackend`], so the chunk phase runs
//! identically over the eager [`DSfa`](sfa_core::DSfa) and the on-the-fly
//! [`LazyDSfa`](sfa_core::LazyDSfa): with a lazy backend the pool workers
//! share one state cache (materializing states as their chunks visit
//! them), which is exactly the paper's Section V-A construction applied
//! to Algorithm 5.

use crate::chunk::split_chunks;
use crate::pool::{ChunkPlan, Engine};
use crate::Reduction;
use sfa_automata::{StateId, StateSet};
use sfa_core::{NSfa, SfaBackend, SfaStateId, Transformation};

/// The parallel matcher over a D-SFA behind either
/// [backend](SfaBackend).
#[derive(Clone, Debug)]
pub struct ParallelSfaMatcher<'a> {
    sfa: &'a SfaBackend,
    engine: Engine,
}

impl<'a> ParallelSfaMatcher<'a> {
    /// Creates a matcher over the given backend, running on the shared
    /// [global engine](Engine::global).
    pub fn new(sfa: &'a SfaBackend) -> ParallelSfaMatcher<'a> {
        ParallelSfaMatcher::with_engine(sfa, Engine::global().clone())
    }

    /// Creates a matcher over the given backend, running on a specific
    /// engine (e.g. a dedicated pool with a chosen worker count).
    pub fn with_engine(sfa: &'a SfaBackend, engine: Engine) -> ParallelSfaMatcher<'a> {
        ParallelSfaMatcher { sfa, engine }
    }

    /// The engine this matcher submits chunk batches to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The chunk phase for an already-decided plan (shared by
    /// [`chunk_states`](Self::chunk_states) and [`run`](Self::run) so the
    /// plan is computed exactly once per call).
    ///
    /// Each `run` call dispatches **once** on the backend's packed
    /// state-id width ([`StateIdRepr`](sfa_core::StateIdRepr)) and then
    /// scans the whole chunk in a monomorphized loop — the width match
    /// is per chunk, never per byte.
    fn partial_states(&self, input: &[u8], plan: ChunkPlan) -> Vec<SfaStateId> {
        let chunks = split_chunks(input, plan.chunks);
        self.engine.map_chunks(chunks, plan.use_pool, |_, chunk| self.scan_chunk(chunk, plan.lanes))
    }

    /// Scans one worker's chunk, optionally interleaving `lanes` sub-chunks
    /// through a single batched [`run_from_many`](SfaBackend::run_from_many)
    /// call (Theorem 3 applied a second time, *inside* the worker).
    ///
    /// Every sub-chunk starts from the identity state, so each lane result
    /// is the transformation of its own slice; the left-to-right
    /// [`compose_states`](SfaBackend::compose_states) fold (Lemma 1)
    /// recombines them into exactly the state a sequential scan of the
    /// whole chunk would produce — verdicts are bit-for-bit unchanged.
    fn scan_chunk(&self, chunk: &[u8], lanes: usize) -> SfaStateId {
        if lanes <= 1 || chunk.len() < lanes {
            return self.sfa.run(chunk);
        }
        let identity = self.sfa.initial();
        let subs = split_chunks(chunk, lanes);
        let jobs: Vec<(SfaStateId, &[u8])> = subs.iter().map(|&s| (identity, s)).collect();
        self.sfa
            .run_from_many(&jobs)
            .into_iter()
            .fold(identity, |acc, f| self.sfa.compose_states(acc, f))
    }

    /// Runs the chunk phase (lines 1–5 of Algorithm 5): each chunk is
    /// processed independently starting from the identity state.
    ///
    /// The input is cut into at most `threads.min(workers)` chunks (the
    /// engine's chunk-count cap), which run on the pool only when each
    /// chunk is large enough to amortize the hand-off. Within each chunk
    /// the scan is further interleaved into up to
    /// [`preferred_lanes`](SfaBackend::preferred_lanes) sub-chunk lanes
    /// (see [`Engine::plan_chunks_interleaved`]).
    pub fn chunk_states(&self, input: &[u8], threads: usize) -> Vec<SfaStateId> {
        self.partial_states(input, self.plan(input.len(), threads))
    }

    /// The interleaving-aware plan for this matcher's backend.
    fn plan(&self, input_len: usize, threads: usize) -> ChunkPlan {
        self.engine.plan_chunks_interleaved(input_len, threads, self.sfa.preferred_lanes())
    }

    /// Runs the full parallel computation and returns the final DFA state
    /// reached from the DFA's start state.
    pub fn run(&self, input: &[u8], threads: usize, reduction: Reduction) -> StateId {
        let plan = self.plan(input.len(), threads);
        let partials = self.partial_states(input, plan);
        match reduction {
            Reduction::Sequential => {
                // S_fin ← I; for i: S_fin ← f_i(S_fin)   — O(p) lookups.
                let mut q = self.sfa.dfa_start();
                for &f in &partials {
                    q = self.sfa.apply(f, q);
                }
                q
            }
            Reduction::Tree => {
                let mappings: Vec<Transformation> =
                    partials.iter().map(|&f| self.sfa.mapping(f)).collect();
                let combined = self
                    .engine
                    .tree_reduce(mappings, plan.use_pool, |a, b| a.then(b))
                    .expect("at least one chunk");
                combined.apply(self.sfa.dfa_start())
            }
        }
    }

    /// Whole-input membership test (the `S_fin ∩ F ≠ ∅` check of
    /// Algorithm 5).
    pub fn accepts(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        let q = self.run(input, threads, reduction);
        self.sfa.dfa_is_accepting(q)
    }
}

/// The parallel matcher over an N-SFA (the general, nondeterministic form
/// of Algorithm 5; the reduction composes correspondences, i.e. boolean
/// matrices).
#[derive(Clone, Debug)]
pub struct ParallelNSfaMatcher<'a> {
    sfa: &'a NSfa,
    engine: Engine,
}

impl<'a> ParallelNSfaMatcher<'a> {
    /// Creates a matcher over the given N-SFA, running on the shared
    /// [global engine](Engine::global).
    pub fn new(sfa: &'a NSfa) -> ParallelNSfaMatcher<'a> {
        ParallelNSfaMatcher::with_engine(sfa, Engine::global().clone())
    }

    /// Creates a matcher over the given N-SFA, running on a specific
    /// engine.
    pub fn with_engine(sfa: &'a NSfa, engine: Engine) -> ParallelNSfaMatcher<'a> {
        ParallelNSfaMatcher { sfa, engine }
    }

    /// The chunk phase for an already-decided plan.
    fn partial_states(&self, input: &[u8], plan: ChunkPlan) -> Vec<SfaStateId> {
        let chunks = split_chunks(input, plan.chunks);
        self.engine.map_chunks(chunks, plan.use_pool, |_, chunk| self.sfa.run(chunk))
    }

    /// Runs the chunk phase of Algorithm 5.
    pub fn chunk_states(&self, input: &[u8], threads: usize) -> Vec<SfaStateId> {
        self.partial_states(input, self.engine.plan_chunks(input.len(), threads))
    }

    /// Whole-input membership test.
    pub fn accepts(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        let plan = self.engine.plan_chunks(input.len(), threads);
        let partials = self.partial_states(input, plan);
        match reduction {
            Reduction::Sequential => {
                // Walk the correspondences with a frontier set — this is the
                // "sequential reduction corresponds to sequential computation
                // of NFA" case of Table II (`O(|N| · p)`).
                let first = self.sfa.mapping(partials[0]);
                let mut frontier: StateSet = first.apply(self.sfa.nfa_start()).clone();
                for &f in &partials[1..] {
                    frontier = self.sfa.mapping(f).apply_set(&frontier);
                }
                frontier.intersects(self.sfa.nfa_accepting_set())
            }
            Reduction::Tree => {
                let mappings: Vec<sfa_core::Correspondence> =
                    partials.iter().map(|&f| self.sfa.mapping(f).clone()).collect();
                let combined = self
                    .engine
                    .tree_reduce(mappings, plan.use_pool, |a, b| a.then(b))
                    .expect("at least one chunk");
                self.sfa.mapping_is_accepting(&combined)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::minimal_dfa_from_pattern;
    use sfa_core::{DSfa, LazyDSfa, SfaConfig};

    /// A dedicated multi-worker engine so the pool path is exercised even
    /// on single-CPU CI machines (the global engine would cap every plan
    /// at one chunk there).
    fn test_engine() -> Engine {
        Engine::new(8)
    }

    /// Both backends over the same minimal DFA.
    fn backends(pattern: &str) -> (sfa_automata::Dfa, [SfaBackend; 2]) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let eager = SfaBackend::from(DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap());
        let lazy = SfaBackend::from(LazyDSfa::new(dfa.clone()));
        (dfa, [eager, lazy])
    }

    fn check_dsfa(pattern: &str, inputs: &[&[u8]]) {
        let (dfa, backends) = backends(pattern);
        for backend in &backends {
            let matcher = ParallelSfaMatcher::with_engine(backend, test_engine());
            for &input in inputs {
                let expected = dfa.accepts(input);
                for threads in [1usize, 2, 3, 4, 8] {
                    for reduction in [Reduction::Sequential, Reduction::Tree] {
                        assert_eq!(
                            matcher.accepts(input, threads, reduction),
                            expected,
                            "pattern {:?} ({:?} backend), input len {}, {} threads, {:?}",
                            pattern,
                            backend.kind(),
                            input.len(),
                            threads,
                            reduction
                        );
                        assert_eq!(matcher.run(input, threads, reduction), dfa.run(input));
                    }
                }
            }
        }
    }

    #[test]
    fn algorithm5_agrees_with_algorithm2() {
        check_dsfa("(ab)*", &[b"", b"ab", b"abab", b"aba", b"ababababababab", b"abxab"]);
        check_dsfa(
            "([0-4]{2}[5-9]{2})*",
            &[b"", b"0055", b"005504590459", b"00550", b"555500", b"0055005500550055"],
        );
        check_dsfa("(a|b)*abb", &[b"abb", b"aababb", b"ab", b"abba", b"bbbbabb"]);
    }

    #[test]
    fn algorithm5_agrees_on_pool_sized_inputs() {
        // Inputs long enough that the chunk batch actually goes through
        // the worker pool (per-chunk share above the inline threshold) —
        // on the lazy backend this is also the path where pool workers
        // race to materialize the shared cache.
        let (_, backends) = backends("([0-4]{2}[5-9]{2})*");
        for backend in &backends {
            let matcher = ParallelSfaMatcher::with_engine(backend, test_engine());
            let accepted = b"00550459".repeat(16 * 1024); // 128 KiB, in the language
            let mut rejected = accepted.clone();
            rejected.push(b'5');
            for threads in [2usize, 4, 8, 10_000] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert!(matcher.engine().plan_chunks(accepted.len(), threads).use_pool);
                    assert!(matcher.accepts(&accepted, threads, reduction));
                    assert!(!matcher.accepts(&rejected, threads, reduction));
                }
            }
        }
    }

    #[test]
    fn absurd_thread_counts_are_capped_at_the_pool_size() {
        let (_, backends) = backends("(ab)*");
        for backend in &backends {
            let engine = Engine::new(4);
            let matcher = ParallelSfaMatcher::with_engine(backend, engine);
            let input = b"ab".repeat(50_000);
            // One "thread" per byte is requested; the matcher cuts at most
            // `workers` chunks and spawns nothing.
            let states = matcher.chunk_states(&input, input.len());
            assert_eq!(states.len(), 4);
            assert!(matcher.accepts(&input, input.len(), Reduction::Tree));
        }
    }

    #[test]
    fn lazy_backend_materializes_only_chunk_visited_states() {
        // The point of the lazy backend under Algorithm 5: a pool-sized
        // scan of an explosion-free input touches a handful of states.
        let (_, backends) = backends("([0-4]{5}[5-9]{5})*");
        let lazy = backends[1].lazy().expect("second backend is lazy");
        let matcher = ParallelSfaMatcher::with_engine(&backends[1], test_engine());
        let input = b"0000055555".repeat(8 * 1024); // 80 KiB → pool path
        assert!(matcher.accepts(&input, 8, Reduction::Sequential));
        // The eager SFA has 110 states; chunk walks + the reduction's
        // composites stay far below (each chunk revisits one short cycle).
        assert!(lazy.num_states_constructed() < 60, "{}", lazy.num_states_constructed());
        assert!(lazy.num_states_constructed() <= backends[0].num_states());
    }

    #[test]
    fn paper_example2_walkthrough() {
        // Example 2: w = ababababababab split over 4 workers as
        // aba | baba | bab | abab, reduced to an accepting state.
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let sfa = SfaBackend::from(DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap());
        let matcher = ParallelSfaMatcher::with_engine(&sfa, Engine::new(4));
        let input = b"ababababababab";
        assert_eq!(input.len(), 14);
        for reduction in [Reduction::Sequential, Reduction::Tree] {
            assert!(matcher.accepts(input, 4, reduction));
        }
        // The per-chunk SFA states correspond to f_aba, f_baba, f_bab, f_abab
        // (all distinct, none necessarily accepting on their own).
        let states = matcher.chunk_states(input, 4);
        assert_eq!(states.len(), 4);
        // Our static split gives chunks of 4,4,3,3 bytes (the paper's
        // example splits 3,4,3,4 — Theorem 3 says any split works).
        assert_eq!(states[0], sfa.run(b"abab"));
        assert_eq!(states[3], sfa.run(b"bab"));
    }

    #[test]
    fn interleaved_scan_chunk_agrees_with_plain_run() {
        // `scan_chunk` with lanes > 1 must land on exactly the state a
        // straight-line scan produces (Theorem 3 + the Lemma 1 fold),
        // for both backends, any lane count, and inputs that enter the
        // sink mid-way or are shorter than the lane count.
        let (_, backends) = backends("([0-4]{2}[5-9]{2})*");
        let mut poisoned = b"00550459".repeat(512);
        poisoned[1000] = b'!';
        let inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"0".to_vec(),
            b"0055".to_vec(),
            b"00550459".repeat(37),
            b"00550459".repeat(1024),
            poisoned,
        ];
        for backend in &backends {
            let matcher = ParallelSfaMatcher::with_engine(backend, test_engine());
            for input in &inputs {
                let expected = backend.run(input);
                for lanes in [1usize, 2, 3, 4, 8, 13] {
                    assert_eq!(
                        matcher.scan_chunk(input, lanes),
                        expected,
                        "len {} lanes {} ({:?} backend)",
                        input.len(),
                        lanes,
                        backend.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_intra_chunk_scan_agrees_with_sequential_strategy() {
        use crate::{Regex, Strategy};
        // A pool-sized input, so `plan_chunks_interleaved` genuinely
        // raises `lanes` to the backend's preference (the per-lane floor
        // is met), and the interleaved parallel scan must agree with
        // `Strategy::Sequential` — including on an input poisoned in the
        // middle of a lane.
        let re = Regex::new("([0-4]{2}[5-9]{2})*").unwrap();
        let accepted = b"00550459".repeat(64 * 1024); // 512 KiB
        let mut rejected = accepted.clone();
        rejected[accepted.len() / 2] = b'!';
        let matcher = ParallelSfaMatcher::with_engine(re.sfa(), test_engine());
        let plan = matcher.plan(accepted.len(), 8);
        assert_eq!(plan.lanes, re.sfa().preferred_lanes());
        for input in [&accepted, &rejected] {
            let expected = re.is_match_with(input, Strategy::Sequential);
            assert_eq!(re.is_match_with(input, Strategy::parallel(8)), expected);
            for threads in [1usize, 2, 8] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(matcher.accepts(input, threads, reduction), expected);
                }
            }
        }
        // Feed boundaries compose with the intra-chunk lanes: a stream
        // fed in irregular blocks (some pool-sized, some tiny) reaches
        // the same verdict as the one-shot sequential scan.
        for input in [&accepted, &rejected] {
            let mut stream = re.stream();
            for block in input.chunks(77_777) {
                stream.feed(block);
            }
            assert_eq!(stream.finish(), re.is_match_with(input, Strategy::Sequential));
        }
    }

    #[test]
    fn nsfa_parallel_matcher_agrees() {
        use sfa_automata::Nfa;
        for pattern in ["(ab)*", "(a|b)*abb", "a{2,4}b"] {
            let nfa = Nfa::from_pattern(pattern).unwrap();
            let sfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
            let matcher = ParallelNSfaMatcher::with_engine(&sfa, test_engine());
            for input in [&b""[..], b"ab", b"abab", b"abb", b"aabb", b"aaab", b"zz"] {
                let expected = nfa.accepts(input);
                assert_eq!(
                    matcher.accepts(input, 4, Reduction::Tree),
                    expected,
                    "pattern {:?} input {:?}",
                    pattern,
                    input
                );
            }
        }
    }

    #[test]
    fn nsfa_sequential_reduction_agrees() {
        use sfa_automata::Nfa;
        // The Sequential path walks the correspondences with a frontier
        // set — previously only the Tree path was tested.
        for pattern in ["(ab)*", "(a|b)*abb", "a{2,4}b", "a|bc|d"] {
            let nfa = Nfa::from_pattern(pattern).unwrap();
            let sfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
            let matcher = ParallelNSfaMatcher::with_engine(&sfa, test_engine());
            for input in
                [&b""[..], b"a", b"ab", b"abab", b"abb", b"aabb", b"aaaab", b"bc", b"d", b"zz"]
            {
                let expected = nfa.accepts(input);
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        matcher.accepts(input, threads, Reduction::Sequential),
                        expected,
                        "pattern {:?} input {:?} threads {}",
                        pattern,
                        input,
                        threads
                    );
                }
            }
        }
    }

    #[test]
    fn nsfa_sequential_reduction_empty_input_single_chunk() {
        use sfa_automata::Nfa;
        // An empty input yields exactly one (empty) chunk, so the
        // Sequential walk starts from partials[0] alone; (ab)* accepts ε,
        // ab does not.
        for (pattern, expected) in [("(ab)*", true), ("ab", false)] {
            let nfa = Nfa::from_pattern(pattern).unwrap();
            let sfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
            let matcher = ParallelNSfaMatcher::with_engine(&sfa, test_engine());
            assert_eq!(matcher.chunk_states(b"", 8).len(), 1);
            for threads in [1usize, 8] {
                assert_eq!(matcher.accepts(b"", threads, Reduction::Sequential), expected);
                assert_eq!(matcher.accepts(b"", threads, Reduction::Tree), expected);
            }
        }
    }
}
