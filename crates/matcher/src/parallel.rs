//! **Algorithm 5** — the SFA-based data-parallel matcher, the paper's main
//! contribution.
//!
//! Every worker runs the (deterministic) SFA over its chunk starting from
//! the identity state — one table lookup per byte, no per-state loop — and
//! produces a single SFA state `f_i`. The partial results are then reduced
//! either sequentially in `O(p)` (walk the mappings starting from the DFA's
//! start state) or as a logarithmic-depth tree of mapping compositions.

use crate::chunk::split_chunks;
use crate::executor::{map_chunks, tree_reduce};
use crate::Reduction;
use sfa_automata::{StateId, StateSet};
use sfa_core::{DSfa, NSfa, SfaStateId, Transformation};

/// The parallel matcher over a D-SFA.
#[derive(Clone, Debug)]
pub struct ParallelSfaMatcher<'a> {
    sfa: &'a DSfa,
}

impl<'a> ParallelSfaMatcher<'a> {
    /// Creates a matcher over the given D-SFA.
    pub fn new(sfa: &'a DSfa) -> ParallelSfaMatcher<'a> {
        ParallelSfaMatcher { sfa }
    }

    /// Runs the chunk phase (lines 1–5 of Algorithm 5): each chunk is
    /// processed independently starting from the identity state.
    pub fn chunk_states(&self, input: &[u8], threads: usize) -> Vec<SfaStateId> {
        let chunks = split_chunks(input, threads);
        map_chunks(chunks, threads > 1, |_, chunk| self.sfa.run(chunk))
    }

    /// Runs the full parallel computation and returns the final DFA state
    /// reached from the DFA's start state.
    pub fn run(&self, input: &[u8], threads: usize, reduction: Reduction) -> StateId {
        let partials = self.chunk_states(input, threads);
        match reduction {
            Reduction::Sequential => {
                // S_fin ← I; for i: S_fin ← f_i(S_fin)   — O(p) lookups.
                let mut q = self.sfa.dfa_start();
                for &f in &partials {
                    q = self.sfa.mapping(f).apply(q);
                }
                q
            }
            Reduction::Tree => {
                let mappings: Vec<Transformation> =
                    partials.iter().map(|&f| self.sfa.mapping(f).clone()).collect();
                let combined = tree_reduce(mappings, threads > 1, |a, b| a.then(b))
                    .expect("at least one chunk");
                combined.apply(self.sfa.dfa_start())
            }
        }
    }

    /// Whole-input membership test (the `S_fin ∩ F ≠ ∅` check of
    /// Algorithm 5).
    pub fn accepts(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        let q = self.run(input, threads, reduction);
        self.sfa.dfa_is_accepting(q)
    }
}

/// The parallel matcher over an N-SFA (the general, nondeterministic form
/// of Algorithm 5; the reduction composes correspondences, i.e. boolean
/// matrices).
#[derive(Clone, Debug)]
pub struct ParallelNSfaMatcher<'a> {
    sfa: &'a NSfa,
}

impl<'a> ParallelNSfaMatcher<'a> {
    /// Creates a matcher over the given N-SFA.
    pub fn new(sfa: &'a NSfa) -> ParallelNSfaMatcher<'a> {
        ParallelNSfaMatcher { sfa }
    }

    /// Runs the chunk phase of Algorithm 5.
    pub fn chunk_states(&self, input: &[u8], threads: usize) -> Vec<SfaStateId> {
        let chunks = split_chunks(input, threads);
        map_chunks(chunks, threads > 1, |_, chunk| self.sfa.run(chunk))
    }

    /// Whole-input membership test.
    pub fn accepts(&self, input: &[u8], threads: usize, reduction: Reduction) -> bool {
        let partials = self.chunk_states(input, threads);
        match reduction {
            Reduction::Sequential => {
                // Walk the correspondences with a frontier set — this is the
                // "sequential reduction corresponds to sequential computation
                // of NFA" case of Table II (`O(|N| · p)`).
                let first = self.sfa.mapping(partials[0]);
                let mut frontier: StateSet = first.apply(self.sfa.nfa_start()).clone();
                for &f in &partials[1..] {
                    frontier = self.sfa.mapping(f).apply_set(&frontier);
                }
                frontier.intersects(self.sfa.nfa_accepting_set())
            }
            Reduction::Tree => {
                let mappings: Vec<sfa_core::Correspondence> =
                    partials.iter().map(|&f| self.sfa.mapping(f).clone()).collect();
                let combined = tree_reduce(mappings, threads > 1, |a, b| a.then(b))
                    .expect("at least one chunk");
                self.sfa.mapping_is_accepting(&combined)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::minimal_dfa_from_pattern;
    use sfa_core::SfaConfig;

    fn check_dsfa(pattern: &str, inputs: &[&[u8]]) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let matcher = ParallelSfaMatcher::new(&sfa);
        for &input in inputs {
            let expected = dfa.accepts(input);
            for threads in [1usize, 2, 3, 4, 8] {
                for reduction in [Reduction::Sequential, Reduction::Tree] {
                    assert_eq!(
                        matcher.accepts(input, threads, reduction),
                        expected,
                        "pattern {:?}, input len {}, {} threads, {:?}",
                        pattern,
                        input.len(),
                        threads,
                        reduction
                    );
                    assert_eq!(matcher.run(input, threads, reduction), dfa.run(input));
                }
            }
        }
    }

    #[test]
    fn algorithm5_agrees_with_algorithm2() {
        check_dsfa("(ab)*", &[b"", b"ab", b"abab", b"aba", b"ababababababab", b"abxab"]);
        check_dsfa(
            "([0-4]{2}[5-9]{2})*",
            &[b"", b"0055", b"005504590459", b"00550", b"555500", b"0055005500550055"],
        );
        check_dsfa("(a|b)*abb", &[b"abb", b"aababb", b"ab", b"abba", b"bbbbabb"]);
    }

    #[test]
    fn paper_example2_walkthrough() {
        // Example 2: w = ababababababab split over 4 workers as
        // aba | baba | bab | abab, reduced to an accepting state.
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let matcher = ParallelSfaMatcher::new(&sfa);
        let input = b"ababababababab";
        assert_eq!(input.len(), 14);
        for reduction in [Reduction::Sequential, Reduction::Tree] {
            assert!(matcher.accepts(input, 4, reduction));
        }
        // The per-chunk SFA states correspond to f_aba, f_baba, f_bab, f_abab
        // (all distinct, none necessarily accepting on their own).
        let states = matcher.chunk_states(input, 4);
        assert_eq!(states.len(), 4);
        // Our static split gives chunks of 4,4,3,3 bytes (the paper's
        // example splits 3,4,3,4 — Theorem 3 says any split works).
        assert_eq!(states[0], sfa.run(b"abab"));
        assert_eq!(states[3], sfa.run(b"bab"));
    }

    #[test]
    fn nsfa_parallel_matcher_agrees() {
        use sfa_automata::Nfa;
        for pattern in ["(ab)*", "(a|b)*abb", "a{2,4}b"] {
            let nfa = Nfa::from_pattern(pattern).unwrap();
            let sfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
            let matcher = ParallelNSfaMatcher::new(&sfa);
            for input in [&b""[..], b"ab", b"abab", b"abb", b"aabb", b"aaab", b"zz"] {
                let expected = nfa.accepts(input);
                assert_eq!(
                    matcher.accepts(input, 4, Reduction::Tree),
                    expected,
                    "pattern {:?} input {:?}",
                    pattern,
                    input
                );
            }
        }
    }
}
