//! A tiny fork/join executor over scoped OS threads.
//!
//! The paper's matcher uses `p` long-lived pthreads with one contiguous
//! chunk each; `std::thread::scope` gives us the same execution model with
//! compile-time data-race freedom. The executor also provides the pairwise
//! tree combine used by the "parallel reduction" variants of Algorithm 3
//! and Algorithm 5.

/// Runs `work` over every item of `items` — one thread per item when
/// `parallel` is true, on the calling thread otherwise — and returns the
/// results in item order.
pub fn map_chunks<T, R, F>(items: Vec<T>, parallel: bool, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if !parallel || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| work(i, item)).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let work = &work;
        let mut handles = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            handles.push(scope.spawn(move || (i, work(i, item))));
        }
        for handle in handles {
            let (i, r) = handle.join().expect("worker thread panicked");
            results[i] = Some(r);
        }
    });
    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Tree (logarithmic-depth) reduction with an associative operator.
///
/// Each round combines adjacent pairs; rounds run their pair combinations on
/// separate threads when `parallel` is true. This is the `O(c · log p)`
/// reduction of Table II, where `c` is the cost of one composition.
pub fn tree_reduce<T, F>(mut values: Vec<T>, parallel: bool, combine: F) -> Option<T>
where
    T: Send,
    F: Fn(&T, &T) -> T + Sync,
{
    if values.is_empty() {
        return None;
    }
    while values.len() > 1 {
        let pairs: Vec<(T, Option<T>)> = {
            let mut it = values.into_iter();
            let mut pairs = Vec::new();
            while let Some(a) = it.next() {
                pairs.push((a, it.next()));
            }
            pairs
        };
        values = map_chunks(pairs, parallel, |_, (a, b)| match b {
            Some(b) => combine(&a, &b),
            None => a,
        });
    }
    values.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..17).collect();
        for parallel in [false, true] {
            let out = map_chunks(items.clone(), parallel, |i, x| (i as u64) * 100 + x * x);
            let expected: Vec<u64> = (0..17).map(|x| x * 100 + x * x).collect();
            assert_eq!(out, expected, "parallel = {}", parallel);
        }
    }

    #[test]
    fn map_chunks_single_item_runs_inline() {
        let out = map_chunks(vec![41], true, |_, x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn tree_reduce_matches_sequential_fold() {
        // String concatenation is associative but not commutative, so this
        // also checks that the pairing preserves order.
        let values: Vec<String> = (0..13).map(|i| format!("{i}-")).collect();
        let expected = values.concat();
        for parallel in [false, true] {
            let combined = tree_reduce(values.clone(), parallel, |a, b| format!("{a}{b}")).unwrap();
            assert_eq!(combined, expected, "parallel = {}", parallel);
        }
    }

    #[test]
    fn tree_reduce_handles_degenerate_sizes() {
        assert_eq!(tree_reduce(Vec::<u32>::new(), true, |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u32], true, |a, b| a + b), Some(7));
        assert_eq!(tree_reduce(vec![1u32, 2], true, |a, b| a + b), Some(3));
        assert_eq!(tree_reduce(vec![1u32, 2, 3], false, |a, b| a + b), Some(6));
    }

    #[test]
    fn tree_reduce_is_deterministic_under_parallelism() {
        let values: Vec<i64> = (1..=64).collect();
        let a = tree_reduce(values.clone(), true, |x, y| x * 31 + y).unwrap();
        let b = tree_reduce(values, false, |x, y| x * 31 + y).unwrap();
        assert_eq!(a, b);
    }
}
