//! Free-function façade over the [global engine](crate::pool::Engine::global).
//!
//! Historically this module *was* the executor: a fork/join layer that
//! spawned one scoped OS thread per chunk on every call. That per-call
//! spawning was the crate's worst scalability bug — a server calling
//! `is_match` millions of times paid thread-creation latency dwarfing the
//! matching itself — so the execution model now lives in [`crate::pool`]:
//! a persistent worker pool matching the paper's long-lived-pthreads
//! design. These functions keep the old call shape and simply run on the
//! shared global pool; code that wants its own pool size or lifecycle uses
//! [`Engine`] directly.
//!
//! One behavioral difference from the fork/join era: concurrency is now
//! bounded at the pool's worker count plus the calling thread, not one
//! thread per item. Closures must therefore not block on one another
//! (e.g. item 0 waiting on a channel fed by item k) — with more items
//! than workers, the unblocking item may still be queued. Chunk matching
//! never does this; independent, compute-only items are the contract.
//!
//! Parallelism *below* this layer is invisible to it: when a chunk plan
//! carries an interleave lane count
//! ([`ChunkPlan::lanes`](crate::pool::ChunkPlan::lanes)), each mapped
//! closure internally drives several sub-chunk lanes through one batched
//! scan, but from the executor's point of view it is still one opaque,
//! compute-only work item.

use crate::pool::Engine;

/// Runs `work` over every item of `items` — on the global worker pool when
/// `parallel` is true, on the calling thread otherwise — and returns the
/// results in item order.
pub fn map_chunks<T, R, F>(items: Vec<T>, parallel: bool, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Engine::global().map_chunks(items, parallel, work)
}

/// Tree (logarithmic-depth) reduction with an associative operator.
///
/// Each round combines adjacent pairs; rounds run their pair combinations
/// on the global worker pool when `parallel` is true. This is the
/// `O(c · log p)` reduction of Table II, where `c` is the cost of one
/// composition.
pub fn tree_reduce<T, F>(values: Vec<T>, parallel: bool, combine: F) -> Option<T>
where
    T: Send,
    F: Fn(&T, &T) -> T + Sync,
{
    Engine::global().tree_reduce(values, parallel, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..17).collect();
        for parallel in [false, true] {
            let out = map_chunks(items.clone(), parallel, |i, x| (i as u64) * 100 + x * x);
            let expected: Vec<u64> = (0..17).map(|x| x * 100 + x * x).collect();
            assert_eq!(out, expected, "parallel = {}", parallel);
        }
    }

    #[test]
    fn map_chunks_single_item_runs_inline() {
        let out = map_chunks(vec![41], true, |_, x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn tree_reduce_matches_sequential_fold() {
        // String concatenation is associative but not commutative, so this
        // also checks that the pairing preserves order.
        let values: Vec<String> = (0..13).map(|i| format!("{i}-")).collect();
        let expected = values.concat();
        for parallel in [false, true] {
            let combined = tree_reduce(values.clone(), parallel, |a, b| format!("{a}{b}")).unwrap();
            assert_eq!(combined, expected, "parallel = {}", parallel);
        }
    }

    #[test]
    fn tree_reduce_handles_degenerate_sizes() {
        assert_eq!(tree_reduce(Vec::<u32>::new(), true, |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u32], true, |a, b| a + b), Some(7));
        assert_eq!(tree_reduce(vec![1u32, 2], true, |a, b| a + b), Some(3));
        assert_eq!(tree_reduce(vec![1u32, 2, 3], false, |a, b| a + b), Some(6));
    }

    #[test]
    fn tree_reduce_is_deterministic_under_parallelism() {
        let values: Vec<i64> = (1..=64).collect();
        let a = tree_reduce(values.clone(), true, |x, y| x * 31 + y).unwrap();
        let b = tree_reduce(values, false, |x, y| x * 31 + y).unwrap();
        assert_eq!(a, b);
    }
}
