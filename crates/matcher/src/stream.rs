//! Streaming (online) matching over input that arrives in blocks.
//!
//! Theorem 3 of the paper says the SFA computation decomposes at *any*
//! division of the word — the matcher exploits that for space-parallelism
//! (chunks of one buffer on many workers), but the same property works in
//! *time*: the division points can be the arrival boundaries of network
//! reads or log tails. A [`StreamMatcher`] keeps the SFA state reached by
//! everything fed so far; each [`feed`](StreamMatcher::feed) advances it by
//! one block, and because `f_w ⋄ f_v = f_wv` (Lemma 1) the state after the
//! last block is exactly the state of the concatenated input — no
//! buffering, no re-scanning, any block sizes.
//!
//! Within a single large block the two parallelisms compose: the block is
//! cut into chunks on the regex's [`Engine`](crate::pool::Engine) exactly
//! like a whole-buffer [`is_match`](crate::Regex::is_match), and the chunk
//! states are folded into the running state with
//! [`SfaBackend::compose_states`](sfa_core::SfaBackend::compose_states).
//! Small blocks (the common case for request-serving workloads) never
//! touch the pool: feeding them is a plain continuation of the table
//! walk, one lookup per byte. All of this runs identically over the
//! eager and the on-the-fly (lazy) [backend](sfa_core::SfaBackend) — on
//! a lazy backend the stream materializes states as the traffic visits
//! them, and a composition may intern a state no input has walked to.
//!
//! Once the running state reaches a *sink* (a mapping no suffix can change
//! — the all-dead mapping after a synchronizing word, or the
//! constant-accept mapping of a `Contains` scan that has seen its needle),
//! the verdict is final: [`verdict`](StreamMatcher::verdict) reports it
//! without waiting for the stream to end, and every further `feed` is a
//! counter bump, not a scan. Long streams are therefore cheap after
//! saturation (cf. Gusev et al., *Principal ideal languages and
//! synchronizing automata*: converging states make the tail free).
//!
//! ```
//! use sfa_matcher::{MatchMode, Regex};
//!
//! let re = Regex::builder().mode(MatchMode::Contains).build("attack[0-9]{2}").unwrap();
//! let mut stream = re.stream();
//! // The needle may straddle feed boundaries arbitrarily.
//! stream.feed(b"GET /atta").feed(b"ck4").feed(b"2/index.html");
//! assert!(stream.finish());
//! // A Contains match saturates: the verdict is already final and the
//! // rest of the stream will not be scanned at all.
//! assert_eq!(stream.verdict(), Some(true));
//! stream.reset();
//! assert!(!stream.feed(b"benign traffic").finish());
//! ```

use crate::chunk::split_chunks;
use crate::error::Error;
use crate::matches::SetMatches;
use crate::regex::{Regex, RegexSet, SetInner};
use sfa_automata::PatternSet;
use sfa_core::SfaStateId;

/// An incremental matcher: the state of a [`Regex`] run over a stream of
/// input blocks. See the [module docs](self) for the model.
///
/// Created by [`Regex::stream`] (or
/// [`RegexSet::stream`](crate::RegexSet::stream)); borrows the compiled
/// regex, so many concurrent streams can share one compilation.
#[derive(Clone, Debug)]
pub struct StreamMatcher<'r> {
    regex: &'r Regex,
    state: SfaStateId,
    bytes_fed: u64,
    blocks_fed: u64,
}

impl<'r> StreamMatcher<'r> {
    /// Starts a stream at the identity state (no input fed yet).
    pub(crate) fn new(regex: &'r Regex) -> StreamMatcher<'r> {
        StreamMatcher { regex, state: regex.sfa().initial(), bytes_fed: 0, blocks_fed: 0 }
    }

    /// The regex this stream is matching against.
    pub fn regex(&self) -> &'r Regex {
        self.regex
    }

    /// Advances the running state by one block of input.
    ///
    /// The verdict after any sequence of `feed`s equals
    /// [`is_match`](Regex::is_match) on the concatenation of the blocks —
    /// the blocks may split the input anywhere, including mid-match.
    ///
    /// Blocks big enough to amortize the hand-off are cut into chunks and
    /// scanned on the regex's engine in parallel (using the regex's
    /// configured thread cap); smaller blocks continue the table walk
    /// inline. After [saturation](StreamMatcher::is_saturated) this is
    /// `O(1)`: the block is counted but not scanned.
    pub fn feed(&mut self, block: &[u8]) -> &mut Self {
        self.bytes_fed += block.len() as u64;
        self.blocks_fed += 1;
        let sfa = self.regex.sfa();
        if sfa.is_sink(self.state) {
            return self; // saturated: no suffix can change the verdict
        }
        let plan = self.regex.engine().plan_chunks(block.len(), self.regex.threads());
        if !plan.use_pool {
            // run_from dispatches once on the backend's packed table
            // width and scans the block in a monomorphized loop, so
            // block-at-a-time streaming gets the cache-packed fast path
            // with no per-byte dispatch.
            self.state = sfa.run_from(self.state, block);
        } else {
            // Chunk phase of Algorithm 5 within the block, then fold the
            // chunk states into the running state (Lemma 1 twice over).
            let chunks = split_chunks(block, plan.chunks);
            let partials = self.regex.engine().map_chunks(chunks, true, |_, c| sfa.run(c));
            for f in partials {
                self.state = sfa.compose_states(self.state, f);
                if sfa.is_sink(self.state) {
                    break;
                }
            }
        }
        self
    }

    /// The verdict over everything fed so far: would the concatenated
    /// blocks match?
    ///
    /// Non-consuming and always available — a stream can keep feeding
    /// after asking (e.g. a per-line verdict over a growing log).
    pub fn finish(&self) -> bool {
        self.regex.sfa().is_accepting(self.state)
    }

    /// The DFA state the stream's input would land on — the image of the
    /// running mapping at the DFA's start state. Verdict finality is a
    /// property of this state: no suffix can change what is decided in
    /// every state reachable from it.
    fn dfa_image(&self) -> sfa_automata::StateId {
        let sfa = self.regex.sfa();
        sfa.apply(self.state, sfa.dfa_start())
    }

    /// The final verdict, if it is already decided: `Some` once no
    /// possible suffix can change the answer — the stream
    /// [saturated](StreamMatcher::is_saturated), or the run entered a
    /// region of the automaton where every reachable state agrees on
    /// accept-vs-reject ([`Dfa::verdict_decided_states`]). `None` while
    /// further input still matters.
    ///
    /// In `Contains` mode a hit decides the verdict to `Some(true)`
    /// immediately (the accept region is absorbing), so an IDS-style
    /// scanner can stop reading a connection at the first match — even
    /// when the per-rule [`set_verdict`](StreamMatcher::set_verdict) is
    /// still open because other rules' fates are undecided.
    ///
    /// [`Dfa::verdict_decided_states`]: sfa_automata::Dfa::verdict_decided_states
    pub fn verdict(&self) -> Option<bool> {
        if self.is_saturated() || self.regex.decided_maps().any[self.dfa_image() as usize] {
            Some(self.finish())
        } else {
            None
        }
    }

    /// The per-pattern verdict over everything fed so far: which patterns
    /// of the compiled set the concatenated blocks match. The
    /// multi-pattern refinement of [`finish`](StreamMatcher::finish) —
    /// non-consuming, always available, identical to
    /// [`RegexSet::matches`](crate::RegexSet::matches) on the
    /// concatenation whatever the feed boundaries were.
    pub fn set_matches(&self) -> SetMatches {
        match self.try_set_matches() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`set_matches`](StreamMatcher::set_matches):
    /// [`Error::PatternTrackingDisabled`] instead of a panic when the
    /// regex was compiled with
    /// [`track_patterns(false)`](crate::RegexBuilder::track_patterns).
    pub fn try_set_matches(&self) -> Result<SetMatches, Error> {
        self.regex.check_tracking()?;
        Ok(SetMatches::new(self.regex.sfa().accepting_patterns(self.state).clone()))
    }

    /// The final per-pattern verdict, if it is already decided: `Some`
    /// once no suffix can change *which* rules fired — the stream
    /// saturated, or every state reachable from the current one carries
    /// the same accept set ([`Dfa::accept_set_decided_states`]). `None`
    /// while further input still matters.
    ///
    /// Stricter than [`verdict`](StreamMatcher::verdict): in a multi-rule
    /// `Contains` scan the boolean verdict freezes at the first hit,
    /// while the set verdict stays open until every rule's fate is frozen
    /// (all hit, or nothing can change anymore).
    ///
    /// [`Dfa::accept_set_decided_states`]: sfa_automata::Dfa::accept_set_decided_states
    pub fn set_verdict(&self) -> Option<SetMatches> {
        match self.try_set_verdict() {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`set_verdict`](StreamMatcher::set_verdict):
    /// [`Error::PatternTrackingDisabled`] instead of a panic when the
    /// regex was compiled with
    /// [`track_patterns(false)`](crate::RegexBuilder::track_patterns).
    pub fn try_set_verdict(&self) -> Result<Option<SetMatches>, Error> {
        self.regex.check_tracking()?;
        if self.is_saturated() || self.regex.decided_maps().set[self.dfa_image() as usize] {
            Ok(Some(self.try_set_matches()?))
        } else {
            Ok(None)
        }
    }

    /// True once the running state is a sink: the mapping can never change
    /// again, every further [`feed`](StreamMatcher::feed) is a no-op bump
    /// and [`verdict`](StreamMatcher::verdict) is final.
    pub fn is_saturated(&self) -> bool {
        self.regex.sfa().is_sink(self.state)
    }

    /// The SFA state reached by the input fed so far (the transformation
    /// `f_w` of the concatenated blocks `w`).
    pub fn sfa_state(&self) -> SfaStateId {
        self.state
    }

    /// Total bytes fed since construction or the last reset.
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// Number of `feed` calls since construction or the last reset.
    pub fn blocks_fed(&self) -> u64 {
        self.blocks_fed
    }

    /// Rewinds to the identity state so the matcher can be reused for a new
    /// stream without touching the compiled regex.
    pub fn reset(&mut self) {
        self.state = self.regex.sfa().initial();
        self.bytes_fed = 0;
        self.blocks_fed = 0;
    }
}

/// An incremental matcher over a whole [`RegexSet`]: the streaming
/// counterpart of [`RegexSet::matches`], created by [`RegexSet::stream`].
///
/// For an unsharded set this wraps the single combined automaton's
/// [`StreamMatcher`]; for a
/// [sharded](crate::RegexBuilder::shard_state_budget) set it runs one
/// stream per shard in lockstep and merges their verdicts. The literal
/// prefilter is deliberately **not** consulted on streams: a required
/// literal may arrive in a later block (or straddle a block boundary), so
/// no shard can be skipped — every shard's automaton sees every byte.
/// Verdicts are nevertheless identical to the whole-buffer APIs on the
/// concatenated input, whatever the feed boundaries.
#[derive(Clone, Debug)]
pub struct SetStream<'s> {
    set: &'s RegexSet,
    streams: Vec<StreamMatcher<'s>>,
}

impl<'s> SetStream<'s> {
    /// Starts a stream per underlying automaton, all at the identity state.
    pub(crate) fn new(set: &'s RegexSet) -> SetStream<'s> {
        let streams = match set.inner() {
            SetInner::Single(re) => vec![re.stream()],
            SetInner::Sharded(sharded) => {
                sharded.shards.iter().map(|s| s.regex().stream()).collect()
            }
        };
        SetStream { set, streams }
    }

    /// The set this stream is matching against.
    pub fn set(&self) -> &'s RegexSet {
        self.set
    }

    /// Advances every underlying stream by one block of input; see
    /// [`StreamMatcher::feed`]. Saturated shards skip the scan, so a
    /// long stream gets cheaper as shards decide.
    pub fn feed(&mut self, block: &[u8]) -> &mut Self {
        for stream in &mut self.streams {
            stream.feed(block);
        }
        self
    }

    /// Whether the concatenation of everything fed so far matches *any*
    /// rule of the set; see [`StreamMatcher::finish`].
    pub fn finish(&self) -> bool {
        self.streams.iter().any(StreamMatcher::finish)
    }

    /// The final any-match verdict, if already decided: `Some(true)` as
    /// soon as any shard's verdict freezes to a match, `Some(false)` once
    /// every shard's verdict freezes to a non-match, `None` while some
    /// undecided shard could still go either way.
    pub fn verdict(&self) -> Option<bool> {
        let mut all_false = true;
        for stream in &self.streams {
            match stream.verdict() {
                Some(true) => return Some(true),
                Some(false) => {}
                None => all_false = false,
            }
        }
        if all_false {
            Some(false)
        } else {
            None
        }
    }

    /// The per-rule verdict over everything fed so far; the streaming
    /// form of [`RegexSet::matches`]. Panics when the set was compiled
    /// with [`track_patterns(false)`](crate::RegexBuilder::track_patterns)
    /// — use [`try_set_matches`](SetStream::try_set_matches) to get the
    /// typed [`Error`] instead.
    pub fn set_matches(&self) -> SetMatches {
        match self.try_set_matches() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`set_matches`](SetStream::set_matches).
    pub fn try_set_matches(&self) -> Result<SetMatches, Error> {
        match self.set.inner() {
            SetInner::Single(_) => Ok(self.set.expand(self.streams[0].try_set_matches()?)),
            SetInner::Sharded(sharded) => {
                sharded.check_tracking()?;
                let mut uniq = PatternSet::new(sharded.unique);
                for (shard, stream) in sharded.shards.iter().zip(&self.streams) {
                    for hit in stream.try_set_matches()?.iter() {
                        uniq.insert(shard.members()[hit]);
                    }
                }
                Ok(self.set.expand(SetMatches::new(uniq)))
            }
        }
    }

    /// The final per-rule verdict, if already decided: `Some` once every
    /// shard's set verdict is frozen (see [`StreamMatcher::set_verdict`]),
    /// `None` while any shard's rules could still change fate. Panics on
    /// an untracked set — see
    /// [`try_set_verdict`](SetStream::try_set_verdict).
    pub fn set_verdict(&self) -> Option<SetMatches> {
        match self.try_set_verdict() {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`set_verdict`](SetStream::set_verdict).
    pub fn try_set_verdict(&self) -> Result<Option<SetMatches>, Error> {
        match self.set.inner() {
            SetInner::Single(_) => {
                Ok(self.streams[0].try_set_verdict()?.map(|m| self.set.expand(m)))
            }
            SetInner::Sharded(sharded) => {
                sharded.check_tracking()?;
                let mut uniq = PatternSet::new(sharded.unique);
                for (shard, stream) in sharded.shards.iter().zip(&self.streams) {
                    match stream.try_set_verdict()? {
                        Some(local) => {
                            for hit in local.iter() {
                                uniq.insert(shard.members()[hit]);
                            }
                        }
                        None => return Ok(None),
                    }
                }
                Ok(Some(self.set.expand(SetMatches::new(uniq))))
            }
        }
    }

    /// True once every underlying stream reached a sink; further feeds
    /// are counter bumps and all verdicts are final.
    pub fn is_saturated(&self) -> bool {
        self.streams.iter().all(StreamMatcher::is_saturated)
    }

    /// Total bytes fed since construction or the last reset.
    pub fn bytes_fed(&self) -> u64 {
        self.streams[0].bytes_fed()
    }

    /// Number of `feed` calls since construction or the last reset.
    pub fn blocks_fed(&self) -> u64 {
        self.streams[0].blocks_fed()
    }

    /// Rewinds every underlying stream to the identity state.
    pub fn reset(&mut self) {
        for stream in &mut self.streams {
            stream.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::pool::Engine;
    use crate::regex::{MatchMode, Regex};

    /// Splits `input` at the given positions and feeds the pieces.
    fn verdict_via_stream(re: &Regex, input: &[u8], cuts: &[usize]) -> bool {
        let mut stream = re.stream();
        let mut start = 0;
        for &cut in cuts {
            let cut = cut.min(input.len());
            if cut > start {
                stream.feed(&input[start..cut]);
                start = cut;
            }
        }
        stream.feed(&input[start..]);
        stream.finish()
    }

    #[test]
    fn streaming_agrees_with_whole_buffer_on_any_split() {
        let re = Regex::new("([0-4]{2}[5-9]{2})*").unwrap();
        let inputs: Vec<&[u8]> = vec![b"", b"0055", b"005504590459", b"00550", b"555500"];
        for input in inputs {
            let expected = re.is_match(input);
            // Every single cut position, plus byte-at-a-time.
            for cut in 0..=input.len() {
                assert_eq!(verdict_via_stream(&re, input, &[cut]), expected, "cut {cut}");
            }
            let every_byte: Vec<usize> = (0..=input.len()).collect();
            assert_eq!(verdict_via_stream(&re, input, &every_byte), expected);
        }
    }

    #[test]
    fn feed_boundaries_may_split_a_match_mid_needle() {
        let re = Regex::builder().mode(MatchMode::Contains).build("needle[0-9]{3}").unwrap();
        let haystack = b"xxxxxneedle042yyyyy";
        assert!(re.is_match(haystack));
        // Cut through every position of the needle occurrence.
        for cut in 5..14 {
            assert!(verdict_via_stream(&re, haystack, &[cut]), "cut {cut}");
            assert!(verdict_via_stream(&re, haystack, &[cut, cut + 1]), "cuts {cut},{}", cut + 1);
        }
        assert!(!verdict_via_stream(&re, b"xxxxxneedle04yyyyy", &[7, 9, 11]));
    }

    #[test]
    fn large_blocks_run_their_chunks_on_the_pool() {
        let engine = Engine::new(4);
        let re = Regex::builder().engine(engine).threads(4).build("([0-4]{2}[5-9]{2})*").unwrap();
        let block = b"00550459".repeat(8 * 1024); // 64 KiB → pool path
        assert!(re.engine().plan_chunks(block.len(), re.threads()).use_pool);
        let mut stream = re.stream();
        stream.feed(&block).feed(&block).feed(b"0055");
        assert!(stream.finish());
        assert_eq!(stream.bytes_fed(), 2 * block.len() as u64 + 4);
        assert_eq!(stream.blocks_fed(), 3);
        // A trailing partial period flips the verdict.
        stream.feed(b"9");
        assert!(!stream.finish());
        // Mixed block sizes agree with the whole buffer.
        let mut whole = block.repeat(2);
        whole.extend_from_slice(b"00559");
        assert_eq!(stream.finish(), re.is_match(&whole));
    }

    #[test]
    fn saturation_short_circuits_and_fixes_the_verdict() {
        let re = Regex::builder().mode(MatchMode::Contains).build("attack[0-9]{2}").unwrap();
        let mut stream = re.stream();
        assert_eq!(stream.verdict(), None);
        stream.feed(b"GET /atta").feed(b"ck42/");
        // Contains hit → constant-accept sink → final verdict.
        assert_eq!(stream.verdict(), Some(true));
        assert!(stream.is_saturated());
        let state = stream.sfa_state();
        // Further feeds are counted but cannot move the state.
        stream.feed(&b"y".repeat(1 << 20));
        assert_eq!(stream.sfa_state(), state);
        assert!(stream.finish());
        assert_eq!(stream.blocks_fed(), 3);

        // Whole-input mode saturates on the dead state instead.
        let re = Regex::new("(ab)*").unwrap();
        let mut stream = re.stream();
        stream.feed(b"aa");
        assert_eq!(stream.verdict(), Some(false));
        stream.feed(b"abab");
        assert!(!stream.finish());
    }

    #[test]
    fn reset_rewinds_to_a_fresh_stream() {
        let re = Regex::new("(ab)*").unwrap();
        let mut stream = re.stream();
        stream.feed(b"ab").feed(b"ab");
        assert!(stream.finish());
        assert_eq!(stream.bytes_fed(), 4);
        stream.reset();
        assert_eq!(stream.bytes_fed(), 0);
        assert_eq!(stream.blocks_fed(), 0);
        assert!(stream.finish(), "(ab)* accepts the empty stream");
        stream.feed(b"a");
        assert!(!stream.finish());
    }

    #[test]
    fn empty_blocks_are_harmless() {
        let re = Regex::new("(ab)*").unwrap();
        let mut stream = re.stream();
        stream.feed(b"").feed(b"ab").feed(b"").feed(b"");
        assert!(stream.finish());
        assert_eq!(stream.bytes_fed(), 2);
        assert_eq!(stream.blocks_fed(), 4);
    }

    #[test]
    fn lazy_backend_streams_identically() {
        use crate::regex::BackendChoice;
        // The same stream, eager vs lazy, block sizes spanning the inline
        // and pool paths — including a composition of pool-chunk states
        // into the running state on the lazy cache.
        let build = |choice| {
            Regex::builder()
                .backend(choice)
                .engine(Engine::new(4))
                .threads(4)
                .build("([0-4]{2}[5-9]{2})*")
                .unwrap()
        };
        let eager = build(BackendChoice::Eager);
        let lazy = build(BackendChoice::Lazy);
        let big = b"00550459".repeat(8 * 1024); // 64 KiB → pool path
        let blocks: [&[u8]; 5] = [b"0055", &big, b"04", b"59", &big];
        let mut se = eager.stream();
        let mut sl = lazy.stream();
        for block in blocks {
            se.feed(block);
            sl.feed(block);
            assert_eq!(se.finish(), sl.finish());
            assert_eq!(se.verdict(), sl.verdict());
        }
        assert!(se.finish(), "the concatenation is in the language");
        // A lazy stream saturates exactly like the eager one.
        let mut sl = lazy.stream();
        sl.feed(b"x");
        assert_eq!(sl.verdict(), Some(false));
    }

    #[test]
    fn regex_set_streams_too() {
        use crate::regex::RegexSet;
        let set = RegexSet::new(
            ["GET /[a-z]+", "POST /login"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        let mut stream = set.stream();
        stream.feed(b"POST /log").feed(b"in HTTP/1.1");
        assert!(stream.finish());
        stream.reset();
        assert!(!stream.feed(b"PUT /upload").finish());
    }

    #[test]
    fn set_matches_reports_per_rule_verdicts_across_feed_boundaries() {
        use crate::regex::RegexSet;
        let set = RegexSet::new(
            ["GET /[a-z]+", "POST /login", "(?i)etc/passwd"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        let mut stream = set.stream();
        assert!(stream.set_matches().is_empty());
        // The needle of rule 1 straddles the feed boundary.
        stream.feed(b"POST /log").feed(b"in?file=etc/pas").feed(b"swd");
        let m = stream.set_matches();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(&m, &set.matches(b"POST /login?file=etc/passwd"));
        assert!(stream.finish());
        stream.reset();
        assert!(stream.set_matches().is_empty());
    }

    #[test]
    fn any_verdict_freezes_before_the_set_verdict() {
        use crate::regex::RegexSet;
        let set = RegexSet::new(
            ["attack[0-9]{2}", "exploit[a-z]{2}"],
            &Regex::builder().mode(MatchMode::Contains),
        )
        .unwrap();
        let mut stream = set.stream();
        assert_eq!(stream.verdict(), None);
        assert_eq!(stream.set_verdict(), None);
        stream.feed(b"GET /attack42/");
        // One rule hit: the boolean verdict is final (the accept region
        // is absorbing) but the *set* verdict is still open — rule 1
        // could yet fire.
        assert_eq!(stream.verdict(), Some(true));
        assert!(stream.set_verdict().is_none());
        assert_eq!(stream.set_matches().iter().collect::<Vec<_>>(), vec![0]);
        // Second rule hits: every rule's fate is frozen, the set verdict
        // closes, and the running mapping is now a true sink.
        stream.feed(b"exploitok");
        let final_set = stream.set_verdict().expect("all rules decided");
        assert_eq!(final_set.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(stream.is_saturated());
        // Consistency with the whole-buffer per-rule verdict.
        assert_eq!(&final_set, &set.matches(b"GET /attack42/exploitok"));
    }

    #[test]
    fn single_pattern_set_verdict_matches_verdict() {
        let re = Regex::builder().mode(MatchMode::Contains).build("needle[0-9]{3}").unwrap();
        let mut stream = re.stream();
        assert_eq!(stream.set_verdict(), None);
        stream.feed(b"xxneedle042yy");
        let set = stream.set_verdict().expect("single-pattern hit saturates");
        assert!(set.matched(0));
        assert_eq!(stream.verdict(), Some(true));
    }
}
