//! Typed runtime errors for the matcher's fallible APIs.
//!
//! Compile-time problems (bad patterns, state-budget overflow) surface as
//! [`CompileError`](sfa_automata::CompileError) from the builders; this
//! module covers the *usage* errors that can only occur after a
//! successful compile: asking a
//! [`track_patterns(false)`](crate::RegexBuilder::track_patterns)
//! automaton for per-rule verdicts, loading a compiled-automaton
//! artifact that is stale or damaged, and addressing an unregistered
//! tenant namespace in a multi-tenant service built on this crate.

use sfa_serialize::ArtifactError;
use std::fmt;

/// A runtime usage error from a per-rule verdict API.
///
/// Returned by the `try_*` variants ([`RegexSet::try_matches`],
/// [`RegexSet::try_matches_batch`], [`SetStream::try_set_matches`], …);
/// the panicking variants are documented wrappers that `panic!` with this
/// error's [`Display`](fmt::Display) text.
///
/// [`RegexSet::try_matches`]: crate::RegexSet::try_matches
/// [`RegexSet::try_matches_batch`]: crate::RegexSet::try_matches_batch
/// [`SetStream::try_set_matches`]: crate::SetStream::try_set_matches
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Per-rule verdicts were requested from an automaton compiled with
    /// [`RegexBuilder::track_patterns(false)`], which collapses the rules
    /// into one any-match union: the information simply is not there.
    /// Recompile the set with tracking on (the default) to use the
    /// per-rule APIs.
    ///
    /// [`RegexBuilder::track_patterns(false)`]: crate::RegexBuilder::track_patterns
    PatternTrackingDisabled,
    /// A compiled-automaton artifact was written by a different format
    /// version. Rebuild the artifact with this toolchain (see
    /// [`Regex::to_artifact`](crate::Regex::to_artifact)).
    ArtifactVersionMismatch {
        /// The version stored in the artifact header.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// A compiled-automaton artifact failed validation — truncated,
    /// checksum mismatch, or an out-of-range table entry. Corrupt
    /// artifacts fail closed: no automaton is produced, nothing panics,
    /// and no wrong-answer matcher can be constructed from damaged
    /// tables.
    ArtifactCorrupt {
        /// Byte offset of the section that failed validation.
        offset: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A compiled-automaton artifact could not be read from disk.
    ArtifactIo(
        /// The rendered I/O error (kept as text so [`Error`] stays
        /// `Clone + PartialEq`).
        String,
    ),
    /// A request addressed a tenant namespace that was never registered
    /// (or was already dropped). Raised by multi-tenant services built on
    /// this crate, such as `sfa-server`.
    TenantUnknown {
        /// The tenant name the request carried.
        tenant: String,
    },
    /// An artifact can only be encoded from an **eager** D-SFA backend;
    /// this regex runs on a lazy or borrowed backend, which has no
    /// complete table set to serialize. Recompile with
    /// [`BackendChoice::Eager`](crate::BackendChoice) to produce an
    /// artifact.
    ArtifactRequiresEagerBackend,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PatternTrackingDisabled => write!(
                f,
                "per-rule verdicts require pattern tracking: this automaton was compiled \
                 with RegexBuilder::track_patterns(false), which collapses the rules into \
                 one any-match union"
            ),
            Error::ArtifactVersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is not readable by this build \
                 (which reads version {supported}); rebuild the artifact"
            ),
            Error::ArtifactCorrupt { offset, reason } => {
                write!(f, "corrupt artifact at byte {offset}: {reason}")
            }
            Error::ArtifactIo(message) => write!(f, "artifact io error: {message}"),
            Error::TenantUnknown { tenant } => {
                write!(f, "unknown tenant {tenant:?}: register its patterns first")
            }
            Error::ArtifactRequiresEagerBackend => write!(
                f,
                "artifacts serialize the eager D-SFA tables: this regex runs on a lazy or \
                 borrowed backend; recompile with BackendChoice::Eager to encode an artifact"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<ArtifactError> for Error {
    fn from(err: ArtifactError) -> Error {
        match err {
            ArtifactError::VersionMismatch { found, supported } => {
                Error::ArtifactVersionMismatch { found, supported }
            }
            ArtifactError::Corrupt { offset, reason } => Error::ArtifactCorrupt { offset, reason },
            ArtifactError::Io(io) => Error::ArtifactIo(io.to_string()),
            // `ArtifactError` is non_exhaustive; future variants degrade
            // to a corrupt report at offset 0 rather than a panic.
            other => Error::ArtifactCorrupt { offset: 0, reason: other.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_text_names_the_fix() {
        let msg = Error::PatternTrackingDisabled.to_string();
        assert!(msg.starts_with("per-rule verdicts require pattern tracking"));
        assert!(msg.contains("track_patterns(false)"));
    }

    #[test]
    fn is_a_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(Error::PatternTrackingDisabled);
        assert!(err.source().is_none());
    }

    #[test]
    fn artifact_errors_convert_with_their_payloads() {
        let err: Error = ArtifactError::VersionMismatch { found: 3, supported: 1 }.into();
        assert_eq!(err, Error::ArtifactVersionMismatch { found: 3, supported: 1 });
        assert!(err.to_string().contains("version 3"));

        let err: Error =
            ArtifactError::Corrupt { offset: 96, reason: "checksum".to_string() }.into();
        assert_eq!(err, Error::ArtifactCorrupt { offset: 96, reason: "checksum".to_string() });
        assert!(err.to_string().contains("byte 96"));

        let err: Error = ArtifactError::Io(std::io::Error::other("gone")).into();
        assert!(matches!(&err, Error::ArtifactIo(m) if m.contains("gone")));

        let err = Error::TenantUnknown { tenant: "acme".to_string() };
        assert!(err.to_string().contains("\"acme\""));
    }
}
