//! Typed runtime errors for the matcher's fallible APIs.
//!
//! Compile-time problems (bad patterns, state-budget overflow) surface as
//! [`CompileError`](sfa_automata::CompileError) from the builders; this
//! module covers the *usage* errors that can only occur after a
//! successful compile — today, asking a
//! [`track_patterns(false)`](crate::RegexBuilder::track_patterns)
//! automaton for per-rule verdicts.

use std::fmt;

/// A runtime usage error from a per-rule verdict API.
///
/// Returned by the `try_*` variants ([`RegexSet::try_matches`],
/// [`RegexSet::try_matches_batch`], [`SetStream::try_set_matches`], …);
/// the panicking variants are documented wrappers that `panic!` with this
/// error's [`Display`](fmt::Display) text.
///
/// [`RegexSet::try_matches`]: crate::RegexSet::try_matches
/// [`RegexSet::try_matches_batch`]: crate::RegexSet::try_matches_batch
/// [`SetStream::try_set_matches`]: crate::SetStream::try_set_matches
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Per-rule verdicts were requested from an automaton compiled with
    /// [`RegexBuilder::track_patterns(false)`], which collapses the rules
    /// into one any-match union: the information simply is not there.
    /// Recompile the set with tracking on (the default) to use the
    /// per-rule APIs.
    ///
    /// [`RegexBuilder::track_patterns(false)`]: crate::RegexBuilder::track_patterns
    PatternTrackingDisabled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PatternTrackingDisabled => write!(
                f,
                "per-rule verdicts require pattern tracking: this automaton was compiled \
                 with RegexBuilder::track_patterns(false), which collapses the rules into \
                 one any-match union"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_text_names_the_fix() {
        let msg = Error::PatternTrackingDisabled.to_string();
        assert!(msg.starts_with("per-rule verdicts require pattern tracking"));
        assert!(msg.contains("track_patterns(false)"));
    }

    #[test]
    fn is_a_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(Error::PatternTrackingDisabled);
        assert!(err.source().is_none());
    }
}
