//! # sfa-analysis
//!
//! Offline convergence analysis of compiled [`Dfa`]s.
//!
//! The paper's speculative baseline (Algorithm 3) simulates every chunk
//! from **all** `|Q|` states, which is where its `O(|Q| · n / p)` cost
//! comes from. Real scanning automata are usually far better behaved:
//! after a short window of arbitrary input most start states have either
//! died or collapsed together (they are *synchronizing* in the sense of
//! Gusev, Maslennikova & Pribavkina, "Principal ideal languages and
//! synchronizing automata"). This crate computes that structure **once,
//! offline**, so the matcher can exploit it on every match:
//!
//! * **k-step reach sets** `R_k ⊆ Q` — the states reachable after `k`
//!   bytes of *arbitrary* input, computed as a shrinking fixpoint over
//!   byte classes (`R_0 = Q`, `R_{k+1} = δ(R_k, Σ)`). Any chunk that
//!   starts at offset `≥ k` can only be entered in a state from `R_k`,
//!   so a speculative worker never needs to simulate the rest.
//! * **Merging/reset words** — a short word sending *every* state to one
//!   state, found by greedy Eppstein-style pair-merging over the pair
//!   automaton (backward BFS from the merged diagonal, then greedily
//!   merging the current set pair by pair).
//! * **Dead/unreachable-state and sink-distance maps** — which states
//!   cannot reach an accepting state, which are unreachable from the
//!   start, and how many bytes each state needs to fall into an
//!   absorbing sink.
//! * A [`ConvergenceClass`] verdict per automaton, consumed by
//!   `Strategy::Auto` in the matcher: `Synchronizing` automata get
//!   convergence-guided speculation, `NonConverging` ones keep the SFA
//!   composition path.
//!
//! The analysis is advisory for performance but **sound for entry sets**:
//! `R_k` over-approximates every state a chunk boundary can be in, so the
//! guided matcher's restricted tables always contain the true state.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use sfa_automata::{ByteClasses, Dfa, StateId};
use std::collections::VecDeque;

/// Caps on the analysis cost. The defaults keep the pass cheap enough to
/// run lazily on first use inside a compiled regex.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Maximum number of reach-fixpoint iterations (`R_k` levels) before
    /// giving up on stabilization. Real scanning automata stabilize in a
    /// handful of steps; bounded-length whole-match automata need about
    /// their maximum word length.
    pub depth_cap: usize,
    /// Pair-automaton analysis (merging/reset words) is skipped for
    /// automata with more states than this — it costs `O(|Q|² · |Σ|)`
    /// time and `O(|Q|²)` memory. Skipping is conservative: the automaton
    /// classifies as [`Converging`](ConvergenceClass::Converging) or
    /// [`NonConverging`](ConvergenceClass::NonConverging) from the reach
    /// fixpoint alone.
    pub pair_state_cap: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig { depth_cap: 64, pair_state_cap: 256 }
    }
}

/// The per-automaton convergence verdict (see [`ConvergenceReport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvergenceClass {
    /// A reset word exists: some word drives **every** state to the same
    /// state. Contains-mode scanning automata are almost always here —
    /// the needle itself is a reset word (every state that sees the full
    /// needle lands in the absorbing accept sink).
    Synchronizing {
        /// Length in bytes of the reset word the greedy merger found (an
        /// upper bound on the shortest one).
        horizon: usize,
        /// `|R_∞|` — how many states remain reachable under arbitrary
        /// input, i.e. the worst-case entry-set size for a late chunk.
        survivors: usize,
    },
    /// No reset word was found, but the reach fixpoint shrank: only
    /// `survivors < |Q|` states are reachable after long arbitrary input
    /// (the rest are transient), so restricted speculation still pays.
    Converging {
        /// `|R_∞|`, as above.
        survivors: usize,
    },
    /// Neither analysis found structure to exploit (e.g. permutation
    /// automata, where no two states ever merge): speculation must pay
    /// the full `O(|Q|)` per byte, so the SFA composition path wins.
    NonConverging,
}

/// The result of analyzing one [`Dfa`]: reach sets, reset word, dead /
/// unreachable / sink maps and the [`ConvergenceClass`] verdict. Built by
/// [`ConvergenceReport::analyze`]; all queries afterwards are cheap.
#[derive(Clone, Debug)]
pub struct ConvergenceReport {
    num_states: usize,
    classes: ByteClasses,
    /// `levels[k]` = sorted ids of `R_k`; `levels[0]` is all of `Q` and
    /// the sets only shrink. The last level is the fixpoint (or the
    /// depth-capped frontier).
    levels: Vec<Vec<StateId>>,
    stabilized: bool,
    reset_word: Option<Vec<u8>>,
    pair_analysis_ran: bool,
    unreachable: Vec<bool>,
    dead: Vec<bool>,
    sink_distance: Vec<Option<u32>>,
    /// Per byte class: `|δ(R_∞, c)|`, the entry-set size a chunk boundary
    /// placed right after a byte of that class would see.
    class_image_sizes: Vec<usize>,
    min_class_image: usize,
    class: ConvergenceClass,
}

/// Inverse transition lists in CSR form, one row group per byte class.
struct InverseEdges {
    num_states: usize,
    /// `offsets[c * (n + 1) + s]` .. next entry = predecessor range.
    offsets: Vec<u32>,
    data: Vec<StateId>,
}

impl InverseEdges {
    fn build(dfa: &Dfa) -> InverseEdges {
        let n = dfa.num_states();
        let nc = dfa.num_classes();
        let mut counts = vec![0u32; nc * (n + 1)];
        for q in 0..n as StateId {
            for c in 0..nc as u16 {
                let t = dfa.next_by_class(q, c) as usize;
                counts[c as usize * (n + 1) + t + 1] += 1;
            }
        }
        let mut offsets = counts;
        for c in 0..nc {
            let row = &mut offsets[c * (n + 1)..(c + 1) * (n + 1)];
            for i in 1..row.len() {
                row[i] += row[i - 1];
            }
        }
        let base: Vec<u32> = (0..nc).map(|c| (c * n) as u32).collect();
        let mut cursor = offsets.clone();
        let mut data = vec![0 as StateId; nc * n];
        for q in 0..n as StateId {
            for c in 0..nc as u16 {
                let t = dfa.next_by_class(q, c) as usize;
                let slot = &mut cursor[c as usize * (n + 1) + t];
                data[(base[c as usize] + *slot) as usize] = q;
                *slot += 1;
            }
        }
        InverseEdges { num_states: n, offsets, data }
    }

    fn preds(&self, class: u16, state: StateId) -> &[StateId] {
        let n = self.num_states;
        let row = class as usize * (n + 1) + state as usize;
        let start = (class as usize * n) + self.offsets[row] as usize;
        let end = (class as usize * n) + self.offsets[row + 1] as usize;
        &self.data[start..end]
    }
}

impl ConvergenceReport {
    /// Analyzes a DFA with the default [`AnalysisConfig`].
    pub fn analyze(dfa: &Dfa) -> ConvergenceReport {
        ConvergenceReport::analyze_with(dfa, &AnalysisConfig::default())
    }

    /// Analyzes a DFA under explicit cost caps.
    pub fn analyze_with(dfa: &Dfa, config: &AnalysisConfig) -> ConvergenceReport {
        let n = dfa.num_states();
        let nc = dfa.num_classes() as u16;
        let classes = dfa.classes().clone();

        // (a) The reach fixpoint R_0 ⊇ R_1 ⊇ … (images only shrink, so a
        // level with the same cardinality as its predecessor *is* the
        // fixpoint).
        let mut levels: Vec<Vec<StateId>> = vec![(0..n as StateId).collect()];
        let mut stabilized = false;
        for _ in 0..config.depth_cap {
            let prev = levels.last().expect("at least R_0");
            let mut mark = vec![false; n];
            let mut next: Vec<StateId> = Vec::with_capacity(prev.len());
            for &q in prev {
                for c in 0..nc {
                    let t = dfa.next_by_class(q, c);
                    if !mark[t as usize] {
                        mark[t as usize] = true;
                        next.push(t);
                    }
                }
            }
            if next.len() == prev.len() {
                stabilized = true;
                break;
            }
            next.sort_unstable();
            levels.push(next);
        }

        let inverse = InverseEdges::build(dfa);

        // (c) Dead / unreachable / sink-distance maps.
        let dead: Vec<bool> = dfa.live_states().iter().map(|&l| !l).collect();
        let unreachable = unreachable_states(dfa);
        let sink_distance = sink_distances(dfa, &inverse);

        // (b) Greedy Eppstein pair-merging, capped by automaton size.
        let (reset_word, pair_analysis_ran) = if n == 1 {
            (Some(Vec::new()), true)
        } else if n <= config.pair_state_cap {
            (find_reset_word(dfa, &inverse), true)
        } else {
            (None, false)
        };

        let survivors_set = levels.last().expect("at least R_0");
        let survivors = survivors_set.len();
        let mut class_image_sizes = Vec::with_capacity(nc as usize);
        let mut mark = vec![false; n];
        for c in 0..nc {
            let mut size = 0usize;
            for &q in survivors_set {
                let t = dfa.next_by_class(q, c) as usize;
                if !mark[t] {
                    mark[t] = true;
                    size += 1;
                }
            }
            for &q in survivors_set {
                mark[dfa.next_by_class(q, c) as usize] = false;
            }
            class_image_sizes.push(size);
        }
        let min_class_image = class_image_sizes.iter().copied().min().unwrap_or(n);

        let class = match &reset_word {
            Some(word) => ConvergenceClass::Synchronizing { horizon: word.len(), survivors },
            None if survivors < n => ConvergenceClass::Converging { survivors },
            None => ConvergenceClass::NonConverging,
        };

        ConvergenceReport {
            num_states: n,
            classes,
            levels,
            stabilized,
            reset_word,
            pair_analysis_ran,
            unreachable,
            dead,
            sink_distance,
            class_image_sizes,
            min_class_image,
            class,
        }
    }

    /// Number of states of the analyzed DFA.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The convergence verdict.
    pub fn class(&self) -> ConvergenceClass {
        self.class
    }

    /// `R_k` — the sorted ids of every state reachable after `k` bytes of
    /// arbitrary input. `k` past the computed depth clamps to the last
    /// level (sound: the sets only shrink).
    pub fn reach_set(&self, k: usize) -> &[StateId] {
        &self.levels[k.min(self.levels.len() - 1)]
    }

    /// The deepest computed reach level: the fixpoint depth when
    /// [`stabilized`](ConvergenceReport::stabilized) is true, the depth
    /// cap otherwise.
    pub fn reach_horizon(&self) -> usize {
        self.levels.len() - 1
    }

    /// Whether the reach fixpoint stabilized before the depth cap.
    pub fn stabilized(&self) -> bool {
        self.stabilized
    }

    /// `R_∞` (really the last computed level): the worst-case entry set
    /// of a chunk starting after at least
    /// [`reach_horizon`](ConvergenceReport::reach_horizon) bytes.
    pub fn survivors(&self) -> &[StateId] {
        self.levels.last().expect("at least R_0")
    }

    /// `|R_∞|`.
    pub fn survivor_count(&self) -> usize {
        self.survivors().len()
    }

    /// The reset word found by greedy pair-merging: a word sending every
    /// state to one state. `None` when the automaton is not synchronizing
    /// (or the pair analysis was skipped by
    /// [`AnalysisConfig::pair_state_cap`]).
    pub fn reset_word(&self) -> Option<&[u8]> {
        self.reset_word.as_deref()
    }

    /// Whether the pair-automaton analysis ran (false when skipped by the
    /// state cap — `None` reset words are then inconclusive).
    pub fn pair_analysis_ran(&self) -> bool {
        self.pair_analysis_ran
    }

    /// Per-state map: true when the state cannot be reached from the
    /// start state (minimized automata have none).
    pub fn unreachable_states(&self) -> &[bool] {
        &self.unreachable
    }

    /// Per-state map: true when the state can no longer reach an
    /// accepting state (the complement of [`Dfa::live_states`]).
    pub fn dead_states(&self) -> &[bool] {
        &self.dead
    }

    /// Per-state map: the minimum number of bytes driving the state into
    /// an absorbing sink (a state whose every transition self-loops);
    /// `None` when no sink is reachable from it. Sinks themselves are
    /// `Some(0)`.
    pub fn sink_distance(&self) -> &[Option<u32>] {
        &self.sink_distance
    }

    /// `|δ(R_∞, class_of(byte))|` — how many states survive a chunk
    /// boundary placed right after this byte. The guided chunk splitter
    /// nudges boundaries to sit after bytes minimizing this.
    pub fn boundary_image_size(&self, byte: u8) -> usize {
        self.class_image_sizes[self.classes.class_of(byte) as usize]
    }

    /// True for bytes whose class achieves the minimum boundary image —
    /// and that minimum actually shrinks the survivor set. These are the
    /// "likely synchronizing" positions worth nudging a chunk boundary
    /// behind.
    pub fn is_synchronizing_byte(&self, byte: u8) -> bool {
        self.min_class_image < self.survivor_count()
            && self.boundary_image_size(byte) == self.min_class_image
    }

    /// The byte horizon after which a speculative worker should first try
    /// to compact its state table: the reset-word length for
    /// synchronizing automata, the reach fixpoint depth otherwise.
    pub fn compaction_horizon(&self) -> usize {
        match self.class {
            ConvergenceClass::Synchronizing { horizon, .. } => horizon,
            _ => self.reach_horizon(),
        }
    }

    /// Whether `Strategy::Auto` should prefer convergence-guided
    /// speculation over SFA composition for this automaton.
    pub fn prefers_speculation(&self) -> bool {
        matches!(self.class, ConvergenceClass::Synchronizing { .. })
    }

    /// The sound entry set for a chunk preceded by `prev_len` bytes of
    /// input ending in `prev_byte`: `δ(R_{prev_len − 1}, class_of(prev_byte))`,
    /// sorted. Whatever state the *true* run is in at that boundary — and
    /// whatever states a worst-case upstream chunk map could produce — is
    /// in this set, because any state at the boundary was reached by at
    /// least `prev_len − 1` arbitrary bytes followed by `prev_byte`.
    ///
    /// `dfa` must be the automaton this report was computed from.
    pub fn entry_set(&self, dfa: &Dfa, prev_len: usize, prev_byte: u8) -> Vec<StateId> {
        let level = self.reach_set(prev_len.saturating_sub(1));
        let class = self.classes.class_of(prev_byte);
        let mut mark = vec![false; self.num_states];
        let mut out = Vec::with_capacity(level.len());
        for &q in level {
            let t = dfa.next_by_class(q, class);
            if !mark[t as usize] {
                mark[t as usize] = true;
                out.push(t);
            }
        }
        out.sort_unstable();
        out
    }

    /// The durable projection of this report: the four facts worth
    /// shipping inside a compiled-automaton artifact (see
    /// [`ConvergenceSummary`]).
    pub fn summary(&self) -> ConvergenceSummary {
        ConvergenceSummary {
            class: self.class,
            horizon: self.compaction_horizon(),
            survivors: self.survivor_count(),
            reset_word: self.reset_word.clone(),
        }
    }
}

/// The durable projection of a [`ConvergenceReport`]: class, horizon,
/// survivor count and reset word — everything `Strategy::Auto` steering
/// and size reporting consume, in a form cheap enough to travel inside a
/// serialized automaton artifact. A worker that loads an artifact reads
/// the verdict from here instead of re-running the analysis; only an
/// actual guided speculative *run* (which needs the full reach-set
/// levels) recomputes the report, lazily.
///
/// The wire encoding is a little-endian byte string (see
/// [`to_bytes`](ConvergenceSummary::to_bytes)); it is embedded verbatim
/// in `sfa-serialize` artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceSummary {
    class: ConvergenceClass,
    horizon: usize,
    survivors: usize,
    reset_word: Option<Vec<u8>>,
}

impl ConvergenceSummary {
    /// The convergence verdict ([`ConvergenceReport::class`]).
    pub fn class(&self) -> ConvergenceClass {
        self.class
    }

    /// The compaction horizon ([`ConvergenceReport::compaction_horizon`]).
    pub fn compaction_horizon(&self) -> usize {
        self.horizon
    }

    /// `|R_∞|` ([`ConvergenceReport::survivor_count`]).
    pub fn survivor_count(&self) -> usize {
        self.survivors
    }

    /// The reset word, when the automaton is synchronizing
    /// ([`ConvergenceReport::reset_word`]).
    pub fn reset_word(&self) -> Option<&[u8]> {
        self.reset_word.as_deref()
    }

    /// Whether `Strategy::Auto` should prefer guided speculation
    /// ([`ConvergenceReport::prefers_speculation`]).
    pub fn prefers_speculation(&self) -> bool {
        matches!(self.class, ConvergenceClass::Synchronizing { .. })
    }

    /// Serializes the summary to a self-delimiting little-endian byte
    /// string: class tag (`0` non-converging / `1` converging / `2`
    /// synchronizing), horizon, survivors, then the optional reset word
    /// as a length-prefixed tail.
    pub fn to_bytes(&self) -> Vec<u8> {
        let tag: u8 = match self.class {
            ConvergenceClass::NonConverging => 0,
            ConvergenceClass::Converging { .. } => 1,
            ConvergenceClass::Synchronizing { .. } => 2,
        };
        let word = self.reset_word.as_deref().unwrap_or(&[]);
        let mut out = Vec::with_capacity(14 + word.len());
        out.push(tag);
        out.push(u8::from(self.reset_word.is_some()));
        out.extend_from_slice(&(self.horizon as u32).to_le_bytes());
        out.extend_from_slice(&(self.survivors as u32).to_le_bytes());
        out.extend_from_slice(&(word.len() as u32).to_le_bytes());
        out.extend_from_slice(word);
        out
    }

    /// Parses a byte string produced by
    /// [`to_bytes`](ConvergenceSummary::to_bytes). Returns `None` on any
    /// truncation or structural inconsistency (an unknown class tag, a
    /// synchronizing verdict without its reset word, trailing garbage) —
    /// corrupt convergence metadata must fail closed, never steer a
    /// matcher with fabricated facts.
    pub fn from_bytes(bytes: &[u8]) -> Option<ConvergenceSummary> {
        if bytes.len() < 14 {
            return None;
        }
        let tag = bytes[0];
        let has_word = match bytes[1] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let le32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let horizon = le32(2);
        let survivors = le32(6);
        let word_len = le32(10);
        if bytes.len() != 14 + word_len || (word_len > 0 && !has_word) {
            return None;
        }
        let reset_word = has_word.then(|| bytes[14..].to_vec());
        let class = match tag {
            0 => ConvergenceClass::NonConverging,
            1 => ConvergenceClass::Converging { survivors },
            2 => ConvergenceClass::Synchronizing { horizon, survivors },
            _ => return None,
        };
        if matches!(class, ConvergenceClass::Synchronizing { .. }) != has_word {
            return None;
        }
        Some(ConvergenceSummary { class, horizon, survivors, reset_word })
    }
}

/// Forward BFS from the start state over all byte classes.
fn unreachable_states(dfa: &Dfa) -> Vec<bool> {
    let n = dfa.num_states();
    let nc = dfa.num_classes() as u16;
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[dfa.start() as usize] = true;
    queue.push_back(dfa.start());
    while let Some(q) = queue.pop_front() {
        for c in 0..nc {
            let t = dfa.next_by_class(q, c);
            if !seen[t as usize] {
                seen[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    seen.into_iter().map(|s| !s).collect()
}

/// Multi-source backward BFS from the absorbing sinks.
fn sink_distances(dfa: &Dfa, inverse: &InverseEdges) -> Vec<Option<u32>> {
    let n = dfa.num_states();
    let nc = dfa.num_classes() as u16;
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut queue = VecDeque::new();
    for q in 0..n as StateId {
        if (0..nc).all(|c| dfa.next_by_class(q, c) == q) {
            dist[q as usize] = Some(0);
            queue.push_back(q);
        }
    }
    while let Some(q) = queue.pop_front() {
        let d = dist[q as usize].expect("queued states have distances");
        for c in 0..nc {
            for &p in inverse.preds(c, q) {
                if dist[p as usize].is_none() {
                    dist[p as usize] = Some(d + 1);
                    queue.push_back(p);
                }
            }
        }
    }
    dist
}

/// Index of the unordered pair `{p, q}` (`p < q`) in a triangular array.
#[inline]
fn pair_index(p: StateId, q: StateId) -> usize {
    debug_assert!(p < q);
    let (p, q) = (p as usize, q as usize);
    q * (q - 1) / 2 + p
}

/// Greedy Eppstein merging: a backward BFS over the pair automaton labels
/// every mergeable pair with its shortest merging-word length and the
/// first class of one such word; the greedy loop then repeatedly merges
/// one pair of the current set until a single state (reset word found) or
/// a pairwise-unmergeable core (not synchronizing) remains.
fn find_reset_word(dfa: &Dfa, inverse: &InverseEdges) -> Option<Vec<u8>> {
    let n = dfa.num_states();
    let nc = dfa.num_classes() as u16;
    let npairs = n * (n - 1) / 2;
    const UNMERGEABLE: u32 = u32::MAX;
    let mut dist = vec![UNMERGEABLE; npairs];
    let mut via = vec![0u16; npairs];
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();

    // Pairs that merge in one byte seed the BFS.
    for q in 1..n as StateId {
        for p in 0..q {
            for c in 0..nc {
                if dfa.next_by_class(p, c) == dfa.next_by_class(q, c) {
                    let i = pair_index(p, q);
                    dist[i] = 1;
                    via[i] = c;
                    queue.push_back((p, q));
                    break;
                }
            }
        }
    }
    // Backward closure: a predecessor pair of a mergeable pair is
    // mergeable in one more byte.
    while let Some((p, q)) = queue.pop_front() {
        let d = dist[pair_index(p, q)];
        for c in 0..nc {
            for &a in inverse.preds(c, p) {
                for &b in inverse.preds(c, q) {
                    if a == b {
                        continue;
                    }
                    let i = pair_index(a.min(b), a.max(b));
                    if dist[i] == UNMERGEABLE {
                        dist[i] = d + 1;
                        via[i] = c;
                        queue.push_back((a.min(b), a.max(b)));
                    }
                }
            }
        }
    }

    let reps = dfa.classes().representatives();
    let mut set: Vec<StateId> = (0..n as StateId).collect();
    let mut word: Vec<u8> = Vec::new();
    while set.len() > 1 {
        // Any mergeable pair will do (Eppstein picks the closest for a
        // tighter bound; any choice still terminates in ≤ |Q| − 1 merges).
        let mut found = None;
        'scan: for j in 1..set.len() {
            for i in 0..j {
                let (p, q) = (set[i].min(set[j]), set[i].max(set[j]));
                if dist[pair_index(p, q)] != UNMERGEABLE {
                    found = Some((p, q));
                    break 'scan;
                }
            }
        }
        let (mut p, mut q) = found?;
        // Walk the merging word forward; each step strictly decreases the
        // pair distance, so this loop runs exactly dist(p, q) times.
        let steps = dist[pair_index(p, q)];
        for _ in 0..steps {
            let c = via[pair_index(p.min(q), p.max(q))];
            word.push(reps[c as usize]);
            for s in set.iter_mut() {
                *s = dfa.next_by_class(*s, c);
            }
            p = dfa.next_by_class(p, c);
            q = dfa.next_by_class(q, c);
            if p == q {
                break;
            }
        }
        debug_assert_eq!(p, q, "merging word must merge its pair");
        set.sort_unstable();
        set.dedup();
    }
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::minimal_dfa_from_pattern;
    use sfa_regex_syntax::class::ByteSet;

    /// Builds a DFA over bytes `a`, `b` (everything else a third class)
    /// from explicit per-class successor rows `[on_a, on_b, on_other]`.
    fn dfa_from_rows(rows: &[[StateId; 3]], accepting: Vec<bool>, start: StateId) -> Dfa {
        let classes =
            ByteClasses::from_sets([&ByteSet::singleton(b'a'), &ByteSet::singleton(b'b')]);
        assert_eq!(classes.count(), 3);
        let ca = classes.class_of(b'a') as usize;
        let cb = classes.class_of(b'b') as usize;
        let co = (0..3).find(|&c| c != ca && c != cb).unwrap();
        let mut table = vec![0 as StateId; rows.len() * 3];
        for (q, row) in rows.iter().enumerate() {
            table[q * 3 + ca] = row[0];
            table[q * 3 + cb] = row[1];
            table[q * 3 + co] = row[2];
        }
        Dfa::from_parts(classes, table, accepting, start)
    }

    /// Černý's automaton C_n: `a` is the cyclic shift, `b` maps state 0
    /// to 1 and fixes the rest ("other" bytes are the identity so they
    /// cannot help synchronize).
    fn cerny(n: usize) -> Dfa {
        let rows: Vec<[StateId; 3]> = (0..n)
            .map(|i| {
                let shift = ((i + 1) % n) as StateId;
                let b = if i == 0 { 1 } else { i as StateId };
                [shift, b, i as StateId]
            })
            .collect();
        dfa_from_rows(&rows, vec![false; n], 0)
    }

    fn assert_reset_word_resets(dfa: &Dfa, word: &[u8]) {
        let mut targets: Vec<StateId> =
            (0..dfa.num_states() as StateId).map(|q| dfa.run_from(q, word)).collect();
        targets.dedup();
        assert_eq!(targets.len(), 1, "reset word must send every state to one state");
    }

    #[test]
    fn whole_mode_literal_is_synchronizing_with_one_survivor() {
        let dfa = minimal_dfa_from_pattern("abc").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        assert!(report.stabilized());
        // Arbitrary long input kills a bounded-length whole-match
        // automaton: only the failure sink survives.
        assert_eq!(report.survivor_count(), 1);
        match report.class() {
            ConvergenceClass::Synchronizing { horizon, survivors } => {
                assert_eq!(survivors, 1);
                assert_eq!(horizon, report.reset_word().unwrap().len());
            }
            other => panic!("expected Synchronizing, got {other:?}"),
        }
        assert_reset_word_resets(&dfa, report.reset_word().unwrap());
        assert!(report.prefers_speculation());
        // The failure sink is the one absorbing state: distance 0 from
        // itself, finite from everywhere (the language is finite).
        assert!(report.sink_distance().iter().all(|d| d.is_some()));
        assert!(report.unreachable_states().iter().all(|&u| !u), "minimal DFA is trim");
    }

    #[test]
    fn cerny_automaton_synchronizes_without_shrinking_reach() {
        let n = 5;
        let dfa = cerny(n);
        let report = ConvergenceReport::analyze(&dfa);
        // Permutation letter `a` keeps every state reachable forever…
        assert_eq!(report.survivor_count(), n);
        // …but the defect letter `b` still synchronizes the automaton.
        let word = report.reset_word().expect("Černý automata are synchronizing");
        assert!(!word.is_empty());
        assert_reset_word_resets(&dfa, word);
        assert!(matches!(
            report.class(),
            ConvergenceClass::Synchronizing { survivors, .. } if survivors == n
        ));
        // The greedy bound: never more than |Q|³ bytes.
        assert!(word.len() <= n * n * n);
    }

    #[test]
    fn permutation_automaton_never_converges() {
        // `a` rotates, `b` swaps 0↔1, everything else is the identity:
        // all letters are permutations, so no pair of states ever merges
        // and every state stays reachable.
        let n = 4;
        let rows: Vec<[StateId; 3]> = (0..n)
            .map(|i| {
                let rot = ((i + 1) % n) as StateId;
                let swap = match i {
                    0 => 1,
                    1 => 0,
                    _ => i as StateId,
                };
                [rot, swap, i as StateId]
            })
            .collect();
        let dfa = dfa_from_rows(&rows, vec![false, true, false, true], 0);
        let report = ConvergenceReport::analyze(&dfa);
        assert_eq!(report.class(), ConvergenceClass::NonConverging);
        assert_eq!(report.reset_word(), None);
        assert!(report.pair_analysis_ran());
        assert_eq!(report.survivor_count(), n);
        assert!(!report.prefers_speculation());
        // No absorbing sink anywhere in a permutation automaton.
        assert!(report.sink_distance().iter().all(|d| d.is_none()));
    }

    #[test]
    fn transient_state_feeding_a_permutation_core_is_converging() {
        // State 0 falls into the {1, 2} core on any byte; the core is a
        // permutation (`a` swaps, the rest fix), so it never merges — but
        // the transient state still shrinks the reach set.
        let rows = vec![[1, 1, 1], [2, 1, 1], [1, 2, 2]];
        let dfa = dfa_from_rows(&rows, vec![false, true, false], 0);
        let report = ConvergenceReport::analyze(&dfa);
        assert_eq!(report.class(), ConvergenceClass::Converging { survivors: 2 });
        assert_eq!(report.reset_word(), None);
        assert_eq!(report.survivors(), &[1, 2]);
        assert_eq!(report.reach_horizon(), 1);
        assert!(report.stabilized());
    }

    #[test]
    fn reach_sets_shrink_and_clamp() {
        // Whole-match `abc`: R_k loses one state per step until only the
        // sink remains.
        let dfa = minimal_dfa_from_pattern("abc").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        let n = dfa.num_states();
        assert_eq!(report.reach_set(0).len(), n);
        for k in 1..=report.reach_horizon() {
            assert!(report.reach_set(k).len() <= report.reach_set(k - 1).len());
        }
        // Past the computed depth the query clamps to the fixpoint.
        assert_eq!(report.reach_set(10_000), report.survivors());
        // Every reach set is sorted (binary-searchable).
        for k in 0..=report.reach_horizon() {
            assert!(report.reach_set(k).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn entry_sets_cover_the_true_boundary_state() {
        let dfa = minimal_dfa_from_pattern("(a|b)*abb").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        // Brute-force check: for every short word, the state the word
        // actually reaches is inside the entry set computed from the
        // word's length and last byte.
        let alphabet = [b'a', b'b', b'x'];
        let mut words: Vec<Vec<u8>> = alphabet.iter().map(|&b| vec![b]).collect();
        for _ in 0..3 {
            let mut longer = Vec::new();
            for w in &words {
                for &b in &alphabet {
                    let mut v = w.clone();
                    v.push(b);
                    longer.push(v);
                }
            }
            words.extend(longer);
        }
        for w in &words {
            let truth = dfa.run(w);
            let entry = report.entry_set(&dfa, w.len(), w[w.len() - 1]);
            assert!(entry.binary_search(&truth).is_ok(), "word {w:?} escaped its entry set");
            // And the entry set is never larger than the plain reach set.
            assert!(entry.len() <= report.reach_set(w.len().saturating_sub(1)).len());
        }
    }

    #[test]
    fn pair_cap_skips_pair_analysis_but_keeps_reach() {
        let dfa = minimal_dfa_from_pattern("abc").unwrap();
        let capped = AnalysisConfig { pair_state_cap: 1, ..AnalysisConfig::default() };
        let report = ConvergenceReport::analyze_with(&dfa, &capped);
        assert!(!report.pair_analysis_ran());
        assert_eq!(report.reset_word(), None);
        // Reach still shrinks to the sink, so the verdict degrades to
        // Converging, not NonConverging.
        assert_eq!(report.class(), ConvergenceClass::Converging { survivors: 1 });
    }

    #[test]
    fn single_state_automaton_is_trivially_synchronizing() {
        let dfa = minimal_dfa_from_pattern("(?s).*").unwrap();
        assert_eq!(dfa.num_states(), 1);
        let report = ConvergenceReport::analyze(&dfa);
        assert_eq!(report.class(), ConvergenceClass::Synchronizing { horizon: 0, survivors: 1 });
        assert_eq!(report.reset_word(), Some(&[][..]));
    }

    #[test]
    fn boundary_image_sizes_reflect_class_collapse() {
        // Whole-match `a{3}`: the byte `x` (any non-`a`) sends every
        // state straight to the sink — boundary image 1 — while `a`
        // advances the chain.
        let dfa = minimal_dfa_from_pattern("a{3}").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        // At the fixpoint only the sink survives, so every boundary image
        // is 1 and no byte is a *strict* synchronizer.
        assert_eq!(report.survivor_count(), 1);
        assert!(!report.is_synchronizing_byte(b'x'));

        // A Contains-style automaton keeps all states reachable; benign
        // bytes collapse more than needle bytes.
        let dfa = minimal_dfa_from_pattern("(?s).*abc.*").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        if report.survivor_count() > report.boundary_image_size(b'x') {
            assert!(report.is_synchronizing_byte(b'x') || report.boundary_image_size(b'x') > 1);
        }
    }

    #[test]
    fn dead_map_complements_live_states() {
        let dfa = minimal_dfa_from_pattern("ab|cd").unwrap();
        let report = ConvergenceReport::analyze(&dfa);
        let live = dfa.live_states();
        assert_eq!(report.dead_states().len(), dfa.num_states());
        for (dead, live) in report.dead_states().iter().zip(live) {
            assert_eq!(*dead, !live);
        }
    }

    #[test]
    fn summary_round_trips_across_classes() {
        for pattern in ["(?s).*abc.*", "a{3}", "(ab)*"] {
            let dfa = minimal_dfa_from_pattern(pattern).unwrap();
            let report = ConvergenceReport::analyze(&dfa);
            let summary = report.summary();
            assert_eq!(summary.class(), report.class());
            assert_eq!(summary.compaction_horizon(), report.compaction_horizon());
            assert_eq!(summary.survivor_count(), report.survivor_count());
            assert_eq!(summary.reset_word(), report.reset_word());
            assert_eq!(summary.prefers_speculation(), report.prefers_speculation());
            let decoded = ConvergenceSummary::from_bytes(&summary.to_bytes()).unwrap();
            assert_eq!(decoded, summary);
        }
    }

    #[test]
    fn summary_decode_fails_closed() {
        let dfa = minimal_dfa_from_pattern("(?s).*abc.*").unwrap();
        let good = ConvergenceReport::analyze(&dfa).summary().to_bytes();
        assert!(ConvergenceSummary::from_bytes(&good).is_some());
        // Truncation at every prefix length.
        for len in 0..good.len() {
            assert!(ConvergenceSummary::from_bytes(&good[..len]).is_none(), "prefix {len}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(ConvergenceSummary::from_bytes(&long).is_none());
        // Unknown class tag.
        let mut bad = good.clone();
        bad[0] = 7;
        assert!(ConvergenceSummary::from_bytes(&bad).is_none());
        // A synchronizing verdict whose reset word went missing.
        let mut bad = good;
        bad[1] = 0;
        assert!(ConvergenceSummary::from_bytes(&bad).is_none());
    }
}
