//! Converting an [`Ast`] back into pattern text.
//!
//! The printer produces a pattern that parses back to an equivalent AST.
//! It is used by the workload generators (to turn synthesized ASTs into the
//! pattern strings fed to the full pipeline) and by diagnostics.

use crate::ast::Ast;
use crate::class::{perl, ByteSet, DebugByte};
use std::fmt::Write;

/// Renders an AST as a pattern string.
pub fn to_pattern(ast: &Ast) -> String {
    let mut out = String::new();
    write_ast(ast, &mut out, Prec::Alt);
    out
}

/// Escapes a literal byte string so it can be embedded in a pattern.
pub fn escape_literal(bytes: &[u8]) -> String {
    let mut out = String::new();
    for &b in bytes {
        write_literal_byte(b, &mut out);
    }
    out
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    /// Top level / inside a group: alternation allowed bare.
    Alt,
    /// Inside a concatenation: alternation needs parentheses.
    Concat,
    /// Operand of a repetition: concatenation and alternation need
    /// parentheses.
    Repeat,
}

fn write_ast(ast: &Ast, out: &mut String, prec: Prec) {
    match ast {
        Ast::Empty => {
            if prec == Prec::Repeat {
                out.push_str("()");
            }
        }
        Ast::Class(set) => write_class(set, out),
        Ast::Concat(parts) => {
            let need_parens = prec == Prec::Repeat;
            if need_parens {
                out.push('(');
            }
            for p in parts {
                write_ast(p, out, Prec::Concat);
            }
            if need_parens {
                out.push(')');
            }
        }
        Ast::Alternation(parts) => {
            let need_parens = prec != Prec::Alt;
            if need_parens {
                out.push('(');
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                write_ast(p, out, Prec::Concat);
            }
            if need_parens {
                out.push(')');
            }
        }
        Ast::Repeat { node, min, max } => {
            write_ast(node, out, Prec::Repeat);
            match (min, max) {
                (0, None) => out.push('*'),
                (1, None) => out.push('+'),
                (0, Some(1)) => out.push('?'),
                (n, Some(m)) if n == m => {
                    let _ = write!(out, "{{{}}}", n);
                }
                (n, None) => {
                    let _ = write!(out, "{{{},}}", n);
                }
                (n, Some(m)) => {
                    let _ = write!(out, "{{{},{}}}", n, m);
                }
            }
        }
    }
}

fn write_class(set: &ByteSet, out: &mut String) {
    // Recognize the handful of named classes for readability.
    if *set == perl::dot() {
        out.push('.');
        return;
    }
    if set.is_full() {
        out.push_str("(?s:.)");
        return;
    }
    if *set == perl::digit() {
        out.push_str("\\d");
        return;
    }
    if *set == perl::word() {
        out.push_str("\\w");
        return;
    }
    if *set == perl::space() {
        out.push_str("\\s");
        return;
    }
    if set.len() == 1 {
        write_literal_byte(set.min_byte().unwrap(), out);
        return;
    }

    // General case: a bracketed class. Use the complement when it is much
    // smaller (for readability only — either form round-trips).
    let (negate, body) = if set.len() > 128 { (true, set.complement()) } else { (false, *set) };
    out.push('[');
    if negate {
        out.push('^');
    }
    for (s, e) in body.ranges() {
        if s == e {
            let _ = write!(out, "{}", DebugByte(s));
        } else if e == s + 1 {
            let _ = write!(out, "{}{}", DebugByte(s), DebugByte(e));
        } else {
            let _ = write!(out, "{}-{}", DebugByte(s), DebugByte(e));
        }
    }
    out.push(']');
}

fn write_literal_byte(b: u8, out: &mut String) {
    const META: &[u8] = b".^$*+?()[]{}|\\/-";
    if b.is_ascii_graphic() && !META.contains(&b) {
        out.push(b as char);
    } else if b == b' ' {
        out.push(' ');
    } else if META.contains(&b) && b.is_ascii_graphic() {
        out.push('\\');
        out.push(b as char);
    } else {
        let _ = write!(out, "\\x{:02x}", b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(pattern: &str) {
        let ast = parse(pattern).unwrap();
        let printed = to_pattern(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed `{}` failed to parse: {}", printed, e));
        assert_eq!(ast, reparsed, "`{}` -> `{}` did not round-trip", pattern, printed);
    }

    #[test]
    fn roundtrip_simple() {
        for pat in [
            "abc",
            "a|b|c",
            "(ab)*",
            "a+b?c{3}",
            "[a-z0-9_]+",
            "[^\\r\\n]*",
            "\\d{1,3}\\.\\d{1,3}",
            "([0-4]{5}[5-9]{5})*",
            "(m|(t|c([mt]*c){3})[cmt]*)*",
            ".*foo.*bar.*",
            "a{2,}",
            "(a|)(b|)",
        ] {
            roundtrip(pat);
        }
    }

    #[test]
    fn named_classes_printed_compactly() {
        assert_eq!(to_pattern(&parse("\\d").unwrap()), "\\d");
        assert_eq!(to_pattern(&parse(".").unwrap()), ".");
        assert_eq!(to_pattern(&parse("\\w").unwrap()), "\\w");
    }

    #[test]
    fn metacharacters_escaped() {
        assert_eq!(to_pattern(&Ast::byte(b'.')), "\\.");
        assert_eq!(to_pattern(&Ast::byte(b'*')), "\\*");
        assert_eq!(to_pattern(&Ast::byte(0x00)), "\\x00");
        assert_eq!(to_pattern(&Ast::literal("a.b")), "a\\.b");
    }

    #[test]
    fn escape_literal_roundtrips() {
        let s = escape_literal(b"GET /index.html\r\n");
        let ast = parse(&s).unwrap();
        assert_eq!(ast, Ast::literal("GET /index.html\r\n"));
    }

    #[test]
    fn repeat_of_concat_gets_parens() {
        let ast = Ast::repeat(Ast::literal("ab"), 3, Some(3));
        assert_eq!(to_pattern(&ast), "(ab){3}");
        roundtrip("(ab){3}");
    }

    #[test]
    fn alternation_inside_concat_gets_parens() {
        let ast = Ast::concat(vec![
            Ast::alternation(vec![Ast::byte(b'a'), Ast::byte(b'b')]),
            Ast::byte(b'c'),
        ]);
        assert_eq!(to_pattern(&ast), "(a|b)c");
    }

    #[test]
    fn empty_repeat_operand() {
        let ast = Ast::star(Ast::Empty);
        let printed = to_pattern(&ast);
        // `()*` — parses back to a star of empty.
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed, Ast::star(Ast::Empty));
    }

    #[test]
    fn negated_class_printed_negated() {
        let pat = to_pattern(&parse("[^a]").unwrap());
        assert!(pat.starts_with("[^"), "got {}", pat);
        roundtrip("[^a]");
    }
}
