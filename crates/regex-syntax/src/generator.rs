//! Random generation utilities.
//!
//! Two generators live here:
//!
//! * [`AstGenerator`] — produces random regular-expression ASTs. It is the
//!   basis of the synthetic SNORT-like corpus in `sfa-workloads` and of the
//!   property tests that compare NFA/DFA/SFA semantics on random patterns.
//! * [`sample_match`] — produces a random byte string *matched by* a given
//!   AST, which is how the benchmark harness builds "1 GB of text accepted
//!   by the automaton" inputs like the paper does.

use crate::ast::Ast;
use crate::class::ByteSet;
use rand::prelude::*;

/// Configuration for [`AstGenerator`].
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Maximum nesting depth of the generated AST.
    pub max_depth: usize,
    /// Maximum number of children of a concatenation or alternation node.
    pub max_width: usize,
    /// Maximum bound used for counted repetitions.
    pub max_repeat: u32,
    /// Restrict generated classes and literals to this byte set
    /// (defaults to printable ASCII).
    pub alphabet: ByteSet,
    /// Probability of generating a star/plus repetition at each level,
    /// in `0.0..=1.0`. Higher values give automata with more loops.
    pub repeat_bias: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_depth: 4,
            max_width: 4,
            max_repeat: 8,
            alphabet: ByteSet::range(0x20, 0x7e),
            repeat_bias: 0.3,
        }
    }
}

/// A random regular-expression generator.
#[derive(Clone, Debug, Default)]
pub struct AstGenerator {
    config: GeneratorConfig,
}

impl AstGenerator {
    /// Creates a generator with the default configuration.
    pub fn new() -> AstGenerator {
        AstGenerator { config: GeneratorConfig::default() }
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(config: GeneratorConfig) -> AstGenerator {
        AstGenerator { config }
    }

    /// Generates a random AST using the supplied RNG.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Ast {
        self.gen_node(rng, self.config.max_depth)
    }

    fn gen_node<R: Rng + ?Sized>(&self, rng: &mut R, depth: usize) -> Ast {
        if depth == 0 {
            return self.gen_leaf(rng);
        }
        let choice = rng.gen_range(0..100u32);
        match choice {
            0..=34 => self.gen_leaf(rng),
            35..=59 => {
                // concatenation
                let n = rng.gen_range(2..=self.config.max_width.max(2));
                Ast::concat((0..n).map(|_| self.gen_node(rng, depth - 1)).collect())
            }
            60..=79 => {
                // alternation
                let n = rng.gen_range(2..=self.config.max_width.max(2));
                Ast::alternation((0..n).map(|_| self.gen_node(rng, depth - 1)).collect())
            }
            _ => {
                // repetition
                let node = self.gen_node(rng, depth - 1);
                if rng.gen_bool(self.config.repeat_bias) {
                    if rng.gen_bool(0.5) {
                        Ast::star(node)
                    } else {
                        Ast::plus(node)
                    }
                } else {
                    match rng.gen_range(0..3u32) {
                        0 => Ast::opt(node),
                        1 => {
                            let n = rng.gen_range(1..=self.config.max_repeat);
                            Ast::repeat(node, n, Some(n))
                        }
                        _ => {
                            let lo = rng.gen_range(0..=self.config.max_repeat / 2);
                            let hi = rng.gen_range(lo..=self.config.max_repeat);
                            Ast::repeat(node, lo, Some(hi))
                        }
                    }
                }
            }
        }
    }

    fn gen_leaf<R: Rng + ?Sized>(&self, rng: &mut R) -> Ast {
        let bytes: Vec<u8> = self.config.alphabet.iter().collect();
        assert!(!bytes.is_empty(), "generator alphabet must not be empty");
        match rng.gen_range(0..100u32) {
            // a literal byte
            0..=59 => Ast::byte(*bytes.choose(rng).unwrap()),
            // a short literal string
            60..=79 => {
                let n = rng.gen_range(2..=4usize);
                Ast::literal((0..n).map(|_| *bytes.choose(rng).unwrap()).collect::<Vec<u8>>())
            }
            // a character class over a random sub-range of the alphabet
            _ => {
                let mut idx1 = rng.gen_range(0..bytes.len());
                let mut idx2 = rng.gen_range(0..bytes.len());
                if idx1 > idx2 {
                    std::mem::swap(&mut idx1, &mut idx2);
                }
                Ast::Class(ByteSet::range(bytes[idx1], bytes[idx2]))
            }
        }
    }
}

/// Maximum number of unrolled iterations used when sampling a match of an
/// unbounded repetition.
const SAMPLE_STAR_CAP: u32 = 8;

/// Generates a random byte string matched by `ast`.
///
/// Returns `None` if the expression matches nothing (contains an empty
/// class in a mandatory position).
pub fn sample_match<R: Rng + ?Sized>(ast: &Ast, rng: &mut R) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    if sample_into(ast, rng, &mut out) {
        Some(out)
    } else {
        None
    }
}

/// Generates a random matched string of *approximately* `target_len` bytes
/// by repeatedly sampling the expression and concatenating when the
/// expression is unbounded (a star at top level), or by resampling
/// otherwise. This mirrors how the paper builds accepted 1 GB inputs for
/// expressions like `([0-4]{n}[5-9]{n})*`.
pub fn sample_match_with_len<R: Rng + ?Sized>(
    ast: &Ast,
    target_len: usize,
    rng: &mut R,
) -> Option<Vec<u8>> {
    // If the AST is a star/plus of something, pump the body directly.
    if let Ast::Repeat { node, max: None, .. } = ast {
        let mut out = Vec::with_capacity(target_len + 64);
        let mut guard = 0;
        while out.len() < target_len {
            let before = out.len();
            if !sample_into(node, rng, &mut out) {
                return None;
            }
            if out.len() == before {
                guard += 1;
                if guard > 16 {
                    break; // body only matches the empty string
                }
            }
        }
        return Some(out);
    }
    // Otherwise: best effort — sample whole matches until the target is
    // reached or the expression turns out to be bounded.
    let mut out = Vec::new();
    let single = sample_match(ast, rng)?;
    if single.is_empty() {
        return Some(out);
    }
    if ast.max_len().is_some() {
        // Bounded language: a single sample is all we can do.
        return Some(single);
    }
    out.extend_from_slice(&single);
    let mut guard = 0;
    while out.len() < target_len && guard < 1_000_000 {
        let more = sample_match(ast, rng)?;
        if more.is_empty() {
            guard += 1;
            continue;
        }
        out.extend_from_slice(&more);
        guard += 1;
    }
    Some(out)
}

fn sample_into<R: Rng + ?Sized>(ast: &Ast, rng: &mut R, out: &mut Vec<u8>) -> bool {
    match ast {
        Ast::Empty => true,
        Ast::Class(set) => {
            if set.is_empty() {
                return false;
            }
            let n = rng.gen_range(0..set.len());
            let b = set.iter().nth(n).expect("index in range");
            out.push(b);
            true
        }
        Ast::Concat(parts) => {
            let checkpoint = out.len();
            for p in parts {
                if !sample_into(p, rng, out) {
                    out.truncate(checkpoint);
                    return false;
                }
            }
            true
        }
        Ast::Alternation(parts) => {
            if parts.is_empty() {
                return true;
            }
            // Try a random order so a void branch does not sink the sample.
            let mut order: Vec<usize> = (0..parts.len()).collect();
            order.shuffle(rng);
            for idx in order {
                let checkpoint = out.len();
                if sample_into(&parts[idx], rng, out) {
                    return true;
                }
                out.truncate(checkpoint);
            }
            false
        }
        Ast::Repeat { node, min, max } => {
            let hi = max.unwrap_or(min + SAMPLE_STAR_CAP);
            let n = rng.gen_range(*min..=hi.max(*min));
            let checkpoint = out.len();
            for _ in 0..n {
                if !sample_into(node, rng, out) {
                    out.truncate(checkpoint);
                    // Zero repetitions is still a valid match when allowed.
                    return *min == 0;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::to_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_asts_print_and_reparse() {
        let mut rng = StdRng::seed_from_u64(0x5FA);
        let gen = AstGenerator::new();
        for _ in 0..200 {
            let ast = gen.generate(&mut rng);
            let pattern = to_pattern(&ast);
            let reparsed = parse(&pattern)
                .unwrap_or_else(|e| panic!("generated `{}` failed to parse: {}", pattern, e));
            assert_eq!(ast, reparsed, "pattern `{}`", pattern);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = AstGenerator::new();
        let a = gen.generate(&mut StdRng::seed_from_u64(7));
        let b = gen.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_match_literal() {
        let ast = parse("abc").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_match(&ast, &mut rng), Some(b"abc".to_vec()));
    }

    #[test]
    fn sample_match_class_and_repeat() {
        let ast = parse("[0-4]{3}").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = sample_match(&ast, &mut rng).unwrap();
            assert_eq!(s.len(), 3);
            assert!(s.iter().all(|&b| (b'0'..=b'4').contains(&b)));
        }
    }

    #[test]
    fn sample_match_alternation_avoids_void_branch() {
        let mut ast = parse("a|b").unwrap();
        // Replace the second branch with an empty class (void).
        if let Ast::Alternation(ref mut parts) = ast {
            parts[1] = Ast::Class(ByteSet::EMPTY);
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(sample_match(&ast, &mut rng), Some(b"a".to_vec()));
        }
    }

    #[test]
    fn sample_match_void_returns_none() {
        let ast = Ast::Class(ByteSet::EMPTY);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sample_match(&ast, &mut rng), None);
    }

    #[test]
    fn sample_with_len_pumps_star() {
        let ast = parse("([0-4]{5}[5-9]{5})*").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_match_with_len(&ast, 1000, &mut rng).unwrap();
        assert!(s.len() >= 1000);
        assert_eq!(s.len() % 10, 0, "whole iterations only");
        for chunk in s.chunks(10) {
            assert!(chunk[..5].iter().all(|&b| (b'0'..=b'4').contains(&b)));
            assert!(chunk[5..].iter().all(|&b| (b'5'..=b'9').contains(&b)));
        }
    }

    #[test]
    fn sample_with_len_bounded_language() {
        let ast = parse("a{3}").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let s = sample_match_with_len(&ast, 1000, &mut rng).unwrap();
        assert_eq!(s, b"aaa".to_vec());
    }
}
