//! A recursive-descent parser for byte-oriented regular expressions.
//!
//! The supported syntax is the PCRE subset that matters for automata-based
//! matching (and for the SNORT-style patterns used in the paper's
//! evaluation):
//!
//! * literals, escapes (`\n`, `\t`, `\xHH`, `\\`, …)
//! * Perl classes `\d \D \w \W \s \S`
//! * character classes `[a-z]`, `[^a-z]`, with ranges and escapes
//! * `.` (any byte except `\n`, or any byte with `(?s)`)
//! * concatenation, alternation `|`, grouping `( … )` / `(?: … )`
//! * repetitions `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`
//! * inline flags `(?i)`, `(?s)`, `(?m)`, `(?x)` (the latter two are accepted
//!   and ignored — they do not change membership semantics)
//!
//! Anchors (`^`, `$`, `\A`, `\z`, `\Z`) are *ignored* by default because the
//! SFA pipeline decides **membership** of the whole input (the paper's
//! semantics); with [`ParserConfig::allow_anchors`] set to `false` they are
//! rejected instead. Back-references and look-around are rejected, exactly
//! as the paper excludes "extended expressions that include back references
//! etc.".

use crate::ast::Ast;
use crate::class::{perl, ByteSet};
use crate::error::{ErrorKind, ParseError};

/// Configuration for the [`Parser`].
#[derive(Clone, Debug)]
pub struct ParserConfig {
    /// Start in case-insensitive mode (`(?i)` can also switch it on inline).
    pub case_insensitive: bool,
    /// Make `.` match `\n` as well.
    pub dot_matches_newline: bool,
    /// Silently ignore anchors instead of rejecting the pattern.
    pub allow_anchors: bool,
    /// Largest bound accepted in a counted repetition `{n,m}`.
    pub max_repeat: u32,
    /// Maximum group-nesting depth.
    pub max_nest: usize,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig {
            case_insensitive: false,
            dot_matches_newline: false,
            allow_anchors: true,
            max_repeat: 2000,
            max_nest: 128,
        }
    }
}

/// The regular-expression parser.
#[derive(Clone, Debug, Default)]
pub struct Parser {
    config: ParserConfig,
}

/// Parses `pattern` with the default configuration.
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    Parser::new().parse(pattern)
}

impl Parser {
    /// Creates a parser with the default configuration.
    pub fn new() -> Parser {
        Parser { config: ParserConfig::default() }
    }

    /// Creates a parser with an explicit configuration.
    pub fn with_config(config: ParserConfig) -> Parser {
        Parser { config }
    }

    /// Parses a pattern given as UTF-8 text.
    pub fn parse(&self, pattern: &str) -> Result<Ast, ParseError> {
        self.parse_bytes(pattern.as_bytes())
    }

    /// Parses a pattern given as raw bytes.
    pub fn parse_bytes(&self, pattern: &[u8]) -> Result<Ast, ParseError> {
        let mut state = State {
            input: pattern,
            pos: 0,
            config: &self.config,
            flags: Flags {
                case_insensitive: self.config.case_insensitive,
                dot_nl: self.config.dot_matches_newline,
            },
            depth: 0,
        };
        let ast = state.parse_alternation()?;
        if state.pos != state.input.len() {
            // The only way to stop early at top level is an unbalanced `)`.
            return Err(state.err(ErrorKind::UnbalancedCloseParen));
        }
        Ok(ast)
    }
}

#[derive(Clone, Copy, Debug)]
struct Flags {
    case_insensitive: bool,
    dot_nl: bool,
}

struct State<'a> {
    input: &'a [u8],
    pos: usize,
    config: &'a ParserConfig,
    flags: Flags,
    depth: usize,
}

impl<'a> State<'a> {
    fn err(&self, kind: ErrorKind) -> ParseError {
        ParseError::new(kind, self.pos, self.input)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.input.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Result<Ast, ParseError> {
        let mut parts = vec![self.parse_concat()?];
        while self.eat(b'|') {
            parts.push(self.parse_concat()?);
        }
        Ok(Ast::alternation(parts))
    }

    // concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let saved_flags = self.flags;
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                _ => {}
            }
            if let Some(part) = self.parse_repeat()? {
                parts.push(part);
            }
        }
        self.flags = saved_flags;
        Ok(Ast::concat(parts))
    }

    // repeat := atom postfix*
    //
    // Returns `None` when the atom consumed no expression (an ignored anchor
    // or a flag-setting group like `(?i)`).
    fn parse_repeat(&mut self) -> Result<Option<Ast>, ParseError> {
        let atom = match self.parse_atom()? {
            Some(a) => a,
            None => return Ok(None),
        };
        let mut node = atom;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    node = Ast::star(node);
                }
                Some(b'+') => {
                    self.bump();
                    node = Ast::plus(node);
                }
                Some(b'?') => {
                    self.bump();
                    node = Ast::opt(node);
                }
                Some(b'{') => {
                    match self.try_parse_counted()? {
                        Some((min, max)) => {
                            node = Ast::repeat(node, min, max);
                        }
                        // Not a counted repetition: `{` is a literal and will
                        // be picked up by the next parse_atom call.
                        None => break,
                    }
                }
                _ => break,
            }
        }
        Ok(Some(node))
    }

    // Returns Ok(None) when the construct consumed no expression (anchors,
    // flag groups), so the caller just moves on.
    fn parse_atom(&mut self) -> Result<Option<Ast>, ParseError> {
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'(') => self.parse_group(),
            Some(b'[') => self.parse_class().map(Some),
            Some(b'.') => {
                self.bump();
                let set = if self.flags.dot_nl { perl::any() } else { perl::dot() };
                Ok(Some(Ast::Class(set)))
            }
            Some(b'^') | Some(b'$') => {
                if self.config.allow_anchors {
                    self.bump();
                    Ok(None)
                } else {
                    Err(self.err(ErrorKind::UnsupportedAnchor))
                }
            }
            Some(b'*') | Some(b'+') | Some(b'?') => {
                Err(self.err(ErrorKind::RepetitionMissingOperand))
            }
            Some(b')') => Err(self.err(ErrorKind::UnbalancedCloseParen)),
            Some(b'\\') => {
                self.bump();
                self.parse_escape()
            }
            Some(b) => {
                self.bump();
                Ok(Some(Ast::Class(self.literal_set(b))))
            }
        }
    }

    fn literal_set(&self, b: u8) -> ByteSet {
        let s = ByteSet::singleton(b);
        if self.flags.case_insensitive {
            s.case_fold()
        } else {
            s
        }
    }

    fn parse_group(&mut self) -> Result<Option<Ast>, ParseError> {
        let open_pos = self.pos;
        self.bump(); // consume '('
        self.depth += 1;
        if self.depth > self.config.max_nest {
            return Err(self.err(ErrorKind::NestTooDeep { limit: self.config.max_nest }));
        }

        let mut scoped_flags = self.flags;
        if self.peek() == Some(b'?') {
            // A `(?...)` construct: flags, non-capturing group, or something
            // we do not support.
            match self.peek_at(1) {
                Some(b':') => {
                    self.pos += 2;
                }
                Some(b'=') | Some(b'!') | Some(b'<') | Some(b'P') | Some(b'#') => {
                    let end = (self.pos + 8).min(self.input.len());
                    let excerpt = String::from_utf8_lossy(&self.input[open_pos..end]).into_owned();
                    return Err(self.err(ErrorKind::UnsupportedGroup(excerpt)));
                }
                _ => {
                    // Inline flags: (?flags) or (?flags:...) or (?flags-flags...)
                    self.pos += 1;
                    let mut negate = false;
                    loop {
                        match self.peek() {
                            Some(b'i') => {
                                self.bump();
                                scoped_flags.case_insensitive = !negate;
                            }
                            Some(b's') => {
                                self.bump();
                                scoped_flags.dot_nl = !negate;
                            }
                            Some(b'm') | Some(b'x') | Some(b'U') => {
                                // Multiline / extended / ungreedy: irrelevant
                                // for whole-input membership; accept, ignore.
                                self.bump();
                            }
                            Some(b'-') => {
                                self.bump();
                                negate = true;
                            }
                            Some(b':') => {
                                self.bump();
                                break;
                            }
                            Some(b')') => {
                                // `(?i)` — applies to the rest of the
                                // enclosing group.
                                self.bump();
                                self.depth -= 1;
                                self.flags = scoped_flags;
                                return Ok(None);
                            }
                            Some(c) => {
                                return Err(self.err(ErrorKind::UnsupportedFlag(c as char)));
                            }
                            None => return Err(self.err(ErrorKind::UnexpectedEof)),
                        }
                    }
                }
            }
        }

        let saved_flags = self.flags;
        self.flags = scoped_flags;
        let inner = self.parse_alternation()?;
        self.flags = saved_flags;

        if !self.eat(b')') {
            self.pos = open_pos;
            return Err(self.err(ErrorKind::UnbalancedOpenParen));
        }
        self.depth -= 1;
        Ok(Some(inner))
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        let open_pos = self.pos;
        self.bump(); // consume '['
        let negate = self.eat(b'^');
        let mut set = ByteSet::new();
        let mut first = true;
        loop {
            let b = match self.peek() {
                None => {
                    self.pos = open_pos;
                    return Err(self.err(ErrorKind::UnclosedClass));
                }
                Some(b) => b,
            };
            if b == b']' && !first {
                self.bump();
                break;
            }
            first = false;

            // One class item: either a single byte / escape, optionally
            // followed by `-x` to form a range.
            let lo = if b == b'\\' {
                self.bump();
                match self.parse_class_escape()? {
                    ClassItem::Byte(x) => ClassItem::Byte(x),
                    ClassItem::Set(s) => {
                        set = set.union(&s);
                        continue;
                    }
                }
            } else {
                self.bump();
                ClassItem::Byte(b)
            };
            let lo = match lo {
                ClassItem::Byte(x) => x,
                ClassItem::Set(_) => unreachable!(),
            };

            // Possible range.
            if self.peek() == Some(b'-')
                && self.peek_at(1).is_some()
                && self.peek_at(1) != Some(b']')
            {
                self.bump(); // '-'
                let hb = self.peek().unwrap();
                let hi = if hb == b'\\' {
                    self.bump();
                    match self.parse_class_escape()? {
                        ClassItem::Byte(x) => x,
                        ClassItem::Set(_) => {
                            return Err(
                                self.err(ErrorKind::InvalidClassRange { start: lo, end: 0 })
                            );
                        }
                    }
                } else {
                    self.bump();
                    hb
                };
                if lo > hi {
                    return Err(self.err(ErrorKind::InvalidClassRange { start: lo, end: hi }));
                }
                set.insert_range(lo, hi);
            } else {
                set.insert(lo);
            }
        }

        if set.is_empty() && !negate {
            self.pos = open_pos;
            return Err(self.err(ErrorKind::EmptyClass));
        }
        if self.flags.case_insensitive {
            set = set.case_fold();
        }
        let set = if negate { set.complement() } else { set };
        Ok(Ast::Class(set))
    }

    fn parse_class_escape(&mut self) -> Result<ClassItem, ParseError> {
        let c = match self.bump() {
            None => return Err(self.err(ErrorKind::UnexpectedEof)),
            Some(c) => c,
        };
        let item = match c {
            b'd' => ClassItem::Set(perl::digit()),
            b'D' => ClassItem::Set(perl::not_digit()),
            b'w' => ClassItem::Set(perl::word()),
            b'W' => ClassItem::Set(perl::not_word()),
            b's' => ClassItem::Set(perl::space()),
            b'S' => ClassItem::Set(perl::not_space()),
            b'n' => ClassItem::Byte(b'\n'),
            b'r' => ClassItem::Byte(b'\r'),
            b't' => ClassItem::Byte(b'\t'),
            b'f' => ClassItem::Byte(0x0c),
            b'v' => ClassItem::Byte(0x0b),
            b'0' => ClassItem::Byte(0x00),
            b'a' => ClassItem::Byte(0x07),
            b'e' => ClassItem::Byte(0x1b),
            b'x' => ClassItem::Byte(self.parse_hex_escape()?),
            c if !c.is_ascii_alphanumeric() => ClassItem::Byte(c),
            c => return Err(self.err(ErrorKind::UnknownEscape(c as char))),
        };
        Ok(item)
    }

    fn parse_escape(&mut self) -> Result<Option<Ast>, ParseError> {
        let c = match self.bump() {
            None => return Err(self.err(ErrorKind::UnexpectedEof)),
            Some(c) => c,
        };
        let set = match c {
            b'd' => perl::digit(),
            b'D' => perl::not_digit(),
            b'w' => perl::word(),
            b'W' => perl::not_word(),
            b's' => perl::space(),
            b'S' => perl::not_space(),
            b'n' => self.literal_set(b'\n'),
            b'r' => self.literal_set(b'\r'),
            b't' => self.literal_set(b'\t'),
            b'f' => self.literal_set(0x0c),
            b'v' => self.literal_set(0x0b),
            b'0' => self.literal_set(0x00),
            b'a' => self.literal_set(0x07),
            b'e' => self.literal_set(0x1b),
            b'x' => {
                let b = self.parse_hex_escape()?;
                self.literal_set(b)
            }
            b'A' | b'z' | b'Z' | b'b' | b'B' | b'G' => {
                if self.config.allow_anchors {
                    return Ok(None);
                }
                return Err(self.err(ErrorKind::UnsupportedAnchor));
            }
            b'1'..=b'9' => {
                return Err(self
                    .err(ErrorKind::UnsupportedGroup(format!("back-reference \\{}", c as char))));
            }
            c if !c.is_ascii_alphanumeric() => self.literal_set(c),
            c => return Err(self.err(ErrorKind::UnknownEscape(c as char))),
        };
        Ok(Some(Ast::Class(set)))
    }

    fn parse_hex_escape(&mut self) -> Result<u8, ParseError> {
        // Either \xHH or \x{H+}.
        if self.eat(b'{') {
            let mut val: u32 = 0;
            let mut digits = 0;
            loop {
                match self.peek() {
                    Some(b'}') => {
                        self.bump();
                        break;
                    }
                    Some(c) if c.is_ascii_hexdigit() => {
                        self.bump();
                        val = val * 16 + (c as char).to_digit(16).unwrap();
                        digits += 1;
                        if val > 0xff {
                            return Err(self.err(ErrorKind::InvalidHexEscape));
                        }
                    }
                    _ => return Err(self.err(ErrorKind::InvalidHexEscape)),
                }
            }
            if digits == 0 {
                return Err(self.err(ErrorKind::InvalidHexEscape));
            }
            Ok(val as u8)
        } else {
            let h = self.bump().ok_or_else(|| self.err(ErrorKind::InvalidHexEscape))?;
            let l = self.bump().ok_or_else(|| self.err(ErrorKind::InvalidHexEscape))?;
            if !h.is_ascii_hexdigit() || !l.is_ascii_hexdigit() {
                return Err(self.err(ErrorKind::InvalidHexEscape));
            }
            let hv = (h as char).to_digit(16).unwrap();
            let lv = (l as char).to_digit(16).unwrap();
            Ok((hv * 16 + lv) as u8)
        }
    }

    // Attempts to parse `{n}`, `{n,}` or `{n,m}` at the current position
    // (which must be a `{`). Returns Ok(None) — without consuming anything —
    // when the text does not form a counted repetition, so the `{` falls
    // through as a literal (PCRE behaviour).
    fn try_parse_counted(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseError> {
        let start = self.pos;
        self.bump(); // '{'
        let min = match self.parse_decimal() {
            Some(n) => n,
            None => {
                self.pos = start;
                return Ok(None);
            }
        };
        let max = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                None
            } else {
                match self.parse_decimal() {
                    Some(n) => Some(n),
                    None => {
                        self.pos = start;
                        return Ok(None);
                    }
                }
            }
        } else {
            Some(min)
        };
        if !self.eat(b'}') {
            self.pos = start;
            return Ok(None);
        }
        if let Some(m) = max {
            if min > m {
                self.pos = start;
                return Err(self.err(ErrorKind::InvalidRepetitionRange { min, max: m }));
            }
        }
        let limit = self.config.max_repeat;
        let bound = max.unwrap_or(min);
        if bound > limit || min > limit {
            self.pos = start;
            return Err(self.err(ErrorKind::RepetitionTooLarge { bound, limit }));
        }
        Ok(Some((min, max)))
    }

    fn parse_decimal(&mut self) -> Option<u32> {
        let mut val: u64 = 0;
        let mut digits = 0;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
                val = val * 10 + (c - b'0') as u64;
                digits += 1;
                if val > u32::MAX as u64 {
                    return None;
                }
            } else {
                break;
            }
        }
        if digits == 0 {
            None
        } else {
            Some(val as u32)
        }
    }
}

enum ClassItem {
    Byte(u8),
    Set(ByteSet),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pattern: &str) -> Ast {
        parse(pattern).unwrap_or_else(|e| panic!("pattern `{}` failed: {}", pattern, e))
    }

    fn perr(pattern: &str) -> ErrorKind {
        parse(pattern).expect_err(&format!("pattern `{}` should fail", pattern)).kind
    }

    #[test]
    fn literals() {
        assert_eq!(p("a"), Ast::byte(b'a'));
        assert_eq!(p("abc"), Ast::literal("abc"));
        assert_eq!(p(""), Ast::Empty);
    }

    #[test]
    fn simple_operators() {
        assert_eq!(p("a*"), Ast::star(Ast::byte(b'a')));
        assert_eq!(p("a+"), Ast::plus(Ast::byte(b'a')));
        assert_eq!(p("a?"), Ast::opt(Ast::byte(b'a')));
        assert_eq!(p("ab|cd"), Ast::alternation(vec![Ast::literal("ab"), Ast::literal("cd")]));
    }

    #[test]
    fn grouping() {
        assert_eq!(p("(ab)*"), Ast::star(Ast::literal("ab")));
        assert_eq!(p("(?:ab)+"), Ast::plus(Ast::literal("ab")));
        assert_eq!(
            p("(a|b)c"),
            Ast::concat(vec![
                Ast::alternation(vec![Ast::byte(b'a'), Ast::byte(b'b')]),
                Ast::byte(b'c'),
            ])
        );
        assert_eq!(p("((a))"), Ast::byte(b'a'));
    }

    #[test]
    fn counted_repetitions() {
        assert_eq!(p("a{3}"), Ast::repeat(Ast::byte(b'a'), 3, Some(3)));
        assert_eq!(p("a{2,}"), Ast::repeat(Ast::byte(b'a'), 2, None));
        assert_eq!(p("a{2,5}"), Ast::repeat(Ast::byte(b'a'), 2, Some(5)));
        assert_eq!(p("(ab){10}"), Ast::repeat(Ast::literal("ab"), 10, Some(10)));
    }

    #[test]
    fn malformed_braces_are_literals() {
        assert_eq!(p("a{"), Ast::literal("a{"));
        assert_eq!(p("a{x}"), Ast::literal("a{x}"));
        assert_eq!(p("a{,3}"), Ast::literal("a{,3}"));
        assert_eq!(p("{3}a"), Ast::literal("{3}a"));
    }

    #[test]
    fn classes() {
        assert_eq!(p("[abc]"), Ast::Class(ByteSet::from_bytes([b'a', b'b', b'c'])));
        assert_eq!(p("[a-c]"), Ast::Class(ByteSet::range(b'a', b'c')));
        assert_eq!(p("[0-4]"), Ast::Class(ByteSet::range(b'0', b'4')));
        let not_a = ByteSet::singleton(b'a').complement();
        assert_eq!(p("[^a]"), Ast::Class(not_a));
        // ']' first is a literal.
        assert_eq!(p("[]a]"), Ast::Class(ByteSet::from_bytes([b']', b'a'])));
        // '-' at the edges is a literal.
        assert_eq!(p("[-a]"), Ast::Class(ByteSet::from_bytes([b'-', b'a'])));
        assert_eq!(p("[a-]"), Ast::Class(ByteSet::from_bytes([b'-', b'a'])));
    }

    #[test]
    fn class_escapes() {
        assert_eq!(p("[\\d]"), Ast::Class(perl::digit()));
        assert_eq!(
            p("[\\w#]"),
            Ast::Class({
                let mut s = perl::word();
                s.insert(b'#');
                s
            })
        );
        assert_eq!(p("[\\x41-\\x43]"), Ast::Class(ByteSet::range(b'A', b'C')));
        assert_eq!(p("[\\]]"), Ast::Class(ByteSet::singleton(b']')));
        assert_eq!(p("[\\n\\t]"), Ast::Class(ByteSet::from_bytes([b'\n', b'\t'])));
    }

    #[test]
    fn perl_class_escapes() {
        assert_eq!(p("\\d"), Ast::Class(perl::digit()));
        assert_eq!(p("\\D"), Ast::Class(perl::not_digit()));
        assert_eq!(p("\\w"), Ast::Class(perl::word()));
        assert_eq!(p("\\s+"), Ast::plus(Ast::Class(perl::space())));
    }

    #[test]
    fn byte_escapes() {
        assert_eq!(p("\\n"), Ast::byte(b'\n'));
        assert_eq!(p("\\x41"), Ast::byte(b'A'));
        assert_eq!(p("\\x{42}"), Ast::byte(b'B'));
        assert_eq!(p("\\\\"), Ast::byte(b'\\'));
        assert_eq!(p("\\."), Ast::byte(b'.'));
        assert_eq!(p("\\*"), Ast::byte(b'*'));
        assert_eq!(p("\\0"), Ast::byte(0));
    }

    #[test]
    fn dot() {
        assert_eq!(p("."), Ast::Class(perl::dot()));
        assert_eq!(p("(?s)."), Ast::Class(perl::any()));
    }

    #[test]
    fn anchors_ignored_by_default() {
        assert_eq!(p("^abc$"), Ast::literal("abc"));
        assert_eq!(p("^$"), Ast::Empty);
        assert_eq!(p("\\babc\\b"), Ast::literal("abc"));
        let strict =
            Parser::with_config(ParserConfig { allow_anchors: false, ..Default::default() });
        assert_eq!(strict.parse("^abc").unwrap_err().kind, ErrorKind::UnsupportedAnchor);
    }

    #[test]
    fn inline_flags() {
        assert_eq!(p("(?i)a"), Ast::Class(ByteSet::from_bytes([b'a', b'A'])));
        assert_eq!(
            p("(?i:a)b"),
            Ast::concat(vec![Ast::Class(ByteSet::from_bytes([b'a', b'A'])), Ast::byte(b'b'),])
        );
        // flag scope ends with the group
        assert_eq!(
            p("((?i)a)b"),
            Ast::concat(vec![Ast::Class(ByteSet::from_bytes([b'a', b'A'])), Ast::byte(b'b'),])
        );
        assert_eq!(p("(?i)[a-b]"), Ast::Class(ByteSet::from_bytes([b'a', b'b', b'A', b'B'])));
        // (?m) and (?x) are accepted and ignored
        assert_eq!(p("(?m)ab"), Ast::literal("ab"));
    }

    #[test]
    fn case_insensitive_config() {
        let parser =
            Parser::with_config(ParserConfig { case_insensitive: true, ..Default::default() });
        assert_eq!(parser.parse("a").unwrap(), Ast::Class(ByteSet::from_bytes([b'a', b'A'])));
    }

    #[test]
    fn paper_expressions_parse() {
        // The expressions used throughout the paper's evaluation.
        p("(ab)*");
        p("([0-4]{5}[5-9]{5})*");
        p("([0-4]{50}[5-9]{50})*");
        p("([0-4]{500}[5-9]{500})*");
        p("([0-4]{500}[5-9]{500})*|a*");
        p("(([02468][13579]){5})*");
        p(".*(T.*T.*Y.*P.*P.*R.*O.*M.*P.*T.*)");
        p("[ap]*[al][alp]{3}");
        p("(m|(t|c([mt]*c){3})[cmt]*)*");
    }

    #[test]
    fn snort_like_expressions_parse() {
        p("(?i)User-Agent\\x3a[^\\r\\n]*curl");
        p("\\x2fscripts\\x2f\\.\\.%c0%af\\.\\.\\x2f");
        p("(?i)(GET|POST|HEAD)\\s+\\/[a-z0-9_\\-\\.]{1,64}\\.php");
        p("\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}");
        p("[\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{8,}");
    }

    #[test]
    fn errors() {
        assert_eq!(perr("("), ErrorKind::UnbalancedOpenParen);
        assert_eq!(perr("(a"), ErrorKind::UnbalancedOpenParen);
        assert_eq!(perr(")"), ErrorKind::UnbalancedCloseParen);
        assert_eq!(perr("a)"), ErrorKind::UnbalancedCloseParen);
        assert_eq!(perr("[a"), ErrorKind::UnclosedClass);
        assert_eq!(perr("[]"), ErrorKind::UnclosedClass); // `]` literal, then unclosed
        assert_eq!(perr("*a"), ErrorKind::RepetitionMissingOperand);
        assert_eq!(perr("+"), ErrorKind::RepetitionMissingOperand);
        assert_eq!(perr("a{5,2}"), ErrorKind::InvalidRepetitionRange { min: 5, max: 2 });
        assert_eq!(
            perr("a{9999999}"),
            ErrorKind::RepetitionTooLarge { bound: 9999999, limit: 2000 }
        );
        assert_eq!(perr("[z-a]"), ErrorKind::InvalidClassRange { start: b'z', end: b'a' });
        assert_eq!(perr("\\q"), ErrorKind::UnknownEscape('q'));
        assert_eq!(perr("\\xzz"), ErrorKind::InvalidHexEscape);
        assert_eq!(perr("(?=a)"), ErrorKind::UnsupportedGroup("(?=a)".to_string()));
        assert_eq!(perr("a\\1"), ErrorKind::UnsupportedGroup("back-reference \\1".to_string()));
        assert!(matches!(perr("a\\"), ErrorKind::UnexpectedEof));
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "(".repeat(200) + "a" + &")".repeat(200);
        assert!(matches!(perr(&deep), ErrorKind::NestTooDeep { .. }));
    }

    #[test]
    fn nested_quantifiers() {
        assert_eq!(p("(a*)*"), Ast::star(Ast::star(Ast::byte(b'a'))));
        assert_eq!(p("a*?"), Ast::opt(Ast::star(Ast::byte(b'a'))));
        assert_eq!(
            p("(a{2}){3}"),
            Ast::repeat(Ast::repeat(Ast::byte(b'a'), 2, Some(2)), 3, Some(3))
        );
    }

    #[test]
    fn alternation_with_empty_branch() {
        assert_eq!(p("a|"), Ast::alternation(vec![Ast::byte(b'a'), Ast::Empty]));
        assert_eq!(p("|a"), Ast::alternation(vec![Ast::Empty, Ast::byte(b'a')]));
    }

    #[test]
    fn parse_raw_bytes() {
        let parser = Parser::new();
        let ast = parser.parse_bytes(b"[\x80-\xff]+").unwrap();
        assert_eq!(ast, Ast::plus(Ast::Class(ByteSet::range(0x80, 0xff))));
    }
}
