//! Parse errors with byte offsets into the original pattern.

use std::fmt;

/// An error produced while parsing a regular expression pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// The kind of error.
    pub kind: ErrorKind,
    /// Byte offset into the pattern at which the error was detected.
    pub offset: usize,
    /// The pattern that was being parsed.
    pub pattern: String,
}

/// The different ways a pattern can be rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The pattern ended in the middle of a construct.
    UnexpectedEof,
    /// A `)` with no matching `(`.
    UnbalancedCloseParen,
    /// A `(` with no matching `)`.
    UnbalancedOpenParen,
    /// A `]` was expected but never found.
    UnclosedClass,
    /// An empty character class `[]` (which can never match).
    EmptyClass,
    /// A range `a-b` inside a class with `a > b`.
    InvalidClassRange {
        /// Lower end of the rejected range.
        start: u8,
        /// Upper end of the rejected range.
        end: u8,
    },
    /// A repetition operator with nothing to repeat (e.g. `*` at the start).
    RepetitionMissingOperand,
    /// `{n,m}` with `n > m`.
    InvalidRepetitionRange {
        /// Lower repetition bound.
        min: u32,
        /// Upper repetition bound.
        max: u32,
    },
    /// A counted repetition that is syntactically malformed.
    MalformedRepetition,
    /// A counted repetition whose bound exceeds the configured limit.
    RepetitionTooLarge {
        /// The offending bound.
        bound: u32,
        /// The configured limit.
        limit: u32,
    },
    /// An escape sequence that the parser does not understand.
    UnknownEscape(char),
    /// A hex escape (`\xHH`) with invalid digits.
    InvalidHexEscape,
    /// An anchor (`^`/`$`) in a position where it is not supported.
    UnsupportedAnchor,
    /// A group construct we do not support (e.g. back-references,
    /// look-around).
    UnsupportedGroup(String),
    /// An inline flag we do not support.
    UnsupportedFlag(char),
    /// The expression nests groups deeper than the configured limit.
    NestTooDeep {
        /// The configured nesting limit.
        limit: usize,
    },
}

impl ParseError {
    pub(crate) fn new(kind: ErrorKind, offset: usize, pattern: &[u8]) -> ParseError {
        ParseError { kind, offset, pattern: String::from_utf8_lossy(pattern).into_owned() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at offset {} in `{}`: {}",
            self.offset, self.pattern, self.kind
        )
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of pattern"),
            ErrorKind::UnbalancedCloseParen => write!(f, "unopened `)`"),
            ErrorKind::UnbalancedOpenParen => write!(f, "unclosed `(`"),
            ErrorKind::UnclosedClass => write!(f, "unclosed character class"),
            ErrorKind::EmptyClass => write!(f, "empty character class"),
            ErrorKind::InvalidClassRange { start, end } => {
                write!(f, "invalid class range {}-{}", *start as char, *end as char)
            }
            ErrorKind::RepetitionMissingOperand => {
                write!(f, "repetition operator has nothing to repeat")
            }
            ErrorKind::InvalidRepetitionRange { min, max } => {
                write!(f, "invalid repetition range {{{},{}}}", min, max)
            }
            ErrorKind::MalformedRepetition => write!(f, "malformed counted repetition"),
            ErrorKind::RepetitionTooLarge { bound, limit } => {
                write!(f, "repetition bound {} exceeds limit {}", bound, limit)
            }
            ErrorKind::UnknownEscape(c) => write!(f, "unknown escape `\\{}`", c),
            ErrorKind::InvalidHexEscape => write!(f, "invalid hex escape"),
            ErrorKind::UnsupportedAnchor => write!(f, "anchors are not supported here"),
            ErrorKind::UnsupportedGroup(g) => write!(f, "unsupported group `{}`", g),
            ErrorKind::UnsupportedFlag(c) => write!(f, "unsupported inline flag `{}`", c),
            ErrorKind::NestTooDeep { limit } => {
                write!(f, "expression nests deeper than {} levels", limit)
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_pattern() {
        let err = ParseError::new(ErrorKind::UnexpectedEof, 3, b"abc(");
        let msg = err.to_string();
        assert!(msg.contains("offset 3"));
        assert!(msg.contains("abc("));
        assert!(msg.contains("unexpected end"));
    }

    #[test]
    fn error_kinds_display() {
        let kinds = vec![
            ErrorKind::UnbalancedCloseParen,
            ErrorKind::UnclosedClass,
            ErrorKind::EmptyClass,
            ErrorKind::InvalidClassRange { start: b'z', end: b'a' },
            ErrorKind::RepetitionMissingOperand,
            ErrorKind::InvalidRepetitionRange { min: 5, max: 2 },
            ErrorKind::MalformedRepetition,
            ErrorKind::RepetitionTooLarge { bound: 100000, limit: 1000 },
            ErrorKind::UnknownEscape('q'),
            ErrorKind::InvalidHexEscape,
            ErrorKind::UnsupportedAnchor,
            ErrorKind::UnsupportedGroup("(?<=x)".to_string()),
            ErrorKind::UnsupportedFlag('z'),
            ErrorKind::NestTooDeep { limit: 64 },
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
