//! Required-literal extraction: the static analysis behind the
//! multi-literal prefilter of `sfa-matcher`.
//!
//! [`required_literals`] computes, for a parsed pattern, a small set of
//! byte strings with the guarantee that **every word the pattern matches
//! contains at least one of them as a contiguous substring**. A scanner
//! can therefore search the haystack for the literals first (with a cheap
//! Aho–Corasick pass) and consult the pattern's automaton only when one of
//! them occurs — for substring (`Contains`) scanning this is sound too,
//! because a matching haystack contains a matched word, which contains a
//! required literal.
//!
//! The analysis is deliberately conservative: when no useful literal set
//! can be proven (`.`-heavy patterns, large character classes, literals
//! shorter than [`LiteralConfig::min_len`]), it returns `None` and the
//! caller must scan unconditionally. Returning `None` is always safe;
//! returning a wrong set never is, so every rule below errs toward `None`.
//!
//! Case-insensitive patterns need no special handling: by the time the
//! parser produces an [`Ast`], `(?i)` has become multi-byte classes like
//! `[sS]`, and the extractor enumerates the (capped) cross product —
//! `(?i)select` yields the 16 case variants of `sele` rather than giving
//! up.
//!
//! ```
//! use sfa_regex_syntax::{parse, required_literals};
//!
//! let lits = required_literals(&parse("attack[0-9]{2}").unwrap()).unwrap();
//! assert!(lits.iter().all(|l| l.starts_with(b"attack")));
//! // Every match of the pattern contains one of `lits`.
//!
//! assert!(required_literals(&parse("[0-9]{1,3}").unwrap()).is_none());
//! // No literal of useful length is required: the caller must scan.
//! ```

use crate::ast::Ast;

/// Tuning knobs for [`required_literals_with`].
#[derive(Clone, Debug)]
pub struct LiteralConfig {
    /// Maximum number of literals in an extracted set. Enumerating class
    /// cross products (case variants, digit alternatives) stops at this
    /// many; larger sets flush to a candidate and the analysis restarts
    /// after the offending position.
    pub max_literals: usize,
    /// Maximum literal length. Longer required strings are cut into
    /// consecutive slices and the best slice wins (a match containing a
    /// long literal contains every substring of it, so a slice stays
    /// sound).
    pub max_len: usize,
    /// Minimum literal length for a set to be *useful*. A set containing a
    /// shorter literal is rejected wholesale — individual literals can
    /// never be dropped, because the guarantee is "at least one of these
    /// occurs", which dropping would break.
    pub min_len: usize,
}

impl Default for LiteralConfig {
    fn default() -> Self {
        LiteralConfig { max_literals: 16, max_len: 12, min_len: 2 }
    }
}

/// Extracts a required-literal set with the default [`LiteralConfig`].
///
/// Returns `Some(lits)` only when every word of `ast`'s language contains
/// at least one element of `lits` as a contiguous substring; `None` when
/// no set of useful literals can be proven.
pub fn required_literals(ast: &Ast) -> Option<Vec<Vec<u8>>> {
    required_literals_with(ast, &LiteralConfig::default())
}

/// [`required_literals`] with explicit limits.
pub fn required_literals_with(ast: &Ast, cfg: &LiteralConfig) -> Option<Vec<Vec<u8>>> {
    if cfg.min_len == 0 || cfg.max_len < cfg.min_len || cfg.max_literals == 0 {
        return None;
    }
    let set = req(ast, cfg)?;
    debug_assert!(!set.is_empty());
    debug_assert!(set.iter().all(|l| l.len() >= cfg.min_len && l.len() <= cfg.max_len));
    Some(set)
}

/// Extracts required-literal **clauses** with the default
/// [`LiteralConfig`]: a conjunction of independent [`required_literals`]
/// guarantees.
///
/// Returns `Some(clauses)` only when every clause independently satisfies
/// the [`required_literals`] contract — every word of `ast`'s language
/// contains at least one literal *of each clause*. A pattern like
/// `login.{0,64}passwd` yields two single-literal clauses (`login` and
/// `passwd` are both required), which lets a prefilter demand **both**
/// before consulting the automaton, where the flat any-of set could only
/// demand one. `None` when not even one clause can be proven.
pub fn required_literal_clauses(ast: &Ast) -> Option<Vec<Vec<Vec<u8>>>> {
    required_literal_clauses_with(ast, &LiteralConfig::default())
}

/// [`required_literal_clauses`] with explicit limits.
pub fn required_literal_clauses_with(ast: &Ast, cfg: &LiteralConfig) -> Option<Vec<Vec<Vec<u8>>>> {
    if cfg.min_len == 0 || cfg.max_len < cfg.min_len || cfg.max_literals == 0 {
        return None;
    }
    let mut clauses = match ast {
        Ast::Concat(parts) => all_runs(parts, cfg),
        Ast::Alternation(_) => req(ast, cfg).into_iter().collect(),
        other => all_runs(std::slice::from_ref(other), cfg),
    };
    clauses.sort();
    clauses.dedup();
    if clauses.is_empty() {
        None
    } else {
        debug_assert!(clauses.iter().all(|c| {
            !c.is_empty() && c.iter().all(|l| l.len() >= cfg.min_len && l.len() <= cfg.max_len)
        }));
        Some(clauses)
    }
}

/// The recursive core. Invariant of every `Some(set)` it returns: the set
/// is non-empty, each literal's length is within `[min_len, max_len]`,
/// and every word of `ast`'s language contains at least one literal.
fn req(ast: &Ast, cfg: &LiteralConfig) -> Option<Vec<Vec<u8>>> {
    match ast {
        // A required set of an alternation must cover *every* branch: the
        // union of per-branch sets, provided each branch yields one.
        Ast::Alternation(parts) => {
            let mut union: Vec<Vec<u8>> = Vec::new();
            for p in parts {
                union.extend(req(p, cfg)?);
            }
            union.sort();
            union.dedup();
            if union.is_empty() || union.len() > cfg.max_literals {
                None
            } else {
                Some(union)
            }
        }
        Ast::Concat(parts) => best_run(parts, cfg),
        other => best_run(std::slice::from_ref(other), cfg),
    }
}

/// Is `set` usable as a literal run under the configured caps?
fn fits(set: &[Vec<u8>], cfg: &LiteralConfig) -> bool {
    set.len() <= cfg.max_literals && set.iter().all(|l| l.len() <= cfg.max_len)
}

/// Exact cross product of two finite word sets, `None` when it exceeds
/// the caps. Exactness matters: a run is the *whole* language of a
/// consecutive slice of the concatenation, so no element may be truncated
/// mid-run (the truncated word would continue with the wrong bytes).
fn cross(run: &[Vec<u8>], ext: &[Vec<u8>], cfg: &LiteralConfig) -> Option<Vec<Vec<u8>>> {
    let mut out = Vec::with_capacity(run.len() * ext.len());
    for a in run {
        for b in ext {
            let mut w = a.clone();
            w.extend_from_slice(b);
            out.push(w);
        }
    }
    out.sort();
    out.dedup();
    if fits(&out, cfg) {
        Some(out)
    } else {
        None
    }
}

/// Closes a run: if every word is long enough, records it as a candidate
/// required set. A run containing a too-short word (including the `ε`
/// seed) is discarded *wholesale* — see [`LiteralConfig::min_len`].
fn flush(candidates: &mut Vec<Vec<Vec<u8>>>, run: Vec<Vec<u8>>, cfg: &LiteralConfig) {
    if run.is_empty() || run.iter().any(|l| l.len() < cfg.min_len) {
        return;
    }
    debug_assert!(fits(&run, cfg));
    candidates.push(run);
}

/// Scans a concatenation left to right, growing *runs*: the exact finite
/// language of the consecutive enumerable parts seen so far. Every match
/// of the concatenation contains exactly one word of each run as a
/// contiguous substring, so each closed run is a candidate required set;
/// non-enumerable, non-nullable parts contribute their own recursive sets.
/// The best candidate wins: longest minimum literal, then fewest literals.
fn best_run(parts: &[Ast], cfg: &LiteralConfig) -> Option<Vec<Vec<u8>>> {
    let mut candidates: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut run: Vec<Vec<u8>> = vec![Vec::new()];
    for part in parts {
        match words(part, cfg) {
            // A void part voids the whole concatenation: it matches
            // nothing, so any answer is vacuously sound — stay safe.
            Some(w) if w.is_empty() => return None,
            Some(w) => {
                if let Some(ext) = cross(&run, &w, cfg) {
                    run = ext;
                } else {
                    // Over the caps: close the run before this part and
                    // start the next one at it (or just past it).
                    flush(&mut candidates, std::mem::take(&mut run), cfg);
                    run = if fits(&w, cfg) { w } else { vec![Vec::new()] };
                }
            }
            None => {
                flush(&mut candidates, std::mem::take(&mut run), cfg);
                run = vec![Vec::new()];
                // A non-nullable part occurs in every match, so its own
                // required set is required for the concatenation too.
                if !part.is_nullable() {
                    if let Some(sub) = sub_req(part, cfg) {
                        candidates.push(sub);
                    }
                }
            }
        }
    }
    flush(&mut candidates, run, cfg);
    candidates
        .into_iter()
        .max_by_key(|c| (c.iter().map(Vec::len).min().unwrap_or(0), std::cmp::Reverse(c.len())))
}

/// Every closed run of a concatenation, as independent clauses: each
/// match contains one word of *each* returned set. Same scan as
/// [`best_run`], but nothing is thrown away, and non-enumerable
/// non-nullable parts contribute their own full clause lists instead of a
/// single best set.
fn all_runs(parts: &[Ast], cfg: &LiteralConfig) -> Vec<Vec<Vec<u8>>> {
    let mut clauses: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut run: Vec<Vec<u8>> = vec![Vec::new()];
    for part in parts {
        match words(part, cfg) {
            // A void part: the concatenation matches nothing, so no
            // clause is provable (vacuous truth stays unexploited).
            Some(w) if w.is_empty() => return Vec::new(),
            Some(w) => {
                if let Some(ext) = cross(&run, &w, cfg) {
                    run = ext;
                } else {
                    flush(&mut clauses, std::mem::take(&mut run), cfg);
                    run = if fits(&w, cfg) { w } else { vec![Vec::new()] };
                }
            }
            None => {
                flush(&mut clauses, std::mem::take(&mut run), cfg);
                run = vec![Vec::new()];
                if !part.is_nullable() {
                    clauses.extend(sub_clauses(part, cfg));
                }
            }
        }
    }
    flush(&mut clauses, run, cfg);
    clauses
}

/// Clause list of a non-enumerable concatenation part, descending into
/// strictly smaller subterms only (the [`sub_req`] recursion guard).
fn sub_clauses(part: &Ast, cfg: &LiteralConfig) -> Vec<Vec<Vec<u8>>> {
    match part {
        Ast::Concat(parts) => all_runs(parts, cfg),
        Ast::Alternation(_) => req(part, cfg).into_iter().collect(),
        // Every match contains the body at least once, so every clause of
        // the body carries over (the exact pinned-power enumeration
        // [`sub_req`] prefers adds nothing clause-wise: it is one run).
        Ast::Repeat { node, min, .. } if *min >= 1 => match sub_req(part, cfg) {
            Some(set) if matches!(**node, Ast::Concat(_) | Ast::Alternation(_)) => {
                // The pinned enumeration succeeded but the body may still
                // prove *more* clauses than the one enumerated run.
                let mut cls = sub_clauses(node, cfg);
                cls.push(set);
                cls
            }
            Some(set) => vec![set],
            None => sub_clauses(node, cfg),
        },
        _ => Vec::new(),
    }
}

/// Required set of a part whose language is too large to enumerate,
/// always descending into *strictly smaller* subterms (unlike [`req`],
/// which would re-enter [`best_run`] on the identical node and loop).
fn sub_req(part: &Ast, cfg: &LiteralConfig) -> Option<Vec<Vec<u8>>> {
    match part {
        Ast::Alternation(_) | Ast::Concat(_) => req(part, cfg),
        // Every match contains `body^min` contiguously — prefer its exact
        // (capped) enumeration, falling back to the weaker single-copy
        // requirement when the pinned power is too long or too wide.
        Ast::Repeat { node, min, .. } if *min >= 1 => {
            let pinned = Ast::Repeat { node: node.clone(), min: *min, max: Some(*min) };
            match words(&pinned, cfg) {
                Some(w)
                    if !w.is_empty()
                        && fits(&w, cfg)
                        && w.iter().all(|l| l.len() >= cfg.min_len) =>
                {
                    Some(w)
                }
                _ => req(node, cfg),
            }
        }
        _ => None,
    }
}

/// The full (finite) language of `ast` when it is small enough to
/// enumerate under the caps; `None` otherwise. `Some(vec![])` means the
/// language is empty (a void pattern).
fn words(ast: &Ast, cfg: &LiteralConfig) -> Option<Vec<Vec<u8>>> {
    match ast {
        Ast::Empty => Some(vec![Vec::new()]),
        Ast::Class(set) => {
            if set.len() > cfg.max_literals {
                return None;
            }
            Some(set.iter().map(|b| vec![b]).collect())
        }
        Ast::Concat(parts) => {
            let mut out = vec![Vec::new()];
            for p in parts {
                out = cross(&out, &words(p, cfg)?, cfg)?;
            }
            Some(out)
        }
        Ast::Alternation(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(words(p, cfg)?);
            }
            out.sort();
            out.dedup();
            if out.len() > cfg.max_literals {
                None
            } else {
                Some(out)
            }
        }
        Ast::Repeat { node, min, max } => {
            let max = (*max)?;
            let base = words(node, cfg)?;
            if base.is_empty() {
                // A void body: x{0,..} matches only ε, x{1,..} nothing.
                return Some(if *min == 0 { vec![Vec::new()] } else { vec![] });
            }
            let mut power = vec![Vec::new()];
            let mut out: Vec<Vec<u8>> = Vec::new();
            for k in 0..=max {
                if k >= *min {
                    out.extend(power.iter().cloned());
                    if out.len() > cfg.max_literals {
                        return None;
                    }
                }
                if k == max {
                    break;
                }
                power = cross(&power, &base, cfg)?;
            }
            out.sort();
            out.dedup();
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{perl, ByteSet};
    use crate::parse;

    fn lits(pattern: &str) -> Option<Vec<String>> {
        required_literals(&parse(pattern).unwrap())
            .map(|ls| ls.into_iter().map(|l| String::from_utf8(l).unwrap()).collect())
    }

    fn clauses(pattern: &str) -> Option<Vec<Vec<String>>> {
        required_literal_clauses(&parse(pattern).unwrap()).map(|cs| {
            cs.into_iter()
                .map(|c| c.into_iter().map(|l| String::from_utf8(l).unwrap()).collect())
                .collect()
        })
    }

    #[test]
    fn proximity_rule_requires_both_tokens() {
        // The flat set can demand only one of the tokens; the clause form
        // proves both are required.
        assert_eq!(
            clauses("login.{0,64}passwd"),
            Some(vec![vec!["login".to_string()], vec!["passwd".to_string()]])
        );
        assert_eq!(lits("login.{0,64}passwd"), Some(vec!["passwd".to_string()]));
    }

    #[test]
    fn single_run_patterns_yield_one_clause() {
        assert_eq!(clauses("attack[0-9]{2}"), Some(vec![vec!["attack".to_string()]]));
        assert_eq!(clauses("[0-9]{1,3}"), None, "no clause is provable");
    }

    #[test]
    fn alternation_segment_is_one_covering_clause() {
        // Clauses sort lexicographically: the `from` run first, then the
        // branch-covering run of the alternation segment.
        assert_eq!(
            clauses("(select|union) .{0,10}from"),
            Some(
                vec![vec!["from".to_string()], vec!["select ".to_string(), "union ".to_string()],]
            )
        );
    }

    #[test]
    fn repeated_group_carries_its_body_clause() {
        assert_eq!(clauses("(etc/passwd){2,3}"), Some(vec![vec!["etc/passwd".to_string()]]));
        assert_eq!(clauses("(etc/passwd){0,3}"), None, "zero repeats require nothing");
    }

    #[test]
    fn every_clause_is_a_sound_flat_set_on_its_own() {
        // The flat extractor must agree with *some* clause — `best_run`
        // picks one of the runs `all_runs` keeps.
        for pattern in ["login.{0,64}passwd", "attack[0-9]{2}", "(?i)union", "a.{0,5}bb.{0,5}ccc"] {
            let flat = lits(pattern).expect(pattern);
            let cs = clauses(pattern).expect(pattern);
            assert!(cs.contains(&flat), "{pattern}: {flat:?} not among {cs:?}");
        }
    }

    #[test]
    fn plain_literal() {
        assert_eq!(lits("attack"), Some(vec!["attack".to_string()]));
    }

    #[test]
    fn literal_with_class_tail() {
        // `[0-9]{2}` has 100 words — past the cap — so the run closes at
        // the keyword and the digit tail contributes nothing.
        assert_eq!(lits("attack[0-9]{2}"), Some(vec!["attack".to_string()]));
    }

    #[test]
    fn case_insensitive_keyword_enumerates_variants() {
        let ls = lits("(?i)union").unwrap();
        // 2^4 = 16 variants of the first four letters fill the cap.
        assert_eq!(ls.len(), 16);
        assert!(ls.contains(&"unio".to_string()));
        assert!(ls.contains(&"UNIO".to_string()));
        assert!(ls.iter().all(|l| l.eq_ignore_ascii_case("unio")));
    }

    #[test]
    fn alternation_unions_branches() {
        let ls = lits("(select|union)").unwrap();
        assert_eq!(ls, vec!["select".to_string(), "union".to_string()]);
        // One literal-free branch poisons the whole alternation.
        assert_eq!(lits("(select|[0-9]{3})"), None);
    }

    #[test]
    fn classes_and_dots_give_nothing() {
        assert_eq!(lits("[0-9]{1,3}"), None);
        assert_eq!(lits("[0-9]{1,3}\\.[0-9]{1,3}"), None, "lone `.` is below min_len");
        assert_eq!(lits("a"), None, "single byte is below min_len");
        assert_eq!(lits("[^\\r\\n]{8,}"), None);
    }

    #[test]
    fn optional_and_starred_parts_extend_or_break_runs() {
        // `s?` is enumerable ({ε, s}) and keeps the run going.
        let ls = lits("attacks?").unwrap();
        assert_eq!(ls, vec!["attack".to_string(), "attacks".to_string()]);
        // An unbounded gap splits the pattern into two runs; the longer
        // minimum wins.
        assert_eq!(lits("etc[a-z]*passwd"), Some(vec!["passwd".to_string()]));
        // A `.*` wrap (Contains-style) changes nothing: the needle is
        // still required.
        let wrapped = Ast::concat(vec![
            Ast::star(Ast::Class(perl::any())),
            parse("exploit").unwrap(),
            Ast::star(Ast::Class(perl::any())),
        ]);
        assert_eq!(required_literals(&wrapped), Some(vec![b"exploit".to_vec()]));
    }

    #[test]
    fn repeat_of_a_word_requires_the_word() {
        assert_eq!(lits("(abc){2,}"), Some(vec!["abcabc".to_string()]));
        let ls = lits("(abcdefgh){1,200}").unwrap();
        assert_eq!(ls, vec!["abcdefgh".to_string()], "falls back to one body copy");
        assert_eq!(lits("(abc)*"), None, "min 0 requires nothing");
    }

    #[test]
    fn long_literals_split_into_slices() {
        // 16 bytes > max_len 12: the run closes at 12 and the best slice
        // wins; any sound answer must be a substring of the literal.
        let ls = lits("abcdefghijklmnop").unwrap();
        assert!(ls.len() == 1 && "abcdefghijklmnop".contains(&ls[0]), "{ls:?}");
        assert!(ls[0].len() >= 2 && ls[0].len() <= 12);
    }

    #[test]
    fn curated_snort_style_rules() {
        assert!(lits("/cgi-bin/ph[a-z]{1,8}").is_some());
        assert!(lits("(?i)etc/(passwd|shadow|group)").is_some());
        // The SQLi rule: the case variants of `(select|union)` overflow
        // the 16-literal cap together, but the trailing `from` keyword is
        // itself required and survives as the best candidate.
        let ls = lits("(?i)(select|union)\\s+[a-z0-9_, ]{1,40}\\s+from").unwrap();
        assert_eq!(ls.len(), 16);
        assert!(ls.iter().all(|l| l.eq_ignore_ascii_case("from")));
    }

    #[test]
    fn void_and_degenerate_patterns() {
        let void = Ast::concat(vec![parse("attack").unwrap(), Ast::Class(ByteSet::EMPTY)]);
        assert_eq!(required_literals(&void), None);
        assert_eq!(required_literals(&Ast::Empty), None);
        let zero = LiteralConfig { max_literals: 0, ..Default::default() };
        assert_eq!(required_literals_with(&parse("attack").unwrap(), &zero), None);
    }

    #[test]
    fn custom_config_is_honored() {
        let cfg = LiteralConfig { max_literals: 4, max_len: 3, min_len: 1 };
        let ls = required_literals_with(&parse("abcdef").unwrap(), &cfg).unwrap();
        assert!(ls.iter().all(|l| l.len() <= 3 && !l.is_empty()));
        // min_len 1 admits single-byte classes.
        let cfg = LiteralConfig { min_len: 1, ..Default::default() };
        let ls = required_literals_with(&parse("[ab]").unwrap(), &cfg).unwrap();
        assert_eq!(ls, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    mod soundness {
        use super::*;
        use crate::generator::{sample_match, AstGenerator, GeneratorConfig};
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The contract itself: for random patterns, every sampled
            /// matching word contains at least one extracted literal.
            #[test]
            fn every_match_contains_a_required_literal(seed in any::<u64>()) {
                let mut rng = StdRng::seed_from_u64(seed);
                let generator = AstGenerator::with_config(GeneratorConfig {
                    max_depth: 4,
                    max_width: 4,
                    max_repeat: 4,
                    alphabet: crate::ByteSet::range(b'a', b'd'),
                    repeat_bias: 0.3,
                });
                let ast = generator.generate(&mut rng);
                let cfg = LiteralConfig { min_len: 1, ..Default::default() };
                let Some(lits) = required_literals_with(&ast, &cfg) else { return Ok(()) };
                for _ in 0..16 {
                    let Some(word) = sample_match(&ast, &mut rng) else { break };
                    prop_assert!(
                        lits.iter().any(|l| word.windows(l.len()).any(|w| w == &l[..])),
                        "word {:?} of {:?} contains none of {:?}",
                        String::from_utf8_lossy(&word), ast, lits
                    );
                }
            }
        }
    }
}
