//! Byte sets: the character-class representation used throughout the SFA
//! pipeline.
//!
//! The SFA matcher is byte oriented (the alphabet is `0..=255`, exactly like
//! the paper's implementation which uses "256 symbols times 4 bytes" per DFA
//! state). A [`ByteSet`] is a 256-bit bitmap describing one character class.

use std::fmt;

/// A set of bytes, represented as a 256-bit bitmap.
///
/// `ByteSet` is the normalized form of every character class that appears in
/// a parsed regular expression: `[a-z]`, `\d`, `.`, a single literal byte,
/// and so on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet { bits: [0; 4] };

    /// The full set containing every byte `0..=255`.
    pub const FULL: ByteSet = ByteSet { bits: [u64::MAX; 4] };

    /// Creates an empty byte set.
    #[inline]
    pub const fn new() -> ByteSet {
        ByteSet::EMPTY
    }

    /// Creates a set containing exactly one byte.
    #[inline]
    pub fn singleton(b: u8) -> ByteSet {
        let mut s = ByteSet::new();
        s.insert(b);
        s
    }

    /// Creates a set containing every byte in the inclusive range
    /// `start..=end`.
    ///
    /// If `start > end` the set is empty.
    pub fn range(start: u8, end: u8) -> ByteSet {
        let mut s = ByteSet::new();
        if start <= end {
            for b in start..=end {
                s.insert(b);
            }
        }
        s
    }

    /// Creates a set from an iterator of bytes.
    pub fn from_bytes<I: IntoIterator<Item = u8>>(iter: I) -> ByteSet {
        let mut s = ByteSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }

    /// Inserts a byte into the set.
    #[inline]
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Inserts every byte in `start..=end`.
    pub fn insert_range(&mut self, start: u8, end: u8) {
        if start <= end {
            for b in start..=end {
                self.insert(b);
            }
        }
    }

    /// Removes a byte from the set.
    #[inline]
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Returns true if the set contains `b`.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Returns the number of bytes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns true if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Returns true if the set contains every byte.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.bits == [u64::MAX; 4]
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        let mut bits = self.bits;
        for (b, o) in bits.iter_mut().zip(&other.bits) {
            *b |= o;
        }
        ByteSet { bits }
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(&self, other: &ByteSet) -> ByteSet {
        let mut bits = self.bits;
        for (b, o) in bits.iter_mut().zip(&other.bits) {
            *b &= o;
        }
        ByteSet { bits }
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(&self, other: &ByteSet) -> ByteSet {
        let mut bits = self.bits;
        for (b, o) in bits.iter_mut().zip(&other.bits) {
            *b &= !o;
        }
        ByteSet { bits }
    }

    /// Set complement with respect to the full byte alphabet.
    #[inline]
    pub fn complement(&self) -> ByteSet {
        let mut bits = self.bits;
        for b in bits.iter_mut() {
            *b = !*b;
        }
        ByteSet { bits }
    }

    /// Returns true if `self` and `other` share no byte.
    #[inline]
    pub fn is_disjoint(&self, other: &ByteSet) -> bool {
        self.intersection(other).is_empty()
    }

    /// Returns true if every byte of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: &ByteSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Iterates over the bytes contained in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(move |b| {
            let b = b as u8;
            if self.contains(b) {
                Some(b)
            } else {
                None
            }
        })
    }

    /// Returns the smallest byte in the set, if any.
    pub fn min_byte(&self) -> Option<u8> {
        self.iter().next()
    }

    /// Returns the largest byte in the set, if any.
    pub fn max_byte(&self) -> Option<u8> {
        for b in (0u16..256).rev() {
            if self.contains(b as u8) {
                return Some(b as u8);
            }
        }
        None
    }

    /// Returns the contiguous byte ranges making up the set.
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut cur: Option<(u8, u8)> = None;
        for b in 0u16..256 {
            let b = b as u8;
            if self.contains(b) {
                match cur {
                    Some((s, e)) if e as u16 + 1 == b as u16 => cur = Some((s, b)),
                    Some(r) => {
                        out.push(r);
                        cur = Some((b, b));
                    }
                    None => cur = Some((b, b)),
                }
            }
        }
        if let Some(r) = cur {
            out.push(r);
        }
        out
    }

    /// Applies ASCII case folding: for every letter in the set the other
    /// case is inserted as well.
    pub fn case_fold(&self) -> ByteSet {
        let mut s = *self;
        for b in self.iter() {
            if b.is_ascii_lowercase() {
                s.insert(b.to_ascii_uppercase());
            } else if b.is_ascii_uppercase() {
                s.insert(b.to_ascii_lowercase());
            }
        }
        s
    }

    /// Raw 256-bit representation, low bytes first.
    #[inline]
    pub fn words(&self) -> [u64; 4] {
        self.bits
    }
}

impl Default for ByteSet {
    fn default() -> Self {
        ByteSet::new()
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet{{")?;
        let mut first = true;
        for (s, e) in self.ranges() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if s == e {
                write!(f, "{}", DebugByte(s))?;
            } else {
                write!(f, "{}-{}", DebugByte(s), DebugByte(e))?;
            }
        }
        write!(f, "}}")
    }
}

/// Helper that renders a byte the way it would appear inside a character
/// class: printable ASCII as-is, everything else as a hex escape.
pub struct DebugByte(pub u8);

impl fmt::Display for DebugByte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b.is_ascii_graphic() && b != b'\\' && b != b']' && b != b'-' && b != b'^' {
            write!(f, "{}", b as char)
        } else {
            write!(f, "\\x{:02x}", b)
        }
    }
}

/// Frequently used predefined classes (the Perl-style escapes).
pub mod perl {
    use super::ByteSet;

    /// `\d` — ASCII digits.
    pub fn digit() -> ByteSet {
        ByteSet::range(b'0', b'9')
    }

    /// `\D` — complement of `\d`.
    pub fn not_digit() -> ByteSet {
        digit().complement()
    }

    /// `\w` — ASCII word characters `[0-9A-Za-z_]`.
    pub fn word() -> ByteSet {
        let mut s = ByteSet::range(b'0', b'9');
        s = s.union(&ByteSet::range(b'a', b'z'));
        s = s.union(&ByteSet::range(b'A', b'Z'));
        s.insert(b'_');
        s
    }

    /// `\W` — complement of `\w`.
    pub fn not_word() -> ByteSet {
        word().complement()
    }

    /// `\s` — ASCII whitespace `[ \t\n\r\f\v]`.
    pub fn space() -> ByteSet {
        ByteSet::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0c, 0x0b])
    }

    /// `\S` — complement of `\s`.
    pub fn not_space() -> ByteSet {
        space().complement()
    }

    /// `.` — any byte except `\n` (the default "dot").
    pub fn dot() -> ByteSet {
        let mut s = ByteSet::FULL;
        s.remove(b'\n');
        s
    }

    /// `(?s).` — any byte at all.
    pub fn any() -> ByteSet {
        ByteSet::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(ByteSet::EMPTY.is_empty());
        assert_eq!(ByteSet::EMPTY.len(), 0);
        assert!(ByteSet::FULL.is_full());
        assert_eq!(ByteSet::FULL.len(), 256);
        assert!(!ByteSet::FULL.is_empty());
        assert!(!ByteSet::EMPTY.is_full());
    }

    #[test]
    fn singleton_contains_only_that_byte() {
        let s = ByteSet::singleton(b'a');
        assert!(s.contains(b'a'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_byte(), Some(b'a'));
        assert_eq!(s.max_byte(), Some(b'a'));
    }

    #[test]
    fn range_inclusive() {
        let s = ByteSet::range(b'0', b'9');
        assert_eq!(s.len(), 10);
        assert!(s.contains(b'0'));
        assert!(s.contains(b'9'));
        assert!(!s.contains(b'a'));
        assert_eq!(s.ranges(), vec![(b'0', b'9')]);
    }

    #[test]
    fn reversed_range_is_empty() {
        assert!(ByteSet::range(b'9', b'0').is_empty());
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ByteSet::new();
        for b in 0u16..256 {
            s.insert(b as u8);
        }
        assert!(s.is_full());
        for b in 0u16..256 {
            s.remove(b as u8);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn union_intersection_difference() {
        let a = ByteSet::range(b'a', b'm');
        let b = ByteSet::range(b'h', b'z');
        let u = a.union(&b);
        let i = a.intersection(&b);
        let d = a.difference(&b);
        assert_eq!(u, ByteSet::range(b'a', b'z'));
        assert_eq!(i, ByteSet::range(b'h', b'm'));
        assert_eq!(d, ByteSet::range(b'a', b'g'));
        assert!(d.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
    }

    #[test]
    fn complement_involution() {
        let a = ByteSet::range(b'A', b'Z');
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.union(&a.complement()), ByteSet::FULL);
        assert!(a.intersection(&a.complement()).is_empty());
    }

    #[test]
    fn ranges_of_scattered_set() {
        let s = ByteSet::from_bytes([1u8, 2, 3, 10, 12, 13, 255]);
        assert_eq!(s.ranges(), vec![(1, 3), (10, 10), (12, 13), (255, 255)]);
    }

    #[test]
    fn iter_matches_contains() {
        let s = ByteSet::from_bytes([0u8, 63, 64, 127, 128, 191, 192, 255]);
        let collected: Vec<u8> = s.iter().collect();
        assert_eq!(collected, vec![0, 63, 64, 127, 128, 191, 192, 255]);
    }

    #[test]
    fn case_folding() {
        let s = ByteSet::singleton(b'a').case_fold();
        assert!(s.contains(b'a'));
        assert!(s.contains(b'A'));
        assert_eq!(s.len(), 2);
        let digits = perl::digit().case_fold();
        assert_eq!(digits, perl::digit());
    }

    #[test]
    fn perl_classes() {
        assert_eq!(perl::digit().len(), 10);
        assert_eq!(perl::word().len(), 63);
        assert_eq!(perl::space().len(), 6);
        assert_eq!(perl::dot().len(), 255);
        assert!(!perl::dot().contains(b'\n'));
        assert!(perl::any().is_full());
        assert_eq!(perl::digit().union(&perl::not_digit()), ByteSet::FULL);
        assert_eq!(perl::word().union(&perl::not_word()), ByteSet::FULL);
        assert_eq!(perl::space().union(&perl::not_space()), ByteSet::FULL);
    }

    #[test]
    fn debug_formatting() {
        let s = ByteSet::from_bytes([b'a', b'b', b'c', 0]);
        let dbg = format!("{:?}", s);
        assert!(dbg.contains("a-c"));
        assert!(dbg.contains("\\x00"));
    }
}
