//! The abstract syntax tree of byte-oriented regular expressions.
//!
//! The AST is deliberately small: every construct that the parser accepts is
//! normalized into the handful of variants below. Character classes,
//! escapes, the dot and literal bytes all end up as [`ByteSet`]s so that the
//! downstream NFA compiler only ever deals with sets of bytes.

use crate::class::ByteSet;
use std::fmt;

/// A parsed regular expression.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Ast {
    /// Matches the empty string only (`ε`).
    Empty,
    /// Matches one byte drawn from the set.
    Class(ByteSet),
    /// Matches the concatenation of the sub-expressions, in order.
    Concat(Vec<Ast>),
    /// Matches any one of the alternatives.
    Alternation(Vec<Ast>),
    /// A repetition of the inner expression.
    Repeat {
        /// The repeated sub-expression.
        node: Box<Ast>,
        /// Lower bound (inclusive).
        min: u32,
        /// Upper bound (inclusive); `None` means unbounded.
        max: Option<u32>,
    },
}

impl Ast {
    /// A literal byte.
    pub fn byte(b: u8) -> Ast {
        Ast::Class(ByteSet::singleton(b))
    }

    /// A literal byte string (concatenation of single-byte classes).
    pub fn literal<B: AsRef<[u8]>>(bytes: B) -> Ast {
        let bytes = bytes.as_ref();
        match bytes.len() {
            0 => Ast::Empty,
            1 => Ast::byte(bytes[0]),
            _ => Ast::Concat(bytes.iter().map(|&b| Ast::byte(b)).collect()),
        }
    }

    /// `node*`
    pub fn star(node: Ast) -> Ast {
        Ast::Repeat { node: Box::new(node), min: 0, max: None }
    }

    /// `node+`
    pub fn plus(node: Ast) -> Ast {
        Ast::Repeat { node: Box::new(node), min: 1, max: None }
    }

    /// `node?`
    pub fn opt(node: Ast) -> Ast {
        Ast::Repeat { node: Box::new(node), min: 0, max: Some(1) }
    }

    /// `node{min,max}`
    pub fn repeat(node: Ast, min: u32, max: Option<u32>) -> Ast {
        Ast::Repeat { node: Box::new(node), min, max }
    }

    /// Concatenation that flattens nested concatenations and drops `Empty`.
    pub fn concat(parts: Vec<Ast>) -> Ast {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Empty => {}
                Ast::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Ast::Empty,
            1 => out.pop().unwrap(),
            _ => Ast::Concat(out),
        }
    }

    /// Alternation that flattens nested alternations.
    pub fn alternation(parts: Vec<Ast>) -> Ast {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Alternation(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Ast::Empty,
            1 => out.pop().unwrap(),
            _ => Ast::Alternation(out),
        }
    }

    /// Returns true if the expression can match the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty => true,
            Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::is_nullable),
            Ast::Alternation(parts) => parts.iter().any(Ast::is_nullable),
            Ast::Repeat { node, min, .. } => *min == 0 || node.is_nullable(),
        }
    }

    /// Returns true if the language of the expression is empty (matches
    /// nothing at all). Only an empty class can cause this.
    pub fn is_void(&self) -> bool {
        match self {
            Ast::Empty => false,
            Ast::Class(set) => set.is_empty(),
            Ast::Concat(parts) => parts.iter().any(Ast::is_void),
            Ast::Alternation(parts) => !parts.is_empty() && parts.iter().all(Ast::is_void),
            Ast::Repeat { node, min, .. } => *min > 0 && node.is_void(),
        }
    }

    /// Minimum length (in bytes) of any word matched by this expression.
    /// Returns `None` when the language is empty.
    pub fn min_len(&self) -> Option<u64> {
        match self {
            Ast::Empty => Some(0),
            Ast::Class(set) => {
                if set.is_empty() {
                    None
                } else {
                    Some(1)
                }
            }
            Ast::Concat(parts) => {
                let mut total = 0u64;
                for p in parts {
                    total += p.min_len()?;
                }
                Some(total)
            }
            Ast::Alternation(parts) => parts.iter().filter_map(Ast::min_len).min(),
            Ast::Repeat { node, min, .. } => {
                if *min == 0 {
                    Some(0)
                } else {
                    node.min_len().map(|l| l * *min as u64)
                }
            }
        }
    }

    /// Maximum length (in bytes) of any word matched by this expression.
    /// Returns `None` when unbounded (or when the language is empty).
    pub fn max_len(&self) -> Option<u64> {
        match self {
            Ast::Empty => Some(0),
            Ast::Class(set) => {
                if set.is_empty() {
                    Some(0)
                } else {
                    Some(1)
                }
            }
            Ast::Concat(parts) => {
                let mut total = 0u64;
                for p in parts {
                    total += p.max_len()?;
                }
                Some(total)
            }
            Ast::Alternation(parts) => {
                let mut best = 0u64;
                for p in parts {
                    best = best.max(p.max_len()?);
                }
                Some(best)
            }
            Ast::Repeat { node, max, .. } => match max {
                None => {
                    // x{n,} is unbounded unless x matches only the empty word.
                    if node.max_len() == Some(0) {
                        Some(0)
                    } else {
                        None
                    }
                }
                Some(m) => node.max_len().map(|l| l * *m as u64),
            },
        }
    }

    /// The number of AST nodes (a rough complexity measure; `m` in the
    /// paper's Table II).
    pub fn size(&self) -> usize {
        match self {
            Ast::Empty | Ast::Class(_) => 1,
            Ast::Concat(parts) | Ast::Alternation(parts) => {
                1 + parts.iter().map(Ast::size).sum::<usize>()
            }
            Ast::Repeat { node, .. } => 1 + node.size(),
        }
    }

    /// Applies a transformation bottom-up to every node and rebuilds the
    /// tree.
    pub fn map_bottom_up<F: FnMut(Ast) -> Ast>(self, f: &mut F) -> Ast {
        let rebuilt = match self {
            Ast::Empty | Ast::Class(_) => self,
            Ast::Concat(parts) => {
                Ast::Concat(parts.into_iter().map(|p| p.map_bottom_up(f)).collect())
            }
            Ast::Alternation(parts) => {
                Ast::Alternation(parts.into_iter().map(|p| p.map_bottom_up(f)).collect())
            }
            Ast::Repeat { node, min, max } => {
                Ast::Repeat { node: Box::new(node.map_bottom_up(f)), min, max }
            }
        };
        f(rebuilt)
    }
}

impl fmt::Debug for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Empty => write!(f, "Empty"),
            Ast::Class(set) => write!(f, "Class({:?})", set),
            Ast::Concat(parts) => f.debug_tuple("Concat").field(parts).finish(),
            Ast::Alternation(parts) => f.debug_tuple("Alt").field(parts).finish(),
            Ast::Repeat { node, min, max } => f
                .debug_struct("Repeat")
                .field("node", node)
                .field("min", min)
                .field("max", max)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_builders() {
        assert_eq!(Ast::literal(""), Ast::Empty);
        assert_eq!(Ast::literal("a"), Ast::byte(b'a'));
        match Ast::literal("ab") {
            Ast::Concat(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn concat_flattens_and_drops_empty() {
        let a = Ast::concat(vec![
            Ast::Empty,
            Ast::byte(b'a'),
            Ast::concat(vec![Ast::byte(b'b'), Ast::byte(b'c')]),
        ]);
        match a {
            Ast::Concat(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {:?}", other),
        }
        assert_eq!(Ast::concat(vec![]), Ast::Empty);
        assert_eq!(Ast::concat(vec![Ast::byte(b'x')]), Ast::byte(b'x'));
    }

    #[test]
    fn alternation_flattens() {
        let a = Ast::alternation(vec![
            Ast::byte(b'a'),
            Ast::alternation(vec![Ast::byte(b'b'), Ast::byte(b'c')]),
        ]);
        match a {
            Ast::Alternation(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn nullability() {
        assert!(Ast::Empty.is_nullable());
        assert!(!Ast::byte(b'a').is_nullable());
        assert!(Ast::star(Ast::byte(b'a')).is_nullable());
        assert!(!Ast::plus(Ast::byte(b'a')).is_nullable());
        assert!(Ast::opt(Ast::byte(b'a')).is_nullable());
        assert!(
            Ast::concat(vec![Ast::star(Ast::byte(b'a')), Ast::opt(Ast::byte(b'b'))]).is_nullable()
        );
        assert!(!Ast::concat(vec![Ast::star(Ast::byte(b'a')), Ast::byte(b'b')]).is_nullable());
    }

    #[test]
    fn voidness() {
        assert!(!Ast::Empty.is_void());
        assert!(Ast::Class(ByteSet::EMPTY).is_void());
        assert!(!Ast::star(Ast::Class(ByteSet::EMPTY)).is_void());
        assert!(Ast::plus(Ast::Class(ByteSet::EMPTY)).is_void());
        assert!(Ast::concat(vec![Ast::byte(b'a'), Ast::Class(ByteSet::EMPTY)]).is_void());
        assert!(!Ast::alternation(vec![Ast::byte(b'a'), Ast::Class(ByteSet::EMPTY)]).is_void());
    }

    #[test]
    fn length_analysis() {
        let re = Ast::concat(vec![
            Ast::literal("ab"),
            Ast::repeat(Ast::byte(b'c'), 2, Some(4)),
            Ast::opt(Ast::byte(b'd')),
        ]);
        assert_eq!(re.min_len(), Some(4));
        assert_eq!(re.max_len(), Some(7));

        let unbounded = Ast::star(Ast::byte(b'z'));
        assert_eq!(unbounded.min_len(), Some(0));
        assert_eq!(unbounded.max_len(), None);

        let void = Ast::Class(ByteSet::EMPTY);
        assert_eq!(void.min_len(), None);
    }

    #[test]
    fn size_counts_nodes() {
        let re = Ast::concat(vec![Ast::byte(b'a'), Ast::star(Ast::byte(b'b'))]);
        assert_eq!(re.size(), 4);
    }

    #[test]
    fn map_bottom_up_rewrites() {
        let re = Ast::concat(vec![Ast::byte(b'a'), Ast::byte(b'b')]);
        let upper = re.map_bottom_up(&mut |node| match node {
            Ast::Class(set) if set == ByteSet::singleton(b'a') => {
                Ast::Class(ByteSet::singleton(b'A'))
            }
            other => other,
        });
        match upper {
            Ast::Concat(v) => assert_eq!(v[0], Ast::byte(b'A')),
            other => panic!("unexpected {:?}", other),
        }
    }
}
