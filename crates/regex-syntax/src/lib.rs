//! # sfa-regex-syntax
//!
//! Byte-oriented regular-expression parsing for the SFA (simultaneous
//! finite automata) matcher — a reproduction of
//! *"Simultaneous Finite Automata: An Efficient Data-Parallel Model for
//! Regular Expression Matching"* (Sin'ya, Matsuzaki, Sassa — ICPP 2013).
//!
//! This crate is the front end of the pipeline described in Section VI of
//! the paper:
//!
//! ```text
//! pattern ──parse──▶ Ast ──(sfa-automata)──▶ NFA ──▶ DFA ──(sfa-core)──▶ SFA
//! ```
//!
//! It provides:
//!
//! * [`ast::Ast`] — the normalized abstract syntax tree,
//! * [`parser::Parser`] / [`parse`] — a PCRE-subset parser,
//! * [`class::ByteSet`] — 256-bit byte classes,
//! * [`printer::to_pattern`] — AST → pattern text,
//! * [`literal::required_literals`] — required-literal extraction for the
//!   matcher's multi-literal prefilter,
//! * [`generator`] — random pattern and random matching-string generation
//!   used by the workload synthesizer and the property tests.
//!
//! ## Example
//!
//! ```
//! use sfa_regex_syntax::{parse, ast::Ast};
//!
//! let ast = parse("(ab)*").unwrap();
//! assert!(ast.is_nullable());
//! assert_eq!(ast.min_len(), Some(0));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod class;
pub mod error;
pub mod generator;
pub mod literal;
pub mod parser;
pub mod printer;

pub use ast::Ast;
pub use class::ByteSet;
pub use error::{ErrorKind, ParseError};
pub use literal::{
    required_literal_clauses, required_literal_clauses_with, required_literals,
    required_literals_with, LiteralConfig,
};
pub use parser::{parse, Parser, ParserConfig};
pub use printer::to_pattern;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ast() -> impl Strategy<Value = Ast> {
        let leaf = prop_oneof![
            any::<u8>().prop_map(|b| Ast::byte(b'a' + (b % 26))),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| {
                let lo = b'a' + (a % 26);
                let hi = b'a' + (b % 26);
                Ast::Class(class::ByteSet::range(lo.min(hi), lo.max(hi)))
            }),
            Just(Ast::Empty),
        ];
        leaf.prop_recursive(4, 32, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
                prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::alternation),
                inner.clone().prop_map(Ast::star),
                inner.clone().prop_map(Ast::plus),
                inner.clone().prop_map(Ast::opt),
                (inner, 0u32..4, 0u32..4)
                    .prop_map(|(n, a, b)| { Ast::repeat(n, a.min(b), Some(a.max(b))) }),
            ]
        })
    }

    proptest! {
        /// Printing an arbitrary AST and re-parsing it yields the same AST.
        #[test]
        fn print_parse_roundtrip(ast in arb_ast()) {
            let pattern = printer::to_pattern(&ast);
            let reparsed = parser::parse(&pattern)
                .unwrap_or_else(|e| panic!("`{}`: {}", pattern, e));
            prop_assert_eq!(ast, reparsed);
        }

        /// Sampled matches respect the min/max length analysis.
        #[test]
        fn sampled_matches_respect_length_bounds(ast in arb_ast(), seed in any::<u64>()) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            if let Some(m) = generator::sample_match(&ast, &mut rng) {
                if let Some(lo) = ast.min_len() {
                    prop_assert!(m.len() as u64 >= lo);
                }
                if let Some(hi) = ast.max_len() {
                    prop_assert!(m.len() as u64 <= hi);
                }
            }
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(input in "\\PC{0,40}") {
            let _ = parser::parse(&input);
        }

        /// Byte set operations obey basic set algebra.
        #[test]
        fn byteset_algebra(a in any::<[u8; 8]>(), b in any::<[u8; 8]>()) {
            let sa = class::ByteSet::from_bytes(a.iter().copied());
            let sb = class::ByteSet::from_bytes(b.iter().copied());
            prop_assert_eq!(sa.union(&sb), sb.union(&sa));
            prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
            prop_assert_eq!(sa.difference(&sb).intersection(&sb), class::ByteSet::EMPTY);
            prop_assert_eq!(sa.complement().complement(), sa);
            prop_assert_eq!(sa.union(&sb).len() + sa.intersection(&sb).len(), sa.len() + sb.len());
        }
    }
}
