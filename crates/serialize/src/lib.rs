//! Durable compiled-automaton artifacts for the SFA engine.
//!
//! Eager D-SFA compilation is the expensive step of the pipeline —
//! subset construction, minimization, then the simultaneous closure over
//! `Q → Q` mappings. This crate makes that cost a *build-time* cost: a
//! compiled automaton is serialized once into a versioned, checksummed,
//! alignment-padded binary artifact ([`ArtifactSource`]), and loaded back
//! with a **zero-copy** reader ([`load`]) that borrows the big transition
//! tables straight out of the artifact buffer — typically an
//! [`ArtifactFile`] memory mapping — instead of rebuilding or even
//! copying them. The loaded automaton plugs into
//! [`SfaBackend::Borrowed`](sfa_core::SfaBackend) and matches with the
//! same verdicts as the original.
//!
//! Corrupt input is a first-class case, not a panic: every load
//! re-validates the structural invariants of both automata and fails
//! closed with a typed [`ArtifactError`] naming the bad offset.
//!
//! A byte-bounded [`CompileCache`] rounds out the cold-start story for
//! services that compile patterns on demand.
//!
//! ```
//! use sfa_automata::minimal_dfa_from_pattern;
//! use sfa_core::{DSfa, SfaConfig};
//! use sfa_serialize::{load, ArtifactSource};
//! use std::sync::Arc;
//!
//! let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
//! let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
//! let artifact = ArtifactSource {
//!     pattern: "(ab)*",
//!     mode: 0,
//!     collapsed: false,
//!     nfa_states: 0,
//!     dfa: &dfa,
//!     sfa: &sfa,
//!     decided_verdict: &dfa.verdict_decided_states(),
//!     decided_accept: &dfa.accept_set_decided_states(),
//!     convergence: None,
//! }
//! .encode_to_vec();
//!
//! let loaded = load(Arc::new(artifact)).unwrap();
//! assert!(loaded.sfa.accepts(b"abab"));
//! assert!(!loaded.sfa.accepts(b"aba"));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cache;
mod file;
mod format;
mod load;

pub use cache::{CacheKey, CompileCache};
pub use file::ArtifactFile;
pub use format::{
    checksum, fnv1a, ArtifactSource, FLAG_COLLAPSED, FLAG_CONVERGENCE, FLAG_PREMULTIPLIED,
    FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use load::{load, LoadedArtifact};

use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Why an artifact failed to load. Every failure is typed and closed: a
/// bad artifact yields an error, never a panic and never a wrong-answer
/// automaton.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The artifact was written by a different format version.
    VersionMismatch {
        /// The version stored in the artifact header.
        found: u32,
        /// The version this build reads ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// The artifact is structurally invalid — truncated, checksum
    /// mismatch, or an out-of-range table entry.
    Corrupt {
        /// Byte offset of the section that failed validation.
        offset: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The artifact file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::VersionMismatch { found, supported } => {
                write!(f, "artifact format version {found} (this build reads {supported})")
            }
            ArtifactError::Corrupt { offset, reason } => {
                write!(f, "corrupt artifact at byte {offset}: {reason}")
            }
            ArtifactError::Io(err) => write!(f, "artifact io error: {err}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(err: std::io::Error) -> ArtifactError {
        ArtifactError::Io(err)
    }
}

/// Memory-maps `path` and loads the artifact zero-copy: the returned
/// automaton's tables point into the mapping, which stays alive for as
/// long as any clone of the loaded SFA does.
pub fn load_file(path: impl AsRef<Path>) -> Result<LoadedArtifact, ArtifactError> {
    let file = ArtifactFile::open(path)?;
    load(Arc::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_analysis::ConvergenceReport;
    use sfa_automata::{minimal_dfa_from_pattern, Dfa};
    use sfa_core::{DSfa, SfaConfig, StateIdRepr};

    fn encode(pattern: &str, config: &SfaConfig, convergence: bool) -> (Vec<u8>, Dfa, DSfa) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let sfa = DSfa::from_dfa(&dfa, config).unwrap();
        let summary = convergence.then(|| ConvergenceReport::analyze(&dfa).summary());
        let bytes = ArtifactSource {
            pattern,
            mode: 2,
            collapsed: true,
            nfa_states: 17,
            dfa: &dfa,
            sfa: &sfa,
            decided_verdict: &dfa.verdict_decided_states(),
            decided_accept: &dfa.accept_set_decided_states(),
            convergence: summary.as_ref(),
        }
        .encode_to_vec();
        (bytes, dfa, sfa)
    }

    #[test]
    fn round_trip_preserves_metadata_and_verdicts() {
        for premultiply in [false, true] {
            let config = SfaConfig { premultiply, ..SfaConfig::default() };
            let (bytes, dfa, sfa) = encode("(?s).*ab(c|d)", &config, true);
            let loaded = load(Arc::new(bytes)).unwrap();

            assert_eq!(loaded.pattern, "(?s).*ab(c|d)");
            assert_eq!(loaded.mode, 2);
            assert!(loaded.collapsed);
            assert_eq!(loaded.nfa_states, 17);
            assert_eq!(loaded.dfa.num_states(), dfa.num_states());
            assert_eq!(loaded.dfa.start(), dfa.start());
            assert_eq!(loaded.sfa.num_states(), sfa.num_states());
            assert_eq!(loaded.sfa.premultiplied(), premultiply);
            assert_eq!(loaded.decided_verdict, dfa.verdict_decided_states());
            assert_eq!(loaded.decided_accept, dfa.accept_set_decided_states());
            let summary = loaded.convergence.expect("summary was encoded");
            assert_eq!(summary, ConvergenceReport::analyze(&dfa).summary());

            for input in ["", "ab", "abc", "abd", "xxabcxxabd", "abe"] {
                assert_eq!(
                    loaded.sfa.accepts(input.as_bytes()),
                    sfa.accepts(input.as_bytes()),
                    "verdict diverged on {input:?}"
                );
                assert_eq!(loaded.dfa.accepts(input.as_bytes()), dfa.accepts(input.as_bytes()));
            }
        }
    }

    #[test]
    fn file_round_trip_via_mmap() {
        let (bytes, _, sfa) = encode("a(b|c)+", &SfaConfig::default(), false);
        let dir = std::env::temp_dir().join(format!("sfa-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.sfa");
        std::fs::write(&path, &bytes).unwrap();

        let file = ArtifactFile::open(&path).unwrap();
        assert_eq!(file.as_ref(), &bytes[..]);
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.sfa.artifact_bytes(), bytes.len());
        assert_eq!(
            loaded.sfa.table_bytes() + loaded.sfa.byte_table_bytes(),
            sfa.table_bytes() + sfa.byte_table_bytes()
        );
        assert!(loaded.sfa.accepts(b"abcbc"));
        assert!(!loaded.sfa.accepts(b"a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifacts_fail_closed_with_typed_errors() {
        let (bytes, _, _) = encode("(ab)*", &SfaConfig::default(), true);

        // Pristine loads.
        assert!(load(Arc::new(bytes.clone())).is_ok());

        // Truncation at every prefix length fails, never panics.
        for len in 0..bytes.len() {
            let err = load(Arc::new(bytes[..len].to_vec())).unwrap_err();
            assert!(
                matches!(err, ArtifactError::Corrupt { .. }),
                "truncation to {len} bytes gave {err:?}"
            );
        }

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        match load(Arc::new(bad)).unwrap_err() {
            ArtifactError::Corrupt { offset: 0, reason } => assert!(reason.contains("magic")),
            other => panic!("expected bad-magic Corrupt, got {other:?}"),
        }

        // Future format version.
        let mut bad = bytes.clone();
        bad[8] = 9;
        match load(Arc::new(bad)).unwrap_err() {
            ArtifactError::VersionMismatch { found: 9, supported } => {
                assert_eq!(supported, FORMAT_VERSION)
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }

        // A bit flip anywhere in the payload trips the checksum.
        for at in [HEADER_LEN, HEADER_LEN + 40, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            match load(Arc::new(bad)).unwrap_err() {
                ArtifactError::Corrupt { offset: 24, reason } => {
                    assert!(reason.contains("checksum"), "{reason}")
                }
                other => panic!("flip at {at}: expected checksum Corrupt, got {other:?}"),
            }
        }

        // An out-of-range state id with a *recomputed* checksum (a hostile
        // or toolchain-bug artifact) is still rejected by validation.
        let mut bad = bytes.clone();
        let payload_start = HEADER_LEN;
        // Find the SFA table by corrupting a known section instead:
        // clobber the DFA start state in the metadata block.
        let pattern_len = u32::from_le_bytes(bad[40..44].try_into().unwrap()) as usize;
        let meta_at = (44 + pattern_len).next_multiple_of(8);
        bad[meta_at + 4..meta_at + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let sum = checksum(&bad[payload_start..]);
        bad[24..32].copy_from_slice(&sum.to_le_bytes());
        match load(Arc::new(bad)).unwrap_err() {
            ArtifactError::Corrupt { reason, .. } => {
                assert!(reason.contains("out of range"), "{reason}")
            }
            other => panic!("expected out-of-range Corrupt, got {other:?}"),
        }

        // Empty buffer.
        assert!(matches!(
            load(Arc::new(Vec::new())).unwrap_err(),
            ArtifactError::Corrupt { offset: 0, .. }
        ));
    }

    #[test]
    fn forced_reprs_round_trip() {
        for repr in [StateIdRepr::U8, StateIdRepr::U16, StateIdRepr::U32] {
            for premultiply in [false, true] {
                let config = SfaConfig { premultiply, repr: Some(repr), ..SfaConfig::default() };
                let (bytes, _, sfa) = encode("a{2,4}b?", &config, false);
                let loaded = load(Arc::new(bytes)).unwrap();
                assert_eq!(loaded.sfa.repr(), repr);
                for input in ["", "aa", "aaab", "aaaaa", "ab"] {
                    assert_eq!(loaded.sfa.accepts(input.as_bytes()), sfa.accepts(input.as_bytes()));
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfa_automata::{determinize, minimize, Dfa, DfaConfig, Nfa};
    use sfa_core::{DSfa, SfaConfig, StateIdRepr};
    use sfa_regex_syntax::generator::{AstGenerator, GeneratorConfig};
    use sfa_regex_syntax::ByteSet;

    fn random_small_dfa(seed: u64) -> Option<Dfa> {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = AstGenerator::with_config(GeneratorConfig {
            max_depth: 3,
            max_width: 3,
            max_repeat: 3,
            alphabet: ByteSet::range(b'a', b'd'),
            repeat_bias: 0.35,
        });
        let ast = generator.generate(&mut rng);
        let nfa = Nfa::from_ast(&ast).ok()?;
        let dfa = determinize(&nfa, &DfaConfig { max_states: 300, ..Default::default() }).ok()?;
        Some(minimize(&dfa))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Encode → load round trip is verdict-exact: for random minimized
        /// DFAs across every state-id width and both byte-table modes, the
        /// borrowed automaton agrees with the in-memory original on final
        /// states, verdicts, and chunk composition.
        #[test]
        fn round_trip_is_verdict_exact(
            seed in any::<u64>(),
            inputs in prop::collection::vec("[a-d]{0,24}", 1..5),
            premultiply in any::<bool>(),
            width in 0usize..3,
        ) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let repr = [StateIdRepr::U8, StateIdRepr::U16, StateIdRepr::U32][width];
            let config = SfaConfig { max_states: 200_000, premultiply, repr: Some(repr) };
            let Ok(sfa) = DSfa::from_dfa(&dfa, &config) else { return Ok(()) };
            let bytes = ArtifactSource {
                pattern: "<proptest>",
                mode: 0,
                collapsed: false,
                nfa_states: 0,
                dfa: &dfa,
                sfa: &sfa,
                decided_verdict: &dfa.verdict_decided_states(),
                decided_accept: &dfa.accept_set_decided_states(),
                convergence: None,
            }
            .encode_to_vec();
            let loaded = load(std::sync::Arc::new(bytes)).expect("pristine artifact loads");
            prop_assert_eq!(loaded.sfa.num_states(), sfa.num_states());

            for input in &inputs {
                let bytes = input.as_bytes();
                let (own, brw) = (sfa.run(bytes), loaded.sfa.run(bytes));
                prop_assert_eq!(own, brw, "final state diverged on {:?}", input);
                prop_assert_eq!(sfa.accepts(bytes), loaded.sfa.accepts(bytes));
                prop_assert_eq!(
                    sfa.accepting_patterns(own).patterns(),
                    loaded.sfa.accepting_patterns(brw).patterns()
                );
                // Theorem 3 on the borrowed backend: split, scan halves,
                // compose — same verdict as the sequential run.
                let cut = bytes.len() / 2;
                let f1 = loaded.sfa.run(&bytes[..cut]);
                let f2 = loaded.sfa.run(&bytes[cut..]);
                prop_assert_eq!(loaded.sfa.compose_states(f1, f2), own);
            }
        }

        /// Random single-byte corruption either fails closed or (when the
        /// flip cancels in the checksum — essentially never) still loads a
        /// valid automaton. It must not panic.
        #[test]
        fn corruption_never_panics(seed in any::<u64>(), at in any::<prop::sample::Index>(), flip in 1u8..255) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let Ok(sfa) = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 200_000, ..SfaConfig::default() }) else { return Ok(()) };
            let mut bytes = ArtifactSource {
                pattern: "<proptest>",
                mode: 0,
                collapsed: false,
                nfa_states: 0,
                dfa: &dfa,
                sfa: &sfa,
                decided_verdict: &dfa.verdict_decided_states(),
                decided_accept: &dfa.accept_set_decided_states(),
                convergence: None,
            }
            .encode_to_vec();
            let at = at.index(bytes.len());
            bytes[at] ^= flip;
            let _ = load(std::sync::Arc::new(bytes));
        }
    }
}
