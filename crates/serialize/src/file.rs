//! Memory-mapped artifact files.
//!
//! [`ArtifactFile::open`] maps an artifact read-only with a hand-rolled
//! `mmap(2)` binding (the container ships no mmap crate) and falls back
//! to an ordinary buffered read when mapping is unavailable — non-unix
//! targets, zero-length files, or an `mmap` failure. Either way the type
//! is just `AsRef<[u8]> + Send + Sync`, so it slots straight into
//! [`ArtifactBytes`](sfa_core::ArtifactBytes) for zero-copy loading.

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only artifact buffer: an OS memory mapping when available,
/// otherwise the file's bytes read into memory.
pub struct ArtifactFile {
    mapping: Mapping,
}

enum Mapping {
    #[cfg(unix)]
    Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is private and read-only (PROT_READ | MAP_PRIVATE);
// no &mut access ever exists, so sharing the pointer across threads is
// the same as sharing a &[u8].
#[allow(unsafe_code)]
unsafe impl Send for ArtifactFile {}
#[allow(unsafe_code)]
unsafe impl Sync for ArtifactFile {}

#[cfg(unix)]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    #[allow(unsafe_code)]
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// `MAP_FAILED` is `(void *)-1`, not null.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

impl ArtifactFile {
    /// Opens `path` read-only, preferring a private memory mapping so
    /// loading touches only the pages the loader actually reads.
    pub fn open(path: impl AsRef<Path>) -> io::Result<ArtifactFile> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(ArtifactFile { mapping: Mapping::Owned(Vec::new()) });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "artifact does not fit in the address space",
            ));
        }
        #[cfg(unix)]
        {
            if let Some(mapping) = Self::try_mmap(&file, len as usize) {
                return Ok(ArtifactFile { mapping });
            }
        }
        drop(file);
        Ok(ArtifactFile { mapping: Mapping::Owned(std::fs::read(path)?) })
    }

    /// Wraps an in-memory buffer (a cache hit, a test fixture) in the
    /// same type an opened file yields.
    pub fn from_bytes(bytes: Vec<u8>) -> ArtifactFile {
        ArtifactFile { mapping: Mapping::Owned(bytes) }
    }

    /// Whether the buffer is an OS memory mapping (as opposed to bytes
    /// read into the heap).
    pub fn is_mmap(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.mapping, Mapping::Mmap { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[cfg(unix)]
    #[allow(unsafe_code)]
    fn try_mmap(file: &File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is valid for the duration of the call; a fresh
        // private read-only mapping of `len` bytes either succeeds and is
        // ours to unmap in Drop, or returns MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                core::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return None;
        }
        Some(Mapping::Mmap { ptr, len })
    }
}

impl AsRef<[u8]> for ArtifactFile {
    #[allow(unsafe_code)]
    fn as_ref(&self) -> &[u8] {
        match &self.mapping {
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by
            // self; it stays valid until Drop unmaps it, and no mutable
            // alias can exist.
            #[cfg(unix)]
            Mapping::Mmap { ptr, len } => unsafe {
                core::slice::from_raw_parts(ptr.cast::<u8>(), *len)
            },
            Mapping::Owned(bytes) => bytes,
        }
    }
}

impl Drop for ArtifactFile {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mapping::Mmap { ptr, len } = self.mapping {
            // SAFETY: exactly the region mmap returned; unmapped once.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

impl std::fmt::Debug for ArtifactFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactFile")
            .field("len", &self.len())
            .field("mmap", &self.is_mmap())
            .finish()
    }
}
