//! The artifact binary format: layout constants and the encoder.
//!
//! An artifact is a 40-byte header followed by an 8-byte-aligned payload:
//!
//! ```text
//! header   magic "SFARTFCT" · format version · flags · id width · mode
//!          striped FNV-1a checksum over the payload · total file length
//! payload  pattern string
//!          metadata (nfa/dfa/sfa state counts, start, patterns, classes)
//!          byte-class map (256 × u16)
//!          DFA: transition table (u32), accept index, accept sets
//!          decided-state bitmaps (verdict + accept-set, one bit per state)
//!          SFA class rows        (packed width — borrowed on load)
//!          SFA byte table        (packed width — borrowed, if premultiplied)
//!          SFA state mappings    (u32 — borrowed on load)
//!          convergence summary   (optional)
//! ```
//!
//! Every section starts 8-byte aligned so the zero-copy loader can hand
//! table ranges straight to [`sfa_core::LoadedSfa`]. All integers are
//! little-endian. The checksum covers everything after the header, so a
//! bit flip anywhere in the tables is caught before parsing begins.

use sfa_analysis::ConvergenceSummary;
use sfa_automata::Dfa;
use sfa_core::{DSfa, SfaStateId, StateIdRepr};
use std::io::{self, Write};

/// The 8-byte magic opening every artifact.
pub const MAGIC: [u8; 8] = *b"SFARTFCT";

/// The format version this crate writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Header length in bytes; the payload (and the checksum's coverage)
/// starts here.
pub const HEADER_LEN: usize = 40;

/// Flag bit: the artifact carries a premultiplied dense byte table.
pub const FLAG_PREMULTIPLIED: u32 = 1 << 0;
/// Flag bit: the artifact carries a convergence summary.
pub const FLAG_CONVERGENCE: u32 = 1 << 1;
/// Flag bit: the source pattern set had duplicate patterns collapsed
/// (matcher-level metadata, stored verbatim).
pub const FLAG_COLLAPSED: u32 = 1 << 2;

/// FNV-1a over a byte string, the repo's corpus-fingerprint hash — cheap,
/// dependency-free, and plenty for integrity (not authenticity) checks.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Number of independent FNV lanes in the payload [`checksum`].
const CHECKSUM_LANES: usize = 8;

/// The payload checksum: 8-lane striped FNV-1a. Byte `i` feeds lane
/// `i % 8`; the final digest is plain [`fnv1a`] over the 8 lane digests
/// plus the payload length.
///
/// Plain FNV-1a is one serial multiply chain — ~3 cycles *latency* per
/// byte — which made checksum verification the dominant cost of loading a
/// multi-megabyte artifact (the whole point of the zero-copy loader is
/// that nothing else touches the big tables). Eight independent chains
/// run at multiply *throughput* instead, an ~8x faster sweep with the
/// same per-lane mixing; the length fold keeps zero-padding from
/// colliding across lengths.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut lanes = [0u64; CHECKSUM_LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = 0xcbf2_9ce4_8422_2325u64.wrapping_add(i as u64);
    }
    let mut chunks = bytes.chunks_exact(CHECKSUM_LANES);
    for chunk in &mut chunks {
        for (lane, &b) in lanes.iter_mut().zip(chunk) {
            *lane ^= u64::from(b);
            *lane = lane.wrapping_mul(0x100_0000_01b3);
        }
    }
    for (lane, &b) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane ^= u64::from(b);
        *lane = lane.wrapping_mul(0x100_0000_01b3);
    }
    let mut tail = [0u8; CHECKSUM_LANES * 8 + 8];
    for (i, lane) in lanes.iter().enumerate() {
        tail[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
    }
    tail[CHECKSUM_LANES * 8..].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
    fnv1a(&tail)
}

/// Everything the encoder serializes: the compiled automata plus the
/// matcher-level metadata that must survive the round trip. Borrowed so
/// encoding never clones a table.
pub struct ArtifactSource<'a> {
    /// The original pattern text (a `RegexSet`'s label for multi-pattern
    /// automata).
    pub pattern: &'a str,
    /// Opaque matcher-level mode tag (the matcher maps its `MatchMode`
    /// through this byte; this crate stores it verbatim).
    pub mode: u8,
    /// Whether duplicate patterns were collapsed at compile time.
    pub collapsed: bool,
    /// NFA state count of the original compilation (size reporting).
    pub nfa_states: u32,
    /// The source DFA.
    pub dfa: &'a Dfa,
    /// The eager D-SFA built from `dfa`.
    pub sfa: &'a DSfa,
    /// Per-DFA-state "verdict decided" bitmap (length `dfa.num_states()`).
    pub decided_verdict: &'a [bool],
    /// Per-DFA-state "accept-set decided" bitmap (same length).
    pub decided_accept: &'a [bool],
    /// The convergence analysis summary, when one ran.
    pub convergence: Option<&'a ConvergenceSummary>,
}

/// Appends `v` little-endian.
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Pads with zero bytes to the next 8-byte boundary.
fn align8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Appends a `bool` slice as an LSB-first bitmap.
fn put_bitmap(out: &mut Vec<u8>, bits: &[bool]) {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bytes);
}

impl ArtifactSource<'_> {
    /// Serializes the artifact into a fresh buffer.
    ///
    /// The payload is assembled first so the header can carry its
    /// checksum and total length; artifacts are table-sized (not
    /// stream-sized), so buffering the payload is the natural shape.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let total = (HEADER_LEN + payload.len()) as u64;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        let mut flags = 0u32;
        if self.sfa.premultiplied() {
            flags |= FLAG_PREMULTIPLIED;
        }
        if self.convergence.is_some() {
            flags |= FLAG_CONVERGENCE;
        }
        if self.collapsed {
            flags |= FLAG_COLLAPSED;
        }
        put_u32(&mut out, flags);
        out.push(self.sfa.repr().bytes() as u8);
        out.push(self.mode);
        out.extend_from_slice(&[0u8; 6]);
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&total.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out.extend_from_slice(&payload);
        out
    }

    /// Serializes the artifact to a writer (one buffered payload, two
    /// writes).
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&self.encode_to_vec())
    }

    fn encode_payload(&self) -> Vec<u8> {
        let dfa = self.dfa;
        let sfa = self.sfa;
        let d = dfa.num_states();
        let stride = dfa.num_classes();
        let n = sfa.num_states();
        let w = sfa.repr().bytes();
        debug_assert_eq!(self.decided_verdict.len(), d);
        debug_assert_eq!(self.decided_accept.len(), d);

        let mut out = Vec::new();

        // Pattern string.
        put_u32(&mut out, self.pattern.len() as u32);
        out.extend_from_slice(self.pattern.as_bytes());
        align8(&mut out);

        // Metadata block (six u32s — 8-aligned by construction).
        put_u32(&mut out, self.nfa_states);
        put_u32(&mut out, dfa.start());
        put_u32(&mut out, dfa.pattern_count() as u32);
        put_u32(&mut out, d as u32);
        put_u32(&mut out, stride as u32);
        put_u32(&mut out, n as u32);
        align8(&mut out);

        // Byte-class map: 256 × u16.
        for b in 0..=255u8 {
            out.extend_from_slice(&dfa.classes().class_of(b).to_le_bytes());
        }

        // DFA transition table (u32 — small next to the SFA tables).
        for &t in dfa.table() {
            put_u32(&mut out, t);
        }
        align8(&mut out);

        // DFA accept index + interned accept sets.
        for &i in dfa.accept_indices() {
            put_u32(&mut out, i);
        }
        align8(&mut out);
        let sets = dfa.distinct_accept_sets();
        put_u32(&mut out, sets.len() as u32);
        for set in sets {
            put_u32(&mut out, set.len() as u32);
            for id in set.iter() {
                put_u32(&mut out, id);
            }
        }
        align8(&mut out);

        // Decided-state bitmaps.
        put_bitmap(&mut out, self.decided_verdict);
        put_bitmap(&mut out, self.decided_accept);
        align8(&mut out);

        // SFA class rows at the packed width (borrowed on load).
        let put_id = |out: &mut Vec<u8>, id: SfaStateId| {
            out.extend_from_slice(&id.to_le_bytes()[..w]);
        };
        for s in 0..n as SfaStateId {
            for c in 0..stride {
                put_id(&mut out, sfa.next_by_class(s, c as u16));
            }
        }
        align8(&mut out);

        // Premultiplied byte table (borrowed on load).
        if sfa.premultiplied() {
            for s in 0..n as SfaStateId {
                for b in 0..=255u8 {
                    put_id(&mut out, sfa.next_state(s, b));
                }
            }
            align8(&mut out);
        }

        // State mappings: |S| × |D| u32 DFA ids (borrowed on load).
        for s in 0..n as SfaStateId {
            let mapping = sfa.mapping(s);
            for q in 0..d as u32 {
                put_u32(&mut out, mapping.apply(q));
            }
        }
        align8(&mut out);

        // Convergence summary.
        if let Some(summary) = self.convergence {
            let bytes = summary.to_bytes();
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(&bytes);
            align8(&mut out);
        }

        out
    }
}

/// Widths the format stores state ids at, mapped from the header byte.
pub(crate) fn repr_from_width(w: u8) -> Option<StateIdRepr> {
    Some(match w {
        1 => StateIdRepr::U8,
        2 => StateIdRepr::U16,
        4 => StateIdRepr::U32,
        _ => return None,
    })
}
