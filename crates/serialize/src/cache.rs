//! An LRU cache of encoded artifacts keyed by compile configuration.
//!
//! A multi-tenant service compiling patterns on demand pays the full
//! determinize + SFA-construction cost on every miss; this cache lets
//! identical `(pattern, config)` requests share one encoded artifact.
//! Values are the *encoded bytes* (`Arc<Vec<u8>>`), not live automata:
//! they are immutable, their footprint is exact (byte-size accounting
//! falls out for free), and a hit re-enters the same zero-copy
//! [`load`](crate::load) path a warm file would.

use sfa_core::{SfaConfig, StateIdRepr};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The compile-relevant identity of a cached artifact. Two requests with
/// equal keys would compile byte-identical automata.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The pattern text (a set label for multi-pattern automata).
    pub pattern: String,
    /// Eager-construction state budget in effect.
    pub max_states: usize,
    /// Whether the byte table was premultiplied.
    pub premultiply: bool,
    /// Forced state-id width, if any.
    pub repr: Option<StateIdRepr>,
}

impl CacheKey {
    /// Builds the key for compiling `pattern` under `config`.
    pub fn new(pattern: impl Into<String>, config: &SfaConfig) -> CacheKey {
        CacheKey {
            pattern: pattern.into(),
            max_states: config.max_states,
            premultiply: config.premultiply,
            repr: config.repr,
        }
    }
}

struct CacheInner {
    entries: HashMap<CacheKey, Entry>,
    /// Monotone access counter; smallest tick = least recently used.
    tick: u64,
    bytes: usize,
}

struct Entry {
    value: Arc<Vec<u8>>,
    tick: u64,
}

/// A byte-bounded LRU cache of encoded artifacts, safe to share across
/// service threads.
pub struct CompileCache {
    max_bytes: usize,
    inner: Mutex<CacheInner>,
}

impl CompileCache {
    /// Creates a cache that holds at most `max_bytes` of encoded
    /// artifacts. A single artifact larger than the bound is still
    /// admitted (and evicts everything else) so a hot oversized pattern
    /// is not recompiled on every request.
    pub fn new(max_bytes: usize) -> CompileCache {
        CompileCache {
            max_bytes,
            inner: Mutex::new(CacheInner { entries: HashMap::new(), tick: 0, bytes: 0 }),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(key)?;
        entry.tick = tick;
        Some(Arc::clone(&entry.value))
    }

    /// Inserts an encoded artifact, evicting least-recently-used entries
    /// until the byte bound holds again.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<u8>>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(key, Entry { value: Arc::clone(&value), tick }) {
            inner.bytes -= old.value.len();
        }
        inner.bytes += value.len();
        // O(entries) eviction scan; caches here hold tens of artifacts,
        // not thousands, so a heap isn't worth the bookkeeping.
        while inner.bytes > self.max_bytes && inner.entries.len() > 1 {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache has an LRU entry");
            let evicted = inner.entries.remove(&lru).expect("LRU key was just observed");
            inner.bytes -= evicted.value.len();
        }
    }

    /// Returns the cached artifact for `key`, or encodes one with
    /// `compile` and caches it. `compile` runs outside the cache lock, so
    /// concurrent misses on *different* keys compile in parallel
    /// (concurrent misses on the same key may race; last insert wins,
    /// both callers get a correct artifact).
    pub fn get_or_insert_with<E>(
        &self,
        key: &CacheKey,
        compile: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<Arc<Vec<u8>>, E> {
        if let Some(hit) = self.get(key) {
            return Ok(hit);
        }
        let value = Arc::new(compile()?);
        self.insert(key.clone(), Arc::clone(&value));
        Ok(value)
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes currently held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap().bytes
    }

    /// The configured byte bound.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("entries", &self.len())
            .field("bytes", &self.bytes())
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pattern: &str) -> CacheKey {
        CacheKey {
            pattern: pattern.to_string(),
            max_states: 1 << 14,
            premultiply: true,
            repr: None,
        }
    }

    #[test]
    fn lru_eviction_respects_recency_and_byte_bound() {
        let cache = CompileCache::new(100);
        cache.insert(key("a"), Arc::new(vec![0; 40]));
        cache.insert(key("b"), Arc::new(vec![0; 40]));
        // Touch "a" so "b" is the LRU, then overflow the bound.
        assert!(cache.get(&key("a")).is_some());
        cache.insert(key("c"), Arc::new(vec![0; 40]));
        assert!(cache.get(&key("b")).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("c")).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 80);
    }

    #[test]
    fn oversized_entries_are_admitted_alone() {
        let cache = CompileCache::new(10);
        cache.insert(key("small"), Arc::new(vec![0; 5]));
        cache.insert(key("huge"), Arc::new(vec![0; 500]));
        assert!(cache.get(&key("huge")).is_some(), "oversized artifact stays cached");
        assert_eq!(cache.len(), 1, "everything else is evicted for it");
    }

    #[test]
    fn get_or_insert_compiles_once_per_key() {
        let cache = CompileCache::new(1 << 20);
        let mut calls = 0;
        for _ in 0..3 {
            let got: Result<_, ()> = cache.get_or_insert_with(&key("x"), || {
                calls += 1;
                Ok(vec![1, 2, 3])
            });
            assert_eq!(*got.unwrap(), vec![1, 2, 3]);
        }
        assert_eq!(calls, 1);
        // Distinct configs are distinct artifacts.
        let other = CacheKey { premultiply: false, ..key("x") };
        let _: Result<_, ()> = cache.get_or_insert_with(&other, || {
            calls += 1;
            Ok(vec![9])
        });
        assert_eq!(calls, 2);
    }
}
