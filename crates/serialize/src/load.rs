//! The zero-copy artifact loader.
//!
//! Parsing never trusts the artifact: the header is bounds- and
//! version-checked, the payload checksum is verified before any field is
//! interpreted, every section read is range-checked against the buffer,
//! and the reconstructed automata re-validate their structural invariants
//! ([`Dfa::validate`] for the DFA, [`LoadedSfa::new`]'s table bounds
//! checks for the SFA) before a [`LoadedArtifact`] is handed out. A
//! truncated or bit-flipped file fails closed with
//! [`ArtifactError::Corrupt`] naming the offending byte offset.
//!
//! The big tables — SFA class rows, the premultiplied byte table, the
//! state mappings — are **not copied**: the loader records their byte
//! ranges and hands the shared buffer to [`LoadedSfa`], so loading from
//! an mmap touches only the small metadata pages plus one checksum sweep.

use crate::format::{
    checksum, repr_from_width, FLAG_COLLAPSED, FLAG_CONVERGENCE, FLAG_PREMULTIPLIED,
    FORMAT_VERSION, HEADER_LEN, MAGIC,
};
use crate::ArtifactError;
use sfa_analysis::ConvergenceSummary;
use sfa_automata::{ByteClasses, Dfa, PatternSet};
use sfa_core::{ArtifactBytes, LoadedSfa, LoadedSfaParts};
use std::ops::Range;

/// A fully parsed and validated artifact: the reconstructed source DFA
/// (owned — its tables are small), the zero-copy SFA backend, and the
/// matcher-level metadata the encoder stored.
pub struct LoadedArtifact {
    /// The original pattern text.
    pub pattern: String,
    /// The opaque matcher-level mode tag (see
    /// [`ArtifactSource::mode`](crate::ArtifactSource::mode)).
    pub mode: u8,
    /// Whether duplicate patterns were collapsed at compile time.
    pub collapsed: bool,
    /// NFA state count of the original compilation.
    pub nfa_states: u32,
    /// The reconstructed source DFA (validated).
    pub dfa: Dfa,
    /// The SFA with its tables borrowed from the artifact buffer.
    pub sfa: LoadedSfa,
    /// Per-DFA-state "verdict decided" bitmap.
    pub decided_verdict: Vec<bool>,
    /// Per-DFA-state "accept-set decided" bitmap.
    pub decided_accept: Vec<bool>,
    /// The convergence summary, when the artifact carried one.
    pub convergence: Option<ConvergenceSummary>,
}

impl std::fmt::Debug for LoadedArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedArtifact")
            .field("pattern", &self.pattern)
            .field("mode", &self.mode)
            .field("collapsed", &self.collapsed)
            .field("nfa_states", &self.nfa_states)
            .field("dfa_states", &self.dfa.num_states())
            .field("sfa_states", &self.sfa.num_states())
            .field("convergence", &self.convergence.is_some())
            .finish()
    }
}

/// Cursor over the artifact buffer; every read is bounds-checked and
/// failures carry the current byte offset.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt(&self, reason: impl Into<String>) -> ArtifactError {
        ArtifactError::Corrupt { offset: self.pos, reason: reason.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.buf.len() - self.pos < n {
            return Err(
                self.corrupt(format!("needs {n} bytes, only {} remain", self.buf.len() - self.pos))
            );
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Like [`take`](Reader::take) but returns the byte *range* instead
    /// of the bytes — the zero-copy handle for a borrowed table.
    fn take_range(&mut self, n: usize) -> Result<Range<usize>, ArtifactError> {
        let start = self.pos;
        self.take(n)?;
        Ok(start..self.pos)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn align8(&mut self) -> Result<(), ArtifactError> {
        let pad = (8 - self.pos % 8) % 8;
        self.take(pad).map(|_| ())
    }

    fn bitmap(&mut self, bits: usize) -> Result<Vec<bool>, ArtifactError> {
        let bytes = self.take(bits.div_ceil(8))?;
        Ok((0..bits).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }
}

/// Parses, checksums and validates an artifact held in any shared byte
/// buffer (an [`ArtifactFile`](crate::ArtifactFile) mmap, a `Vec<u8>`
/// from a cache, …). The buffer is retained by the returned
/// [`LoadedArtifact`]'s SFA, which borrows its tables from it.
pub fn load(data: ArtifactBytes) -> Result<LoadedArtifact, ArtifactError> {
    let buf: &[u8] = (*data).as_ref();
    let mut r = Reader { buf, pos: 0 };

    // Header.
    if buf.len() < HEADER_LEN {
        return Err(r.corrupt(format!("{}-byte file is shorter than the header", buf.len())));
    }
    if r.take(8)? != MAGIC {
        return Err(ArtifactError::Corrupt {
            offset: 0,
            reason: "bad magic: not an SFA artifact".to_string(),
        });
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::VersionMismatch { found: version, supported: FORMAT_VERSION });
    }
    let flags = r.u32()?;
    let width = r.u8()?;
    let repr = repr_from_width(width)
        .ok_or_else(|| r.corrupt(format!("invalid state-id width {width}")))?;
    let mode = r.u8()?;
    r.take(6)?; // header padding
    let expected_checksum = r.u64()?;
    let total_len = r.u64()?;
    if total_len != buf.len() as u64 {
        return Err(r.corrupt(format!(
            "header says {total_len} bytes, file has {} (truncated or padded)",
            buf.len()
        )));
    }
    debug_assert_eq!(r.pos, HEADER_LEN);
    let actual = checksum(&buf[HEADER_LEN..]);
    if actual != expected_checksum {
        return Err(ArtifactError::Corrupt {
            offset: 24,
            reason: format!("payload checksum {actual:#018x} != header {expected_checksum:#018x}"),
        });
    }

    // Pattern + metadata.
    let pattern_len = r.u32()? as usize;
    let pattern = String::from_utf8(r.take(pattern_len)?.to_vec())
        .map_err(|_| r.corrupt("pattern is not valid UTF-8"))?;
    r.align8()?;
    let nfa_states = r.u32()?;
    let dfa_start = r.u32()?;
    let pattern_count = r.u32()? as usize;
    let num_dfa = r.u32()? as usize;
    let stride = r.u32()? as usize;
    let num_sfa = r.u32()? as usize;
    r.align8()?;
    if num_dfa == 0 || num_sfa == 0 {
        return Err(r.corrupt("state counts must be positive"));
    }
    // Cap the section sizes we are about to multiply out so a corrupt
    // count fails here instead of overflowing or allocating wildly; the
    // per-section `take` calls then bound everything by the real file.
    if num_dfa > buf.len() || num_sfa > buf.len() || stride > 256 {
        return Err(r.corrupt("state or class count exceeds the file size"));
    }

    // Byte classes.
    let mut class_map = [0u16; 256];
    for slot in class_map.iter_mut() {
        *slot = r.u16()?;
    }
    let classes = ByteClasses::from_map(class_map)
        .ok_or_else(|| r.corrupt("byte-class map is not a dense partition"))?;
    if classes.count() != stride {
        return Err(r.corrupt(format!("{} byte classes but a stride of {stride}", classes.count())));
    }

    // DFA: table, accept index, accept sets — all validated before
    // `Dfa::from_parts_with_patterns` (which would panic on bad parts).
    let table_at = r.pos;
    let mut dfa_table = Vec::with_capacity(num_dfa * stride);
    for _ in 0..num_dfa * stride {
        let t = r.u32()?;
        if t as usize >= num_dfa {
            return Err(ArtifactError::Corrupt {
                offset: table_at,
                reason: format!("DFA transition target {t} out of range (0..{num_dfa})"),
            });
        }
        dfa_table.push(t);
    }
    r.align8()?;
    let mut accept_index = Vec::with_capacity(num_dfa);
    for _ in 0..num_dfa {
        accept_index.push(r.u32()?);
    }
    r.align8()?;
    let set_count = r.u32()? as usize;
    if set_count == 0 || set_count > buf.len() {
        return Err(r.corrupt(format!("implausible accept-set count {set_count}")));
    }
    let mut accept_sets = Vec::with_capacity(set_count);
    for _ in 0..set_count {
        let len = r.u32()? as usize;
        let mut ids = Vec::with_capacity(len.min(pattern_count));
        for _ in 0..len {
            let id = r.u32()?;
            if id as usize >= pattern_count {
                return Err(r.corrupt(format!("pattern id {id} out of range (0..{pattern_count})")));
            }
            ids.push(id);
        }
        accept_sets.push(PatternSet::from_iter(pattern_count, ids));
    }
    r.align8()?;
    if !accept_sets[0].is_empty() {
        return Err(r.corrupt("accept set 0 must be the empty set"));
    }
    if let Some(&i) = accept_index.iter().find(|&&i| i as usize >= set_count) {
        return Err(r.corrupt(format!("accept index {i} out of range (0..{set_count})")));
    }
    if dfa_start as usize >= num_dfa {
        return Err(r.corrupt(format!("DFA start state {dfa_start} out of range (0..{num_dfa})")));
    }
    let dfa = Dfa::from_parts_with_patterns(
        classes,
        dfa_table,
        accept_index,
        accept_sets,
        dfa_start,
        pattern_count,
    );
    dfa.validate().map_err(|reason| ArtifactError::Corrupt { offset: table_at, reason })?;

    // Decided bitmaps.
    let decided_verdict = r.bitmap(num_dfa)?;
    let decided_accept = r.bitmap(num_dfa)?;
    r.align8()?;

    // SFA tables: record ranges, never copy.
    let w = repr.bytes();
    let sfa_at = r.pos;
    let table = r.take_range(num_sfa * stride * w)?;
    r.align8()?;
    let byte_table = if flags & FLAG_PREMULTIPLIED != 0 {
        let range = r.take_range(num_sfa * 256 * w)?;
        r.align8()?;
        Some(range)
    } else {
        None
    };
    let mappings = r.take_range(num_sfa * num_dfa * 4)?;
    r.align8()?;

    // Convergence summary.
    let convergence = if flags & FLAG_CONVERGENCE != 0 {
        let len = r.u32()? as usize;
        let at = r.pos;
        let summary =
            ConvergenceSummary::from_bytes(r.take(len)?).ok_or(ArtifactError::Corrupt {
                offset: at,
                reason: "malformed convergence summary".to_string(),
            })?;
        r.align8()?;
        Some(summary)
    } else {
        None
    };

    if r.pos != buf.len() {
        return Err(
            r.corrupt(format!("{} trailing bytes after the last section", buf.len() - r.pos))
        );
    }

    // The SFA constructor bounds-checks every borrowed table entry.
    let parts = LoadedSfaParts {
        data: data.clone(),
        repr,
        num_states: num_sfa,
        table,
        byte_table,
        mappings,
    };
    let sfa = LoadedSfa::new(parts, &dfa)
        .map_err(|reason| ArtifactError::Corrupt { offset: sfa_at, reason })?;

    Ok(LoadedArtifact {
        pattern,
        mode,
        collapsed: flags & FLAG_COLLAPSED != 0,
        nfa_states,
        dfa,
        sfa,
        decided_verdict,
        decided_accept,
        convergence,
    })
}
