//! Boolean matrices and their semigroup.
//!
//! Section VII of the paper characterizes SFA states algebraically: a
//! correspondence `Q → P(Q)` *is* an `n × n` boolean matrix, composition is
//! the boolean matrix product, and the set of matrices reachable from the
//! per-symbol matrices is (the transition part of) the syntactic monoid.
//! Devadze's theorem (Fact 3) about generating sets of the full boolean
//! matrix semigroup is what rules out compact regular expressions whose
//! N-SFA hits the `2^(n²)` bound.

use std::collections::HashSet;

/// A dense square boolean matrix, rows stored as bit masks (`n ≤ 64`
/// supported for the row representation used here, which is plenty for the
/// monoid experiments).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BoolMatrix {
    n: usize,
    rows: Vec<u64>,
}

impl BoolMatrix {
    /// Maximum supported dimension.
    pub const MAX_DIM: usize = 64;

    /// The zero matrix.
    pub fn zero(n: usize) -> BoolMatrix {
        assert!(n <= Self::MAX_DIM, "BoolMatrix supports n ≤ 64");
        BoolMatrix { n, rows: vec![0; n] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> BoolMatrix {
        let mut m = BoolMatrix::zero(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from a list of `(row, col)` pairs that are set.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> BoolMatrix {
        let mut m = BoolMatrix::zero(n);
        for &(i, j) in pairs {
            m.set(i, j, true);
        }
        m
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i] & (1u64 << j) != 0
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        if value {
            self.rows[i] |= 1u64 << j;
        } else {
            self.rows[i] &= !(1u64 << j);
        }
    }

    /// Boolean matrix product (`∨` of `∧`s).
    pub fn multiply(&self, other: &BoolMatrix) -> BoolMatrix {
        debug_assert_eq!(self.n, other.n);
        let mut out = BoolMatrix::zero(self.n);
        for i in 0..self.n {
            let mut row = 0u64;
            let mut bits = self.rows[i];
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                row |= other.rows[k];
            }
            out.rows[i] = row;
        }
        out
    }

    /// Number of ones in the matrix.
    pub fn popcount(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Returns true if the matrix is a (total) function: exactly one `1` per
    /// row.
    pub fn is_functional(&self) -> bool {
        self.rows.iter().all(|r| r.count_ones() == 1)
    }
}

/// Generates the semigroup (closure under product) of a set of boolean
/// matrices, up to `limit` elements. Returns `None` if the limit is
/// exceeded.
pub fn generate_semigroup(generators: &[BoolMatrix], limit: usize) -> Option<Vec<BoolMatrix>> {
    let mut seen: HashSet<BoolMatrix> = HashSet::new();
    let mut elements: Vec<BoolMatrix> = Vec::new();
    let mut worklist: Vec<BoolMatrix> = Vec::new();
    for g in generators {
        if seen.insert(g.clone()) {
            elements.push(g.clone());
            worklist.push(g.clone());
        }
    }
    let mut head = 0;
    while head < worklist.len() {
        let current = worklist[head].clone();
        head += 1;
        for g in generators {
            let next = current.multiply(g);
            if seen.insert(next.clone()) {
                if elements.len() >= limit {
                    return None;
                }
                elements.push(next.clone());
                worklist.push(next);
            }
        }
    }
    Some(elements)
}

/// Generates the monoid: the semigroup plus the identity element.
pub fn generate_monoid(generators: &[BoolMatrix], limit: usize) -> Option<Vec<BoolMatrix>> {
    let n = generators.first().map(|g| g.dim()).unwrap_or(0);
    let mut elements = generate_semigroup(generators, limit)?;
    let id = BoolMatrix::identity(n);
    if !elements.contains(&id) {
        if elements.len() >= limit {
            return None;
        }
        elements.push(id);
    }
    Some(elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_zero() {
        let id = BoolMatrix::identity(4);
        let z = BoolMatrix::zero(4);
        assert!(id.get(2, 2));
        assert!(!id.get(2, 3));
        assert_eq!(id.popcount(), 4);
        assert_eq!(z.popcount(), 0);
        assert!(id.is_functional());
        assert!(!z.is_functional());
    }

    #[test]
    fn multiplication_matches_relation_composition() {
        // a: 0→1, 1→{0,2}, 2→∅ ; b: 0→2, 1→1, 2→0
        let a = BoolMatrix::from_pairs(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        let b = BoolMatrix::from_pairs(3, &[(0, 2), (1, 1), (2, 0)]);
        let ab = a.multiply(&b);
        // (a·b)(0) = b(a(0)) = b({1}) = {1}
        assert!(ab.get(0, 1) && !ab.get(0, 0) && !ab.get(0, 2));
        // (a·b)(1) = b({0,2}) = {2,0}
        assert!(ab.get(1, 0) && ab.get(1, 2) && !ab.get(1, 1));
        // (a·b)(2) = b({2}) = {0}
        assert!(ab.get(2, 0));
    }

    #[test]
    fn identity_is_neutral_and_product_associative() {
        let a = BoolMatrix::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]);
        let b = BoolMatrix::from_pairs(4, &[(0, 0), (1, 3), (2, 1), (3, 2)]);
        let c = BoolMatrix::from_pairs(4, &[(0, 2), (2, 2), (3, 1)]);
        let id = BoolMatrix::identity(4);
        assert_eq!(a.multiply(&id), a);
        assert_eq!(id.multiply(&a), a);
        assert_eq!(a.multiply(&b).multiply(&c), a.multiply(&b.multiply(&c)));
    }

    #[test]
    fn semigroup_of_cyclic_permutation() {
        // The cyclic shift on 5 elements generates Z_5 (5 elements).
        let shift = BoolMatrix::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sg = generate_semigroup(&[shift], 100).unwrap();
        assert_eq!(sg.len(), 5);
        let monoid = generate_monoid(
            &[BoolMatrix::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])],
            100,
        )
        .unwrap();
        assert_eq!(monoid.len(), 5, "the cycle already contains the identity");
    }

    #[test]
    fn semigroup_limit_enforced() {
        // Two generators over 4 points can blow past a tiny limit.
        let a = BoolMatrix::from_pairs(4, &[(0, 1), (1, 0), (2, 2), (3, 3)]);
        let b = BoolMatrix::from_pairs(4, &[(0, 0), (1, 2), (2, 3), (3, 3)]);
        assert!(generate_semigroup(&[a, b], 3).is_none());
    }

    #[test]
    fn full_transformation_monoid_on_three_points() {
        // Classic: the full transformation monoid T_3 has 27 elements and is
        // generated by a transposition, a 3-cycle and a rank-2 idempotent.
        let cycle = BoolMatrix::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]);
        let swap = BoolMatrix::from_pairs(3, &[(0, 1), (1, 0), (2, 2)]);
        let collapse = BoolMatrix::from_pairs(3, &[(0, 0), (1, 0), (2, 2)]);
        let m = generate_monoid(&[cycle, swap, collapse], 1000).unwrap();
        assert_eq!(m.len(), 27);
        assert!(m.iter().all(|x| x.is_functional()));
    }
}
