//! The state-explosion families of Section VII-B (Examples 3 and 4,
//! Facts 1 and 2).
//!
//! * **Fact 1 / Example 3**: `e = [ap]*[al][alp]{n-2}` over `Σ = {a, l, p}`
//!   has an `O(n)`-state NFA whose minimal DFA has `~2^n` states — the
//!   letters act as arithmetic shift, logical shift and partial shift on
//!   the bit-vector of active NFA states.
//! * **Fact 2 / Example 4**: there is a 3-letter DFA with `n` states whose
//!   D-SFA has `n^n` states — its three letters generate the full
//!   transformation monoid `T_n` (an `n`-cycle, a transposition and a
//!   rank-`n−1` collapse). The paper exhibits such a DFA as the minimal DFA
//!   of `(m|(t|c([mt]*c){n-2})[cmt]*)*`; the scanned text of that
//!   expression is ambiguous, so alongside a best-effort transcription
//!   ([`example4_pattern`]) we construct the witness DFA *directly*
//!   ([`fact2_dfa`]), which is what the Fact 2 claim is about.

use sfa_automata::byteclass::ByteClasses;
use sfa_automata::minimal_dfa_from_pattern;
use sfa_automata::{CompileError, Dfa, StateId};
use sfa_regex_syntax::ByteSet;

/// The Example 3 pattern `[ap]*[al][alp]{n-2}` (requires `n ≥ 2`).
pub fn example3_pattern(n: usize) -> String {
    assert!(n >= 2, "Example 3 needs n ≥ 2");
    format!("[ap]*[al][alp]{{{}}}", n - 2)
}

/// A best-effort transcription of the Example 4 pattern
/// `(m|(t|c([mt]*c){n-2})[cmt]*)*` (requires `n ≥ 2`). See [`fact2_dfa`]
/// for the exact Fact 2 witness.
pub fn example4_pattern(n: usize) -> String {
    assert!(n >= 2, "Example 4 needs n ≥ 2");
    format!("(m|(t|c([mt]*c){{{}}})[cmt]*)*", n - 2)
}

/// Builds the minimal DFA of the Example 3 pattern; its live state count
/// grows as `~2^n` (Fact 1).
pub fn example3_dfa(n: usize) -> Result<Dfa, CompileError> {
    minimal_dfa_from_pattern(&example3_pattern(n))
}

/// Builds the minimal DFA of the [`example4_pattern`] transcription.
pub fn example4_dfa(n: usize) -> Result<Dfa, CompileError> {
    minimal_dfa_from_pattern(&example4_pattern(n))
}

/// Constructs the **Fact 2 witness** directly: a complete DFA over
/// `Σ = {c, m, t}` (plus a catch-all dead class) with `n` live states whose
/// three letters act as
///
/// * `m` — the `n`-cycle `i ↦ i+1 (mod n)`,
/// * `t` — the transposition `(0 1)`,
/// * `c` — the collapse `0 ↦ 1, i ↦ i (i ≥ 1)`,
///
/// which generate the full transformation monoid `T_n`. Consequently its
/// D-SFA has exactly `n^n + 1` states (every transformation of the live
/// states, plus the all-dead mapping reached on any byte outside
/// `{c, m, t}`).
pub fn fact2_dfa(n: usize) -> Dfa {
    assert!(n >= 1, "Fact 2 witness needs n ≥ 1");
    let classes = ByteClasses::from_sets([
        &ByteSet::singleton(b'c'),
        &ByteSet::singleton(b'm'),
        &ByteSet::singleton(b't'),
    ]);
    let stride = classes.count();
    let num_states = n + 1; // live 0..n-1, dead = n
    let dead = n as StateId;
    let mut table = vec![dead; num_states * stride];
    let cc = classes.class_of(b'c') as usize;
    let cm = classes.class_of(b'm') as usize;
    let ct = classes.class_of(b't') as usize;
    for q in 0..n {
        // m: cycle
        table[q * stride + cm] = ((q + 1) % n) as StateId;
        // t: transposition (0 1) — identity if n < 2
        let t_target = if n >= 2 {
            match q {
                0 => 1,
                1 => 0,
                other => other,
            }
        } else {
            q
        };
        table[q * stride + ct] = t_target as StateId;
        // c: collapse 0 ↦ 1 (or identity if n < 2)
        let c_target = if n >= 2 && q == 0 { 1 } else { q };
        table[q * stride + cc] = c_target as StateId;
    }
    let mut accepting = vec![false; num_states];
    accepting[0] = true;
    Dfa::from_parts(classes, table, accepting, 0)
}

/// `n^n` as a u128 (the Fact 2 bound `|D|^|D|` over the live states).
pub fn pow_self(n: usize) -> u128 {
    (n as u128).pow(n as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_core::{DSfa, SfaConfig};

    #[test]
    fn example3_dfa_grows_exponentially() {
        // Fact 1: |D| ≈ 2^n (we measure 2^n − 1 live states because the
        // empty subset is the dead state).
        let sizes: Vec<usize> =
            (2..=6).map(|n| example3_dfa(n).unwrap().num_live_states()).collect();
        assert_eq!(sizes, vec![3, 7, 15, 31, 63]);
    }

    #[test]
    fn fact2_witness_dsfa_has_n_to_the_n_states() {
        for n in [2usize, 3, 4] {
            let dfa = fact2_dfa(n);
            assert_eq!(dfa.num_live_states(), n);
            let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
            assert_eq!(
                sfa.num_states() as u128,
                pow_self(n) + 1,
                "n = {}: expected n^n + 1 (all transformations plus the all-dead sink)",
                n
            );
        }
    }

    #[test]
    fn fact2_witness_language_sanity() {
        // The witness DFA accepts words over {c,m,t} that send state 0 back
        // to state 0; e.g. m^n cycles all the way around.
        let dfa = fact2_dfa(3);
        assert!(dfa.accepts(b""));
        assert!(dfa.accepts(b"mmm"));
        assert!(!dfa.accepts(b"m"));
        assert!(!dfa.accepts(b"x"));
        assert!(dfa.accepts(b"tt"));
    }

    #[test]
    fn example4_transcription_builds() {
        // The transcription parses and compiles; its exact size depends on
        // the reading of the scanned expression, so only sanity is checked.
        for n in [3usize, 4, 5] {
            let dfa = example4_dfa(n).unwrap();
            assert!(dfa.num_live_states() >= 1);
            let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
            assert!(sfa.num_states() >= dfa.num_live_states());
        }
    }

    #[test]
    fn patterns_are_wellformed() {
        assert_eq!(example3_pattern(2), "[ap]*[al][alp]{0}");
        assert_eq!(example4_pattern(2), "(m|(t|c([mt]*c){0})[cmt]*)*");
        example3_dfa(4).unwrap();
        example4_dfa(4).unwrap();
    }

    #[test]
    #[should_panic(expected = "n ≥ 2")]
    fn example3_requires_n_at_least_two() {
        example3_pattern(1);
    }

    #[test]
    fn pow_self_values() {
        assert_eq!(pow_self(2), 4);
        assert_eq!(pow_self(3), 27);
        assert_eq!(pow_self(10), 10_000_000_000);
    }
}
