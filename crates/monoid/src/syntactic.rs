//! Transition monoids and syntactic complexity.
//!
//! Section VII-A of the paper: "the size of a syntactic monoid for a
//! regular language is called syntactic complexity. Indeed, syntactic
//! complexity of a regular language is also the size of a minimal SFA of
//! the identical language … syntactic complexity is also parallel
//! complexity of regular expressions."
//!
//! The transition monoid of a complete DFA is the set of transformations
//! `{ f_w | w ∈ Σ* }` under composition; computed on the *minimal* DFA it
//! is exactly the syntactic monoid of the language, and its size equals the
//! number of states of the minimal D-SFA built by `sfa-core` (which we
//! assert in the tests — the bridge the paper emphasizes).

use crate::boolmatrix::BoolMatrix;
use sfa_automata::Dfa;
use sfa_core::Transformation;
use std::collections::HashSet;

/// The transition monoid of a DFA: every transformation `f_w` reachable
/// from the per-byte-class generators, plus the identity.
#[derive(Clone, Debug)]
pub struct TransitionMonoid {
    elements: Vec<Transformation>,
    generators: Vec<Transformation>,
}

impl TransitionMonoid {
    /// Computes the transition monoid of a (complete) DFA, up to `limit`
    /// elements. Returns `None` if the limit is exceeded.
    pub fn of_dfa(dfa: &Dfa, limit: usize) -> Option<TransitionMonoid> {
        let n = dfa.num_states();
        let generators: Vec<Transformation> = (0..dfa.num_classes() as u16)
            .map(|class| {
                Transformation::from_vec(
                    (0..n as u32).map(|q| dfa.next_by_class(q, class)).collect(),
                )
            })
            .collect();

        let mut seen: HashSet<Transformation> = HashSet::new();
        let mut elements: Vec<Transformation> = Vec::new();
        let identity = Transformation::identity(n);
        seen.insert(identity.clone());
        elements.push(identity);
        let mut head = 0;
        while head < elements.len() {
            let current = elements[head].clone();
            head += 1;
            for g in &generators {
                let next = current.then(g);
                if seen.insert(next.clone()) {
                    if elements.len() >= limit {
                        return None;
                    }
                    elements.push(next);
                }
            }
        }
        Some(TransitionMonoid { elements, generators })
    }

    /// The monoid elements (the identity is always element 0).
    pub fn elements(&self) -> &[Transformation] {
        &self.elements
    }

    /// The per-byte-class generators.
    pub fn generators(&self) -> &[Transformation] {
        &self.generators
    }

    /// The size of the monoid.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the monoid is empty (never happens — the identity is
    /// always present — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Converts every element to a boolean matrix (the representation used
    /// in the semigroup-theory discussion of Section VII-B). Only available
    /// for DFAs with at most 64 states.
    pub fn as_bool_matrices(&self) -> Option<Vec<BoolMatrix>> {
        let n = self.elements.first()?.degree();
        if n > BoolMatrix::MAX_DIM {
            return None;
        }
        Some(
            self.elements
                .iter()
                .map(|t| {
                    let pairs: Vec<(usize, usize)> =
                        t.as_slice().iter().enumerate().map(|(i, &j)| (i, j as usize)).collect();
                    BoolMatrix::from_pairs(n, &pairs)
                })
                .collect(),
        )
    }
}

/// Syntactic complexity of the language of a pattern: the size of the
/// transition monoid of its *minimal* DFA.
///
/// Per the paper (Sect. VII-A) this equals the size of the minimal SFA for
/// the same language, i.e. the parallel complexity of the expression.
pub fn syntactic_complexity(
    pattern: &str,
    limit: usize,
) -> Result<Option<usize>, sfa_automata::CompileError> {
    let dfa = sfa_automata::minimal_dfa_from_pattern(pattern)?;
    Ok(TransitionMonoid::of_dfa(&dfa, limit).map(|m| m.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::minimal_dfa_from_pattern;
    use sfa_core::{DSfa, SfaConfig};

    #[test]
    fn monoid_size_equals_dsfa_size() {
        // The bridge the paper emphasizes: |syntactic monoid| = |minimal SFA|.
        for pattern in ["(ab)*", "([0-4]{2}[5-9]{2})*", "(a|b)*abb", "(([02468][13579]){2})*"] {
            let dfa = minimal_dfa_from_pattern(pattern).unwrap();
            let monoid = TransitionMonoid::of_dfa(&dfa, 1_000_000).unwrap();
            let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
            assert_eq!(monoid.len(), sfa.num_states(), "pattern {:?}", pattern);
        }
    }

    #[test]
    fn ab_star_monoid_matches_table1() {
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let monoid = TransitionMonoid::of_dfa(&dfa, 1000).unwrap();
        assert_eq!(monoid.len(), 6);
        assert!(!monoid.is_empty());
        assert!(monoid.elements()[0].is_identity());
        // Two letter generators plus the catch-all class.
        assert_eq!(monoid.generators().len(), 3);
    }

    #[test]
    fn syntactic_complexity_of_universal_language_is_one() {
        assert_eq!(syntactic_complexity("(?s).*", 100).unwrap(), Some(1));
    }

    #[test]
    fn limit_returns_none() {
        assert_eq!(syntactic_complexity("([0-4]{5}[5-9]{5})*", 10).unwrap(), None);
    }

    #[test]
    fn bool_matrix_view_preserves_composition() {
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let monoid = TransitionMonoid::of_dfa(&dfa, 1000).unwrap();
        let mats = monoid.as_bool_matrices().unwrap();
        assert_eq!(mats.len(), monoid.len());
        // Every element is a function (one 1 per row) because the source is
        // deterministic and complete.
        assert!(mats.iter().all(|m| m.is_functional()));
        // Closure under multiplication stays inside the set.
        for a in &mats {
            for b in &mats {
                assert!(mats.contains(&a.multiply(b)));
            }
        }
    }
}
