//! # sfa-monoid
//!
//! The algebraic side of the SFA paper (Section VII): boolean matrices and
//! their semigroup, transition/syntactic monoids of DFAs (whose size is the
//! "parallel complexity" of a regular expression and equals the size of the
//! minimal SFA), and the state-explosion regex families of Examples 3
//! and 4.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod boolmatrix;
pub mod explosion;
pub mod syntactic;

pub use boolmatrix::{generate_monoid, generate_semigroup, BoolMatrix};
pub use explosion::{example3_pattern, example4_pattern, fact2_dfa, pow_self};
pub use syntactic::{syntactic_complexity, TransitionMonoid};
