//! N-SFA: the simultaneous finite automaton constructed directly from an
//! NFA (Algorithm 4 of the paper in its general, nondeterministic form).
//!
//! Each N-SFA state is a [`Correspondence`] `f : Q → P(Q)` over the NFA
//! state set. The theoretical state bound is `2^(|N|^2)` (Theorem 2), far
//! worse than the D-SFA bound, but the construction is included for
//! completeness, for the complexity comparison of Table II, and because the
//! reduction operator (boolean matrix multiplication) is interesting for
//! the monoid analysis in `sfa-monoid`.
//!
//! One deviation from the paper: our NFAs carry ε-transitions (Thompson
//! construction), which the paper's Definition 1 does not. The natural
//! generalization is used here — the initial N-SFA state maps every state
//! to its ε-closure, and each step closes under ε — so `f_w(q)` is "the set
//! of states reachable from `q` by a path labelled `w`", which is exactly
//! `δ̂(q, w)` and keeps Lemma 1 (composition) and Theorem 2 (equivalence)
//! intact.

use crate::dsfa::SfaStateId;
use crate::mapping::Correspondence;
use crate::SfaConfig;
use sfa_automata::{ByteClasses, CompileError, Dfa, Nfa, StateId, StateSet};
use std::collections::HashMap;

/// A simultaneous finite automaton built from an NFA.
#[derive(Clone, Debug)]
pub struct NSfa {
    classes: ByteClasses,
    stride: usize,
    table: Vec<SfaStateId>,
    accepting: Vec<bool>,
    mappings: Vec<Correspondence>,
    nfa_start: StateId,
    nfa_accepting: StateSet,
}

impl NSfa {
    /// **Algorithm 4 (correspondence construction)** in its general form:
    /// `f_next(q) = ⋃_{q' ∈ f(q)} δ(q', σ)` (with ε-closure).
    pub fn from_nfa(nfa: &Nfa, config: &SfaConfig) -> Result<NSfa, CompileError> {
        let n = nfa.num_states();

        // Reuse the same byte-class computation as the DFA construction.
        let sets: Vec<&sfa_regex_syntax::ByteSet> =
            nfa.states().iter().flat_map(|s| s.transitions.iter().map(|(set, _)| set)).collect();
        let classes =
            if sets.is_empty() { ByteClasses::single() } else { ByteClasses::from_sets(sets) };
        let stride = classes.count();
        let reps = classes.representatives();

        let mut ids: HashMap<Correspondence, SfaStateId> = HashMap::new();
        let mut mappings: Vec<Correspondence> = Vec::new();
        let mut table: Vec<SfaStateId> = Vec::new();

        let intern = |f: Correspondence,
                      mappings: &mut Vec<Correspondence>,
                      ids: &mut HashMap<Correspondence, SfaStateId>|
         -> Result<SfaStateId, CompileError> {
            if let Some(&id) = ids.get(&f) {
                return Ok(id);
            }
            if mappings.len() >= config.max_states {
                return Err(CompileError::TooManyStates { limit: config.max_states });
            }
            let id = mappings.len() as SfaStateId;
            ids.insert(f.clone(), id);
            mappings.push(f);
            Ok(id)
        };

        // Initial state: q ↦ ε-closure(q).
        let initial_mapping =
            Correspondence::from_sets((0..n as StateId).map(|q| nfa.epsilon_closure(q)).collect());
        let initial = intern(initial_mapping, &mut mappings, &mut ids)?;
        debug_assert_eq!(initial, 0);

        let mut processed = 0usize;
        while processed < mappings.len() {
            let current = mappings[processed].clone();
            processed += 1;
            for &byte in reps.iter().take(stride) {
                let next = Correspondence::from_sets(
                    (0..n as StateId).map(|q| nfa.step(current.apply(q), byte)).collect(),
                );
                let next_id = intern(next, &mut mappings, &mut ids)?;
                table.push(next_id);
            }
        }

        let nfa_start = nfa.start();
        let nfa_accepting = nfa.accepting_set();
        let accepting =
            mappings.iter().map(|f| f.apply(nfa_start).intersects(&nfa_accepting)).collect();

        Ok(NSfa { classes, stride, table, accepting, mappings, nfa_start, nfa_accepting })
    }

    /// Convenience: pattern → NFA → N-SFA with default limits.
    pub fn from_pattern(pattern: &str) -> Result<NSfa, CompileError> {
        let nfa = Nfa::from_pattern(pattern)?;
        NSfa::from_nfa(&nfa, &SfaConfig::default())
    }

    /// Number of N-SFA states (`|S_n|` in the paper).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.mappings.len()
    }

    /// Number of states of the source NFA.
    #[inline]
    pub fn num_nfa_states(&self) -> usize {
        self.nfa_accepting.universe()
    }

    /// The start state of the source NFA.
    #[inline]
    pub fn nfa_start(&self) -> StateId {
        self.nfa_start
    }

    /// The accepting-state set of the source NFA.
    #[inline]
    pub fn nfa_accepting_set(&self) -> &StateSet {
        &self.nfa_accepting
    }

    /// The byte classes used by the transition table.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Number of byte classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.stride
    }

    /// The initial state (index 0).
    #[inline]
    pub fn initial(&self) -> SfaStateId {
        0
    }

    /// Returns true if the SFA state is accepting
    /// (`∃ q ∈ I : f(q) ∩ F ≠ ∅`).
    #[inline]
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        self.accepting[state as usize]
    }

    /// The correspondence carried by an SFA state.
    #[inline]
    pub fn mapping(&self, state: SfaStateId) -> &Correspondence {
        &self.mappings[state as usize]
    }

    /// Transition on a byte class.
    #[inline]
    pub fn next_by_class(&self, state: SfaStateId, class: u16) -> SfaStateId {
        self.table[state as usize * self.stride + class as usize]
    }

    /// Transition on a byte.
    #[inline]
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> SfaStateId {
        self.next_by_class(state, self.classes.class_of(byte))
    }

    /// Runs the N-SFA over `input` from the initial state.
    pub fn run(&self, input: &[u8]) -> SfaStateId {
        self.run_from(self.initial(), input)
    }

    /// Runs the N-SFA over `input` from an arbitrary state.
    pub fn run_from(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        let mut f = state;
        for &b in input {
            f = self.next_state(f, b);
        }
        f
    }

    /// Whole-input membership using the N-SFA alone.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Composes the correspondences of two SFA states (`⋄`, i.e. a boolean
    /// matrix product — the `O(|N|^3)` reduction operator of Table II).
    pub fn compose(&self, a: SfaStateId, b: SfaStateId) -> Correspondence {
        self.mapping(a).then(self.mapping(b))
    }

    /// Decides acceptance from a composed correspondence (used after a
    /// reduction).
    pub fn mapping_is_accepting(&self, f: &Correspondence) -> bool {
        f.apply(self.nfa_start).intersects(&self.nfa_accepting)
    }

    /// Bytes occupied by the transition table.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<SfaStateId>()
    }

    /// Bytes occupied by the state correspondences.
    pub fn mapping_bytes(&self) -> usize {
        self.mappings.iter().map(|m| m.heap_bytes()).sum()
    }

    /// Re-interprets the N-SFA as a plain DFA over the same byte classes.
    pub fn as_dfa(&self) -> Dfa {
        Dfa::from_parts(
            self.classes.clone(),
            self.table.clone(),
            self.accepting.clone(),
            self.initial(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsfa::DSfa;
    use sfa_automata::equivalence::equivalent;
    use sfa_automata::minimal_dfa_from_pattern;

    fn nsfa(pattern: &str) -> NSfa {
        NSfa::from_pattern(pattern).unwrap()
    }

    #[test]
    fn nsfa_accepts_same_language_as_nfa() {
        for pattern in ["(ab)*", "a|bc|d", "(a|b)*abb", "[0-4]{2}[5-9]{2}", "a{2,4}"] {
            let nfa = Nfa::from_pattern(pattern).unwrap();
            let sfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
            for input in [&b""[..], b"a", b"ab", b"abab", b"abb", b"aabb", b"0459", b"aaaa", b"zz"]
            {
                assert_eq!(
                    nfa.accepts(input),
                    sfa.accepts(input),
                    "pattern {:?} input {:?}",
                    pattern,
                    input
                );
            }
        }
    }

    #[test]
    fn nsfa_equivalent_to_minimal_dfa() {
        for pattern in ["(ab)*", "(a|b)*abb", "([0-4]{2}[5-9]{2})*"] {
            let dfa = minimal_dfa_from_pattern(pattern).unwrap();
            let sfa = nsfa(pattern);
            assert!(equivalent(&dfa, &sfa.as_dfa()), "pattern {:?}", pattern);
        }
    }

    #[test]
    fn nsfa_is_larger_than_dsfa_in_general() {
        // The N-SFA tracks sets of NFA states per image, so it is usually at
        // least as large as the D-SFA of the same language.
        let d = DSfa::from_pattern("(a|b)*abb").unwrap();
        let n = nsfa("(a|b)*abb");
        assert!(n.num_states() >= d.num_states());
    }

    #[test]
    fn composition_matches_concatenated_run() {
        let sfa = nsfa("(a|b)*abb");
        let w1 = b"abab";
        let w2 = b"babb";
        let f1 = sfa.run(w1);
        let f2 = sfa.run(w2);
        let composed = sfa.compose(f1, f2);
        let mut whole = w1.to_vec();
        whole.extend_from_slice(w2);
        let f12 = sfa.run(&whole);
        assert_eq!(&composed, sfa.mapping(f12));
        assert_eq!(sfa.mapping_is_accepting(&composed), sfa.is_accepting(f12));
        assert!(sfa.is_accepting(f12));
    }

    #[test]
    fn state_limit_enforced() {
        let nfa = Nfa::from_pattern("(a|b)*a(a|b){6}").unwrap();
        let err = NSfa::from_nfa(&nfa, &SfaConfig { max_states: 10, ..SfaConfig::default() })
            .unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 10 });
    }

    #[test]
    fn initial_state_is_epsilon_closure() {
        let nfa = Nfa::from_pattern("(ab)*").unwrap();
        let sfa = NSfa::from_nfa(&nfa, &SfaConfig::default()).unwrap();
        let init = sfa.mapping(sfa.initial());
        for q in 0..nfa.num_states() as StateId {
            assert_eq!(init.apply(q), &nfa.epsilon_closure(q));
        }
        // (ab)* is nullable, so the initial state must already accept.
        assert!(sfa.is_accepting(sfa.initial()));
        assert!(sfa.accepts(b""));
    }
}
