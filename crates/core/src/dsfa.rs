//! D-SFA: the simultaneous finite automaton constructed from a DFA
//! (Definition 5 + Algorithm 4 of the paper, specialized to deterministic
//! input as described in Section V-A).
//!
//! Each D-SFA state is a [`Transformation`] of the DFA state set: the state
//! reached after reading a word `w` is the mapping `q ↦ δ̂(q, w)`, i.e. the
//! simultaneous simulation of the DFA from *every* start state. The D-SFA
//! itself is an ordinary DFA over the same byte classes, so matching costs
//! exactly one table lookup per input byte — that is the whole point of the
//! model: the speculative simulation of Algorithm 3 has been evaluated at
//! construction time instead of at match time.

use crate::mapping::Transformation;
#[cfg(feature = "simd")]
use crate::simd;
use crate::SfaConfig;
use sfa_automata::{ByteClasses, CompileError, Dfa, PatternSet, StateId};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Identifier of an SFA state.
///
/// This is the *interface* width: every public API hands ids around as
/// `u32` regardless of how the transition tables store them internally
/// (see [`StateIdRepr`]), so callers never churn when an automaton packs
/// down to `u8`/`u16` rows.
pub type SfaStateId = u32;

/// Physical width of the state ids stored in the eager D-SFA transition
/// tables.
///
/// The automaton picks the narrowest width that fits `|S_d|`
/// ([`StateIdRepr::for_states`]): a 2 000-state shard's premultiplied
/// rows shrink 2× (`u16`), a 250-state one 4× (`u8`), which is the
/// difference between a working set that blows L2 and one that sits in
/// L1. The public API stays [`SfaStateId`] (`u32`) at the boundary; the
/// width only changes what the tables *store* and which monomorphized
/// scan loop runs. [`SfaConfig::repr`] can force a wider width (for
/// baseline measurements); a narrower override is widened automatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StateIdRepr {
    /// One byte per id — automata with at most 256 states.
    U8,
    /// Two bytes per id — automata with at most 65 536 states.
    U16,
    /// Four bytes per id — unbounded (the public [`SfaStateId`] width).
    U32,
}

impl StateIdRepr {
    /// Bytes occupied by one stored state id.
    pub const fn bytes(self) -> usize {
        match self {
            StateIdRepr::U8 => 1,
            StateIdRepr::U16 => 2,
            StateIdRepr::U32 => 4,
        }
    }

    /// Largest state count this width can address (ids are `0..n`).
    pub const fn max_states(self) -> usize {
        match self {
            StateIdRepr::U8 => 1 << 8,
            StateIdRepr::U16 => 1 << 16,
            StateIdRepr::U32 => usize::MAX,
        }
    }

    /// The narrowest width that fits `n` states: `U8` through 256 states
    /// (ids 0–255), `U16` through 65 536, `U32` beyond.
    pub fn for_states(n: usize) -> StateIdRepr {
        if n <= StateIdRepr::U8.max_states() {
            StateIdRepr::U8
        } else if n <= StateIdRepr::U16.max_states() {
            StateIdRepr::U16
        } else {
            StateIdRepr::U32
        }
    }

    /// The width's name (`"u8"` / `"u16"` / `"u32"`), used in benchmark
    /// summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            StateIdRepr::U8 => "u8",
            StateIdRepr::U16 => "u16",
            StateIdRepr::U32 => "u32",
        }
    }

    /// Parses a name produced by [`StateIdRepr::as_str`].
    pub fn parse(s: &str) -> Option<StateIdRepr> {
        Some(match s {
            "u8" => StateIdRepr::U8,
            "u16" => StateIdRepr::U16,
            "u32" => StateIdRepr::U32,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StateIdRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Storage-width abstraction behind the packed tables: all three widths
/// implement the same two-method interface so each scan loop is written
/// once, generically, and monomorphized per width — the repr is matched
/// **once per call**, never per byte.
trait PackedId: Copy {
    fn pack(v: SfaStateId) -> Self;
    fn unpack(self) -> SfaStateId;
}

impl PackedId for u8 {
    #[inline(always)]
    fn pack(v: SfaStateId) -> u8 {
        v as u8
    }
    #[inline(always)]
    fn unpack(self) -> SfaStateId {
        self as SfaStateId
    }
}

impl PackedId for u16 {
    #[inline(always)]
    fn pack(v: SfaStateId) -> u16 {
        v as u16
    }
    #[inline(always)]
    fn unpack(self) -> SfaStateId {
        self as SfaStateId
    }
}

impl PackedId for u32 {
    #[inline(always)]
    fn pack(v: SfaStateId) -> u32 {
        v
    }
    #[inline(always)]
    fn unpack(self) -> SfaStateId {
        self
    }
}

/// A row-major state-id table in one of the three packed widths.
/// `pub(crate)` so the `simd` kernels can borrow the premultiplied table
/// at its packed width.
#[derive(Clone, Debug)]
pub(crate) enum PackedIds {
    U8(Box<[u8]>),
    U16(Box<[u16]>),
    U32(Box<[u32]>),
}

impl PackedIds {
    /// Packs full-width working ids down to `repr`. The caller guarantees
    /// every id fits (the repr is never narrower than `|S_d|` requires).
    fn pack(ids: &[SfaStateId], repr: StateIdRepr) -> PackedIds {
        match repr {
            StateIdRepr::U8 => PackedIds::U8(ids.iter().map(|&v| u8::pack(v)).collect()),
            StateIdRepr::U16 => PackedIds::U16(ids.iter().map(|&v| u16::pack(v)).collect()),
            StateIdRepr::U32 => PackedIds::U32(ids.iter().map(|&v| u32::pack(v)).collect()),
        }
    }

    /// One entry, widened back to the interface width.
    #[inline]
    fn get(&self, i: usize) -> SfaStateId {
        match self {
            PackedIds::U8(t) => t[i].unpack(),
            PackedIds::U16(t) => t[i].unpack(),
            PackedIds::U32(t) => t[i].unpack(),
        }
    }

    /// Total packed footprint in bytes.
    fn bytes(&self) -> usize {
        match self {
            PackedIds::U8(t) => t.len(),
            PackedIds::U16(t) => t.len() * 2,
            PackedIds::U32(t) => t.len() * 4,
        }
    }

    /// Widens the whole table back to `u32` (the boundary representation
    /// [`DSfa::as_dfa`] hands to the automata layer).
    fn unpack(&self) -> Vec<SfaStateId> {
        match self {
            PackedIds::U8(t) => t.iter().map(|&v| v.unpack()).collect(),
            PackedIds::U16(t) => t.iter().map(|&v| v.unpack()).collect(),
            PackedIds::U32(t) => t.iter().map(|&v| v.unpack()).collect(),
        }
    }
}

/// Number of independent inputs [`DSfa::run_from_many`] walks in lockstep.
///
/// Four dependent table loads in flight cover typical L2 latency without
/// spilling the lane states out of registers.
pub const INTERLEAVE_LANES: usize = 4;

/// The premultiplied hot loop over one packed width: one dense lookup per
/// byte, sink bitmap consulted only on state change (see
/// [`DSfa::run_from`]).
#[inline]
fn scan_dense<T: PackedId>(
    table: &[T],
    sink: &[bool],
    state: SfaStateId,
    input: &[u8],
) -> SfaStateId {
    let mut f = state;
    for &b in input {
        let next = table[f as usize * 256 + b as usize].unpack();
        if next != f {
            f = next;
            if sink[f as usize] {
                return f;
            }
        }
    }
    f
}

/// The class-compressed fallback loop over one packed width (no
/// premultiplied table: one `class_of` indirection plus one row lookup
/// per byte).
#[inline]
fn scan_classes<T: PackedId>(
    table: &[T],
    classes: &ByteClasses,
    stride: usize,
    sink: &[bool],
    state: SfaStateId,
    input: &[u8],
) -> SfaStateId {
    let mut f = state;
    for &b in input {
        let next = table[f as usize * stride + classes.class_of(b) as usize].unpack();
        if next != f {
            f = next;
            if sink[f as usize] {
                return f;
            }
        }
    }
    f
}

/// The interleaved hot loop: walks [`INTERLEAVE_LANES`] independent
/// inputs in lockstep over their common prefix length. Each iteration
/// issues four *independent* dependent-load chains, hiding table-load
/// latency the single-lane loop exposes. No per-byte sink branch: a sink
/// self-loops on every byte, so walking it is harmless, and the caller
/// finishes the tails through [`DSfa::run_from`] (which early-exits).
#[inline]
fn scan_dense_lanes<T: PackedId>(
    table: &[T],
    f: &mut [SfaStateId; INTERLEAVE_LANES],
    inputs: &[&[u8]; INTERLEAVE_LANES],
    common: usize,
) {
    let a = &inputs[0][..common];
    let b = &inputs[1][..common];
    let c = &inputs[2][..common];
    let d = &inputs[3][..common];
    for ((&b0, &b1), (&b2, &b3)) in a.iter().zip(b).zip(c.iter().zip(d)) {
        f[0] = table[f[0] as usize * 256 + b0 as usize].unpack();
        f[1] = table[f[1] as usize * 256 + b1 as usize].unpack();
        f[2] = table[f[2] as usize * 256 + b2 as usize].unpack();
        f[3] = table[f[3] as usize * 256 + b3 as usize].unpack();
    }
}

/// A simultaneous finite automaton built from a DFA.
#[derive(Clone, Debug)]
pub struct DSfa {
    classes: ByteClasses,
    stride: usize,
    /// The packed width both tables store ids at (never narrower than
    /// `|S_d|` requires; see [`StateIdRepr`]).
    repr: StateIdRepr,
    table: PackedIds,
    /// Premultiplied dense `256 × |S_d|` byte→state table (row `s` holds
    /// the successor of `s` for every raw byte value), built when
    /// [`SfaConfig::premultiply`] is set and the **packed** table fits the
    /// size ceiling. Fuses the `class_of` indirection out of the hot loop.
    byte_table: Option<PackedIds>,
    /// `sink[s]` is true when every transition of `s` loops back to `s` —
    /// once reached, the mapping can never change again, so a chunk run may
    /// stop early (the constant/synchronizing-word early exit: the all-dead
    /// mapping is always a sink, and in `Contains` mode so is the
    /// constant-to-accepting mapping).
    sink: Box<[bool]>,
    accepting: Vec<bool>,
    mappings: Vec<Transformation>,
    /// Mapping → state-id index, built lazily on the first
    /// [`state_of`](DSfa::state_of) / [`compose_states`](DSfa::compose_states)
    /// call that needs it (streaming composition does; the chunk-scan hot
    /// paths never do). Costs roughly as much memory as `mappings` itself,
    /// which is why it is not built eagerly for every SFA.
    state_index: OnceLock<HashMap<Transformation, SfaStateId>>,
    /// SIMD kernels for this automaton, built lazily on the first scan
    /// after runtime CPU detection (`None` when only the scalar loops
    /// apply — no premultiplied table, unsupported CPU, or non-x86_64).
    #[cfg(feature = "simd")]
    simd: OnceLock<Option<simd::SimdKernels>>,
    dfa_start: StateId,
    dfa_accepting: Vec<bool>,
    /// Number of original patterns compiled into the source DFA.
    pattern_count: usize,
    /// Per-DFA-state index into `dfa_accept_sets` (copied from the source
    /// DFA): which patterns each DFA state accepts.
    dfa_accept_index: Vec<u32>,
    /// The distinct pattern accept sets of the source DFA (entry 0 is the
    /// empty set).
    dfa_accept_sets: Vec<PatternSet>,
}

impl DSfa {
    /// **Algorithm 4 (correspondence construction)** specialized to a
    /// deterministic source automaton.
    ///
    /// Starting from the identity mapping `f_I`, repeatedly extends every
    /// discovered mapping by every byte class:
    /// `f_next(q) = δ(f(q), σ)`. Mappings are interned so each distinct
    /// transformation becomes exactly one SFA state.
    pub fn from_dfa(dfa: &Dfa, config: &SfaConfig) -> Result<DSfa, CompileError> {
        let n = dfa.num_states();
        let stride = dfa.num_classes();

        let mut ids: HashMap<Transformation, SfaStateId> = HashMap::new();
        let mut mappings: Vec<Transformation> = Vec::new();
        let mut table: Vec<SfaStateId> = Vec::new();

        let intern = |f: Transformation,
                      mappings: &mut Vec<Transformation>,
                      ids: &mut HashMap<Transformation, SfaStateId>|
         -> Result<SfaStateId, CompileError> {
            if let Some(&id) = ids.get(&f) {
                return Ok(id);
            }
            if mappings.len() >= config.max_states {
                return Err(CompileError::TooManyStates { limit: config.max_states });
            }
            let id = mappings.len() as SfaStateId;
            ids.insert(f.clone(), id);
            mappings.push(f);
            Ok(id)
        };

        let initial = intern(Transformation::identity(n), &mut mappings, &mut ids)?;
        debug_assert_eq!(initial, 0);

        let mut processed = 0usize;
        while processed < mappings.len() {
            let current = mappings[processed].clone();
            processed += 1;
            for class in 0..stride {
                let next = Transformation::from_vec(
                    current
                        .as_slice()
                        .iter()
                        .map(|&q| dfa.next_by_class(q, class as u16))
                        .collect(),
                );
                let next_id = intern(next, &mut mappings, &mut ids)?;
                table.push(next_id);
            }
        }

        let dfa_start = dfa.start();
        let accepting = mappings.iter().map(|f| dfa.is_accepting(f.apply(dfa_start))).collect();

        let num_states = mappings.len();
        let sink: Box<[bool]> = (0..num_states)
            .map(|s| (0..stride).all(|c| table[s * stride + c] == s as SfaStateId))
            .collect();

        // Interning works in full-width ids; only now that |S_d| is known
        // can the storage width be chosen. A configured override is
        // honored only when it is at least as wide as the automaton
        // requires (a narrower one would truncate ids).
        let auto = StateIdRepr::for_states(num_states);
        let repr = match config.repr {
            Some(r) if r.bytes() >= auto.bytes() => r,
            _ => auto,
        };

        let classes = dfa.classes().clone();
        let byte_table = if config.premultiply
            && num_states.saturating_mul(256).saturating_mul(repr.bytes())
                <= SfaConfig::PREMULTIPLY_MAX_BYTES
        {
            // Built directly at the packed width — a u32 staging table for
            // a 65k-state u16 automaton would transiently double the 64 MiB
            // ceiling this gate just enforced.
            fn dense<T: PackedId>(
                table: &[SfaStateId],
                classes: &ByteClasses,
                stride: usize,
                num_states: usize,
            ) -> Box<[T]> {
                let mut out = Vec::with_capacity(num_states * 256);
                for s in 0..num_states {
                    let row = &table[s * stride..(s + 1) * stride];
                    for byte in 0..=255u8 {
                        out.push(T::pack(row[classes.class_of(byte) as usize]));
                    }
                }
                out.into_boxed_slice()
            }
            Some(match repr {
                StateIdRepr::U8 => PackedIds::U8(dense(&table, &classes, stride, num_states)),
                StateIdRepr::U16 => PackedIds::U16(dense(&table, &classes, stride, num_states)),
                StateIdRepr::U32 => PackedIds::U32(dense(&table, &classes, stride, num_states)),
            })
        } else {
            None
        };

        Ok(DSfa {
            classes,
            stride,
            repr,
            table: PackedIds::pack(&table, repr),
            byte_table,
            sink,
            accepting,
            mappings,
            state_index: OnceLock::new(),
            #[cfg(feature = "simd")]
            simd: OnceLock::new(),
            dfa_start,
            dfa_accepting: dfa.accepting().to_vec(),
            pattern_count: dfa.pattern_count(),
            dfa_accept_index: dfa.accept_indices().to_vec(),
            dfa_accept_sets: dfa.distinct_accept_sets().to_vec(),
        })
    }

    /// Convenience: pattern → NFA → DFA → minimal DFA → D-SFA with default
    /// limits.
    pub fn from_pattern(pattern: &str) -> Result<DSfa, CompileError> {
        let dfa = sfa_automata::minimal_dfa_from_pattern(pattern)?;
        DSfa::from_dfa(&dfa, &SfaConfig::default())
    }

    /// Number of SFA states (`|S_d|` in the paper).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.mappings.len()
    }

    /// Number of states of the source DFA.
    #[inline]
    pub fn num_dfa_states(&self) -> usize {
        self.dfa_accepting.len()
    }

    /// The byte classes shared with the source DFA.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Number of byte classes (row width of the transition table).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.stride
    }

    /// The initial state (always 0: the identity mapping `f_I`).
    #[inline]
    pub fn initial(&self) -> SfaStateId {
        0
    }

    /// The start state of the source DFA.
    #[inline]
    pub fn dfa_start(&self) -> StateId {
        self.dfa_start
    }

    /// Returns true if the DFA state is accepting (used by reductions).
    #[inline]
    pub fn dfa_is_accepting(&self, q: StateId) -> bool {
        self.dfa_accepting[q as usize]
    }

    /// Returns true if the SFA state is accepting
    /// (`F_s = { f | f(q_0) ∈ F_D }`).
    #[inline]
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        self.accepting[state as usize]
    }

    /// Number of original patterns compiled into the source DFA (1 for
    /// single-pattern automata).
    #[inline]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The set of patterns a source-DFA state accepts (the per-rule
    /// verdict carried through from compilation — used by the reductions,
    /// which end on a DFA state).
    #[inline]
    pub fn dfa_accepting_patterns(&self, q: StateId) -> &PatternSet {
        &self.dfa_accept_sets[self.dfa_accept_index[q as usize] as usize]
    }

    /// The set of patterns matched when the whole input lands in `state`:
    /// the accept set of `f(q_0)`. The multi-pattern refinement of
    /// [`is_accepting`](DSfa::is_accepting) — non-empty exactly when the
    /// state accepts — and the hook the streaming matcher reads its
    /// per-rule verdict from. `O(1)`: one mapping lookup plus one
    /// interned-set index.
    #[inline]
    pub fn accepting_patterns(&self, state: SfaStateId) -> &PatternSet {
        self.dfa_accepting_patterns(self.mappings[state as usize].apply(self.dfa_start))
    }

    /// The mapping (transformation) carried by an SFA state.
    #[inline]
    pub fn mapping(&self, state: SfaStateId) -> &Transformation {
        &self.mappings[state as usize]
    }

    /// Transition on a byte class.
    #[inline]
    pub fn next_by_class(&self, state: SfaStateId, class: u16) -> SfaStateId {
        self.table.get(state as usize * self.stride + class as usize)
    }

    /// Transition on a byte — one table lookup, exactly like the DFA.
    #[inline]
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> SfaStateId {
        if let Some(bt) = &self.byte_table {
            bt.get(state as usize * 256 + byte as usize)
        } else {
            self.next_by_class(state, self.classes.class_of(byte))
        }
    }

    /// The packed width this automaton's tables store state ids at. The
    /// automatic choice is the narrowest width fitting
    /// [`num_states`](DSfa::num_states); [`SfaConfig::repr`] can force a
    /// wider one.
    #[inline]
    pub fn repr(&self) -> StateIdRepr {
        self.repr
    }

    /// Bytes per stored state id (1, 2 or 4) — `repr().bytes()`.
    #[inline]
    pub fn state_id_bytes(&self) -> usize {
        self.repr.bytes()
    }

    /// True when the premultiplied dense byte table was built (see
    /// [`SfaConfig::premultiply`]).
    #[inline]
    pub fn premultiplied(&self) -> bool {
        self.byte_table.is_some()
    }

    /// True when every transition of `state` loops back to itself: the
    /// mapping carried by the state can never change again, whatever input
    /// follows. [`DSfa::run_from`] stops as soon as it reaches such a
    /// state.
    #[inline]
    pub fn is_sink(&self, state: SfaStateId) -> bool {
        self.sink[state as usize]
    }

    /// Runs the SFA over `input` starting from the identity state.
    pub fn run(&self, input: &[u8]) -> SfaStateId {
        self.run_from(self.initial(), input)
    }

    /// Runs the SFA over `input` from an arbitrary state (each worker of
    /// Algorithm 5 calls this on its chunk, always starting from the
    /// identity state).
    ///
    /// Two hot-loop refinements over the naive walk:
    /// * with a premultiplied table the per-byte step is a single dense
    ///   lookup, no `class_of` indirection;
    /// * reaching a sink state (a constant mapping that can no longer
    ///   change, e.g. the all-dead mapping after a synchronizing word)
    ///   stops the scan early — the remaining bytes cannot alter the
    ///   result. A sink can only ever be entered, never left, so the
    ///   `sink` bitmap is consulted only when the state changes; the
    ///   common self-looping byte costs just the lookup and a register
    ///   compare.
    ///
    /// With the `simd` feature the call dispatches once — never per byte —
    /// to the shuffle kernel when this automaton qualifies (see
    /// [`scan_kernel`](DSfa::scan_kernel)); the scalar loop remains the
    /// fallback and returns identical states.
    pub fn run_from(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        if self.sink[state as usize] {
            return state;
        }
        #[cfg(feature = "simd")]
        if let Some(simd::SimdKernels::Shuffle(k)) = self.simd_kernels() {
            return k.run(&self.sink, state, input);
        }
        self.scan_scalar(state, input)
    }

    /// [`run_from`](DSfa::run_from) restricted to the scalar loops: never
    /// dispatches to a SIMD kernel, whatever features and CPU are
    /// available. This is the semantic reference the kernels are tested
    /// against and the baseline the benchmarks compare them to; verdicts
    /// are identical to `run_from` by construction.
    pub fn run_from_scalar(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        if self.sink[state as usize] {
            return state;
        }
        self.scan_scalar(state, input)
    }

    /// The monomorphized scalar loops behind
    /// [`run_from_scalar`](DSfa::run_from_scalar).
    #[inline]
    fn scan_scalar(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        // One match on (table kind × packed width) per *call*; each arm is
        // a monomorphized loop whose loads are the packed width.
        match &self.byte_table {
            Some(PackedIds::U8(t)) => scan_dense(t, &self.sink, state, input),
            Some(PackedIds::U16(t)) => scan_dense(t, &self.sink, state, input),
            Some(PackedIds::U32(t)) => scan_dense(t, &self.sink, state, input),
            None => match &self.table {
                PackedIds::U8(t) => {
                    scan_classes(t, &self.classes, self.stride, &self.sink, state, input)
                }
                PackedIds::U16(t) => {
                    scan_classes(t, &self.classes, self.stride, &self.sink, state, input)
                }
                PackedIds::U32(t) => {
                    scan_classes(t, &self.classes, self.stride, &self.sink, state, input)
                }
            },
        }
    }

    /// Runs several independent `(state, input)` jobs, walking
    /// [`INTERLEAVE_LANES`] of them in lockstep to hide table-load
    /// latency.
    ///
    /// A single scan is one long dependent-load chain — every lookup
    /// waits for the previous one. Four independent chains keep four
    /// loads in flight, so a worker handed several haystacks (the sharded
    /// batch path) approaches the cache's bandwidth instead of its
    /// latency. Groups of four run over their common prefix length with
    /// no per-byte sink branch (a sink self-loops harmlessly); each tail
    /// then finishes through [`run_from`](DSfa::run_from), which keeps
    /// the sink early-exit. Results are returned in job order, and equal
    /// `run_from(state, input)` for every job. Without a premultiplied
    /// table the jobs simply run one by one.
    ///
    /// With the `simd` feature the whole batch dispatches once to the
    /// automaton's kernel when one applies (see
    /// [`scan_kernel`](DSfa::scan_kernel)): the gather kernel widens the
    /// lockstep walk to 8 lanes with vectorized table loads, the shuffle
    /// kernel runs each job at ~1 byte/cycle.
    pub fn run_from_many(&self, jobs: &[(SfaStateId, &[u8])]) -> Vec<SfaStateId> {
        #[cfg(feature = "simd")]
        if let Some(kernels) = self.simd_kernels() {
            return self.run_from_many_simd(kernels, jobs);
        }
        self.run_from_many_scalar(jobs)
    }

    /// [`run_from_many`](DSfa::run_from_many) restricted to the scalar
    /// loops (the [`INTERLEAVE_LANES`]-wide lockstep walk) — the
    /// reference and benchmark baseline for the SIMD batch path, with
    /// identical results.
    pub fn run_from_many_scalar(&self, jobs: &[(SfaStateId, &[u8])]) -> Vec<SfaStateId> {
        let mut out = Vec::with_capacity(jobs.len());
        let Some(bt) = &self.byte_table else {
            out.extend(jobs.iter().map(|&(s, input)| self.run_from_scalar(s, input)));
            return out;
        };
        let mut groups = jobs.chunks_exact(INTERLEAVE_LANES);
        for group in groups.by_ref() {
            let mut f = [group[0].0, group[1].0, group[2].0, group[3].0];
            let inputs = [group[0].1, group[1].1, group[2].1, group[3].1];
            let common = inputs.iter().map(|s| s.len()).min().unwrap_or(0);
            match bt {
                PackedIds::U8(t) => scan_dense_lanes(t, &mut f, &inputs, common),
                PackedIds::U16(t) => scan_dense_lanes(t, &mut f, &inputs, common),
                PackedIds::U32(t) => scan_dense_lanes(t, &mut f, &inputs, common),
            }
            for (lane, input) in inputs.iter().enumerate() {
                out.push(self.run_from_scalar(f[lane], &input[common..]));
            }
        }
        out.extend(groups.remainder().iter().map(|&(s, input)| self.run_from_scalar(s, input)));
        out
    }

    /// The SIMD batch path behind [`run_from_many`](DSfa::run_from_many).
    #[cfg(feature = "simd")]
    fn run_from_many_simd(
        &self,
        kernels: &simd::SimdKernels,
        jobs: &[(SfaStateId, &[u8])],
    ) -> Vec<SfaStateId> {
        match kernels {
            // The shuffle kernel already saturates on a single input;
            // lockstep interleaving would only add bookkeeping.
            simd::SimdKernels::Shuffle(k) => jobs
                .iter()
                .map(
                    |&(s, input)| {
                        if self.sink[s as usize] {
                            s
                        } else {
                            k.run(&self.sink, s, input)
                        }
                    },
                )
                .collect(),
            simd::SimdKernels::Gather(k) => {
                let bt =
                    self.byte_table.as_ref().expect("gather kernel implies a premultiplied table");
                let mut out = Vec::with_capacity(jobs.len());
                let mut groups = jobs.chunks_exact(simd::GATHER_LANES);
                for group in groups.by_ref() {
                    let mut f = [0 as SfaStateId; simd::GATHER_LANES];
                    let mut inputs: [&[u8]; simd::GATHER_LANES] = [&[]; simd::GATHER_LANES];
                    for (lane, &(s, input)) in group.iter().enumerate() {
                        f[lane] = s;
                        inputs[lane] = input;
                    }
                    let common = inputs.iter().map(|s| s.len()).min().unwrap_or(0);
                    k.run_lanes(bt, &self.sink, &mut f, &inputs, common);
                    for (lane, input) in inputs.iter().enumerate() {
                        out.push(self.run_from_scalar(f[lane], &input[common..]));
                    }
                }
                out.extend(
                    groups.remainder().iter().map(|&(s, input)| self.run_from_scalar(s, input)),
                );
                out
            }
        }
    }

    /// The lazily built SIMD kernels for this automaton (`None` when the
    /// scalar loops are the only applicable path).
    #[cfg(feature = "simd")]
    #[inline]
    fn simd_kernels(&self) -> Option<&simd::SimdKernels> {
        self.simd
            .get_or_init(|| simd::SimdKernels::build(&self.byte_table, self.num_states()))
            .as_ref()
    }

    /// Name of the transition kernel [`run_from`](DSfa::run_from) /
    /// [`run_from_many`](DSfa::run_from_many) dispatch to on this build,
    /// CPU and automaton shape: `"shuffle"` (SSSE3 `pshufb`, `u8` repr,
    /// ≤ 16 states, premultiplied), `"gather"` (AVX2 `vpgatherdd`, any
    /// premultiplied automaton) or `"scalar"` (the monomorphized loops —
    /// always the answer without the `simd` feature). Surfaced through
    /// `SizeReport` as the `scan_kernel` JSON field.
    pub fn scan_kernel(&self) -> &'static str {
        #[cfg(feature = "simd")]
        {
            simd::kernel_name(&self.byte_table, self.num_states())
        }
        #[cfg(not(feature = "simd"))]
        {
            "scalar"
        }
    }

    /// How many independent sub-chunks an *interleaving* caller should
    /// drive through one [`run_from_many`](DSfa::run_from_many) call to
    /// saturate this automaton's scan kernel on a single large haystack:
    ///
    /// * `"gather"` kernel → 8 (one AVX2 register of lane states): the
    ///   vector gather issues all lane loads at once, so more lanes means
    ///   more memory-level parallelism on cache-missing tables;
    /// * scalar premultiplied → [`INTERLEAVE_LANES`] (4): the lockstep
    ///   scalar walk keeps that many dependent-load chains in flight;
    /// * `"shuffle"` kernel or no premultiplied table → 1: the shuffle
    ///   kernel already runs at ~1 byte/cycle from a 4 KiB L1-resident
    ///   table (splitting only adds composition overhead), and without a
    ///   premultiplied table batch jobs run one by one anyway.
    ///
    /// `sfa-matcher` consumes this through
    /// `Engine::plan_chunks_interleaved` to split each worker's chunk;
    /// composing the per-sub-chunk states (Lemma 1) keeps verdicts exact.
    pub fn preferred_lanes(&self) -> usize {
        if self.byte_table.is_none() {
            return 1;
        }
        #[cfg(feature = "simd")]
        {
            match self.scan_kernel() {
                "gather" => simd::GATHER_LANES,
                "shuffle" => 1,
                _ => INTERLEAVE_LANES,
            }
        }
        #[cfg(not(feature = "simd"))]
        {
            INTERLEAVE_LANES
        }
    }

    /// Whole-input membership using the SFA alone (sequential; the parallel
    /// version lives in `sfa-matcher`).
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Composes the mappings of two SFA states: if `a = f_w` and `b = f_v`,
    /// the result is `f_wv`. This is the `⋄` operator of the reduction step.
    pub fn compose(&self, a: SfaStateId, b: SfaStateId) -> Transformation {
        self.mapping(a).then(self.mapping(b))
    }

    /// Composes two SFA states *as states*: the state whose mapping is
    /// `f_w ⋄ f_v` when `a = f_w` and `b = f_v`.
    ///
    /// This is total: the reachable transformations are closed under
    /// composition (Lemma 1 — `f_w ⋄ f_v = f_wv`, the mapping of an actual
    /// word), so the composite is always an existing state. It is what lets
    /// a streaming matcher fold the per-block states produced by parallel
    /// chunk scans into one running state and keep matching from it.
    ///
    /// Three compositions resolve without touching the mapping index:
    /// identity on either side is a no-op, and a [sink](DSfa::is_sink) on
    /// the left absorbs anything (a sink's image state loops on every byte,
    /// so no suffix can move it). The general case composes the two
    /// mappings (`O(|D|)`) and resolves the result through the lazily built
    /// state index.
    pub fn compose_states(&self, a: SfaStateId, b: SfaStateId) -> SfaStateId {
        if a == self.initial() {
            return b;
        }
        if b == self.initial() || self.is_sink(a) {
            return a;
        }
        let composed = self.compose(a, b);
        *self
            .state_index()
            .get(&composed)
            .expect("SFA states are closed under composition (Lemma 1)")
    }

    /// Looks up the SFA state corresponding to a transformation, if that
    /// transformation is reachable (i.e. is an actual SFA state).
    ///
    /// The first call builds a mapping → id hash index (costing about as
    /// much memory as the mappings themselves); subsequent calls are one
    /// hash lookup.
    pub fn state_of(&self, mapping: &Transformation) -> Option<SfaStateId> {
        self.state_index().get(mapping).copied()
    }

    /// The lazily built mapping → state-id index backing
    /// [`state_of`](DSfa::state_of) and
    /// [`compose_states`](DSfa::compose_states).
    fn state_index(&self) -> &HashMap<Transformation, SfaStateId> {
        self.state_index.get_or_init(|| {
            self.mappings.iter().enumerate().map(|(i, m)| (m.clone(), i as SfaStateId)).collect()
        })
    }

    /// Bytes occupied by the (class-compressed) transition table, at the
    /// packed width.
    pub fn table_bytes(&self) -> usize {
        self.table.bytes()
    }

    /// Bytes occupied by the premultiplied dense byte table at the packed
    /// width (0 when it was not built).
    pub fn byte_table_bytes(&self) -> usize {
        self.byte_table.as_ref().map_or(0, |t| t.bytes())
    }

    /// Bytes occupied by the state mappings (needed by the reduction step).
    pub fn mapping_bytes(&self) -> usize {
        self.mappings.iter().map(|m| m.heap_bytes()).sum()
    }

    /// Re-interprets the SFA as a plain DFA over the same byte classes
    /// (the SFA *is* deterministic). Used for equivalence checking. The
    /// packed rows are widened back to the automata layer's `u32` ids at
    /// this boundary.
    pub fn as_dfa(&self) -> Dfa {
        Dfa::from_parts(
            self.classes.clone(),
            self.table.unpack(),
            self.accepting.clone(),
            self.initial(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::equivalence::equivalent;
    use sfa_automata::minimal_dfa_from_pattern;

    fn dsfa(pattern: &str) -> (Dfa, DSfa) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        (dfa, sfa)
    }

    #[test]
    fn paper_example_ab_star_has_six_states() {
        // Fig. 2 / Table I: the D-SFA of (ab)* has exactly 6 states
        // f0..f5, built from the 3-state DFA (2 live + dead).
        let (dfa, sfa) = dsfa("(ab)*");
        assert_eq!(dfa.num_states(), 3);
        assert_eq!(sfa.num_states(), 6);
        assert_eq!(sfa.num_dfa_states(), 3);
        // The initial state is the identity mapping.
        assert!(sfa.mapping(sfa.initial()).is_identity());
    }

    #[test]
    fn paper_example_computation_over_abab() {
        // Example 1: f0 -a-> f1 -b-> f4 -a-> f1 -b-> f4 and f4(0) = 0,
        // so abab is accepted.
        let (dfa, sfa) = dsfa("(ab)*");
        let f = sfa.run(b"abab");
        assert!(sfa.is_accepting(f));
        assert_eq!(sfa.mapping(f).apply(dfa.start()), dfa.start());
        // The same SFA state is reached after ab (period 2).
        assert_eq!(sfa.run(b"ab"), f);
        // And a different, non-accepting state after aba.
        let g = sfa.run(b"aba");
        assert_ne!(g, f);
        assert!(!sfa.is_accepting(g));
    }

    #[test]
    fn sfa_equivalent_to_dfa() {
        for pattern in
            ["(ab)*", "a|bc|d", "(a|b)*abb", "([0-4]{2}[5-9]{2})*", "a{2,4}b{1,3}", "(?i)get|post"]
        {
            let (dfa, sfa) = dsfa(pattern);
            assert!(equivalent(&dfa, &sfa.as_dfa()), "pattern {:?}", pattern);
            for input in [&b""[..], b"ab", b"abab", b"abb", b"0055", b"GET", b"zzz"] {
                assert_eq!(dfa.accepts(input), sfa.accepts(input), "{:?} {:?}", pattern, input);
            }
        }
    }

    #[test]
    fn rn_family_sizes_match_paper() {
        // Sect. VI-B: |D| = 2n (live) and |S_d| is "almost the square" of
        // |D|. Analytically the reachable transformations of the complete
        // DFA number d(d+1) with d = 2n (d^2 single-survivor mappings, d-2
        // prefix mappings, the identity and the all-dead sink). The paper
        // reports 109 for n = 5, i.e. one fewer — it does not count one of
        // the sink states; we assert our exact count and check the
        // "quadratic, not exponential" property the paper cares about.
        for n in [2usize, 3, 5] {
            let pattern = format!("([0-4]{{{n}}}[5-9]{{{n}}})*");
            let (dfa, sfa) = dsfa(&pattern);
            let d = 2 * n;
            assert_eq!(dfa.num_live_states(), d);
            assert_eq!(sfa.num_states(), d * (d + 1), "n = {}", n);
            assert!(sfa.num_states() <= (dfa.num_states()) * (dfa.num_states()));
        }
        // The paper's headline number for n = 5 is 109; ours counts 110
        // (the all-dead mapping included).
        let (_, sfa) = dsfa("([0-4]{5}[5-9]{5})*");
        assert_eq!(sfa.num_states(), 110);
    }

    #[test]
    fn fig10_expression_sfa_size() {
        // Sect. VI-C: (([02468][13579]){5})* — "the size of DFA is 10, and
        // the size of SFA is 21". Our count is 22 because the all-dead
        // mapping is included as a state; the live structure (10 even-phase
        // mappings, 10 odd-phase mappings, identity) matches the paper.
        let (dfa, sfa) = dsfa("(([02468][13579]){5})*");
        assert_eq!(dfa.num_live_states(), 10);
        assert_eq!(sfa.num_states(), 22);
    }

    #[test]
    fn composition_matches_concatenated_run() {
        let (_, sfa) = dsfa("([0-4]{2}[5-9]{2})*");
        let w1 = b"0456";
        let w2 = b"0055044";
        let f1 = sfa.run(w1);
        let f2 = sfa.run(w2);
        let mut whole = Vec::new();
        whole.extend_from_slice(w1);
        whole.extend_from_slice(w2);
        let f12 = sfa.run(&whole);
        // Lemma 1: f_{w1} ⋄ f_{w2} = f_{w1 w2}.
        assert_eq!(&sfa.compose(f1, f2), sfa.mapping(f12));
        assert_eq!(sfa.state_of(&sfa.compose(f1, f2)), Some(f12));
    }

    #[test]
    fn compose_states_matches_concatenated_run() {
        // compose_states is the state-level form of Lemma 1: for any two
        // reachable states the composite is again a state, and it is the
        // state of the concatenated word.
        let (_, sfa) = dsfa("([0-4]{2}[5-9]{2})*");
        let words: [&[u8]; 5] = [b"", b"0456", b"0055044", b"9", b"005504590055"];
        for w1 in words {
            for w2 in words {
                let f1 = sfa.run(w1);
                let f2 = sfa.run(w2);
                let mut whole = w1.to_vec();
                whole.extend_from_slice(w2);
                assert_eq!(sfa.compose_states(f1, f2), sfa.run(&whole), "w1 {:?} w2 {:?}", w1, w2);
            }
        }
    }

    #[test]
    fn compose_states_shortcuts_identity_and_sink() {
        let (_, sfa) = dsfa("(ab)*");
        let id = sfa.initial();
        let f = sfa.run(b"ab");
        let dead = sfa.run(b"aa");
        assert!(sfa.is_sink(dead));
        // Identity is neutral on both sides.
        assert_eq!(sfa.compose_states(id, f), f);
        assert_eq!(sfa.compose_states(f, id), f);
        // A sink on the left absorbs any right-hand state.
        for g in 0..sfa.num_states() as SfaStateId {
            assert_eq!(sfa.compose_states(dead, g), dead);
        }
    }

    #[test]
    fn state_limit_enforced() {
        let dfa = minimal_dfa_from_pattern("([0-4]{5}[5-9]{5})*").unwrap();
        let err = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 50, ..SfaConfig::default() })
            .unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 50 });
    }

    #[test]
    fn accepting_patterns_refine_is_accepting() {
        use sfa_automata::{determinize, minimize, DfaConfig, Nfa};
        let nfa = Nfa::from_patterns(["(ab)*", "a+", "[ab]{2}"]).unwrap();
        let dfa = minimize(&determinize(&nfa, &DfaConfig::default()).unwrap());
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        assert_eq!(sfa.pattern_count(), 3);
        for input in [&b""[..], b"a", b"ab", b"aa", b"abab", b"ba", b"zz"] {
            let state = sfa.run(input);
            let pats = sfa.accepting_patterns(state);
            assert_eq!(pats, dfa.matching_patterns(input), "input {:?}", input);
            assert_eq!(sfa.is_accepting(state), !pats.is_empty(), "input {:?}", input);
            assert_eq!(pats, sfa.dfa_accepting_patterns(dfa.run(input)));
        }
        // "ab" fires (ab)* and [ab]{2} together in a single pass.
        let hits = sfa.accepting_patterns(sfa.run(b"ab"));
        assert_eq!(hits.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn accepting_states_check_dfa_start_image() {
        let (dfa, sfa) = dsfa("(ab)*");
        for s in 0..sfa.num_states() as SfaStateId {
            let expected = dfa.is_accepting(sfa.mapping(s).apply(dfa.start()));
            assert_eq!(sfa.is_accepting(s), expected);
        }
    }

    #[test]
    fn table_and_mapping_sizes() {
        let (_, sfa) = dsfa("(ab)*");
        // 6 states pack to u8: one byte per stored id.
        assert_eq!(sfa.repr(), StateIdRepr::U8);
        assert_eq!(sfa.state_id_bytes(), 1);
        assert_eq!(sfa.table_bytes(), sfa.num_states() * sfa.num_classes() * sfa.state_id_bytes());
        assert_eq!(sfa.mapping_bytes(), sfa.num_states() * sfa.num_dfa_states() * 4);
    }

    #[test]
    fn premultiplied_table_agrees_with_class_rows() {
        let dfa = minimal_dfa_from_pattern("(a|b)*abb").unwrap();
        let fast = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let slow = DSfa::from_dfa(&dfa, &SfaConfig { premultiply: false, ..SfaConfig::default() })
            .unwrap();
        assert!(fast.premultiplied());
        assert!(!slow.premultiplied());
        assert_eq!(fast.byte_table_bytes(), fast.num_states() * 256 * fast.state_id_bytes());
        assert_eq!(slow.byte_table_bytes(), 0);
        // Every single-byte step agrees between the dense and the
        // class-compressed layout.
        for s in 0..fast.num_states() as SfaStateId {
            for byte in 0..=255u8 {
                assert_eq!(fast.next_state(s, byte), slow.next_state(s, byte));
            }
        }
        for input in [&b""[..], b"abb", b"aababb", b"zzz", b"abba"] {
            assert_eq!(fast.run(input), slow.run(input));
            assert_eq!(fast.accepts(input), dfa.accepts(input));
        }
    }

    #[test]
    fn sink_states_are_constant_and_absorbing() {
        let (_, sfa) = dsfa("(ab)*");
        let mut sinks = 0;
        for s in 0..sfa.num_states() as SfaStateId {
            if sfa.is_sink(s) {
                sinks += 1;
                // A sink's mapping is constant and survives any further byte.
                assert!(sfa.mapping(s).is_constant());
                for byte in [b'a', b'b', b'z'] {
                    assert_eq!(sfa.next_state(s, byte), s);
                }
            }
        }
        // (ab)* has exactly one sink: the all-dead mapping (reached e.g.
        // after the synchronizing word "aa").
        assert_eq!(sinks, 1);
        let dead = sfa.run(b"aa");
        assert!(sfa.is_sink(dead));
        // The early exit must not change the result: a long tail after the
        // synchronizing word still lands in the same state.
        let mut long = b"aa".to_vec();
        long.resize(long.len() + 10_000, b'a');
        assert_eq!(sfa.run(&long), dead);
        assert!(!sfa.accepts(&long));
    }

    #[test]
    fn empty_and_universal_languages() {
        let (_, sfa) = dsfa("(?s).*");
        assert_eq!(sfa.num_states(), 1, "universal language: identity only");
        assert!(sfa.accepts(b""));
        assert!(sfa.accepts(b"anything"));

        use sfa_automata::determinize::{dfa_from_ast, DfaConfig};
        use sfa_regex_syntax::ast::Ast;
        use sfa_regex_syntax::ByteSet;
        let void = sfa_automata::minimize(
            &dfa_from_ast(&Ast::Class(ByteSet::EMPTY), &DfaConfig::default()).unwrap(),
        );
        let sfa = DSfa::from_dfa(&void, &SfaConfig::default()).unwrap();
        assert_eq!(sfa.num_states(), 1);
        assert!(!sfa.accepts(b""));
        assert!(!sfa.accepts(b"a"));
    }

    /// An `n`-state rotation DFA (state `i` steps to `i+1 mod n` on every
    /// byte, state 0 accepts) whose D-SFA has *exactly* `n` states — the
    /// reachable transformations are the `n` rotations — which pins the
    /// repr promotion boundaries precisely.
    fn cycle_dfa(n: usize) -> Dfa {
        let table: Vec<StateId> = (0..n).map(|i| ((i + 1) % n) as StateId).collect();
        let mut accepting = vec![false; n];
        accepting[0] = true;
        Dfa::from_parts(ByteClasses::single(), table, accepting, 0)
    }

    #[test]
    fn repr_selection_rule() {
        assert_eq!(StateIdRepr::for_states(1), StateIdRepr::U8);
        assert_eq!(StateIdRepr::for_states(255), StateIdRepr::U8);
        assert_eq!(StateIdRepr::for_states(256), StateIdRepr::U8);
        assert_eq!(StateIdRepr::for_states(257), StateIdRepr::U16);
        assert_eq!(StateIdRepr::for_states(65_536), StateIdRepr::U16);
        assert_eq!(StateIdRepr::for_states(65_537), StateIdRepr::U32);
        for repr in [StateIdRepr::U8, StateIdRepr::U16, StateIdRepr::U32] {
            assert_eq!(StateIdRepr::parse(repr.as_str()), Some(repr));
            assert_eq!(repr.to_string(), repr.as_str());
        }
        assert_eq!(StateIdRepr::parse("u64"), None);
    }

    #[test]
    fn u8_to_u16_promotion_boundary() {
        // Automata with exactly 255 / 256 / 257 SFA states: ids 0..=254
        // and 0..=255 fit one byte; 257 states force two.
        for (n, expected) in
            [(255, StateIdRepr::U8), (256, StateIdRepr::U8), (257, StateIdRepr::U16)]
        {
            let dfa = cycle_dfa(n);
            let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
            assert_eq!(sfa.num_states(), n, "rotation SFA has exactly n states");
            assert_eq!(sfa.repr(), expected, "n = {n}");
            assert_eq!(sfa.table_bytes(), n * sfa.num_classes() * expected.bytes());
            // The walk crosses the full id range: after k bytes the state
            // is rotation k, and n bytes return to the identity.
            let mut f = sfa.initial();
            for step in 1..=n {
                f = sfa.next_state(f, b'x');
                assert_eq!(sfa.is_accepting(f), step % n == 0 || step == n);
            }
            assert_eq!(f, sfa.initial());
            assert_eq!(sfa.run(&vec![b'x'; n]), sfa.initial());
        }
    }

    #[test]
    fn forced_repr_widens_but_never_narrows() {
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        // 6 states: auto is u8; forcing wider widths is honored.
        for (forced, expected) in [
            (None, StateIdRepr::U8),
            (Some(StateIdRepr::U8), StateIdRepr::U8),
            (Some(StateIdRepr::U16), StateIdRepr::U16),
            (Some(StateIdRepr::U32), StateIdRepr::U32),
        ] {
            let sfa =
                DSfa::from_dfa(&dfa, &SfaConfig { repr: forced, ..SfaConfig::default() }).unwrap();
            assert_eq!(sfa.repr(), expected, "forced {forced:?}");
            assert_eq!(sfa.state_id_bytes(), expected.bytes());
        }
        // 257 states: a forced u8 cannot hold the ids and is widened.
        let big = cycle_dfa(257);
        let sfa = DSfa::from_dfa(
            &big,
            &SfaConfig { repr: Some(StateIdRepr::U8), ..SfaConfig::default() },
        )
        .unwrap();
        assert_eq!(sfa.repr(), StateIdRepr::U16);
    }

    #[test]
    fn packed_reprs_agree_on_runs_and_tables() {
        let dfa = minimal_dfa_from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let base = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        for forced in [StateIdRepr::U8, StateIdRepr::U16, StateIdRepr::U32] {
            for premultiply in [true, false] {
                let cfg = SfaConfig { repr: Some(forced), premultiply, ..SfaConfig::default() };
                let sfa = DSfa::from_dfa(&dfa, &cfg).unwrap();
                // Interning order is repr-independent, so state ids agree
                // exactly, not just up to isomorphism.
                for input in [&b""[..], b"0055", b"00550459", b"005", b"5500", b"zzz"] {
                    assert_eq!(sfa.run(input), base.run(input), "{forced:?} {input:?}");
                }
                for s in 0..sfa.num_states() as SfaStateId {
                    for byte in [b'0', b'5', b'9', b'z'] {
                        assert_eq!(sfa.next_state(s, byte), base.next_state(s, byte));
                    }
                }
            }
        }
    }

    #[test]
    fn run_from_many_agrees_with_run_from() {
        let (_, sfa) = dsfa("([0-4]{2}[5-9]{2})*");
        let dead = sfa.run(b"z");
        assert!(sfa.is_sink(dead));
        let long = b"00550459".repeat(100);
        // Mixed lengths (forcing unequal tails), a sink start, an empty
        // input, and a count that is not a multiple of the lane width.
        let jobs: Vec<(SfaStateId, &[u8])> = vec![
            (sfa.initial(), &long[..]),
            (sfa.initial(), b"0055"),
            (dead, &long[..]),
            (sfa.initial(), b""),
            (sfa.run(b"00"), b"550459"),
            (sfa.initial(), b"zz"),
            (sfa.initial(), &long[..17]),
        ];
        let expected: Vec<SfaStateId> = jobs.iter().map(|&(s, i)| sfa.run_from(s, i)).collect();
        assert_eq!(sfa.run_from_many(&jobs), expected);
        // The class-row fallback path (no premultiplied table) agrees too.
        let dfa = minimal_dfa_from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let slow = DSfa::from_dfa(&dfa, &SfaConfig { premultiply: false, ..SfaConfig::default() })
            .unwrap();
        assert_eq!(slow.run_from_many(&jobs), expected);
        assert!(sfa.run_from_many(&[]).is_empty());
    }

    /// `run_from` / `run_from_many` must return exactly what their
    /// `*_scalar` references do, whatever kernel the dispatch picks —
    /// trivial without the `simd` feature, the real agreement check with
    /// it (shuffle on the 6-state automaton, gather on the wider ones).
    /// Lengths cover 0, 1, the shuffle kernel's 64-byte block boundary,
    /// lane-remainder tails and mid-input sink entry.
    #[test]
    fn simd_dispatch_agrees_with_scalar() {
        let automata: Vec<DSfa> = vec![
            dsfa("(ab)*").1,               // 6 states: shuffle candidate
            dsfa("([0-4]{2}[5-9]{2})*").1, // 20 states: u8 gather candidate
            DSfa::from_dfa(&cycle_dfa(300), &SfaConfig::default()).unwrap(), // u16
            DSfa::from_dfa(
                &minimal_dfa_from_pattern("(ab)*").unwrap(),
                &SfaConfig { repr: Some(StateIdRepr::U32), ..SfaConfig::default() },
            )
            .unwrap(), // forced u32
        ];
        let ab = b"ab".repeat(300);
        for sfa in &automata {
            let mut inputs: Vec<Vec<u8>> = Vec::new();
            for len in [0usize, 1, 2, 63, 64, 65, 128, 300, 599] {
                inputs.push(ab[..len].to_vec());
            }
            // Sink entry mid-input: a byte outside every pattern's
            // alphabet early, then a long tail (and one past the first
            // block boundary).
            let mut poisoned = ab[..7].to_vec();
            poisoned.push(b'!');
            poisoned.extend_from_slice(&ab[..200]);
            inputs.push(poisoned);
            let mut late_poison = ab[..100].to_vec();
            late_poison.push(b'!');
            late_poison.extend_from_slice(&ab[..100]);
            inputs.push(late_poison);
            // Keeps the window automaton out of its sink for the whole
            // scan (and covers a non-multiple-of-64 length).
            inputs.push(b"00550459".repeat(37));
            for input in &inputs {
                assert_eq!(
                    sfa.run_from(sfa.initial(), input),
                    sfa.run_from_scalar(sfa.initial(), input)
                );
            }
            // Batches of every size 0..=13 exercise both the 8-lane
            // gather groups and the remainder path.
            let jobs: Vec<(SfaStateId, &[u8])> =
                inputs.iter().cycle().take(13).map(|v| (sfa.initial(), &v[..])).collect();
            for n in 0..=jobs.len() {
                assert_eq!(sfa.run_from_many(&jobs[..n]), sfa.run_from_many_scalar(&jobs[..n]));
            }
            // From every state, single bytes agree too.
            for s in 0..sfa.num_states().min(64) as SfaStateId {
                for b in [b'a', b'b', b'0', b'7', b'!'] {
                    assert_eq!(sfa.run_from(s, &[b]), sfa.run_from_scalar(s, &[b]));
                }
            }
        }
    }

    #[test]
    fn scan_kernel_and_preferred_lanes_are_consistent() {
        // Without a premultiplied table there is nothing to vectorize.
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let plain = DSfa::from_dfa(&dfa, &SfaConfig { premultiply: false, ..SfaConfig::default() })
            .unwrap();
        assert_eq!(plain.scan_kernel(), "scalar");
        assert_eq!(plain.preferred_lanes(), 1);

        // Premultiplied automata report whichever kernel this build/CPU
        // dispatches to, and lanes consistent with it.
        let small = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        assert!(small.num_states() <= 16);
        assert!(matches!(small.scan_kernel(), "shuffle" | "gather" | "scalar"));
        let wide = DSfa::from_dfa(&cycle_dfa(300), &SfaConfig::default()).unwrap();
        assert!(matches!(wide.scan_kernel(), "gather" | "scalar"));
        for sfa in [&small, &wide] {
            let lanes = sfa.preferred_lanes();
            match sfa.scan_kernel() {
                "gather" => assert_eq!(lanes, 8),
                "shuffle" => assert_eq!(lanes, 1),
                _ => assert_eq!(lanes, INTERLEAVE_LANES),
            }
        }
        #[cfg(not(feature = "simd"))]
        {
            assert_eq!(small.scan_kernel(), "scalar");
            assert_eq!(small.preferred_lanes(), INTERLEAVE_LANES);
        }
    }
}
