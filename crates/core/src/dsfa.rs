//! D-SFA: the simultaneous finite automaton constructed from a DFA
//! (Definition 5 + Algorithm 4 of the paper, specialized to deterministic
//! input as described in Section V-A).
//!
//! Each D-SFA state is a [`Transformation`] of the DFA state set: the state
//! reached after reading a word `w` is the mapping `q ↦ δ̂(q, w)`, i.e. the
//! simultaneous simulation of the DFA from *every* start state. The D-SFA
//! itself is an ordinary DFA over the same byte classes, so matching costs
//! exactly one table lookup per input byte — that is the whole point of the
//! model: the speculative simulation of Algorithm 3 has been evaluated at
//! construction time instead of at match time.

use crate::mapping::Transformation;
use crate::SfaConfig;
use sfa_automata::{ByteClasses, CompileError, Dfa, PatternSet, StateId};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Identifier of an SFA state.
pub type SfaStateId = u32;

/// A simultaneous finite automaton built from a DFA.
#[derive(Clone, Debug)]
pub struct DSfa {
    classes: ByteClasses,
    stride: usize,
    table: Vec<SfaStateId>,
    /// Premultiplied dense `256 × |S_d|` byte→state table (row `s` holds
    /// the successor of `s` for every raw byte value), built when
    /// [`SfaConfig::premultiply`] is set and the table fits the size
    /// ceiling. Fuses the `class_of` indirection out of the hot loop.
    byte_table: Option<Box<[SfaStateId]>>,
    /// `sink[s]` is true when every transition of `s` loops back to `s` —
    /// once reached, the mapping can never change again, so a chunk run may
    /// stop early (the constant/synchronizing-word early exit: the all-dead
    /// mapping is always a sink, and in `Contains` mode so is the
    /// constant-to-accepting mapping).
    sink: Box<[bool]>,
    accepting: Vec<bool>,
    mappings: Vec<Transformation>,
    /// Mapping → state-id index, built lazily on the first
    /// [`state_of`](DSfa::state_of) / [`compose_states`](DSfa::compose_states)
    /// call that needs it (streaming composition does; the chunk-scan hot
    /// paths never do). Costs roughly as much memory as `mappings` itself,
    /// which is why it is not built eagerly for every SFA.
    state_index: OnceLock<HashMap<Transformation, SfaStateId>>,
    dfa_start: StateId,
    dfa_accepting: Vec<bool>,
    /// Number of original patterns compiled into the source DFA.
    pattern_count: usize,
    /// Per-DFA-state index into `dfa_accept_sets` (copied from the source
    /// DFA): which patterns each DFA state accepts.
    dfa_accept_index: Vec<u32>,
    /// The distinct pattern accept sets of the source DFA (entry 0 is the
    /// empty set).
    dfa_accept_sets: Vec<PatternSet>,
}

impl DSfa {
    /// **Algorithm 4 (correspondence construction)** specialized to a
    /// deterministic source automaton.
    ///
    /// Starting from the identity mapping `f_I`, repeatedly extends every
    /// discovered mapping by every byte class:
    /// `f_next(q) = δ(f(q), σ)`. Mappings are interned so each distinct
    /// transformation becomes exactly one SFA state.
    pub fn from_dfa(dfa: &Dfa, config: &SfaConfig) -> Result<DSfa, CompileError> {
        let n = dfa.num_states();
        let stride = dfa.num_classes();

        let mut ids: HashMap<Transformation, SfaStateId> = HashMap::new();
        let mut mappings: Vec<Transformation> = Vec::new();
        let mut table: Vec<SfaStateId> = Vec::new();

        let intern = |f: Transformation,
                      mappings: &mut Vec<Transformation>,
                      ids: &mut HashMap<Transformation, SfaStateId>|
         -> Result<SfaStateId, CompileError> {
            if let Some(&id) = ids.get(&f) {
                return Ok(id);
            }
            if mappings.len() >= config.max_states {
                return Err(CompileError::TooManyStates { limit: config.max_states });
            }
            let id = mappings.len() as SfaStateId;
            ids.insert(f.clone(), id);
            mappings.push(f);
            Ok(id)
        };

        let initial = intern(Transformation::identity(n), &mut mappings, &mut ids)?;
        debug_assert_eq!(initial, 0);

        let mut processed = 0usize;
        while processed < mappings.len() {
            let current = mappings[processed].clone();
            processed += 1;
            for class in 0..stride {
                let next = Transformation::from_vec(
                    current
                        .as_slice()
                        .iter()
                        .map(|&q| dfa.next_by_class(q, class as u16))
                        .collect(),
                );
                let next_id = intern(next, &mut mappings, &mut ids)?;
                table.push(next_id);
            }
        }

        let dfa_start = dfa.start();
        let accepting = mappings.iter().map(|f| dfa.is_accepting(f.apply(dfa_start))).collect();

        let num_states = mappings.len();
        let sink: Box<[bool]> = (0..num_states)
            .map(|s| (0..stride).all(|c| table[s * stride + c] == s as SfaStateId))
            .collect();

        let classes = dfa.classes().clone();
        let byte_table = if config.premultiply
            && num_states.saturating_mul(256).saturating_mul(std::mem::size_of::<SfaStateId>())
                <= SfaConfig::PREMULTIPLY_MAX_BYTES
        {
            let mut dense = vec![0 as SfaStateId; num_states * 256];
            for s in 0..num_states {
                let row = &table[s * stride..(s + 1) * stride];
                let dense_row = &mut dense[s * 256..(s + 1) * 256];
                for (byte, slot) in dense_row.iter_mut().enumerate() {
                    *slot = row[classes.class_of(byte as u8) as usize];
                }
            }
            Some(dense.into_boxed_slice())
        } else {
            None
        };

        Ok(DSfa {
            classes,
            stride,
            table,
            byte_table,
            sink,
            accepting,
            mappings,
            state_index: OnceLock::new(),
            dfa_start,
            dfa_accepting: dfa.accepting().to_vec(),
            pattern_count: dfa.pattern_count(),
            dfa_accept_index: dfa.accept_indices().to_vec(),
            dfa_accept_sets: dfa.distinct_accept_sets().to_vec(),
        })
    }

    /// Convenience: pattern → NFA → DFA → minimal DFA → D-SFA with default
    /// limits.
    pub fn from_pattern(pattern: &str) -> Result<DSfa, CompileError> {
        let dfa = sfa_automata::minimal_dfa_from_pattern(pattern)?;
        DSfa::from_dfa(&dfa, &SfaConfig::default())
    }

    /// Number of SFA states (`|S_d|` in the paper).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.mappings.len()
    }

    /// Number of states of the source DFA.
    #[inline]
    pub fn num_dfa_states(&self) -> usize {
        self.dfa_accepting.len()
    }

    /// The byte classes shared with the source DFA.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Number of byte classes (row width of the transition table).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.stride
    }

    /// The initial state (always 0: the identity mapping `f_I`).
    #[inline]
    pub fn initial(&self) -> SfaStateId {
        0
    }

    /// The start state of the source DFA.
    #[inline]
    pub fn dfa_start(&self) -> StateId {
        self.dfa_start
    }

    /// Returns true if the DFA state is accepting (used by reductions).
    #[inline]
    pub fn dfa_is_accepting(&self, q: StateId) -> bool {
        self.dfa_accepting[q as usize]
    }

    /// Returns true if the SFA state is accepting
    /// (`F_s = { f | f(q_0) ∈ F_D }`).
    #[inline]
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        self.accepting[state as usize]
    }

    /// Number of original patterns compiled into the source DFA (1 for
    /// single-pattern automata).
    #[inline]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The set of patterns a source-DFA state accepts (the per-rule
    /// verdict carried through from compilation — used by the reductions,
    /// which end on a DFA state).
    #[inline]
    pub fn dfa_accepting_patterns(&self, q: StateId) -> &PatternSet {
        &self.dfa_accept_sets[self.dfa_accept_index[q as usize] as usize]
    }

    /// The set of patterns matched when the whole input lands in `state`:
    /// the accept set of `f(q_0)`. The multi-pattern refinement of
    /// [`is_accepting`](DSfa::is_accepting) — non-empty exactly when the
    /// state accepts — and the hook the streaming matcher reads its
    /// per-rule verdict from. `O(1)`: one mapping lookup plus one
    /// interned-set index.
    #[inline]
    pub fn accepting_patterns(&self, state: SfaStateId) -> &PatternSet {
        self.dfa_accepting_patterns(self.mappings[state as usize].apply(self.dfa_start))
    }

    /// The mapping (transformation) carried by an SFA state.
    #[inline]
    pub fn mapping(&self, state: SfaStateId) -> &Transformation {
        &self.mappings[state as usize]
    }

    /// Transition on a byte class.
    #[inline]
    pub fn next_by_class(&self, state: SfaStateId, class: u16) -> SfaStateId {
        self.table[state as usize * self.stride + class as usize]
    }

    /// Transition on a byte — one table lookup, exactly like the DFA.
    #[inline]
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> SfaStateId {
        if let Some(bt) = &self.byte_table {
            bt[state as usize * 256 + byte as usize]
        } else {
            self.next_by_class(state, self.classes.class_of(byte))
        }
    }

    /// True when the premultiplied dense byte table was built (see
    /// [`SfaConfig::premultiply`]).
    #[inline]
    pub fn premultiplied(&self) -> bool {
        self.byte_table.is_some()
    }

    /// True when every transition of `state` loops back to itself: the
    /// mapping carried by the state can never change again, whatever input
    /// follows. [`DSfa::run_from`] stops as soon as it reaches such a
    /// state.
    #[inline]
    pub fn is_sink(&self, state: SfaStateId) -> bool {
        self.sink[state as usize]
    }

    /// Runs the SFA over `input` starting from the identity state.
    pub fn run(&self, input: &[u8]) -> SfaStateId {
        self.run_from(self.initial(), input)
    }

    /// Runs the SFA over `input` from an arbitrary state (each worker of
    /// Algorithm 5 calls this on its chunk, always starting from the
    /// identity state).
    ///
    /// Two hot-loop refinements over the naive walk:
    /// * with a premultiplied table the per-byte step is a single dense
    ///   lookup, no `class_of` indirection;
    /// * reaching a sink state (a constant mapping that can no longer
    ///   change, e.g. the all-dead mapping after a synchronizing word)
    ///   stops the scan early — the remaining bytes cannot alter the
    ///   result. A sink can only ever be entered, never left, so the
    ///   `sink` bitmap is consulted only when the state changes; the
    ///   common self-looping byte costs just the lookup and a register
    ///   compare.
    pub fn run_from(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        let mut f = state;
        if self.sink[f as usize] {
            return f;
        }
        if let Some(bt) = &self.byte_table {
            for &b in input {
                let next = bt[f as usize * 256 + b as usize];
                if next != f {
                    f = next;
                    if self.sink[f as usize] {
                        return f;
                    }
                }
            }
        } else {
            for &b in input {
                let next = self.next_by_class(f, self.classes.class_of(b));
                if next != f {
                    f = next;
                    if self.sink[f as usize] {
                        return f;
                    }
                }
            }
        }
        f
    }

    /// Whole-input membership using the SFA alone (sequential; the parallel
    /// version lives in `sfa-matcher`).
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Composes the mappings of two SFA states: if `a = f_w` and `b = f_v`,
    /// the result is `f_wv`. This is the `⋄` operator of the reduction step.
    pub fn compose(&self, a: SfaStateId, b: SfaStateId) -> Transformation {
        self.mapping(a).then(self.mapping(b))
    }

    /// Composes two SFA states *as states*: the state whose mapping is
    /// `f_w ⋄ f_v` when `a = f_w` and `b = f_v`.
    ///
    /// This is total: the reachable transformations are closed under
    /// composition (Lemma 1 — `f_w ⋄ f_v = f_wv`, the mapping of an actual
    /// word), so the composite is always an existing state. It is what lets
    /// a streaming matcher fold the per-block states produced by parallel
    /// chunk scans into one running state and keep matching from it.
    ///
    /// Three compositions resolve without touching the mapping index:
    /// identity on either side is a no-op, and a [sink](DSfa::is_sink) on
    /// the left absorbs anything (a sink's image state loops on every byte,
    /// so no suffix can move it). The general case composes the two
    /// mappings (`O(|D|)`) and resolves the result through the lazily built
    /// state index.
    pub fn compose_states(&self, a: SfaStateId, b: SfaStateId) -> SfaStateId {
        if a == self.initial() {
            return b;
        }
        if b == self.initial() || self.is_sink(a) {
            return a;
        }
        let composed = self.compose(a, b);
        *self
            .state_index()
            .get(&composed)
            .expect("SFA states are closed under composition (Lemma 1)")
    }

    /// Looks up the SFA state corresponding to a transformation, if that
    /// transformation is reachable (i.e. is an actual SFA state).
    ///
    /// The first call builds a mapping → id hash index (costing about as
    /// much memory as the mappings themselves); subsequent calls are one
    /// hash lookup.
    pub fn state_of(&self, mapping: &Transformation) -> Option<SfaStateId> {
        self.state_index().get(mapping).copied()
    }

    /// The lazily built mapping → state-id index backing
    /// [`state_of`](DSfa::state_of) and
    /// [`compose_states`](DSfa::compose_states).
    fn state_index(&self) -> &HashMap<Transformation, SfaStateId> {
        self.state_index.get_or_init(|| {
            self.mappings.iter().enumerate().map(|(i, m)| (m.clone(), i as SfaStateId)).collect()
        })
    }

    /// Bytes occupied by the (class-compressed) transition table.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<SfaStateId>()
    }

    /// Bytes occupied by the premultiplied dense byte table (0 when it was
    /// not built).
    pub fn byte_table_bytes(&self) -> usize {
        self.byte_table.as_ref().map_or(0, |t| t.len() * std::mem::size_of::<SfaStateId>())
    }

    /// Bytes occupied by the state mappings (needed by the reduction step).
    pub fn mapping_bytes(&self) -> usize {
        self.mappings.iter().map(|m| m.heap_bytes()).sum()
    }

    /// Re-interprets the SFA as a plain DFA over the same byte classes
    /// (the SFA *is* deterministic). Used for equivalence checking.
    pub fn as_dfa(&self) -> Dfa {
        Dfa::from_parts(
            self.classes.clone(),
            self.table.clone(),
            self.accepting.clone(),
            self.initial(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::equivalence::equivalent;
    use sfa_automata::minimal_dfa_from_pattern;

    fn dsfa(pattern: &str) -> (Dfa, DSfa) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        (dfa, sfa)
    }

    #[test]
    fn paper_example_ab_star_has_six_states() {
        // Fig. 2 / Table I: the D-SFA of (ab)* has exactly 6 states
        // f0..f5, built from the 3-state DFA (2 live + dead).
        let (dfa, sfa) = dsfa("(ab)*");
        assert_eq!(dfa.num_states(), 3);
        assert_eq!(sfa.num_states(), 6);
        assert_eq!(sfa.num_dfa_states(), 3);
        // The initial state is the identity mapping.
        assert!(sfa.mapping(sfa.initial()).is_identity());
    }

    #[test]
    fn paper_example_computation_over_abab() {
        // Example 1: f0 -a-> f1 -b-> f4 -a-> f1 -b-> f4 and f4(0) = 0,
        // so abab is accepted.
        let (dfa, sfa) = dsfa("(ab)*");
        let f = sfa.run(b"abab");
        assert!(sfa.is_accepting(f));
        assert_eq!(sfa.mapping(f).apply(dfa.start()), dfa.start());
        // The same SFA state is reached after ab (period 2).
        assert_eq!(sfa.run(b"ab"), f);
        // And a different, non-accepting state after aba.
        let g = sfa.run(b"aba");
        assert_ne!(g, f);
        assert!(!sfa.is_accepting(g));
    }

    #[test]
    fn sfa_equivalent_to_dfa() {
        for pattern in
            ["(ab)*", "a|bc|d", "(a|b)*abb", "([0-4]{2}[5-9]{2})*", "a{2,4}b{1,3}", "(?i)get|post"]
        {
            let (dfa, sfa) = dsfa(pattern);
            assert!(equivalent(&dfa, &sfa.as_dfa()), "pattern {:?}", pattern);
            for input in [&b""[..], b"ab", b"abab", b"abb", b"0055", b"GET", b"zzz"] {
                assert_eq!(dfa.accepts(input), sfa.accepts(input), "{:?} {:?}", pattern, input);
            }
        }
    }

    #[test]
    fn rn_family_sizes_match_paper() {
        // Sect. VI-B: |D| = 2n (live) and |S_d| is "almost the square" of
        // |D|. Analytically the reachable transformations of the complete
        // DFA number d(d+1) with d = 2n (d^2 single-survivor mappings, d-2
        // prefix mappings, the identity and the all-dead sink). The paper
        // reports 109 for n = 5, i.e. one fewer — it does not count one of
        // the sink states; we assert our exact count and check the
        // "quadratic, not exponential" property the paper cares about.
        for n in [2usize, 3, 5] {
            let pattern = format!("([0-4]{{{n}}}[5-9]{{{n}}})*");
            let (dfa, sfa) = dsfa(&pattern);
            let d = 2 * n;
            assert_eq!(dfa.num_live_states(), d);
            assert_eq!(sfa.num_states(), d * (d + 1), "n = {}", n);
            assert!(sfa.num_states() <= (dfa.num_states()) * (dfa.num_states()));
        }
        // The paper's headline number for n = 5 is 109; ours counts 110
        // (the all-dead mapping included).
        let (_, sfa) = dsfa("([0-4]{5}[5-9]{5})*");
        assert_eq!(sfa.num_states(), 110);
    }

    #[test]
    fn fig10_expression_sfa_size() {
        // Sect. VI-C: (([02468][13579]){5})* — "the size of DFA is 10, and
        // the size of SFA is 21". Our count is 22 because the all-dead
        // mapping is included as a state; the live structure (10 even-phase
        // mappings, 10 odd-phase mappings, identity) matches the paper.
        let (dfa, sfa) = dsfa("(([02468][13579]){5})*");
        assert_eq!(dfa.num_live_states(), 10);
        assert_eq!(sfa.num_states(), 22);
    }

    #[test]
    fn composition_matches_concatenated_run() {
        let (_, sfa) = dsfa("([0-4]{2}[5-9]{2})*");
        let w1 = b"0456";
        let w2 = b"0055044";
        let f1 = sfa.run(w1);
        let f2 = sfa.run(w2);
        let mut whole = Vec::new();
        whole.extend_from_slice(w1);
        whole.extend_from_slice(w2);
        let f12 = sfa.run(&whole);
        // Lemma 1: f_{w1} ⋄ f_{w2} = f_{w1 w2}.
        assert_eq!(&sfa.compose(f1, f2), sfa.mapping(f12));
        assert_eq!(sfa.state_of(&sfa.compose(f1, f2)), Some(f12));
    }

    #[test]
    fn compose_states_matches_concatenated_run() {
        // compose_states is the state-level form of Lemma 1: for any two
        // reachable states the composite is again a state, and it is the
        // state of the concatenated word.
        let (_, sfa) = dsfa("([0-4]{2}[5-9]{2})*");
        let words: [&[u8]; 5] = [b"", b"0456", b"0055044", b"9", b"005504590055"];
        for w1 in words {
            for w2 in words {
                let f1 = sfa.run(w1);
                let f2 = sfa.run(w2);
                let mut whole = w1.to_vec();
                whole.extend_from_slice(w2);
                assert_eq!(sfa.compose_states(f1, f2), sfa.run(&whole), "w1 {:?} w2 {:?}", w1, w2);
            }
        }
    }

    #[test]
    fn compose_states_shortcuts_identity_and_sink() {
        let (_, sfa) = dsfa("(ab)*");
        let id = sfa.initial();
        let f = sfa.run(b"ab");
        let dead = sfa.run(b"aa");
        assert!(sfa.is_sink(dead));
        // Identity is neutral on both sides.
        assert_eq!(sfa.compose_states(id, f), f);
        assert_eq!(sfa.compose_states(f, id), f);
        // A sink on the left absorbs any right-hand state.
        for g in 0..sfa.num_states() as SfaStateId {
            assert_eq!(sfa.compose_states(dead, g), dead);
        }
    }

    #[test]
    fn state_limit_enforced() {
        let dfa = minimal_dfa_from_pattern("([0-4]{5}[5-9]{5})*").unwrap();
        let err = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 50, ..SfaConfig::default() })
            .unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 50 });
    }

    #[test]
    fn accepting_patterns_refine_is_accepting() {
        use sfa_automata::{determinize, minimize, DfaConfig, Nfa};
        let nfa = Nfa::from_patterns(["(ab)*", "a+", "[ab]{2}"]).unwrap();
        let dfa = minimize(&determinize(&nfa, &DfaConfig::default()).unwrap());
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        assert_eq!(sfa.pattern_count(), 3);
        for input in [&b""[..], b"a", b"ab", b"aa", b"abab", b"ba", b"zz"] {
            let state = sfa.run(input);
            let pats = sfa.accepting_patterns(state);
            assert_eq!(pats, dfa.matching_patterns(input), "input {:?}", input);
            assert_eq!(sfa.is_accepting(state), !pats.is_empty(), "input {:?}", input);
            assert_eq!(pats, sfa.dfa_accepting_patterns(dfa.run(input)));
        }
        // "ab" fires (ab)* and [ab]{2} together in a single pass.
        let hits = sfa.accepting_patterns(sfa.run(b"ab"));
        assert_eq!(hits.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn accepting_states_check_dfa_start_image() {
        let (dfa, sfa) = dsfa("(ab)*");
        for s in 0..sfa.num_states() as SfaStateId {
            let expected = dfa.is_accepting(sfa.mapping(s).apply(dfa.start()));
            assert_eq!(sfa.is_accepting(s), expected);
        }
    }

    #[test]
    fn table_and_mapping_sizes() {
        let (_, sfa) = dsfa("(ab)*");
        assert_eq!(sfa.table_bytes(), sfa.num_states() * sfa.num_classes() * 4);
        assert_eq!(sfa.mapping_bytes(), sfa.num_states() * sfa.num_dfa_states() * 4);
    }

    #[test]
    fn premultiplied_table_agrees_with_class_rows() {
        let dfa = minimal_dfa_from_pattern("(a|b)*abb").unwrap();
        let fast = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let slow = DSfa::from_dfa(&dfa, &SfaConfig { premultiply: false, ..SfaConfig::default() })
            .unwrap();
        assert!(fast.premultiplied());
        assert!(!slow.premultiplied());
        assert_eq!(fast.byte_table_bytes(), fast.num_states() * 256 * 4);
        assert_eq!(slow.byte_table_bytes(), 0);
        // Every single-byte step agrees between the dense and the
        // class-compressed layout.
        for s in 0..fast.num_states() as SfaStateId {
            for byte in 0..=255u8 {
                assert_eq!(fast.next_state(s, byte), slow.next_state(s, byte));
            }
        }
        for input in [&b""[..], b"abb", b"aababb", b"zzz", b"abba"] {
            assert_eq!(fast.run(input), slow.run(input));
            assert_eq!(fast.accepts(input), dfa.accepts(input));
        }
    }

    #[test]
    fn sink_states_are_constant_and_absorbing() {
        let (_, sfa) = dsfa("(ab)*");
        let mut sinks = 0;
        for s in 0..sfa.num_states() as SfaStateId {
            if sfa.is_sink(s) {
                sinks += 1;
                // A sink's mapping is constant and survives any further byte.
                assert!(sfa.mapping(s).is_constant());
                for byte in [b'a', b'b', b'z'] {
                    assert_eq!(sfa.next_state(s, byte), s);
                }
            }
        }
        // (ab)* has exactly one sink: the all-dead mapping (reached e.g.
        // after the synchronizing word "aa").
        assert_eq!(sinks, 1);
        let dead = sfa.run(b"aa");
        assert!(sfa.is_sink(dead));
        // The early exit must not change the result: a long tail after the
        // synchronizing word still lands in the same state.
        let mut long = b"aa".to_vec();
        long.resize(long.len() + 10_000, b'a');
        assert_eq!(sfa.run(&long), dead);
        assert!(!sfa.accepts(&long));
    }

    #[test]
    fn empty_and_universal_languages() {
        let (_, sfa) = dsfa("(?s).*");
        assert_eq!(sfa.num_states(), 1, "universal language: identity only");
        assert!(sfa.accepts(b""));
        assert!(sfa.accepts(b"anything"));

        use sfa_automata::determinize::{dfa_from_ast, DfaConfig};
        use sfa_regex_syntax::ast::Ast;
        use sfa_regex_syntax::ByteSet;
        let void = sfa_automata::minimize(
            &dfa_from_ast(&Ast::Class(ByteSet::EMPTY), &DfaConfig::default()).unwrap(),
        );
        let sfa = DSfa::from_dfa(&void, &SfaConfig::default()).unwrap();
        assert_eq!(sfa.num_states(), 1);
        assert!(!sfa.accepts(b""));
        assert!(!sfa.accepts(b"a"));
    }
}
