//! Explicit-SIMD transition kernels for the eager D-SFA (feature `simd`).
//!
//! Two kernels, picked at runtime per automaton shape and CPU:
//!
//! * **Shuffle** (SSSE3 `pshufb`): for `u8`-repr automata with at most 16
//!   live states the premultiplied byte table is transposed into 256
//!   16-byte *columns* — `cols[b]` holds `δ(s, b)` for every state `s` —
//!   and one `_mm_shuffle_epi8(cols[b], v)` advances the scan. The column
//!   load depends only on the input byte, never on the current state, so
//!   the dependent-load chain of the scalar walk collapses to one
//!   register-to-register shuffle per byte (~1 byte/cycle instead of one
//!   L1 latency per byte).
//! * **Gather** (AVX2 `vpgatherdd`): for any premultiplied automaton,
//!   [`GATHER_LANES`] independent input lanes advance per iteration with
//!   one vector gather — the table loads of all lanes are issued at once,
//!   so a cache-missing table (the 16 384-state window workload) is hit at
//!   memory-level-parallelism bandwidth instead of serial miss latency.
//!
//! Kernels are built lazily on first use (see `DSfa::run_from`) and only
//! when the CPU supports them — the scalar loops in `dsfa` remain the
//! mandatory fallback and the semantic reference: every kernel returns
//! exactly the state the scalar scan would. Narrow gather tables are
//! *copied* with a few zero bytes of tail padding because `vpgatherdd`
//! always reads a 4-byte dword per lane; the automaton's own tables are
//! never touched, so size reports stay exact.

use crate::dsfa::{PackedIds, SfaStateId};

/// Lanes advanced per gather iteration (one AVX2 register of `i32` ids).
pub(crate) const GATHER_LANES: usize = 8;

/// Largest automaton the 16-wide `pshufb` shuffle kernel can address.
pub(crate) const SHUFFLE_MAX_STATES: usize = 16;

/// Input bytes scanned between all-lanes-in-sink checks of the gather
/// kernel. Sinks self-loop, so overshooting a sink entry by at most this
/// many bytes is harmless — the check only bounds wasted work on
/// synchronizing inputs.
const SINK_CHECK_BYTES: usize = 512;

/// The SIMD kernel selected for one automaton (mutually exclusive: an
/// automaton that qualifies for the shuffle kernel never uses gather).
#[derive(Clone, Debug)]
pub(crate) enum SimdKernels {
    /// 16-state `pshufb` kernel over a column-major table copy.
    Shuffle(ShuffleKernel),
    /// Multi-lane `vpgatherdd` kernel over the premultiplied table.
    Gather(GatherKernel),
}

/// Which kernel [`SimdKernels::build`] would select for this table shape
/// on this CPU: `"shuffle"`, `"gather"` or `"scalar"`. Pure
/// classification — no tables are copied — so size reporting can name the
/// kernel without paying for it.
pub(crate) fn kernel_name(byte_table: &Option<PackedIds>, num_states: usize) -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match byte_table {
            Some(PackedIds::U8(_))
                if num_states <= SHUFFLE_MAX_STATES
                    && std::arch::is_x86_feature_detected!("ssse3") =>
            {
                "shuffle"
            }
            Some(_) if std::arch::is_x86_feature_detected!("avx2") => "gather",
            _ => "scalar",
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (byte_table, num_states);
        "scalar"
    }
}

impl SimdKernels {
    /// Builds the kernel [`kernel_name`] names, or `None` when only the
    /// scalar loops apply (no premultiplied table, unsupported CPU, or a
    /// non-x86_64 target).
    pub(crate) fn build(byte_table: &Option<PackedIds>, num_states: usize) -> Option<SimdKernels> {
        match (byte_table, kernel_name(byte_table, num_states)) {
            (Some(PackedIds::U8(t)), "shuffle") => {
                Some(SimdKernels::Shuffle(ShuffleKernel::build(t, num_states)))
            }
            (Some(bt), "gather") => Some(SimdKernels::Gather(GatherKernel::build(bt))),
            _ => None,
        }
    }
}

/// The SSSE3 shuffle kernel: a 4 KiB column-major transpose of the
/// premultiplied byte table, `cols[b * 16 + s] = δ(s, b)`.
#[derive(Clone, Debug)]
pub(crate) struct ShuffleKernel {
    cols: Box<[u8]>,
}

impl ShuffleKernel {
    fn build(byte_table: &[u8], num_states: usize) -> ShuffleKernel {
        debug_assert!(num_states <= SHUFFLE_MAX_STATES);
        let mut cols = vec![0u8; 256 * SHUFFLE_MAX_STATES];
        for s in 0..num_states {
            for b in 0..256 {
                cols[b * SHUFFLE_MAX_STATES + s] = byte_table[s * 256 + b];
            }
        }
        ShuffleKernel { cols: cols.into_boxed_slice() }
    }

    /// Scans `input` from `state`, returning exactly what the scalar
    /// dense loop would (including the sink early exit, checked once per
    /// 64-byte block — a sink self-loops, so overshooting inside a block
    /// cannot change the result).
    pub(crate) fn run(&self, sink: &[bool], state: SfaStateId, input: &[u8]) -> SfaStateId {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: the kernel is only built after `is_x86_feature_detected!`
            // confirmed SSSE3 (see `kernel_name`).
            #[allow(unsafe_code)]
            unsafe {
                self.run_ssse3(sink, state, input)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (sink, state, input);
            unreachable!("shuffle kernel is only built on x86_64")
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "ssse3")]
    #[allow(unsafe_code)]
    unsafe fn run_ssse3(&self, sink: &[bool], state: SfaStateId, input: &[u8]) -> SfaStateId {
        use std::arch::x86_64::*;
        const BLOCK: usize = 64;
        let cols = self.cols.as_ptr();
        // All 16 lanes carry the same (valid, < 16) state id, so the
        // shuffle result is again a broadcast state: `pshufb` picks
        // `cols[b][state]` into every lane.
        let mut v = _mm_set1_epi8(state as i8);
        let mut i = 0;
        while i + BLOCK <= input.len() {
            for &b in &input[i..i + BLOCK] {
                // SAFETY: `(b as usize) << 4` is at most 255 * 16 and
                // `cols` holds 256 * 16 bytes, so the 16-byte load is in
                // bounds. No alignment requirement (`loadu`).
                let col = _mm_loadu_si128(cols.add((b as usize) << 4) as *const __m128i);
                v = _mm_shuffle_epi8(col, v);
            }
            i += BLOCK;
            let s = (_mm_cvtsi128_si32(v) & 0xFF) as usize;
            if sink[s] {
                return s as SfaStateId;
            }
        }
        // Tail: scalar steps through the same column table.
        let mut f = (_mm_cvtsi128_si32(v) & 0xFF) as SfaStateId;
        for &b in &input[i..] {
            let next = self.cols[((b as usize) << 4) + f as usize] as SfaStateId;
            if next != f {
                f = next;
                if sink[f as usize] {
                    return f;
                }
            }
        }
        f
    }
}

/// The AVX2 gather kernel. Narrow widths hold a tail-padded copy of the
/// premultiplied table (a gather reads a whole dword per lane, so the
/// last `u8`/`u16` entry needs 3 / 2 trailing bytes of slack); the `u32`
/// width gathers straight from the automaton's own table, whose last
/// entry already spans a full dword.
#[derive(Clone, Debug)]
pub(crate) enum GatherKernel {
    /// Padded copy of a `u8` table (`+3` zero bytes).
    U8(Box<[u8]>),
    /// Padded copy of a `u16` table (`+1` zero element).
    U16(Box<[u16]>),
    /// No copy: gathers from the `u32` table passed at call time.
    U32,
}

impl GatherKernel {
    fn build(byte_table: &PackedIds) -> GatherKernel {
        match byte_table {
            PackedIds::U8(t) => {
                let mut padded = t.to_vec();
                padded.extend_from_slice(&[0; 3]);
                GatherKernel::U8(padded.into_boxed_slice())
            }
            PackedIds::U16(t) => {
                let mut padded = t.to_vec();
                padded.push(0);
                GatherKernel::U16(padded.into_boxed_slice())
            }
            PackedIds::U32(_) => GatherKernel::U32,
        }
    }

    /// Advances all [`GATHER_LANES`] lanes over the first `common` bytes
    /// of their inputs, exactly like the scalar `scan_dense_lanes` (no
    /// per-byte sink branch; every [`SINK_CHECK_BYTES`] the kernel stops
    /// early if *all* lanes sit in sinks). `byte_table` must be the table
    /// this kernel was built from.
    pub(crate) fn run_lanes(
        &self,
        byte_table: &PackedIds,
        sink: &[bool],
        f: &mut [SfaStateId; GATHER_LANES],
        inputs: &[&[u8]; GATHER_LANES],
        common: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: the kernel is only built after
            // `is_x86_feature_detected!` confirmed AVX2, and the table
            // padding invariants are established in `build`.
            #[allow(unsafe_code)]
            unsafe {
                match (self, byte_table) {
                    (GatherKernel::U8(t), _) => gather_u8(t, sink, f, inputs, common),
                    (GatherKernel::U16(t), _) => gather_u16(t, sink, f, inputs, common),
                    (GatherKernel::U32, PackedIds::U32(t)) => {
                        gather_u32(t, sink, f, inputs, common)
                    }
                    (GatherKernel::U32, _) => {
                        unreachable!("u32 gather kernel is built for a u32 table")
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (byte_table, sink, f, inputs, common);
            unreachable!("gather kernel is only built on x86_64")
        }
    }
}

/// Generates one monomorphic gather loop per table width. `$mask` is the
/// entry-width bitmask stripping the neighboring table bytes a dword
/// gather drags in (`0` for the full-width `u32` table, where the branch
/// folds away).
#[cfg(target_arch = "x86_64")]
macro_rules! gather_impl {
    ($name:ident, $elem:ty, $scale:literal, $mask:literal) => {
        /// # Safety
        /// Caller detected AVX2 at runtime. Every gathered index is
        /// `state * 256 + byte` with `state` a valid id, so with the
        /// padding established in [`GatherKernel::build`] each dword read
        /// stays inside `table`.
        #[target_feature(enable = "avx2")]
        #[allow(unsafe_code)]
        unsafe fn $name(
            table: &[$elem],
            sink: &[bool],
            f: &mut [SfaStateId; GATHER_LANES],
            inputs: &[&[u8]; GATHER_LANES],
            common: usize,
        ) {
            use std::arch::x86_64::*;
            let base = table.as_ptr() as *const i32;
            #[allow(clippy::cast_possible_wrap)]
            let mut states = _mm256_set_epi32(
                f[7] as i32,
                f[6] as i32,
                f[5] as i32,
                f[4] as i32,
                f[3] as i32,
                f[2] as i32,
                f[1] as i32,
                f[0] as i32,
            );
            let mut j = 0;
            while j < common {
                let stop = (j + SINK_CHECK_BYTES).min(common);
                while j < stop {
                    let bytes = _mm256_set_epi32(
                        inputs[7][j] as i32,
                        inputs[6][j] as i32,
                        inputs[5][j] as i32,
                        inputs[4][j] as i32,
                        inputs[3][j] as i32,
                        inputs[2][j] as i32,
                        inputs[1][j] as i32,
                        inputs[0][j] as i32,
                    );
                    let idx = _mm256_add_epi32(_mm256_slli_epi32::<8>(states), bytes);
                    let g = _mm256_i32gather_epi32::<$scale>(base, idx);
                    states =
                        if $mask != 0 { _mm256_and_si256(g, _mm256_set1_epi32($mask)) } else { g };
                    j += 1;
                }
                let mut ids = [0i32; GATHER_LANES];
                _mm256_storeu_si256(ids.as_mut_ptr() as *mut __m256i, states);
                for (lane, &id) in ids.iter().enumerate() {
                    f[lane] = id as SfaStateId;
                }
                // All lanes in sinks: no further byte can move any of
                // them, so the remaining `common - j` bytes are no-ops.
                if f.iter().all(|&s| sink[s as usize]) {
                    return;
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
gather_impl!(gather_u8, u8, 1, 0xFF);
#[cfg(target_arch = "x86_64")]
gather_impl!(gather_u16, u16, 2, 0xFFFF);
#[cfg(target_arch = "x86_64")]
gather_impl!(gather_u32, u32, 4, 0);
