//! Size statistics for DFA/SFA pairs — the raw material of Figure 3 and
//! Table III of the paper.

use crate::backend::{BackendKind, SfaBackend};
use crate::dsfa::DSfa;
use sfa_automata::Dfa;

/// Size relationship between a minimal DFA and its D-SFA, as classified in
/// Section VI-A of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrowthClass {
    /// `|S_d| ≤ |D|` — the SFA is no bigger than the DFA.
    AtMostLinear,
    /// `|D| < |S_d| ≤ |D|²` — at most quadratic (the common case; the paper
    /// reports 98.6 % of SNORT patterns here or below).
    AtMostSquare,
    /// `|D|² < |S_d| ≤ |D|³` — "over-square" (1.4 % of SNORT patterns).
    OverSquare,
    /// `|D|³ < |S_d| ≤ |D|⁴` — "over-cubed" (6 patterns in SNORT).
    OverCube,
    /// `|S_d| > |D|⁴` — the paper found none of these in SNORT.
    OverQuartic,
}

/// Size statistics of one pattern's DFA and D-SFA.
///
/// For an **eager** backend every field describes the fully materialized
/// automaton. For a **lazy** backend the SFA-side fields
/// (`sfa_states`, table/mapping bytes, `ratio`, `growth`) describe the
/// states *materialized so far* — a live lower bound on `|S_d|` that
/// grows as inputs explore the automaton; re-query after matching to see
/// how much the traffic actually touched.
#[derive(Clone, Debug)]
pub struct SizeReport {
    /// Which backend produced the SFA-side numbers.
    pub backend: BackendKind,
    /// Number of original patterns compiled into the automaton (1 for a
    /// single pattern, the rule count for a `RegexSet`, 0 for an empty
    /// set).
    pub patterns: usize,
    /// Number of states of the (minimal) DFA, including the dead state.
    pub dfa_states: usize,
    /// Number of live DFA states (the count the paper reports as `|D|`).
    pub dfa_live_states: usize,
    /// Number of D-SFA states: the full `|S_d|` for an eager backend, the
    /// materialized count for a lazy one (equals
    /// [`materialized_states`](SizeReport::materialized_states) there).
    pub sfa_states: usize,
    /// Number of SFA states actually materialized in memory at report
    /// time. Equal to `sfa_states` for eager backends; for lazy backends
    /// this is the live cache size — the number the paper bounds by the
    /// input length in Section V-A.
    pub materialized_states: usize,
    /// Number of byte classes shared by both transition tables.
    pub byte_classes: usize,
    /// DFA transition-table size in bytes.
    pub dfa_table_bytes: usize,
    /// SFA transition-table size in bytes (class-compressed rows, at the
    /// packed width).
    pub sfa_table_bytes: usize,
    /// Memory held by the SFA state mappings (needed for reductions).
    pub sfa_mapping_bytes: usize,
    /// Bytes per stored SFA state id: the packed width of an eager
    /// backend's tables (1, 2 or 4 — see
    /// [`StateIdRepr`](crate::StateIdRepr)), always 4 for a lazy backend.
    /// For a combined (sharded) report this is the *widest* shard, so a
    /// value below 4 certifies that every shard packed.
    pub state_id_bytes: usize,
    /// Total transition-table footprint in bytes: the DFA rows plus the
    /// SFA class rows plus the premultiplied dense byte table (when
    /// built). This is the resident working set the packed repr shrinks —
    /// compare against `dfa_table_bytes + sfa_table_bytes × 4 ÷
    /// state_id_bytes` to see the saving.
    pub table_bytes: usize,
    /// `|S_d| / |D|`, the y/x ratio of Figure 3 (using the complete DFA
    /// state count, which is how the paper's Fig. 1 counts `D_1`).
    pub ratio: f64,
    /// Growth classification relative to the complete DFA size.
    pub growth: GrowthClass,
    /// Convergence horizon of the DFA from the offline analysis
    /// (`sfa_analysis::ConvergenceReport`): the reset-word length for a
    /// synchronizing automaton, the reach-fixpoint depth otherwise. `0`
    /// when the automaton is trivially synchronizing *or* when no
    /// analysis ran (legacy reports). For a combined report this is the
    /// slowest shard (per-shard maximum).
    pub convergence_horizon: usize,
    /// `|R_∞|` — the number of DFA states still reachable after
    /// arbitrarily long input, i.e. the worst-case speculative entry-set
    /// size. Equals `dfa_states` when no analysis ran (every state
    /// survives — the paper's Algorithm 3 assumption). Summed across
    /// shards in a combined report, like the state counts.
    pub survivor_states: usize,
    /// Number of automata this report aggregates: `1` for a single
    /// compiled pattern or an unsharded set, the shard count for a
    /// sharded set (see [`SizeReport::combine`]). When greater than `1`
    /// the state/byte fields are sums over the shards.
    pub shards: usize,
    /// The largest single-shard DFA state count — equals `dfa_states`
    /// when `shards == 1`. For a sharded set this is the number a
    /// per-shard state budget bounds (fallback shards excepted).
    pub max_shard_dfa_states: usize,
    /// The transition kernel scans of this automaton dispatch to on the
    /// reporting build and CPU: `"shuffle"`, `"gather"` or `"scalar"`
    /// (see [`DSfa::scan_kernel`]) — `"mixed"` for a combined report
    /// whose shards disagree. Machine-dependent by design: the same
    /// artifact reports `"scalar"` where the `simd` feature or the CPU
    /// support is absent.
    pub scan_kernel: String,
    /// On-disk footprint of the serialized artifact this automaton was
    /// loaded from (or written to), in bytes. `None` when the automaton
    /// never touched disk — freshly compiled backends and legacy JSON
    /// reports, which serialize this as `null`. Summed across shards in a
    /// combined report once any shard carries a value.
    pub artifact_bytes: Option<usize>,
}

impl SizeReport {
    /// Computes the report for a DFA / eager D-SFA pair.
    pub fn new(dfa: &Dfa, sfa: &DSfa) -> SizeReport {
        Self::build(
            dfa,
            BackendKind::Eager,
            sfa.num_states(),
            sfa.table_bytes(),
            sfa.mapping_bytes(),
            sfa.state_id_bytes(),
            sfa.byte_table_bytes(),
            sfa.scan_kernel(),
        )
    }

    /// Computes the report for a DFA and whichever backend sits on top of
    /// it. For lazy backends the SFA-side numbers are a snapshot of the
    /// materialized cache (see the type docs).
    pub fn of_backend(dfa: &Dfa, backend: &SfaBackend) -> SizeReport {
        let mut report = Self::build(
            dfa,
            backend.kind(),
            backend.num_states(),
            backend.table_bytes(),
            backend.mapping_bytes(),
            backend.state_id_bytes(),
            backend.byte_table_bytes(),
            backend.scan_kernel(),
        );
        report.artifact_bytes = backend.borrowed().map(|sfa| sfa.artifact_bytes());
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        dfa: &Dfa,
        backend: BackendKind,
        sfa_states: usize,
        sfa_table_bytes: usize,
        sfa_mapping_bytes: usize,
        state_id_bytes: usize,
        byte_table_bytes: usize,
        scan_kernel: &str,
    ) -> SizeReport {
        SizeReport {
            backend,
            patterns: dfa.pattern_count(),
            dfa_states: dfa.num_states(),
            dfa_live_states: dfa.num_live_states(),
            sfa_states,
            materialized_states: sfa_states,
            byte_classes: dfa.num_classes(),
            dfa_table_bytes: dfa.table_bytes(),
            sfa_table_bytes,
            sfa_mapping_bytes,
            state_id_bytes,
            table_bytes: dfa.table_bytes() + sfa_table_bytes + byte_table_bytes,
            ratio: sfa_states as f64 / dfa.num_states() as f64,
            growth: classify(dfa.num_states(), sfa_states),
            convergence_horizon: 0,
            survivor_states: dfa.num_states(),
            shards: 1,
            max_shard_dfa_states: dfa.num_states(),
            scan_kernel: scan_kernel.to_string(),
            artifact_bytes: None,
        }
    }

    /// Aggregates per-shard reports into one report for a sharded set:
    /// state counts and byte footprints are summed (they all coexist in
    /// memory), `byte_classes`, `state_id_bytes` and
    /// `max_shard_dfa_states` take the per-shard maximum (the widest
    /// shard bounds the packing claim), `shards` sums the inputs' shard
    /// counts, the
    /// backend is `Eager` only when every shard is eager,
    /// `scan_kernel` is kept when every shard agrees (`"mixed"`
    /// otherwise), and `ratio`/`growth` are recomputed from the summed
    /// totals. An empty slice yields an all-zero eager report (`ratio` is
    /// `NaN`, `scan_kernel` is `"scalar"`).
    pub fn combine(reports: &[SizeReport]) -> SizeReport {
        let backend = if reports.iter().any(|r| r.backend == BackendKind::Lazy) {
            BackendKind::Lazy
        } else if !reports.is_empty() && reports.iter().all(|r| r.backend == BackendKind::Borrowed)
        {
            BackendKind::Borrowed
        } else {
            // All shards fully materialized (eager, or eager mixed with
            // borrowed): the aggregate behaves eagerly.
            BackendKind::Eager
        };
        let dfa_states: usize = reports.iter().map(|r| r.dfa_states).sum();
        let sfa_states: usize = reports.iter().map(|r| r.sfa_states).sum();
        SizeReport {
            backend,
            patterns: reports.iter().map(|r| r.patterns).sum(),
            dfa_states,
            dfa_live_states: reports.iter().map(|r| r.dfa_live_states).sum(),
            sfa_states,
            materialized_states: reports.iter().map(|r| r.materialized_states).sum(),
            byte_classes: reports.iter().map(|r| r.byte_classes).max().unwrap_or(0),
            dfa_table_bytes: reports.iter().map(|r| r.dfa_table_bytes).sum(),
            sfa_table_bytes: reports.iter().map(|r| r.sfa_table_bytes).sum(),
            sfa_mapping_bytes: reports.iter().map(|r| r.sfa_mapping_bytes).sum(),
            state_id_bytes: reports.iter().map(|r| r.state_id_bytes).max().unwrap_or(0),
            table_bytes: reports.iter().map(|r| r.table_bytes).sum(),
            ratio: sfa_states as f64 / dfa_states as f64,
            growth: classify(dfa_states, sfa_states),
            convergence_horizon: reports.iter().map(|r| r.convergence_horizon).max().unwrap_or(0),
            survivor_states: reports.iter().map(|r| r.survivor_states).sum(),
            shards: reports.iter().map(|r| r.shards).sum(),
            max_shard_dfa_states: reports.iter().map(|r| r.max_shard_dfa_states).max().unwrap_or(0),
            scan_kernel: match reports.first() {
                None => "scalar".to_string(),
                Some(first) if reports.iter().all(|r| r.scan_kernel == first.scan_kernel) => {
                    first.scan_kernel.clone()
                }
                Some(_) => "mixed".to_string(),
            },
            artifact_bytes: if reports.iter().any(|r| r.artifact_bytes.is_some()) {
                Some(reports.iter().filter_map(|r| r.artifact_bytes).sum())
            } else {
                None
            },
        }
    }
}

impl GrowthClass {
    /// The classification's name, used in the JSON report.
    pub fn as_str(&self) -> &'static str {
        match self {
            GrowthClass::AtMostLinear => "AtMostLinear",
            GrowthClass::AtMostSquare => "AtMostSquare",
            GrowthClass::OverSquare => "OverSquare",
            GrowthClass::OverCube => "OverCube",
            GrowthClass::OverQuartic => "OverQuartic",
        }
    }

    /// Parses a classification name produced by [`GrowthClass::as_str`].
    pub fn parse(s: &str) -> Option<GrowthClass> {
        Some(match s {
            "AtMostLinear" => GrowthClass::AtMostLinear,
            "AtMostSquare" => GrowthClass::AtMostSquare,
            "OverSquare" => GrowthClass::OverSquare,
            "OverCube" => GrowthClass::OverCube,
            "OverQuartic" => GrowthClass::OverQuartic,
            _ => return None,
        })
    }
}

impl SizeReport {
    /// Serializes the report to a single-line JSON object. (Hand-rolled —
    /// the build environment vendors no serde.)
    ///
    /// A non-finite `ratio` (`NaN`/`±inf` — `{}` would format those bare,
    /// which is invalid JSON) is serialized as `null`;
    /// [`SizeReport::from_json`] reads `null` back as `NaN`.
    pub fn to_json(&self) -> String {
        let ratio =
            if self.ratio.is_finite() { self.ratio.to_string() } else { "null".to_string() };
        format!(
            concat!(
                "{{\"backend\":\"{}\",\"patterns\":{},\"dfa_states\":{},\"dfa_live_states\":{},",
                "\"sfa_states\":{},\"materialized_states\":{},",
                "\"byte_classes\":{},\"dfa_table_bytes\":{},\"sfa_table_bytes\":{},",
                "\"sfa_mapping_bytes\":{},\"state_id_bytes\":{},\"table_bytes\":{},",
                "\"ratio\":{},\"growth\":\"{}\",",
                "\"convergence_horizon\":{},\"survivor_states\":{},",
                "\"shards\":{},\"max_shard_dfa_states\":{},\"scan_kernel\":\"{}\",",
                "\"artifact_bytes\":{}}}"
            ),
            self.backend.as_str(),
            self.patterns,
            self.dfa_states,
            self.dfa_live_states,
            self.sfa_states,
            self.materialized_states,
            self.byte_classes,
            self.dfa_table_bytes,
            self.sfa_table_bytes,
            self.sfa_mapping_bytes,
            self.state_id_bytes,
            self.table_bytes,
            ratio,
            self.growth.as_str(),
            self.convergence_horizon,
            self.survivor_states,
            self.shards,
            self.max_shard_dfa_states,
            self.scan_kernel,
            match self.artifact_bytes {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            },
        )
    }

    /// Parses a JSON object produced by [`SizeReport::to_json`]. Returns
    /// `None` when a field is missing or malformed.
    pub fn from_json(json: &str) -> Option<SizeReport> {
        fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
            let needle = format!("\"{key}\":");
            let start = json.find(&needle)? + needle.len();
            let rest = &json[start..];
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim())
        }
        Some(SizeReport {
            backend: BackendKind::parse(field(json, "backend")?.trim_matches('"'))?,
            patterns: field(json, "patterns")?.parse().ok()?,
            dfa_states: field(json, "dfa_states")?.parse().ok()?,
            dfa_live_states: field(json, "dfa_live_states")?.parse().ok()?,
            sfa_states: field(json, "sfa_states")?.parse().ok()?,
            materialized_states: field(json, "materialized_states")?.parse().ok()?,
            byte_classes: field(json, "byte_classes")?.parse().ok()?,
            dfa_table_bytes: field(json, "dfa_table_bytes")?.parse().ok()?,
            sfa_table_bytes: field(json, "sfa_table_bytes")?.parse().ok()?,
            sfa_mapping_bytes: field(json, "sfa_mapping_bytes")?.parse().ok()?,
            // Reports written before packed state ids existed lack these
            // fields: their tables stored plain `u32` ids and never
            // carried a premultiplied byte table in the report.
            state_id_bytes: match field(json, "state_id_bytes") {
                Some(s) => s.parse().ok()?,
                None => 4,
            },
            table_bytes: match field(json, "table_bytes") {
                Some(s) => s.parse().ok()?,
                None => {
                    field(json, "dfa_table_bytes")?.parse::<usize>().ok()?
                        + field(json, "sfa_table_bytes")?.parse::<usize>().ok()?
                }
            },
            ratio: match field(json, "ratio")? {
                "null" => f64::NAN,
                s => s.parse().ok()?,
            },
            growth: GrowthClass::parse(field(json, "growth")?.trim_matches('"'))?,
            // Reports written before convergence analysis existed lack
            // these fields: no analysis ran, so every state survives.
            convergence_horizon: match field(json, "convergence_horizon") {
                Some(s) => s.parse().ok()?,
                None => 0,
            },
            survivor_states: match field(json, "survivor_states") {
                Some(s) => s.parse().ok()?,
                None => field(json, "dfa_states")?.parse().ok()?,
            },
            // Reports written before sharding existed lack these fields:
            // they describe exactly one automaton.
            shards: match field(json, "shards") {
                Some(s) => s.parse().ok()?,
                None => 1,
            },
            max_shard_dfa_states: match field(json, "max_shard_dfa_states") {
                Some(s) => s.parse().ok()?,
                None => field(json, "dfa_states")?.parse().ok()?,
            },
            // Reports written before the SIMD kernels existed lack this
            // field: every scan was the scalar loop.
            scan_kernel: match field(json, "scan_kernel") {
                Some(s) => s.trim_matches('"').to_string(),
                None => "scalar".to_string(),
            },
            // Reports written before durable artifacts existed lack this
            // field: nothing was ever serialized to disk.
            artifact_bytes: match field(json, "artifact_bytes") {
                None => None,
                Some("null") => None,
                Some(s) => Some(s.parse().ok()?),
            },
        })
    }
}

/// Classifies `|S_d|` against powers of `|D|`.
pub fn classify(dfa_states: usize, sfa_states: usize) -> GrowthClass {
    let d = dfa_states as u128;
    let s = sfa_states as u128;
    if s <= d {
        GrowthClass::AtMostLinear
    } else if s <= d.saturating_pow(2) {
        GrowthClass::AtMostSquare
    } else if s <= d.saturating_pow(3) {
        GrowthClass::OverSquare
    } else if s <= d.saturating_pow(4) {
        GrowthClass::OverCube
    } else {
        GrowthClass::OverQuartic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SfaConfig;
    use sfa_automata::minimal_dfa_from_pattern;

    fn report(pattern: &str) -> SizeReport {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        SizeReport::new(&dfa, &sfa)
    }

    #[test]
    fn rn_family_is_at_most_square() {
        let r = report("([0-4]{3}[5-9]{3})*");
        assert_eq!(r.dfa_live_states, 6);
        assert_eq!(r.growth, GrowthClass::AtMostSquare);
        assert!(r.ratio > 1.0);
    }

    #[test]
    fn literal_pattern_is_linear() {
        // For a plain literal the SFA is essentially the DFA plus suffix
        // bookkeeping: still far below square.
        let r = report("abcdef");
        assert!(r.sfa_states >= r.dfa_live_states);
        assert!(matches!(r.growth, GrowthClass::AtMostLinear | GrowthClass::AtMostSquare));
    }

    #[test]
    fn chained_dot_star_is_over_square() {
        // The paper's pathological SNORT shape: several `.*` in sequence
        // (".*(T.*Y.*P.*E.*)" style) pushes the SFA over |D|².
        let r = report(".*T.*Y.*P.*E.*");
        assert_eq!(classify(r.dfa_states, r.sfa_states), r.growth);
        assert!(
            matches!(r.growth, GrowthClass::OverSquare | GrowthClass::OverCube),
            "got {:?} (|D|={}, |S|={})",
            r.growth,
            r.dfa_live_states,
            r.sfa_states
        );
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(10, 9), GrowthClass::AtMostLinear);
        assert_eq!(classify(10, 10), GrowthClass::AtMostLinear);
        assert_eq!(classify(10, 100), GrowthClass::AtMostSquare);
        assert_eq!(classify(10, 101), GrowthClass::OverSquare);
        assert_eq!(classify(10, 1000), GrowthClass::OverSquare);
        assert_eq!(classify(10, 1001), GrowthClass::OverCube);
        assert_eq!(classify(10, 10000), GrowthClass::OverCube);
        assert_eq!(classify(10, 10001), GrowthClass::OverQuartic);
        // Degenerate single-state DFA.
        assert_eq!(classify(1, 1), GrowthClass::AtMostLinear);
        assert_eq!(classify(1, 2), GrowthClass::OverQuartic);
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report("(ab)*");
        let json = r.to_json();
        assert!(json.contains("\"sfa_states\":6"), "{json}");
        assert!(json.contains("\"backend\":\"Eager\""), "{json}");
        assert!(json.contains("\"materialized_states\":6"), "{json}");
        assert!(json.contains("\"patterns\":1"), "{json}");
        let back = SizeReport::from_json(&json).unwrap();
        assert_eq!(back.backend, BackendKind::Eager);
        assert_eq!(back.patterns, 1);
        assert_eq!(back.sfa_states, r.sfa_states);
        assert_eq!(back.materialized_states, r.materialized_states);
        assert_eq!(back.growth, r.growth);
        assert_eq!(back.dfa_table_bytes, r.dfa_table_bytes);
        assert_eq!(back.state_id_bytes, r.state_id_bytes);
        assert_eq!(back.table_bytes, r.table_bytes);
        assert!((back.ratio - r.ratio).abs() < 1e-12);
        assert!(SizeReport::from_json("{}").is_none());
        assert!(SizeReport::from_json("{\"dfa_states\":oops}").is_none());
    }

    #[test]
    fn lazy_backend_report_counts_materialized_states() {
        use crate::LazyDSfa;
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let backend = SfaBackend::from(LazyDSfa::new(dfa.clone()));
        let fresh = SizeReport::of_backend(&dfa, &backend);
        assert_eq!(fresh.backend, BackendKind::Lazy);
        assert_eq!(fresh.materialized_states, 1, "identity only before any input");
        assert_eq!(fresh.sfa_states, 1);

        backend.run(b"abab");
        let after = SizeReport::of_backend(&dfa, &backend);
        assert!(after.materialized_states > 1, "the run materialized states");
        assert!(after.materialized_states <= 6, "never more than the eager |S_d|");
        assert!(after.sfa_table_bytes >= fresh.sfa_table_bytes);
        // The lazy report round-trips through JSON like the eager one.
        let back = SizeReport::from_json(&after.to_json()).unwrap();
        assert_eq!(back.backend, BackendKind::Lazy);
        assert_eq!(back.materialized_states, after.materialized_states);

        // The eager constructor and of_backend agree on an eager backend.
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let via_new = SizeReport::new(&dfa, &sfa);
        let via_backend = SizeReport::of_backend(&dfa, &SfaBackend::from(sfa));
        assert_eq!(via_new.backend, via_backend.backend);
        assert_eq!(via_new.sfa_states, via_backend.sfa_states);
        assert_eq!(via_new.materialized_states, via_backend.materialized_states);
    }

    #[test]
    fn combine_sums_states_and_tracks_the_largest_shard() {
        let a = report("([0-4]{3}[5-9]{3})*");
        let b = report("abcdef");
        let combined = SizeReport::combine(&[a.clone(), b.clone()]);
        assert_eq!(combined.shards, 2);
        assert_eq!(combined.dfa_states, a.dfa_states + b.dfa_states);
        assert_eq!(combined.sfa_states, a.sfa_states + b.sfa_states);
        assert_eq!(combined.patterns, a.patterns + b.patterns);
        assert_eq!(combined.max_shard_dfa_states, a.dfa_states.max(b.dfa_states));
        assert_eq!(combined.byte_classes, a.byte_classes.max(b.byte_classes));
        assert_eq!(combined.dfa_table_bytes, a.dfa_table_bytes + b.dfa_table_bytes);
        assert_eq!(combined.backend, BackendKind::Eager);
        assert_eq!(combined.growth, classify(combined.dfa_states, combined.sfa_states));
        let expected_ratio = combined.sfa_states as f64 / combined.dfa_states as f64;
        assert!((combined.ratio - expected_ratio).abs() < 1e-12);
        // One lazy shard makes the aggregate lazy; nesting combines adds
        // up the shard counts.
        let mut lazy = b.clone();
        lazy.backend = BackendKind::Lazy;
        assert_eq!(SizeReport::combine(&[a, lazy]).backend, BackendKind::Lazy);
        let nested = SizeReport::combine(&[combined.clone(), combined]);
        assert_eq!(nested.shards, 4);
        // Empty input: zeroed report, NaN ratio.
        let empty = SizeReport::combine(&[]);
        assert_eq!(empty.shards, 0);
        assert_eq!(empty.dfa_states, 0);
        assert!(empty.ratio.is_nan());
    }

    #[test]
    fn sharded_report_round_trips_and_old_json_defaults_to_one_shard() {
        let combined = SizeReport::combine(&[report("(ab)*"), report("abcdef")]);
        let json = combined.to_json();
        assert!(json.contains("\"shards\":2"), "{json}");
        let back = SizeReport::from_json(&json).unwrap();
        assert_eq!(back.shards, 2);
        assert_eq!(back.max_shard_dfa_states, combined.max_shard_dfa_states);
        // JSON written before the shard fields existed still parses: one
        // automaton, its own DFA as the largest shard.
        let old = report("(ab)*");
        let legacy_json = old
            .to_json()
            .replace(&format!(",\"shards\":1,\"max_shard_dfa_states\":{}", old.dfa_states), "");
        assert!(!legacy_json.contains("shards"), "{legacy_json}");
        let parsed = SizeReport::from_json(&legacy_json).unwrap();
        assert_eq!(parsed.shards, 1);
        assert_eq!(parsed.max_shard_dfa_states, old.dfa_states);
    }

    #[test]
    fn packed_fields_report_width_and_total_footprint() {
        use crate::{LazyDSfa, StateIdRepr};
        // (ab)* has 6 D-SFA states: auto-packs to u8, and the default
        // config premultiplies, so the total footprint includes the dense
        // 256-column byte table.
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let r = SizeReport::new(&dfa, &sfa);
        assert_eq!(r.state_id_bytes, 1);
        assert_eq!(r.table_bytes, r.dfa_table_bytes + r.sfa_table_bytes + sfa.byte_table_bytes());
        assert!(sfa.byte_table_bytes() > 0);

        // A forced-u32 build of the same automaton reports the wider id
        // and the proportionally larger footprint.
        let wide_cfg = SfaConfig { repr: Some(StateIdRepr::U32), ..SfaConfig::default() };
        let wide = DSfa::from_dfa(&dfa, &wide_cfg).unwrap();
        let rw = SizeReport::new(&dfa, &wide);
        assert_eq!(rw.state_id_bytes, 4);
        assert_eq!(rw.sfa_table_bytes, r.sfa_table_bytes * 4);
        assert!(rw.table_bytes > r.table_bytes);

        // Lazy backends always report the u32 width and no byte table.
        let lazy = SfaBackend::from(LazyDSfa::new(dfa.clone()));
        let rl = SizeReport::of_backend(&dfa, &lazy);
        assert_eq!(rl.state_id_bytes, 4);
        assert_eq!(rl.table_bytes, rl.dfa_table_bytes + rl.sfa_table_bytes);

        // combine(): the widest shard wins the width, footprints sum.
        let combined = SizeReport::combine(&[r.clone(), rl.clone()]);
        assert_eq!(combined.state_id_bytes, 4);
        assert_eq!(combined.table_bytes, r.table_bytes + rl.table_bytes);

        // JSON written before these fields existed still parses: u32 ids,
        // footprint reconstructed from the per-table byte fields.
        let legacy_json = r.to_json().replace(
            &format!(",\"state_id_bytes\":{},\"table_bytes\":{}", r.state_id_bytes, r.table_bytes),
            "",
        );
        assert!(!legacy_json.contains("state_id_bytes"), "{legacy_json}");
        let parsed = SizeReport::from_json(&legacy_json).unwrap();
        assert_eq!(parsed.state_id_bytes, 4);
        assert_eq!(parsed.table_bytes, r.dfa_table_bytes + r.sfa_table_bytes);
    }

    #[test]
    fn convergence_fields_round_trip_and_legacy_json_means_all_states_survive() {
        let mut r = report("(ab)*");
        // Fresh reports carry the "no analysis ran" sentinel.
        assert_eq!(r.convergence_horizon, 0);
        assert_eq!(r.survivor_states, r.dfa_states);
        r.convergence_horizon = 7;
        r.survivor_states = 2;
        let json = r.to_json();
        assert!(json.contains("\"convergence_horizon\":7"), "{json}");
        assert!(json.contains("\"survivor_states\":2"), "{json}");
        let back = SizeReport::from_json(&json).unwrap();
        assert_eq!(back.convergence_horizon, 7);
        assert_eq!(back.survivor_states, 2);
        // JSON written before the analysis existed still parses: horizon
        // 0, every DFA state a survivor.
        let legacy_json = json.replace(",\"convergence_horizon\":7,\"survivor_states\":2", "");
        assert!(!legacy_json.contains("convergence"), "{legacy_json}");
        let parsed = SizeReport::from_json(&legacy_json).unwrap();
        assert_eq!(parsed.convergence_horizon, 0);
        assert_eq!(parsed.survivor_states, parsed.dfa_states);
        // combine(): slowest shard's horizon, survivors summed.
        let mut a = report("(ab)*");
        a.convergence_horizon = 3;
        a.survivor_states = 1;
        let mut b = report("abcdef");
        b.convergence_horizon = 9;
        b.survivor_states = 4;
        let combined = SizeReport::combine(&[a, b]);
        assert_eq!(combined.convergence_horizon, 9);
        assert_eq!(combined.survivor_states, 5);
    }

    #[test]
    fn scan_kernel_field_round_trips_and_legacy_defaults_to_scalar() {
        let r = report("(ab)*");
        // Whatever this build/CPU dispatches to, the report names it and
        // round-trips it.
        assert!(
            matches!(r.scan_kernel.as_str(), "shuffle" | "gather" | "scalar"),
            "{}",
            r.scan_kernel
        );
        #[cfg(not(feature = "simd"))]
        assert_eq!(r.scan_kernel, "scalar");
        let json = r.to_json();
        assert!(json.contains(&format!("\"scan_kernel\":\"{}\"", r.scan_kernel)), "{json}");
        let back = SizeReport::from_json(&json).unwrap();
        assert_eq!(back.scan_kernel, r.scan_kernel);
        // JSON written before the field existed still parses as scalar.
        let legacy_json = json.replace(&format!(",\"scan_kernel\":\"{}\"", r.scan_kernel), "");
        assert!(!legacy_json.contains("scan_kernel"), "{legacy_json}");
        assert_eq!(SizeReport::from_json(&legacy_json).unwrap().scan_kernel, "scalar");
        // combine(): agreement keeps the kernel, disagreement is "mixed",
        // empty input defaults to scalar.
        let same = SizeReport::combine(&[r.clone(), r.clone()]);
        assert_eq!(same.scan_kernel, r.scan_kernel);
        let mut other = r.clone();
        other.scan_kernel = "something-else".to_string();
        assert_eq!(SizeReport::combine(&[r, other]).scan_kernel, "mixed");
        assert_eq!(SizeReport::combine(&[]).scan_kernel, "scalar");
    }

    #[test]
    fn artifact_bytes_round_trips_and_legacy_defaults_to_null() {
        let mut r = report("(ab)*");
        // Freshly compiled automata never touched disk.
        assert_eq!(r.artifact_bytes, None);
        let json = r.to_json();
        assert!(json.contains("\"artifact_bytes\":null"), "{json}");
        assert_eq!(SizeReport::from_json(&json).unwrap().artifact_bytes, None);
        // A loaded automaton reports its on-disk footprint.
        r.artifact_bytes = Some(4096);
        let json = r.to_json();
        assert!(json.contains("\"artifact_bytes\":4096"), "{json}");
        let back = SizeReport::from_json(&json).unwrap();
        assert_eq!(back.artifact_bytes, Some(4096));
        // JSON written before the field existed still parses as None.
        let legacy_json = json.replace(",\"artifact_bytes\":4096", "");
        assert!(!legacy_json.contains("artifact_bytes"), "{legacy_json}");
        assert_eq!(SizeReport::from_json(&legacy_json).unwrap().artifact_bytes, None);
        // combine(): None until any shard carries a value, then the sum
        // over the shards that do.
        let plain = report("abcdef");
        assert_eq!(SizeReport::combine(&[plain.clone(), plain.clone()]).artifact_bytes, None);
        let combined = SizeReport::combine(&[r.clone(), plain]);
        assert_eq!(combined.artifact_bytes, Some(4096));
        let both = SizeReport::combine(&[r.clone(), r]);
        assert_eq!(both.artifact_bytes, Some(8192));
    }

    #[test]
    fn borrowed_backend_reports_kind_and_artifact_footprint() {
        use crate::borrowed::{LoadedSfa, LoadedSfaParts};
        use crate::{SfaStateId, StateIdRepr};
        use std::sync::Arc;
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig { premultiply: false, ..SfaConfig::default() })
            .unwrap();
        // Flatten the tables the way an artifact stores them.
        let (n, d, stride, w) =
            (sfa.num_states(), dfa.num_states(), sfa.num_classes(), sfa.repr().bytes());
        let mut buf = Vec::new();
        for s in 0..n as SfaStateId {
            for c in 0..stride {
                buf.extend_from_slice(&sfa.next_by_class(s, c as u16).to_le_bytes()[..w]);
            }
        }
        let table = 0..buf.len();
        let map_start = buf.len();
        for s in 0..n as SfaStateId {
            for q in 0..d as u32 {
                buf.extend_from_slice(&sfa.mapping(s).apply(q).to_le_bytes());
            }
        }
        let mappings = map_start..buf.len();
        let artifact_len = buf.len();
        let parts = LoadedSfaParts {
            data: Arc::new(buf),
            repr: StateIdRepr::U8,
            num_states: n,
            table,
            byte_table: None,
            mappings,
        };
        let loaded = LoadedSfa::new(parts, &dfa).unwrap();
        let backend = SfaBackend::from(loaded);
        assert_eq!(backend.kind(), BackendKind::Borrowed);
        assert_eq!(BackendKind::parse("Borrowed"), Some(BackendKind::Borrowed));
        let r = SizeReport::of_backend(&dfa, &backend);
        assert_eq!(r.backend, BackendKind::Borrowed);
        assert_eq!(r.artifact_bytes, Some(artifact_len));
        assert_eq!(r.sfa_states, sfa.num_states());
        assert_eq!(r.scan_kernel, "scalar");
        // Round-trips through JSON with the Borrowed kind intact.
        let back = SizeReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.backend, BackendKind::Borrowed);
        assert_eq!(back.artifact_bytes, Some(artifact_len));
        // combine(): all-borrowed stays borrowed, eager+borrowed reports
        // eager, any lazy shard wins.
        assert_eq!(SizeReport::combine(&[r.clone(), r.clone()]).backend, BackendKind::Borrowed);
        let eager = report("(ab)*");
        assert_eq!(SizeReport::combine(&[r.clone(), eager]).backend, BackendKind::Eager);
        let mut lazy = report("(ab)*");
        lazy.backend = BackendKind::Lazy;
        assert_eq!(SizeReport::combine(&[r, lazy]).backend, BackendKind::Lazy);
    }

    #[test]
    fn non_finite_ratio_round_trips_as_null() {
        let mut r = report("(ab)*");
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            r.ratio = bad;
            let json = r.to_json();
            assert!(json.contains("\"ratio\":null"), "{json}");
            // Still valid JSON: no bare NaN/inf tokens anywhere.
            assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
            let back = SizeReport::from_json(&json).expect("null ratio must parse");
            assert!(back.ratio.is_nan(), "non-finite ratios read back as NaN");
            assert_eq!(back.sfa_states, r.sfa_states);
        }
        // Finite ratios are unaffected.
        r.ratio = 2.5;
        let back = SizeReport::from_json(&r.to_json()).unwrap();
        assert!((back.ratio - 2.5).abs() < 1e-12);
    }
}
