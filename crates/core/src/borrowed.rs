//! The borrowed D-SFA backend: an eager automaton whose big tables live
//! in caller-owned bytes instead of crate-owned allocations.
//!
//! This is the zero-copy half of the durable-artifact story
//! (`sfa-serialize` writes eager [`DSfa`](crate::DSfa)s to disk;
//! [`LoadedSfa`] is what comes back). The packed class rows, the
//! premultiplied byte table and the state mappings are *borrowed* as byte
//! ranges out of one shared buffer — typically a memory-mapped artifact
//! file — so loading an automaton costs validation plus a handful of
//! small derived bitmaps, never a copy of the multi-megabyte tables. The
//! buffer travels behind `Arc<dyn AsRef<[u8]>>`, which keeps the mapping
//! alive for as long as any clone of the automaton is.
//!
//! Safety model: construction ([`LoadedSfa::new`]) bounds-checks every
//! table entry against the state counts (the `Dfa::validate` equivalent
//! for the SFA side) and re-derives the sink/accepting bitmaps from the
//! validated tables rather than trusting the artifact, so a bit-flipped
//! file fails closed at load time and the scan loops can index without
//! per-byte range panics being reachable.

use crate::dsfa::{SfaStateId, StateIdRepr};
use crate::mapping::Transformation;
use sfa_automata::{ByteClasses, Dfa, PatternSet, StateId};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// The shared bytes a [`LoadedSfa`] borrows its tables from — an mmap, a
/// `Vec<u8>`, anything that can hand out `&[u8]`.
pub type ArtifactBytes = Arc<dyn AsRef<[u8]> + Send + Sync>;

/// Byte ranges into an artifact buffer locating one automaton's tables.
/// Produced by the artifact parser (`sfa-serialize`); consumed, together
/// with the reconstructed source [`Dfa`], by [`LoadedSfa::new`].
pub struct LoadedSfaParts {
    /// The shared buffer every range below indexes into.
    pub data: ArtifactBytes,
    /// The packed width of the state ids stored in `table` / `byte_table`.
    pub repr: StateIdRepr,
    /// Number of SFA states (`|S_d|`).
    pub num_states: usize,
    /// The class-compressed transition rows: `num_states × classes`
    /// little-endian ids at `repr` width.
    pub table: Range<usize>,
    /// The premultiplied dense byte table, when the artifact carries one:
    /// `num_states × 256` little-endian ids at `repr` width.
    pub byte_table: Option<Range<usize>>,
    /// The state mappings: `num_states × |D|` little-endian `u32` DFA
    /// state ids (row `s` is the transformation carried by SFA state `s`).
    pub mappings: Range<usize>,
}

/// An eager D-SFA whose transition tables and mappings are borrowed from
/// a caller-owned byte buffer (see the [module docs](self)).
///
/// Mirrors the scan surface of [`DSfa`](crate::DSfa) with the scalar
/// loops only: borrowed tables are untyped bytes, so scans read ids via
/// `from_le_bytes`, monomorphized per packed width. Small derived state
/// (sink/accepting bitmaps, the DFA accept sets) is owned — it is
/// recomputed from the validated tables at load time.
#[derive(Clone)]
pub struct LoadedSfa {
    data: ArtifactBytes,
    repr: StateIdRepr,
    num_states: usize,
    stride: usize,
    classes: ByteClasses,
    table: Range<usize>,
    byte_table: Option<Range<usize>>,
    mappings: Range<usize>,
    sink: Box<[bool]>,
    accepting: Box<[bool]>,
    dfa_start: StateId,
    dfa_accepting: Box<[bool]>,
    pattern_count: usize,
    dfa_accept_index: Box<[u32]>,
    dfa_accept_sets: Vec<PatternSet>,
    state_index: OnceLock<HashMap<Transformation, SfaStateId>>,
}

impl std::fmt::Debug for LoadedSfa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedSfa")
            .field("num_states", &self.num_states)
            .field("num_dfa_states", &self.dfa_accepting.len())
            .field("repr", &self.repr)
            .field("premultiplied", &self.byte_table.is_some())
            .field("artifact_bytes", &self.bytes().len())
            .finish()
    }
}

/// Reads the little-endian id at index `i` of a packed table. The `match`
/// on the const width folds away per monomorphization, so each scan loop
/// compiles to fixed-width loads.
#[inline(always)]
fn read_id<const W: usize>(buf: &[u8], i: usize) -> SfaStateId {
    match W {
        1 => buf[i] as SfaStateId,
        2 => u16::from_le_bytes([buf[2 * i], buf[2 * i + 1]]) as SfaStateId,
        _ => u32::from_le_bytes([buf[4 * i], buf[4 * i + 1], buf[4 * i + 2], buf[4 * i + 3]]),
    }
}

/// The premultiplied hot loop over borrowed bytes: one dense lookup per
/// byte, sink bitmap consulted only on state change (the borrowed twin of
/// the owned scan in `dsfa`).
#[inline]
fn scan_dense<const W: usize>(
    table: &[u8],
    sink: &[bool],
    state: SfaStateId,
    input: &[u8],
) -> SfaStateId {
    let mut f = state;
    for &b in input {
        let next = read_id::<W>(table, f as usize * 256 + b as usize);
        if next != f {
            f = next;
            if sink[f as usize] {
                return f;
            }
        }
    }
    f
}

/// The class-compressed fallback loop over borrowed bytes.
#[inline]
fn scan_classes<const W: usize>(
    table: &[u8],
    classes: &ByteClasses,
    stride: usize,
    sink: &[bool],
    state: SfaStateId,
    input: &[u8],
) -> SfaStateId {
    let mut f = state;
    for &b in input {
        let next = read_id::<W>(table, f as usize * stride + classes.class_of(b) as usize);
        if next != f {
            f = next;
            if sink[f as usize] {
                return f;
            }
        }
    }
    f
}

impl LoadedSfa {
    /// Validates the borrowed tables and assembles the automaton.
    ///
    /// `dfa` is the reconstructed (and already [`Dfa::validate`]d) source
    /// automaton; its accept metadata is copied — it is small — while the
    /// SFA tables stay borrowed. Every invariant a scan loop relies on is
    /// checked here so corrupt artifacts fail closed with a reason
    /// instead of panicking mid-match:
    ///
    /// * all three ranges lie inside the buffer and have exactly the
    ///   advertised `count × width` lengths,
    /// * every transition target (class rows *and* byte table) is a valid
    ///   SFA state id,
    /// * every mapping entry is a valid DFA state id,
    /// * state 0 carries the identity mapping (the composition shortcuts
    ///   assume it).
    ///
    /// The sink and accepting bitmaps are then derived from the validated
    /// tables, never read from the artifact.
    pub fn new(parts: LoadedSfaParts, dfa: &Dfa) -> Result<LoadedSfa, String> {
        let LoadedSfaParts { data, repr, num_states, table, byte_table, mappings } = parts;
        let buf_len = (*data).as_ref().len();
        let n = num_states;
        let d = dfa.num_states();
        let stride = dfa.num_classes();
        let w = repr.bytes();
        if n == 0 {
            return Err("an SFA needs at least one state".to_string());
        }
        if n > repr.max_states() {
            return Err(format!("{n} states do not fit the declared {repr} id width"));
        }
        let check_range = |range: &Range<usize>, len: usize, what: &str| -> Result<(), String> {
            if range.start > range.end || range.end > buf_len {
                return Err(format!(
                    "{what} range {}..{} escapes the {buf_len}-byte buffer",
                    range.start, range.end
                ));
            }
            if range.len() != len {
                return Err(format!("{what} has {} bytes, expected {len}", range.len()));
            }
            Ok(())
        };
        check_range(&table, n * stride * w, "class-row table")?;
        if let Some(bt) = &byte_table {
            check_range(bt, n * 256 * w, "premultiplied byte table")?;
        }
        check_range(&mappings, n * d * 4, "mapping table")?;

        let buf = (*data).as_ref();
        let check_ids = |range: &Range<usize>, limit: usize, what: &str| -> Result<(), String> {
            let bytes = &buf[range.clone()];
            let count = bytes.len() / w;
            for i in 0..count {
                let id = match repr {
                    StateIdRepr::U8 => read_id::<1>(bytes, i),
                    StateIdRepr::U16 => read_id::<2>(bytes, i),
                    StateIdRepr::U32 => read_id::<4>(bytes, i),
                };
                if id as usize >= limit {
                    return Err(format!("{what} entry {i} is {id}, out of range (0..{limit})"));
                }
            }
            Ok(())
        };
        check_ids(&table, n, "class-row")?;
        if let Some(bt) = &byte_table {
            check_ids(bt, n, "byte-table")?;
        }
        let map_bytes = &buf[mappings.clone()];
        for i in 0..n * d {
            let q = read_id::<4>(map_bytes, i);
            if q as usize >= d {
                return Err(format!("mapping entry {i} is {q}, out of range (0..{d})"));
            }
        }
        for q in 0..d {
            if read_id::<4>(map_bytes, q) != q as u32 {
                return Err("state 0 does not carry the identity mapping".to_string());
            }
        }

        // Derived bitmaps, computed from the now-validated tables.
        let table_bytes = &buf[table.clone()];
        let sink: Box<[bool]> = (0..n)
            .map(|s| {
                (0..stride).all(|c| {
                    let id = match repr {
                        StateIdRepr::U8 => read_id::<1>(table_bytes, s * stride + c),
                        StateIdRepr::U16 => read_id::<2>(table_bytes, s * stride + c),
                        StateIdRepr::U32 => read_id::<4>(table_bytes, s * stride + c),
                    };
                    id as usize == s
                })
            })
            .collect();
        let start = dfa.start();
        let accepting: Box<[bool]> = (0..n)
            .map(|s| dfa.is_accepting(read_id::<4>(map_bytes, s * d + start as usize)))
            .collect();

        Ok(LoadedSfa {
            classes: dfa.classes().clone(),
            stride,
            repr,
            num_states: n,
            table,
            byte_table,
            mappings,
            sink,
            accepting,
            dfa_start: start,
            dfa_accepting: dfa.accepting().to_vec().into_boxed_slice(),
            pattern_count: dfa.pattern_count(),
            dfa_accept_index: dfa.accept_indices().to_vec().into_boxed_slice(),
            dfa_accept_sets: dfa.distinct_accept_sets().to_vec(),
            data,
            state_index: OnceLock::new(),
        })
    }

    /// The whole underlying artifact buffer.
    #[inline]
    fn bytes(&self) -> &[u8] {
        (*self.data).as_ref()
    }

    /// Total size of the backing artifact buffer in bytes — what an
    /// on-disk size report should attribute to this automaton.
    pub fn artifact_bytes(&self) -> usize {
        self.bytes().len()
    }

    /// Number of SFA states (`|S_d|`).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of states of the source DFA.
    #[inline]
    pub fn num_dfa_states(&self) -> usize {
        self.dfa_accepting.len()
    }

    /// The byte classes shared with the source DFA.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Number of byte classes (row width of the transition table).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.stride
    }

    /// The initial state (always 0: the identity mapping `f_I`).
    #[inline]
    pub fn initial(&self) -> SfaStateId {
        0
    }

    /// The start state of the source DFA.
    #[inline]
    pub fn dfa_start(&self) -> StateId {
        self.dfa_start
    }

    /// Returns true if the DFA state is accepting (used by reductions).
    #[inline]
    pub fn dfa_is_accepting(&self, q: StateId) -> bool {
        self.dfa_accepting[q as usize]
    }

    /// Returns true if the SFA state is accepting.
    #[inline]
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        self.accepting[state as usize]
    }

    /// True when every transition of `state` loops back to itself.
    #[inline]
    pub fn is_sink(&self, state: SfaStateId) -> bool {
        self.sink[state as usize]
    }

    /// Number of original patterns compiled into the source DFA.
    #[inline]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The set of patterns a source-DFA state accepts.
    #[inline]
    pub fn dfa_accepting_patterns(&self, q: StateId) -> &PatternSet {
        &self.dfa_accept_sets[self.dfa_accept_index[q as usize] as usize]
    }

    /// The set of patterns matched when the whole input lands in `state`
    /// (the accept set of `f(q_0)`).
    #[inline]
    pub fn accepting_patterns(&self, state: SfaStateId) -> &PatternSet {
        self.dfa_accepting_patterns(self.apply(state, self.dfa_start))
    }

    /// The packed width the borrowed tables store state ids at.
    #[inline]
    pub fn repr(&self) -> StateIdRepr {
        self.repr
    }

    /// True when the artifact carried a premultiplied dense byte table.
    #[inline]
    pub fn premultiplied(&self) -> bool {
        self.byte_table.is_some()
    }

    /// Applies the mapping of `state` to one DFA state — one borrowed
    /// `u32` load, no allocation.
    #[inline]
    pub fn apply(&self, state: SfaStateId, q: StateId) -> StateId {
        let map = &self.bytes()[self.mappings.clone()];
        read_id::<4>(map, state as usize * self.num_dfa_states() + q as usize)
    }

    /// The mapping carried by `state`, materialized into an owned
    /// [`Transformation`] (`O(|D|)`).
    pub fn mapping(&self, state: SfaStateId) -> Transformation {
        let d = self.num_dfa_states();
        let map = &self.bytes()[self.mappings.clone()];
        Transformation::from_vec(
            (0..d).map(|q| read_id::<4>(map, state as usize * d + q)).collect(),
        )
    }

    /// Transition on a byte class.
    #[inline]
    pub fn next_by_class(&self, state: SfaStateId, class: u16) -> SfaStateId {
        let table = &self.bytes()[self.table.clone()];
        let i = state as usize * self.stride + class as usize;
        match self.repr {
            StateIdRepr::U8 => read_id::<1>(table, i),
            StateIdRepr::U16 => read_id::<2>(table, i),
            StateIdRepr::U32 => read_id::<4>(table, i),
        }
    }

    /// Transition on a byte.
    #[inline]
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> SfaStateId {
        match &self.byte_table {
            Some(bt) => {
                let table = &self.bytes()[bt.clone()];
                let i = state as usize * 256 + byte as usize;
                match self.repr {
                    StateIdRepr::U8 => read_id::<1>(table, i),
                    StateIdRepr::U16 => read_id::<2>(table, i),
                    StateIdRepr::U32 => read_id::<4>(table, i),
                }
            }
            None => self.next_by_class(state, self.classes.class_of(byte)),
        }
    }

    /// Runs the SFA over `input` from the identity state.
    pub fn run(&self, input: &[u8]) -> SfaStateId {
        self.run_from(self.initial(), input)
    }

    /// Runs the SFA over `input` from an arbitrary state, with the sink
    /// early-exit. Always the scalar loops: borrowed tables carry no
    /// alignment guarantee, so the SIMD kernels stay with the owned
    /// backend.
    pub fn run_from(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        if self.sink[state as usize] {
            return state;
        }
        let buf = self.bytes();
        match &self.byte_table {
            Some(bt) => {
                let t = &buf[bt.clone()];
                match self.repr {
                    StateIdRepr::U8 => scan_dense::<1>(t, &self.sink, state, input),
                    StateIdRepr::U16 => scan_dense::<2>(t, &self.sink, state, input),
                    StateIdRepr::U32 => scan_dense::<4>(t, &self.sink, state, input),
                }
            }
            None => {
                let t = &buf[self.table.clone()];
                let (c, s) = (&self.classes, self.stride);
                match self.repr {
                    StateIdRepr::U8 => scan_classes::<1>(t, c, s, &self.sink, state, input),
                    StateIdRepr::U16 => scan_classes::<2>(t, c, s, &self.sink, state, input),
                    StateIdRepr::U32 => scan_classes::<4>(t, c, s, &self.sink, state, input),
                }
            }
        }
    }

    /// Runs several independent `(state, input)` jobs in job order.
    pub fn run_from_many(&self, jobs: &[(SfaStateId, &[u8])]) -> Vec<SfaStateId> {
        jobs.iter().map(|&(s, input)| self.run_from(s, input)).collect()
    }

    /// Whole-input membership.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Composes two SFA states *as states* (`f_w ⋄ f_v = f_wv`, Lemma 1),
    /// resolving the composite through a lazily built mapping index like
    /// the owned backend.
    pub fn compose_states(&self, a: SfaStateId, b: SfaStateId) -> SfaStateId {
        if a == self.initial() {
            return b;
        }
        if b == self.initial() || self.is_sink(a) {
            return a;
        }
        let composed = self.mapping(a).then(&self.mapping(b));
        *self
            .state_index()
            .get(&composed)
            .expect("SFA states are closed under composition (Lemma 1)")
    }

    /// Looks up the SFA state of a transformation, if reachable.
    pub fn state_of(&self, mapping: &Transformation) -> Option<SfaStateId> {
        self.state_index().get(mapping).copied()
    }

    fn state_index(&self) -> &HashMap<Transformation, SfaStateId> {
        self.state_index.get_or_init(|| {
            (0..self.num_states as SfaStateId).map(|s| (self.mapping(s), s)).collect()
        })
    }

    /// Bytes occupied by the borrowed class-compressed transition rows.
    pub fn table_bytes(&self) -> usize {
        self.table.len()
    }

    /// Bytes occupied by the borrowed premultiplied byte table (0 when
    /// the artifact carried none).
    pub fn byte_table_bytes(&self) -> usize {
        self.byte_table.as_ref().map_or(0, |r| r.len())
    }

    /// Bytes occupied by the borrowed state mappings.
    pub fn mapping_bytes(&self) -> usize {
        self.mappings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DSfa, SfaConfig};
    use sfa_automata::minimal_dfa_from_pattern;

    /// Serializes a DSfa's tables into a flat buffer the way an artifact
    /// would, then loads them borrowed.
    fn loaded(pattern: &str, premultiply: bool) -> (Dfa, DSfa, LoadedSfa) {
        let dfa = minimal_dfa_from_pattern(pattern).unwrap();
        let cfg = SfaConfig { premultiply, ..SfaConfig::default() };
        let sfa = DSfa::from_dfa(&dfa, &cfg).unwrap();
        let (buf, parts_of) = encode(&dfa, &sfa);
        let loaded = LoadedSfa::new(parts_of(Arc::new(buf)), &dfa).unwrap();
        (dfa, sfa, loaded)
    }

    /// Flattens the SFA tables at the packed width; returns the buffer
    /// and a parts builder (so tests can corrupt the buffer first).
    fn encode(
        dfa: &Dfa,
        sfa: &DSfa,
    ) -> (Vec<u8>, impl Fn(ArtifactBytes) -> LoadedSfaParts + use<>) {
        let n = sfa.num_states();
        let d = dfa.num_states();
        let stride = sfa.num_classes();
        let w = sfa.repr().bytes();
        let mut buf = Vec::new();
        let push = |buf: &mut Vec<u8>, id: SfaStateId, w: usize| {
            buf.extend_from_slice(&id.to_le_bytes()[..w]);
        };
        for s in 0..n as SfaStateId {
            for c in 0..stride {
                push(&mut buf, sfa.next_by_class(s, c as u16), w);
            }
        }
        let table = 0..buf.len();
        let byte_table = sfa.premultiplied().then(|| {
            let start = buf.len();
            for s in 0..n as SfaStateId {
                for b in 0..=255u8 {
                    push(&mut buf, sfa.next_state(s, b), w);
                }
            }
            start..buf.len()
        });
        let map_start = buf.len();
        for s in 0..n as SfaStateId {
            for q in 0..d as StateId {
                push(&mut buf, sfa.mapping(s).apply(q), 4);
            }
        }
        let mappings = map_start..buf.len();
        let (repr, num_states) = (sfa.repr(), n);
        let parts = move |data: ArtifactBytes| LoadedSfaParts {
            data,
            repr,
            num_states,
            table: table.clone(),
            byte_table: byte_table.clone(),
            mappings: mappings.clone(),
        };
        (buf, parts)
    }

    #[test]
    fn borrowed_scans_agree_with_owned() {
        for premultiply in [true, false] {
            for pattern in ["(ab)*", "(a|b)*abb", "([0-4]{2}[5-9]{2})*", "a{2,4}b{1,3}"] {
                let (dfa, sfa, loaded) = loaded(pattern, premultiply);
                assert_eq!(loaded.num_states(), sfa.num_states());
                assert_eq!(loaded.premultiplied(), sfa.premultiplied());
                assert_eq!(loaded.repr(), sfa.repr());
                for input in [&b""[..], b"ab", b"abab", b"abb", b"0055", b"aabbb", b"zzz"] {
                    let fo = sfa.run(input);
                    let fb = loaded.run(input);
                    assert_eq!(fo, fb, "{pattern} {input:?} premultiply={premultiply}");
                    assert_eq!(loaded.is_accepting(fb), sfa.is_accepting(fo));
                    assert_eq!(loaded.is_sink(fb), sfa.is_sink(fo));
                    assert_eq!(loaded.accepts(input), dfa.accepts(input));
                    assert_eq!(&loaded.mapping(fb), sfa.mapping(fo));
                    for q in 0..dfa.num_states() as StateId {
                        assert_eq!(loaded.apply(fb, q), sfa.mapping(fo).apply(q));
                    }
                }
                // Composition and state lookup go through the borrowed
                // mapping index.
                let (a, b) = (loaded.run(b"ab"), loaded.run(b"ba"));
                assert_eq!(loaded.compose_states(a, b), sfa.compose_states(a, b));
                assert_eq!(loaded.state_of(sfa.mapping(a)), Some(a));
                // Batch path agrees with one-by-one scans.
                let jobs: Vec<(SfaStateId, &[u8])> =
                    vec![(loaded.initial(), b"abab"), (a, b"b"), (loaded.initial(), b"")];
                let expected: Vec<SfaStateId> =
                    jobs.iter().map(|&(s, i)| loaded.run_from(s, i)).collect();
                assert_eq!(loaded.run_from_many(&jobs), expected);
            }
        }
    }

    #[test]
    fn validation_rejects_out_of_range_and_misshapen_tables() {
        let dfa = minimal_dfa_from_pattern("(ab)*").unwrap();
        let sfa = DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap();
        let (buf, parts_of) = encode(&dfa, &sfa);

        // Pristine buffer loads.
        assert!(LoadedSfa::new(parts_of(Arc::new(buf.clone())), &dfa).is_ok());

        // An out-of-range state id in the class rows fails closed.
        let mut bad = buf.clone();
        bad[0] = 0xFF;
        let err = LoadedSfa::new(parts_of(Arc::new(bad)), &dfa).unwrap_err();
        assert!(err.contains("out of range"), "{err}");

        // A truncated buffer fails the range check, not a panic.
        let short = buf[..buf.len() - 1].to_vec();
        let err = LoadedSfa::new(parts_of(Arc::new(short)), &dfa).unwrap_err();
        assert!(err.contains("escapes"), "{err}");

        // A corrupted identity row (state 0) is rejected.
        let mut bad = buf.clone();
        let map_range = parts_of(Arc::new(buf.clone())).mappings;
        bad[map_range.start] = 1;
        let err = LoadedSfa::new(parts_of(Arc::new(bad)), &dfa).unwrap_err();
        assert!(err.contains("identity"), "{err}");

        // A mapping entry pointing at a nonexistent DFA state is rejected.
        let mut bad = buf;
        bad[map_range.start + 4] = 0xEE;
        let err = LoadedSfa::new(parts_of(Arc::new(bad)), &dfa).unwrap_err();
        assert!(err.contains("mapping entry"), "{err}");
    }

    #[test]
    fn derived_bitmaps_match_the_owned_automaton() {
        let (_, sfa, loaded) = loaded("(a|b)*abb", true);
        for s in 0..sfa.num_states() as SfaStateId {
            assert_eq!(loaded.is_sink(s), sfa.is_sink(s), "sink {s}");
            assert_eq!(loaded.is_accepting(s), sfa.is_accepting(s), "accepting {s}");
            assert_eq!(loaded.accepting_patterns(s), sfa.accepting_patterns(s));
        }
        assert_eq!(loaded.table_bytes(), sfa.table_bytes());
        assert_eq!(loaded.byte_table_bytes(), sfa.byte_table_bytes());
        assert!(loaded.artifact_bytes() > 0);
    }
}
