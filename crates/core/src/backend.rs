//! The pluggable D-SFA backend abstraction.
//!
//! Everything above `sfa-core` — the chunk scanners, the parallel and
//! streaming matchers, the `Regex` facade — needs only a small surface
//! from the automaton: run a chunk from a state, test acceptance, detect
//! sinks, compose states, report sizes. [`SfaBackend`] captures that
//! surface over the two representations this crate provides:
//!
//! * **Eager** ([`DSfa`]) — the full correspondence construction
//!   (Algorithm 4): every reachable transformation materialized and
//!   premultiplied up front. Fastest per byte (a dense table lookup), but
//!   construction is `O(|S_d|)` in time and memory and *fails* on the
//!   explosion families of Section VII.
//! * **Lazy** ([`LazyDSfa`]) — the on-the-fly construction (Section V-A):
//!   states materialize only when an input actually reaches them, "at
//!   most n states for input text of length n even if the number of
//!   states in DFA explodes". Pays a read-lock and a class indirection on
//!   the hot path, but makes every pattern *feasible*.
//!
//! Dispatch is a two-arm enum rather than a trait object: the matcher
//! layer stays object-free and monomorphization-free (one `Regex` type,
//! not `Regex<B>`), and the branch predicts perfectly since a given
//! matcher only ever holds one variant.

use crate::borrowed::LoadedSfa;
use crate::dsfa::{DSfa, SfaStateId, StateIdRepr};
use crate::lazy::LazyDSfa;
use crate::mapping::Transformation;
use sfa_automata::{PatternSet, StateId};

/// Which D-SFA representation a backend uses. See the
/// [module docs](self) for the trade-off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Fully materialized, premultiplied tables (Algorithm 4).
    Eager,
    /// On-the-fly construction (Section V-A): states materialize as
    /// inputs visit them.
    Lazy,
    /// Eager tables borrowed zero-copy from a serialized artifact (see
    /// [`crate::borrowed::LoadedSfa`]).
    Borrowed,
}

impl BackendKind {
    /// The kind's name, used in the JSON size report.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Eager => "Eager",
            BackendKind::Lazy => "Lazy",
            BackendKind::Borrowed => "Borrowed",
        }
    }

    /// Parses a kind name produced by [`BackendKind::as_str`].
    pub fn parse(s: &str) -> Option<BackendKind> {
        Some(match s {
            "Eager" => BackendKind::Eager,
            "Lazy" => BackendKind::Lazy,
            "Borrowed" => BackendKind::Borrowed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A D-SFA behind one of the two representations, exposing exactly the
/// operations the matcher layer needs. See the [module docs](self).
#[derive(Clone, Debug)]
pub enum SfaBackend {
    /// The eager, fully materialized [`DSfa`].
    Eager(DSfa),
    /// The on-the-fly [`LazyDSfa`].
    Lazy(LazyDSfa),
    /// An eager automaton whose tables are borrowed from a serialized
    /// artifact buffer ([`LoadedSfa`]).
    Borrowed(LoadedSfa),
}

impl From<DSfa> for SfaBackend {
    fn from(sfa: DSfa) -> SfaBackend {
        SfaBackend::Eager(sfa)
    }
}

impl From<LazyDSfa> for SfaBackend {
    fn from(sfa: LazyDSfa) -> SfaBackend {
        SfaBackend::Lazy(sfa)
    }
}

impl From<LoadedSfa> for SfaBackend {
    fn from(sfa: LoadedSfa) -> SfaBackend {
        SfaBackend::Borrowed(sfa)
    }
}

impl SfaBackend {
    /// Which representation this backend uses.
    pub fn kind(&self) -> BackendKind {
        match self {
            SfaBackend::Eager(_) => BackendKind::Eager,
            SfaBackend::Lazy(_) => BackendKind::Lazy,
            SfaBackend::Borrowed(_) => BackendKind::Borrowed,
        }
    }

    /// The eager automaton, when this backend is eager.
    pub fn eager(&self) -> Option<&DSfa> {
        match self {
            SfaBackend::Eager(sfa) => Some(sfa),
            _ => None,
        }
    }

    /// The lazy automaton, when this backend is lazy.
    pub fn lazy(&self) -> Option<&LazyDSfa> {
        match self {
            SfaBackend::Lazy(sfa) => Some(sfa),
            _ => None,
        }
    }

    /// The borrowed automaton, when this backend was loaded zero-copy
    /// from a serialized artifact.
    pub fn borrowed(&self) -> Option<&LoadedSfa> {
        match self {
            SfaBackend::Borrowed(sfa) => Some(sfa),
            _ => None,
        }
    }

    /// The initial state (always the identity mapping `f_I`).
    #[inline]
    pub fn initial(&self) -> SfaStateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.initial(),
            SfaBackend::Lazy(sfa) => sfa.initial(),
            SfaBackend::Borrowed(sfa) => sfa.initial(),
        }
    }

    /// Transition on a byte, constructing the target on demand for lazy
    /// backends.
    #[inline]
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> SfaStateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.next_state(state, byte),
            SfaBackend::Lazy(sfa) => sfa.next_state(state, byte),
            SfaBackend::Borrowed(sfa) => sfa.next_state(state, byte),
        }
    }

    /// Runs the SFA over `input` from the identity state (the chunk phase
    /// of Algorithm 5 for one chunk).
    pub fn run(&self, input: &[u8]) -> SfaStateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.run(input),
            SfaBackend::Lazy(sfa) => sfa.run(input),
            SfaBackend::Borrowed(sfa) => sfa.run(input),
        }
    }

    /// Runs the SFA over `input` from an arbitrary state, with the
    /// backend's sink early-exit.
    pub fn run_from(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.run_from(state, input),
            SfaBackend::Lazy(sfa) => sfa.run_from(state, input),
            SfaBackend::Borrowed(sfa) => sfa.run_from(state, input),
        }
    }

    /// Runs several independent `(state, input)` jobs, in job order.
    ///
    /// On an eager premultiplied backend this walks
    /// [`crate::dsfa::INTERLEAVE_LANES`] jobs in lockstep to hide
    /// table-load latency (see [`DSfa::run_from_many`]); on a lazy
    /// backend the jobs run one by one — interleaving would multiply
    /// read-lock traffic on the shared cache without overlapping any
    /// table loads.
    pub fn run_from_many(&self, jobs: &[(SfaStateId, &[u8])]) -> Vec<SfaStateId> {
        match self {
            SfaBackend::Eager(sfa) => sfa.run_from_many(jobs),
            SfaBackend::Lazy(sfa) => {
                jobs.iter().map(|&(s, input)| sfa.run_from(s, input)).collect()
            }
            SfaBackend::Borrowed(sfa) => sfa.run_from_many(jobs),
        }
    }

    /// Whole-input membership using the SFA alone.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Returns true if the SFA state is accepting
    /// (`F_s = { f | f(q_0) ∈ F_D }`).
    #[inline]
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        match self {
            SfaBackend::Eager(sfa) => sfa.is_accepting(state),
            SfaBackend::Lazy(sfa) => sfa.is_accepting(state),
            SfaBackend::Borrowed(sfa) => sfa.is_accepting(state),
        }
    }

    /// True when the mapping carried by `state` can never change again —
    /// matchers stop scanning and streams saturate on such states.
    #[inline]
    pub fn is_sink(&self, state: SfaStateId) -> bool {
        match self {
            SfaBackend::Eager(sfa) => sfa.is_sink(state),
            SfaBackend::Lazy(sfa) => sfa.is_sink(state),
            SfaBackend::Borrowed(sfa) => sfa.is_sink(state),
        }
    }

    /// Composes two SFA states *as states* (`f_w ⋄ f_v = f_wv`, Lemma 1).
    /// On the lazy backend the composite is interned — it may materialize
    /// a state no input has walked to yet.
    pub fn compose_states(&self, a: SfaStateId, b: SfaStateId) -> SfaStateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.compose_states(a, b),
            SfaBackend::Lazy(sfa) => sfa.compose_states(a, b),
            SfaBackend::Borrowed(sfa) => sfa.compose_states(a, b),
        }
    }

    /// The mapping carried by a state, cloned out of the backend (lazy
    /// backends cannot hand out references into their locked cache).
    pub fn mapping(&self, state: SfaStateId) -> Transformation {
        match self {
            SfaBackend::Eager(sfa) => sfa.mapping(state).clone(),
            SfaBackend::Lazy(sfa) => sfa.mapping(state),
            SfaBackend::Borrowed(sfa) => sfa.mapping(state),
        }
    }

    /// Applies the mapping of `state` to one DFA state — the sequential
    /// reduction's `f(q)` lookup, clone-free on both backends.
    #[inline]
    pub fn apply(&self, state: SfaStateId, q: StateId) -> StateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.mapping(state).apply(q),
            SfaBackend::Lazy(sfa) => sfa.apply(state, q),
            SfaBackend::Borrowed(sfa) => sfa.apply(state, q),
        }
    }

    /// Looks up the SFA state of a transformation, if materialized (lazy)
    /// / reachable (eager).
    pub fn state_of(&self, mapping: &Transformation) -> Option<SfaStateId> {
        match self {
            SfaBackend::Eager(sfa) => sfa.state_of(mapping),
            SfaBackend::Lazy(sfa) => sfa.state_of(mapping),
            SfaBackend::Borrowed(sfa) => sfa.state_of(mapping),
        }
    }

    /// The start state of the source DFA.
    #[inline]
    pub fn dfa_start(&self) -> StateId {
        match self {
            SfaBackend::Eager(sfa) => sfa.dfa_start(),
            SfaBackend::Lazy(sfa) => sfa.dfa_start(),
            SfaBackend::Borrowed(sfa) => sfa.dfa_start(),
        }
    }

    /// Returns true if the DFA state is accepting (used by reductions).
    #[inline]
    pub fn dfa_is_accepting(&self, q: StateId) -> bool {
        match self {
            SfaBackend::Eager(sfa) => sfa.dfa_is_accepting(q),
            SfaBackend::Lazy(sfa) => sfa.dfa_is_accepting(q),
            SfaBackend::Borrowed(sfa) => sfa.dfa_is_accepting(q),
        }
    }

    /// Number of original patterns compiled into the source DFA (1 for
    /// single-pattern automata, 0 for an empty pattern set).
    #[inline]
    pub fn pattern_count(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.pattern_count(),
            SfaBackend::Lazy(sfa) => sfa.pattern_count(),
            SfaBackend::Borrowed(sfa) => sfa.pattern_count(),
        }
    }

    /// The set of patterns a source-DFA state accepts — how a reduction's
    /// final DFA state turns into the per-rule verdict.
    #[inline]
    pub fn dfa_accepting_patterns(&self, q: StateId) -> &PatternSet {
        match self {
            SfaBackend::Eager(sfa) => sfa.dfa_accepting_patterns(q),
            SfaBackend::Lazy(sfa) => sfa.dfa_accepting_patterns(q),
            SfaBackend::Borrowed(sfa) => sfa.dfa_accepting_patterns(q),
        }
    }

    /// The set of patterns matched when the whole input lands in `state`
    /// (the accept set of `f(q_0)`) — the multi-pattern refinement of
    /// [`is_accepting`](SfaBackend::is_accepting), identical across both
    /// backends. Streaming matchers read their per-rule verdict here.
    #[inline]
    pub fn accepting_patterns(&self, state: SfaStateId) -> &PatternSet {
        match self {
            SfaBackend::Eager(sfa) => sfa.accepting_patterns(state),
            SfaBackend::Lazy(sfa) => sfa.accepting_patterns(state),
            SfaBackend::Borrowed(sfa) => sfa.accepting_patterns(state),
        }
    }

    /// Number of *materialized* SFA states: the full `|S_d|` for an eager
    /// backend, the states visited so far for a lazy one (a live count
    /// that grows as inputs explore the automaton).
    pub fn num_states(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.num_states(),
            SfaBackend::Lazy(sfa) => sfa.num_states_constructed(),
            SfaBackend::Borrowed(sfa) => sfa.num_states(),
        }
    }

    /// Number of states of the source DFA.
    #[inline]
    pub fn num_dfa_states(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.num_dfa_states(),
            SfaBackend::Lazy(sfa) => sfa.num_dfa_states(),
            SfaBackend::Borrowed(sfa) => sfa.num_dfa_states(),
        }
    }

    /// Number of byte classes (row width of the transition table).
    #[inline]
    pub fn num_classes(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.num_classes(),
            SfaBackend::Lazy(sfa) => sfa.num_classes(),
            SfaBackend::Borrowed(sfa) => sfa.num_classes(),
        }
    }

    /// Bytes occupied by the (materialized) class-compressed transition
    /// rows.
    pub fn table_bytes(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.table_bytes(),
            SfaBackend::Lazy(sfa) => sfa.table_bytes(),
            SfaBackend::Borrowed(sfa) => sfa.table_bytes(),
        }
    }

    /// Bytes occupied by the premultiplied dense byte table (eager only;
    /// always 0 for lazy backends, which never premultiply).
    pub fn byte_table_bytes(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.byte_table_bytes(),
            SfaBackend::Lazy(_) => 0,
            SfaBackend::Borrowed(sfa) => sfa.byte_table_bytes(),
        }
    }

    /// Bytes occupied by the (materialized) state mappings.
    pub fn mapping_bytes(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.mapping_bytes(),
            SfaBackend::Lazy(sfa) => sfa.mapping_bytes(),
            SfaBackend::Borrowed(sfa) => sfa.mapping_bytes(),
        }
    }

    /// True when the eager backend built its premultiplied byte table
    /// (see [`crate::SfaConfig::premultiply`]); always false for lazy.
    pub fn premultiplied(&self) -> bool {
        match self {
            SfaBackend::Eager(sfa) => sfa.premultiplied(),
            SfaBackend::Lazy(_) => false,
            SfaBackend::Borrowed(sfa) => sfa.premultiplied(),
        }
    }

    /// The packed width the backend's transition tables store state ids
    /// at. Lazy backends always report [`StateIdRepr::U32`]: their cache
    /// grows while matcher threads hold ids, so it cannot be repacked
    /// (see [`crate::SfaConfig::repr`]).
    pub fn repr(&self) -> StateIdRepr {
        match self {
            SfaBackend::Eager(sfa) => sfa.repr(),
            SfaBackend::Lazy(_) => StateIdRepr::U32,
            SfaBackend::Borrowed(sfa) => sfa.repr(),
        }
    }

    /// Bytes per stored state id (1, 2 or 4) — `repr().bytes()`.
    pub fn state_id_bytes(&self) -> usize {
        self.repr().bytes()
    }

    /// Name of the transition kernel this backend's scans dispatch to
    /// (`"shuffle"` / `"gather"` / `"scalar"` — see
    /// [`DSfa::scan_kernel`]). Lazy backends always scan scalar: their
    /// transitions materialize behind a lock, so there is no dense table
    /// to vectorize over.
    pub fn scan_kernel(&self) -> &'static str {
        match self {
            SfaBackend::Eager(sfa) => sfa.scan_kernel(),
            // Borrowed tables carry no alignment guarantee, so their
            // scans stay on the monomorphized scalar loops.
            SfaBackend::Lazy(_) | SfaBackend::Borrowed(_) => "scalar",
        }
    }

    /// How many interleaved sub-chunks a worker should drive through one
    /// batched scan of a single large haystack (see
    /// [`DSfa::preferred_lanes`]). Lazy backends report 1 — their batch
    /// path runs jobs one by one, so splitting a chunk would only add
    /// composition work.
    pub fn preferred_lanes(&self) -> usize {
        match self {
            SfaBackend::Eager(sfa) => sfa.preferred_lanes(),
            SfaBackend::Lazy(_) | SfaBackend::Borrowed(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SfaConfig;

    fn both(pattern: &str) -> (SfaBackend, SfaBackend) {
        let dfa = sfa_automata::minimal_dfa_from_pattern(pattern).unwrap();
        let eager = SfaBackend::from(DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap());
        let lazy = SfaBackend::from(LazyDSfa::new(dfa));
        (eager, lazy)
    }

    #[test]
    fn kinds_and_accessors() {
        let (eager, lazy) = both("(ab)*");
        assert_eq!(eager.kind(), BackendKind::Eager);
        assert_eq!(lazy.kind(), BackendKind::Lazy);
        assert!(eager.eager().is_some() && eager.lazy().is_none());
        assert!(lazy.lazy().is_some() && lazy.eager().is_none());
        assert_eq!(BackendKind::parse("Eager"), Some(BackendKind::Eager));
        assert_eq!(BackendKind::parse("Lazy"), Some(BackendKind::Lazy));
        assert_eq!(BackendKind::parse("???"), None);
        assert_eq!(BackendKind::Lazy.to_string(), "Lazy");
    }

    #[test]
    fn backends_agree_on_the_full_surface() {
        for pattern in ["(ab)*", "([0-4]{2}[5-9]{2})*", "(a|b)*abb", "a|bc|d"] {
            let (eager, lazy) = both(pattern);
            assert_eq!(eager.num_dfa_states(), lazy.num_dfa_states());
            assert_eq!(eager.num_classes(), lazy.num_classes());
            assert_eq!(eager.dfa_start(), lazy.dfa_start());
            for input in [&b""[..], b"ab", b"abab", b"abb", b"0055", b"bc", b"zz"] {
                let fe = eager.run(input);
                let fl = lazy.run(input);
                assert_eq!(eager.is_accepting(fe), lazy.is_accepting(fl), "{pattern} {input:?}");
                assert_eq!(eager.is_sink(fe), lazy.is_sink(fl));
                assert_eq!(eager.accepts(input), lazy.accepts(input));
                assert_eq!(eager.mapping(fe), lazy.mapping(fl));
                for q in 0..eager.num_dfa_states() as StateId {
                    assert_eq!(eager.apply(fe, q), lazy.apply(fl, q));
                }
            }
            // compose_states agrees through the mapping level.
            let (ae, al) = (eager.run(b"ab"), lazy.run(b"ab"));
            let (be, bl) = (eager.run(b"ba"), lazy.run(b"ba"));
            assert_eq!(
                eager.mapping(eager.compose_states(ae, be)),
                lazy.mapping(lazy.compose_states(al, bl)),
                "{pattern}"
            );
        }
    }

    #[test]
    fn accepting_patterns_dispatch_identically() {
        use sfa_automata::{determinize, minimize, DfaConfig, Nfa};
        let nfa = Nfa::from_patterns(["(ab)*", "a+"]).unwrap();
        let dfa = minimize(&determinize(&nfa, &DfaConfig::default()).unwrap());
        let eager = SfaBackend::from(DSfa::from_dfa(&dfa, &SfaConfig::default()).unwrap());
        let lazy = SfaBackend::from(LazyDSfa::new(dfa.clone()));
        assert_eq!(eager.pattern_count(), 2);
        assert_eq!(lazy.pattern_count(), 2);
        for input in [&b""[..], b"a", b"ab", b"aa", b"abab", b"zz"] {
            let pe = eager.accepting_patterns(eager.run(input));
            let pl = lazy.accepting_patterns(lazy.run(input));
            assert_eq!(pe, pl, "input {:?}", input);
            assert_eq!(pe, dfa.matching_patterns(input));
            assert_eq!(eager.dfa_accepting_patterns(dfa.run(input)), pe);
            assert_eq!(lazy.dfa_accepting_patterns(dfa.run(input)), pl);
        }
    }

    #[test]
    fn repr_and_run_from_many_dispatch() {
        let (eager, lazy) = both("([0-4]{2}[5-9]{2})*");
        // 110 SFA states pack to one byte on the eager side; the lazy
        // cache always stays at the full interface width.
        assert_eq!(eager.repr(), StateIdRepr::U8);
        assert_eq!(eager.state_id_bytes(), 1);
        assert_eq!(lazy.repr(), StateIdRepr::U32);
        assert_eq!(lazy.state_id_bytes(), 4);
        let long = b"00550459".repeat(50);
        let jobs: Vec<(SfaStateId, &[u8])> = vec![
            (eager.initial(), &long[..]),
            (eager.initial(), b"0055"),
            (eager.initial(), b"zz"),
            (eager.initial(), &long[..13]),
            (eager.initial(), b""),
        ];
        for backend in [&eager, &lazy] {
            let expected: Vec<SfaStateId> =
                jobs.iter().map(|&(s, input)| backend.run_from(s, input)).collect();
            assert_eq!(backend.run_from_many(&jobs), expected, "{:?}", backend.kind());
        }
    }

    #[test]
    fn size_reporting_reflects_materialization() {
        let (eager, lazy) = both("([0-4]{2}[5-9]{2})*");
        assert_eq!(lazy.num_states(), 1, "fresh lazy backend: identity only");
        assert!(eager.num_states() > 1);
        lazy.run(b"00550459");
        assert!(lazy.num_states() > 1);
        assert!(lazy.num_states() <= eager.num_states());
        // The eager table packs to u8 here while the lazy cache stays u32,
        // so compare the lazy footprint against the eager table widened
        // back to the interface width.
        assert_eq!(eager.state_id_bytes(), 1);
        assert!(lazy.table_bytes() <= eager.table_bytes() * (4 / eager.state_id_bytes()));
        assert!(lazy.mapping_bytes() <= eager.mapping_bytes());
        assert_eq!(lazy.byte_table_bytes(), 0);
        assert!(!lazy.premultiplied());
        assert!(eager.premultiplied());
    }
}
