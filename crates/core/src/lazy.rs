//! On-the-fly (lazy) D-SFA construction.
//!
//! Section V-A of the paper: "The idea of the on-the-fly construction is to
//! construct DFA during the matching only for the required states … it
//! generates at most n states for input text of length n even if the number
//! of states in DFA explodes. We can easily apply on-the-fly construction
//! to an SFA-based matcher because the correspondence construction is a
//! natural extension of the subset construction."
//!
//! [`LazyDSfa`] does exactly that for the D-SFA: states (transformations)
//! are interned and transition-table rows filled only when the matcher
//! actually reaches them. The structure is shareable across threads — the
//! cache sits behind a read/write lock, and the common case (the transition
//! is already cached) takes only the read lock.

use crate::dsfa::SfaStateId;
use crate::mapping::Transformation;
use crate::SfaConfig;
use sfa_automata::{CompileError, Dfa};
use std::collections::HashMap;
use std::sync::RwLock;

/// A lazily constructed D-SFA.
#[derive(Debug)]
pub struct LazyDSfa {
    dfa: Dfa,
    config: SfaConfig,
    inner: RwLock<Inner>,
}

#[derive(Debug)]
struct Inner {
    ids: HashMap<Transformation, SfaStateId>,
    mappings: Vec<Transformation>,
    /// Row-major table like the eager D-SFA, but entries may be `NONE`
    /// (not yet computed).
    table: Vec<SfaStateId>,
    accepting: Vec<bool>,
}

const NONE: SfaStateId = SfaStateId::MAX;

impl LazyDSfa {
    /// Creates a lazy D-SFA over the given DFA. Only the identity state is
    /// materialized up front.
    pub fn new(dfa: Dfa, config: SfaConfig) -> LazyDSfa {
        let n = dfa.num_states();
        let stride = dfa.num_classes();
        let identity = Transformation::identity(n);
        let accepting0 = dfa.is_accepting(identity.apply(dfa.start()));
        let mut ids = HashMap::new();
        ids.insert(identity.clone(), 0);
        let inner = Inner {
            ids,
            mappings: vec![identity],
            table: vec![NONE; stride],
            accepting: vec![accepting0],
        };
        LazyDSfa { dfa, config, inner: RwLock::new(inner) }
    }

    /// Convenience: pattern → minimal DFA → lazy D-SFA.
    pub fn from_pattern(pattern: &str) -> Result<LazyDSfa, CompileError> {
        let dfa = sfa_automata::minimal_dfa_from_pattern(pattern)?;
        Ok(LazyDSfa::new(dfa, SfaConfig::default()))
    }

    /// The underlying DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The initial (identity) state.
    pub fn initial(&self) -> SfaStateId {
        0
    }

    /// Number of SFA states materialized so far.
    pub fn num_states_constructed(&self) -> usize {
        self.inner.read().expect("lazy D-SFA lock poisoned").mappings.len()
    }

    /// Returns true if the given state is accepting.
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        self.inner.read().expect("lazy D-SFA lock poisoned").accepting[state as usize]
    }

    /// The mapping carried by a state (cloned out of the cache).
    pub fn mapping(&self, state: SfaStateId) -> Transformation {
        self.inner.read().expect("lazy D-SFA lock poisoned").mappings[state as usize].clone()
    }

    /// Transition on a byte, constructing the target state on demand.
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> Result<SfaStateId, CompileError> {
        let stride = self.dfa.num_classes();
        let class = self.dfa.classes().class_of(byte) as usize;
        {
            let inner = self.inner.read().expect("lazy D-SFA lock poisoned");
            let cached = inner.table[state as usize * stride + class];
            if cached != NONE {
                return Ok(cached);
            }
        }
        let mut inner = self.inner.write().expect("lazy D-SFA lock poisoned");
        // Re-check: another thread may have filled the slot while we were
        // waiting for the write lock.
        let cached = inner.table[state as usize * stride + class];
        if cached != NONE {
            return Ok(cached);
        }
        let next = Transformation::from_vec(
            inner.mappings[state as usize]
                .as_slice()
                .iter()
                .map(|&q| self.dfa.next_by_class(q, class as u16))
                .collect(),
        );
        let next_id = match inner.ids.get(&next) {
            Some(&id) => id,
            None => {
                if inner.mappings.len() >= self.config.max_states {
                    return Err(CompileError::TooManyStates { limit: self.config.max_states });
                }
                let id = inner.mappings.len() as SfaStateId;
                let accepting = self.dfa.is_accepting(next.apply(self.dfa.start()));
                inner.ids.insert(next.clone(), id);
                inner.mappings.push(next);
                inner.accepting.push(accepting);
                inner.table.extend(std::iter::repeat_n(NONE, stride));
                id
            }
        };
        inner.table[state as usize * stride + class] = next_id;
        Ok(next_id)
    }

    /// Runs the lazy SFA over an input from the identity state.
    pub fn run(&self, input: &[u8]) -> Result<SfaStateId, CompileError> {
        let mut f = self.initial();
        for &b in input {
            f = self.next_state(f, b)?;
        }
        Ok(f)
    }

    /// Whole-input membership.
    pub fn accepts(&self, input: &[u8]) -> Result<bool, CompileError> {
        Ok(self.is_accepting(self.run(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsfa::DSfa;

    #[test]
    fn lazy_matches_eager_semantics() {
        let eager = DSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let lazy = LazyDSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        for input in [&b""[..], b"0055", b"00550459", b"005", b"5500", b"xyz"] {
            assert_eq!(eager.accepts(input), lazy.accepts(input).unwrap(), "{:?}", input);
        }
    }

    #[test]
    fn lazy_materializes_only_visited_states() {
        // Paper, Sect. V-A: at most one new state per input byte.
        let lazy = LazyDSfa::from_pattern("([0-4]{5}[5-9]{5})*").unwrap();
        assert_eq!(lazy.num_states_constructed(), 1);
        let input = b"0000055555";
        lazy.run(input).unwrap();
        assert!(lazy.num_states_constructed() <= 1 + input.len());
        // The eager SFA for this pattern has 110 states; a short input must
        // touch far fewer.
        assert!(lazy.num_states_constructed() < 30);
    }

    #[test]
    fn lazy_state_cache_is_reused_across_runs() {
        let lazy = LazyDSfa::from_pattern("(ab)*").unwrap();
        lazy.run(b"abababab").unwrap();
        let after_first = lazy.num_states_constructed();
        lazy.run(b"abababababab").unwrap();
        assert_eq!(lazy.num_states_constructed(), after_first, "no new states needed");
        // The full SFA has 6 states; the accepted-input walk touches 3
        // (identity, f_a, f_ab).
        assert_eq!(after_first, 3);
    }

    #[test]
    fn lazy_state_limit() {
        let dfa = sfa_automata::minimal_dfa_from_pattern("([0-4]{3}[5-9]{3})*").unwrap();
        let lazy = LazyDSfa::new(dfa, SfaConfig { max_states: 3, ..SfaConfig::default() });
        let err = lazy.run(b"0123456789012345").unwrap_err();
        assert_eq!(err, CompileError::TooManyStates { limit: 3 });
    }

    #[test]
    fn lazy_is_shareable_across_threads() {
        let lazy = LazyDSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let eager = DSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lazy = &lazy;
                let eager = &eager;
                scope.spawn(move || {
                    let input = if t % 2 == 0 { &b"00550459"[..] } else { &b"0055045"[..] };
                    for _ in 0..50 {
                        assert_eq!(lazy.accepts(input).unwrap(), eager.accepts(input));
                    }
                });
            }
        });
        // Never more states than the eager construction.
        assert!(lazy.num_states_constructed() <= eager.num_states());
    }
}
