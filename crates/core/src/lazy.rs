//! On-the-fly (lazy) D-SFA construction.
//!
//! Section V-A of the paper: "The idea of the on-the-fly construction is to
//! construct DFA during the matching only for the required states … it
//! generates at most n states for input text of length n even if the number
//! of states in DFA explodes. We can easily apply on-the-fly construction
//! to an SFA-based matcher because the correspondence construction is a
//! natural extension of the subset construction."
//!
//! [`LazyDSfa`] does exactly that for the D-SFA: states (transformations)
//! are interned and transition-table rows filled only when the matcher
//! actually reaches them. It is the second implementation of the
//! [`SfaBackend`](crate::SfaBackend) abstraction and offers the same
//! matcher-facing surface as the eager [`DSfa`](crate::DSfa): sink
//! detection for early exit, state-level composition
//! ([`compose_states`](LazyDSfa::compose_states)) for streaming, and an
//! indexed [`state_of`](LazyDSfa::state_of).
//!
//! ## Concurrency
//!
//! The structure is shareable across threads — one cache serves every pool
//! worker. The cache sits behind a read/write lock with a double-checked
//! fast path: [`run_from`](LazyDSfa::run_from) walks as many cached
//! transitions as it can under a **single** read lock (readers never
//! exclude each other, so workers scan concurrently without serializing),
//! and only a cache miss drops to the write lock, re-checking the slot
//! after acquiring it in case another worker filled it in the meantime.
//!
//! ## Knobs and limits
//!
//! Unlike the eager construction, the lazy cache enforces **no state
//! limit**: [`SfaConfig::max_states`](crate::SfaConfig::max_states) bounds
//! the *eager* construction precisely because Algorithm 4 must enumerate
//! every reachable transformation up front, while the lazy cache holds one
//! entry per transformation actually *visited* — at most one new state per
//! input byte (plus composition results), so its memory is bounded by the
//! traffic, not by `|S_d|`. [`SfaConfig::premultiply`](crate::SfaConfig)
//! is likewise eager-only: a dense 256-column table over states that may
//! never materialize would defeat the point. See the [`crate`] docs for
//! the knob/backend matrix.
//!
//! ## Why the lazy table stays `u32`
//!
//! The eager [`DSfa`](crate::DSfa) packs its table entries down to
//! `u8`/`u16` when `|S_d|` fits ([`StateIdRepr`](crate::StateIdRepr));
//! the lazy cache deliberately does **not**. Its state count is unknown
//! up front and grows concurrently while pool workers hold ids, so a
//! narrow width would have to be *re*-packed the moment the cache
//! crossed 256 (then 65 536) entries — invalidating nothing (ids are
//! stable) but requiring every reader to drain and the whole table to be
//! rewritten under the write lock, serializing exactly the workers the
//! batched read-lock design exists to keep concurrent. The cache also
//! reserves `SfaStateId::MAX` as its not-yet-computed sentinel, which a
//! packed row could not represent alongside 256 real states. Since lazy
//! table memory is bounded by visited traffic rather than `|S_d|`, the
//! 4× width costs little in practice; [`SfaConfig::repr`](crate::SfaConfig)
//! is therefore ignored here.

use crate::dsfa::SfaStateId;
use crate::mapping::Transformation;
use sfa_automata::{CompileError, Dfa, PatternSet, StateId};
use std::collections::HashMap;
use std::sync::RwLock;

/// A lazily constructed D-SFA. See the [module docs](self).
#[derive(Debug)]
pub struct LazyDSfa {
    dfa: Dfa,
    /// `loop_states[q]` is true when every transition of DFA state `q`
    /// loops back to `q`. An SFA state is a *sink* (its mapping can never
    /// change again) exactly when every state in its image is such a
    /// self-looping state — precomputing this per-DFA-state bitmap makes
    /// the per-interning sink check `O(|D|)`.
    loop_states: Box<[bool]>,
    inner: RwLock<Inner>,
}

#[derive(Debug, Clone)]
struct Inner {
    ids: HashMap<Transformation, SfaStateId>,
    mappings: Vec<Transformation>,
    /// Row-major table like the eager D-SFA, but entries may be `NONE`
    /// (not yet computed).
    table: Vec<SfaStateId>,
    accepting: Vec<bool>,
    sink: Vec<bool>,
}

const NONE: SfaStateId = SfaStateId::MAX;
const POISONED: &str = "lazy D-SFA lock poisoned";

impl Clone for LazyDSfa {
    fn clone(&self) -> LazyDSfa {
        LazyDSfa {
            dfa: self.dfa.clone(),
            loop_states: self.loop_states.clone(),
            inner: RwLock::new(self.inner.read().expect(POISONED).clone()),
        }
    }
}

impl LazyDSfa {
    /// Creates a lazy D-SFA over the given DFA. Only the identity state is
    /// materialized up front.
    pub fn new(dfa: Dfa) -> LazyDSfa {
        let n = dfa.num_states();
        let stride = dfa.num_classes();
        let loop_states: Box<[bool]> = (0..n as StateId)
            .map(|q| (0..stride as u16).all(|c| dfa.next_by_class(q, c) == q))
            .collect();
        let identity = Transformation::identity(n);
        let accepting0 = dfa.is_accepting(identity.apply(dfa.start()));
        let sink0 = loop_states.iter().all(|&l| l);
        let mut ids = HashMap::new();
        ids.insert(identity.clone(), 0);
        let inner = Inner {
            ids,
            mappings: vec![identity],
            table: vec![NONE; stride],
            accepting: vec![accepting0],
            sink: vec![sink0],
        };
        LazyDSfa { dfa, loop_states, inner: RwLock::new(inner) }
    }

    /// Convenience: pattern → minimal DFA → lazy D-SFA.
    pub fn from_pattern(pattern: &str) -> Result<LazyDSfa, CompileError> {
        let dfa = sfa_automata::minimal_dfa_from_pattern(pattern)?;
        Ok(LazyDSfa::new(dfa))
    }

    /// The underlying DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The initial (identity) state.
    #[inline]
    pub fn initial(&self) -> SfaStateId {
        0
    }

    /// Number of SFA states materialized so far (the lazy analogue of
    /// [`DSfa::num_states`](crate::DSfa::num_states) — a lower bound on
    /// `|S_d|` that grows as inputs visit new transformations).
    pub fn num_states_constructed(&self) -> usize {
        self.inner.read().expect(POISONED).mappings.len()
    }

    /// Number of states of the source DFA.
    #[inline]
    pub fn num_dfa_states(&self) -> usize {
        self.dfa.num_states()
    }

    /// Number of byte classes (row width of the transition table).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.dfa.num_classes()
    }

    /// The start state of the source DFA.
    #[inline]
    pub fn dfa_start(&self) -> StateId {
        self.dfa.start()
    }

    /// Returns true if the DFA state is accepting (used by reductions).
    #[inline]
    pub fn dfa_is_accepting(&self, q: StateId) -> bool {
        self.dfa.is_accepting(q)
    }

    /// Number of original patterns compiled into the source DFA.
    #[inline]
    pub fn pattern_count(&self) -> usize {
        self.dfa.pattern_count()
    }

    /// The set of patterns a source-DFA state accepts (no lock needed —
    /// the accept sets live on the DFA, outside the cache).
    #[inline]
    pub fn dfa_accepting_patterns(&self, q: StateId) -> &PatternSet {
        self.dfa.accept_set(q)
    }

    /// The set of patterns matched when the whole input lands in `state`:
    /// the accept set of `f(q_0)`. Takes the read lock to apply the
    /// cached mapping, then indexes the DFA's interned accept sets.
    pub fn accepting_patterns(&self, state: SfaStateId) -> &PatternSet {
        let q = self.apply(state, self.dfa.start());
        self.dfa.accept_set(q)
    }

    /// Returns true if the given state is accepting.
    pub fn is_accepting(&self, state: SfaStateId) -> bool {
        self.inner.read().expect(POISONED).accepting[state as usize]
    }

    /// True when the mapping carried by `state` can never change again,
    /// whatever input follows (every state in its image self-loops on
    /// every byte). Matchers stop scanning early on such states.
    pub fn is_sink(&self, state: SfaStateId) -> bool {
        self.inner.read().expect(POISONED).sink[state as usize]
    }

    /// The mapping carried by a state (cloned out of the cache).
    pub fn mapping(&self, state: SfaStateId) -> Transformation {
        self.inner.read().expect(POISONED).mappings[state as usize].clone()
    }

    /// Applies the mapping of `state` to a single DFA state — the
    /// `f(q)` lookup of the sequential reduction, without cloning the
    /// mapping out of the cache.
    pub fn apply(&self, state: SfaStateId, q: StateId) -> StateId {
        self.inner.read().expect(POISONED).mappings[state as usize].apply(q)
    }

    /// Looks up the state id of an already-materialized transformation.
    ///
    /// Unlike the eager [`DSfa::state_of`](crate::DSfa::state_of) (which
    /// builds its index lazily on first use), the lazy cache's interning
    /// map *is* the index, so this is always one hash lookup.
    pub fn state_of(&self, mapping: &Transformation) -> Option<SfaStateId> {
        self.inner.read().expect(POISONED).ids.get(mapping).copied()
    }

    /// Interns a transformation, materializing a new state if the cache
    /// has not seen it yet. Must be called with the write lock held.
    fn intern_locked(&self, inner: &mut Inner, f: Transformation) -> SfaStateId {
        if let Some(&id) = inner.ids.get(&f) {
            return id;
        }
        let id = inner.mappings.len() as SfaStateId;
        let accepting = self.dfa.is_accepting(f.apply(self.dfa.start()));
        let sink = f.as_slice().iter().all(|&q| self.loop_states[q as usize]);
        inner.ids.insert(f.clone(), id);
        inner.mappings.push(f);
        inner.accepting.push(accepting);
        inner.sink.push(sink);
        inner.table.extend(std::iter::repeat_n(NONE, self.dfa.num_classes()));
        id
    }

    /// Transition on a byte, constructing the target state on demand.
    pub fn next_state(&self, state: SfaStateId, byte: u8) -> SfaStateId {
        self.next_by_class(state, self.dfa.classes().class_of(byte))
    }

    /// Transition on a byte class, constructing the target state on
    /// demand. The cached case takes only the read lock; a miss drops to
    /// the write lock and re-checks the slot (another thread may have
    /// filled it while we waited).
    pub fn next_by_class(&self, state: SfaStateId, class: u16) -> SfaStateId {
        let stride = self.dfa.num_classes();
        let idx = state as usize * stride + class as usize;
        {
            let inner = self.inner.read().expect(POISONED);
            let cached = inner.table[idx];
            if cached != NONE {
                return cached;
            }
        }
        let mut inner = self.inner.write().expect(POISONED);
        let cached = inner.table[idx];
        if cached != NONE {
            return cached;
        }
        let next = Transformation::from_vec(
            inner.mappings[state as usize]
                .as_slice()
                .iter()
                .map(|&q| self.dfa.next_by_class(q, class))
                .collect(),
        );
        let next_id = self.intern_locked(&mut inner, next);
        inner.table[idx] = next_id;
        next_id
    }

    /// Runs the lazy SFA over an input from the identity state.
    pub fn run(&self, input: &[u8]) -> SfaStateId {
        self.run_from(self.initial(), input)
    }

    /// Runs the lazy SFA over `input` from an arbitrary state (the chunk
    /// phase of Algorithm 5, per worker).
    ///
    /// The hot loop walks every already-cached transition under a single
    /// read lock — concurrent workers share the cache without excluding
    /// each other — and exits early on a [sink](LazyDSfa::is_sink). Only
    /// a cache miss releases the read lock and constructs the missing
    /// state under the write lock before resuming the batched walk.
    pub fn run_from(&self, state: SfaStateId, input: &[u8]) -> SfaStateId {
        let stride = self.dfa.num_classes();
        let classes = self.dfa.classes();
        let mut f = state;
        let mut i = 0;
        while i < input.len() {
            {
                let inner = self.inner.read().expect(POISONED);
                if inner.sink[f as usize] {
                    return f;
                }
                while i < input.len() {
                    let class = classes.class_of(input[i]) as usize;
                    let next = inner.table[f as usize * stride + class];
                    if next == NONE {
                        break;
                    }
                    i += 1;
                    if next != f {
                        f = next;
                        if inner.sink[f as usize] {
                            return f;
                        }
                    }
                }
            }
            if i < input.len() {
                f = self.next_state(f, input[i]);
                i += 1;
            }
        }
        f
    }

    /// Whole-input membership.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Composes two SFA states *as states*: the state whose mapping is
    /// `f_w ⋄ f_v` when `a = f_w` and `b = f_v` (Lemma 1) — what lets a
    /// streaming matcher fold per-block chunk states into its running
    /// state.
    ///
    /// The composite transformation is always *reachable* (it is the
    /// mapping of the concatenated word), but the lazy cache may not have
    /// visited it yet, so — unlike the eager
    /// [`DSfa::compose_states`](crate::DSfa::compose_states), which only
    /// looks the result up — this interns the composite, materializing a
    /// new state when needed. Identity on either side and a sink on the
    /// left resolve without composing.
    pub fn compose_states(&self, a: SfaStateId, b: SfaStateId) -> SfaStateId {
        if a == self.initial() {
            return b;
        }
        if b == self.initial() {
            return a;
        }
        let composed = {
            let inner = self.inner.read().expect(POISONED);
            if inner.sink[a as usize] {
                return a;
            }
            let composed = inner.mappings[a as usize].then(&inner.mappings[b as usize]);
            if let Some(&id) = inner.ids.get(&composed) {
                return id;
            }
            composed
        };
        let mut inner = self.inner.write().expect(POISONED);
        self.intern_locked(&mut inner, composed)
    }

    /// Bytes occupied by the materialized (class-compressed) transition
    /// table rows.
    pub fn table_bytes(&self) -> usize {
        self.inner.read().expect(POISONED).table.len() * std::mem::size_of::<SfaStateId>()
    }

    /// Bytes occupied by the materialized state mappings.
    pub fn mapping_bytes(&self) -> usize {
        self.inner.read().expect(POISONED).mappings.iter().map(|m| m.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsfa::DSfa;

    #[test]
    fn lazy_matches_eager_semantics() {
        let eager = DSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let lazy = LazyDSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        for input in [&b""[..], b"0055", b"00550459", b"005", b"5500", b"xyz"] {
            assert_eq!(eager.accepts(input), lazy.accepts(input), "{:?}", input);
        }
    }

    #[test]
    fn lazy_materializes_only_visited_states() {
        // Paper, Sect. V-A: at most one new state per input byte.
        let lazy = LazyDSfa::from_pattern("([0-4]{5}[5-9]{5})*").unwrap();
        assert_eq!(lazy.num_states_constructed(), 1);
        let input = b"0000055555";
        lazy.run(input);
        assert!(lazy.num_states_constructed() <= 1 + input.len());
        // The eager SFA for this pattern has 110 states; a short input must
        // touch far fewer.
        assert!(lazy.num_states_constructed() < 30);
    }

    #[test]
    fn lazy_state_cache_is_reused_across_runs() {
        let lazy = LazyDSfa::from_pattern("(ab)*").unwrap();
        lazy.run(b"abababab");
        let after_first = lazy.num_states_constructed();
        lazy.run(b"abababababab");
        assert_eq!(lazy.num_states_constructed(), after_first, "no new states needed");
        // The full SFA has 6 states; the accepted-input walk touches 3
        // (identity, f_a, f_ab).
        assert_eq!(after_first, 3);
    }

    #[test]
    fn full_materialization_equals_eager_state_count() {
        // Driving every transition of every materialized state to a
        // fixpoint reconstructs exactly the eager SFA: the lazy cache
        // never invents states and never misses reachable ones.
        let eager = DSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let lazy = LazyDSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let mut done = 0;
        while done < lazy.num_states_constructed() {
            let state = done as SfaStateId;
            for class in 0..lazy.num_classes() as u16 {
                lazy.next_by_class(state, class);
            }
            done += 1;
        }
        assert_eq!(lazy.num_states_constructed(), eager.num_states());
        for s in 0..eager.num_states() as SfaStateId {
            // Same mapping set; ids may differ, so compare via the index.
            assert!(lazy.state_of(eager.mapping(s)).is_some());
        }
    }

    #[test]
    fn sink_detection_matches_eager() {
        for pattern in ["(ab)*", "([0-4]{2}[5-9]{2})*", "(?s).*", "a|bc"] {
            let eager = DSfa::from_pattern(pattern).unwrap();
            let lazy = LazyDSfa::from_pattern(pattern).unwrap();
            for input in [&b""[..], b"ab", b"aa", b"abab", b"0055", b"zzzz", b"bc"] {
                let fe = eager.run(input);
                let fl = lazy.run(input);
                assert_eq!(
                    eager.is_sink(fe),
                    lazy.is_sink(fl),
                    "pattern {:?} input {:?}",
                    pattern,
                    input
                );
                assert_eq!(eager.is_accepting(fe), lazy.is_accepting(fl));
            }
        }
    }

    #[test]
    fn run_from_sink_early_exit_is_correct() {
        // After the synchronizing word "aa", (ab)* is dead; a long tail
        // must not materialize anything new and must keep the verdict.
        let lazy = LazyDSfa::from_pattern("(ab)*").unwrap();
        let dead = lazy.run(b"aa");
        assert!(lazy.is_sink(dead));
        let before = lazy.num_states_constructed();
        let long = b"a".repeat(100_000);
        assert_eq!(lazy.run_from(dead, &long), dead);
        assert_eq!(lazy.num_states_constructed(), before);
        assert!(!lazy.accepts(&long[..]));
    }

    #[test]
    fn compose_states_matches_concatenated_run() {
        // State-level Lemma 1 on the lazy backend: composing the states of
        // two words gives the state of the concatenation, interning the
        // composite when the cache has not visited it yet.
        let lazy = LazyDSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let words: [&[u8]; 5] = [b"", b"0456", b"0055044", b"9", b"005504590055"];
        for w1 in words {
            for w2 in words {
                let f1 = lazy.run(w1);
                let f2 = lazy.run(w2);
                let mut whole = w1.to_vec();
                whole.extend_from_slice(w2);
                assert_eq!(lazy.compose_states(f1, f2), lazy.run(&whole), "{:?}+{:?}", w1, w2);
            }
        }
    }

    #[test]
    fn compose_states_shortcuts_identity_and_sink() {
        let lazy = LazyDSfa::from_pattern("(ab)*").unwrap();
        let id = lazy.initial();
        let f = lazy.run(b"ab");
        let dead = lazy.run(b"aa");
        assert!(lazy.is_sink(dead));
        assert_eq!(lazy.compose_states(id, f), f);
        assert_eq!(lazy.compose_states(f, id), f);
        for g in 0..lazy.num_states_constructed() as SfaStateId {
            assert_eq!(lazy.compose_states(dead, g), dead);
        }
    }

    #[test]
    fn accepting_patterns_agree_with_eager() {
        use sfa_automata::{determinize, minimize, DfaConfig, Nfa};
        let nfa = Nfa::from_patterns(["(ab)*", "a+", "[ab]{2}"]).unwrap();
        let dfa = minimize(&determinize(&nfa, &DfaConfig::default()).unwrap());
        let eager = DSfa::from_dfa(&dfa, &crate::SfaConfig::default()).unwrap();
        let lazy = LazyDSfa::new(dfa);
        assert_eq!(lazy.pattern_count(), 3);
        for input in [&b""[..], b"a", b"ab", b"aa", b"abab", b"ba", b"zz"] {
            let fe = eager.run(input);
            let fl = lazy.run(input);
            assert_eq!(
                eager.accepting_patterns(fe),
                lazy.accepting_patterns(fl),
                "input {:?}",
                input
            );
        }
    }

    #[test]
    fn apply_matches_mapping_apply() {
        let lazy = LazyDSfa::from_pattern("(a|b)*abb").unwrap();
        let f = lazy.run(b"aab");
        for q in 0..lazy.num_dfa_states() as StateId {
            assert_eq!(lazy.apply(f, q), lazy.mapping(f).apply(q));
        }
    }

    #[test]
    fn clone_snapshots_the_cache() {
        let lazy = LazyDSfa::from_pattern("(ab)*").unwrap();
        lazy.run(b"abab");
        let snap = lazy.clone();
        assert_eq!(snap.num_states_constructed(), lazy.num_states_constructed());
        // Diverging after the clone leaves the snapshot untouched.
        lazy.run(b"aa");
        assert!(lazy.num_states_constructed() > snap.num_states_constructed());
        assert!(snap.accepts(b"ab"));
    }

    #[test]
    fn lazy_is_shareable_across_threads() {
        let lazy = LazyDSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        let eager = DSfa::from_pattern("([0-4]{2}[5-9]{2})*").unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let lazy = &lazy;
                let eager = &eager;
                scope.spawn(move || {
                    let input = if t % 2 == 0 { &b"00550459"[..] } else { &b"0055045"[..] };
                    for _ in 0..50 {
                        assert_eq!(lazy.accepts(input), eager.accepts(input));
                    }
                });
            }
        });
        // Never more states than the eager construction.
        assert!(lazy.num_states_constructed() <= eager.num_states());
    }
}
