//! State mappings — the states of a simultaneous finite automaton.
//!
//! Definition 5 of the paper: a state of an SFA constructed from an
//! automaton `A = (Q, Σ, δ, I, F)` is a mapping `f : Q → P(Q)` (a
//! *correspondence* of `Q`). When `A` is deterministic every image is a
//! singleton-or-empty, so the mapping collapses to a partial function
//! `Q → Q ∪ {⊥}` (a *transformation*); we represent `⊥` as the DFA's dead
//! state, which always exists because our DFAs are complete.
//!
//! The only operation the matcher ever needs is the associative (reverse)
//! composition `⋄` of Section II-A:
//!
//! ```text
//! (f ⋄ g)(q) = g(f(q))          for transformations
//! (f ⋄ g)(q) = ⋃_{p ∈ f(q)} g(p) for correspondences
//! ```
//!
//! `f_w ⋄ f_v = f_wv` (Lemma 1), which is what makes the chunked parallel
//! reduction of Algorithm 5 correct.

use sfa_automata::{StateId, StateSet};

/// A transformation of the DFA state set: the kind of mapping used by
/// D-SFA states.
///
/// `map[q]` is the DFA state reached from `q` by the word this
/// transformation represents.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transformation {
    map: Box<[StateId]>,
}

impl Transformation {
    /// The identity transformation on `n` states (the initial SFA state
    /// `f_I`).
    pub fn identity(n: usize) -> Transformation {
        Transformation { map: (0..n as StateId).collect() }
    }

    /// Builds a transformation from an explicit image vector.
    pub fn from_vec(map: Vec<StateId>) -> Transformation {
        Transformation { map: map.into_boxed_slice() }
    }

    /// Number of states of the underlying DFA.
    #[inline]
    pub fn degree(&self) -> usize {
        self.map.len()
    }

    /// Applies the transformation to a single state.
    #[inline]
    pub fn apply(&self, q: StateId) -> StateId {
        self.map[q as usize]
    }

    /// The raw image vector.
    #[inline]
    pub fn as_slice(&self) -> &[StateId] {
        &self.map
    }

    /// Reverse composition: `(self ⋄ other)(q) = other(self(q))`.
    ///
    /// If `self = f_w` and `other = f_v`, the result is `f_wv`.
    pub fn then(&self, other: &Transformation) -> Transformation {
        debug_assert_eq!(self.degree(), other.degree());
        Transformation { map: self.map.iter().map(|&q| other.map[q as usize]).collect() }
    }

    /// Returns true if this is the identity transformation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &q)| i as StateId == q)
    }

    /// Returns true if the transformation is constant (every state maps to
    /// the same state) — e.g. the all-dead transformation.
    pub fn is_constant(&self) -> bool {
        self.map.windows(2).all(|w| w[0] == w[1])
    }

    /// The number of distinct states in the image.
    pub fn rank(&self) -> usize {
        let mut seen = vec![false; self.degree()];
        let mut count = 0;
        for &q in self.map.iter() {
            if !seen[q as usize] {
                seen[q as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Memory occupied by the image vector, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.map.len() * std::mem::size_of::<StateId>()
    }
}

impl std::fmt::Debug for Transformation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, q) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}↦{}", i, q)?;
        }
        write!(f, "]")
    }
}

/// A correspondence of the NFA state set: the kind of mapping used by
/// N-SFA states.
///
/// `map[q]` is the *set* of NFA states reachable from `q` by the word this
/// correspondence represents (ε-moves included).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Correspondence {
    map: Vec<StateSet>,
}

impl Correspondence {
    /// The identity correspondence `q ↦ {q}` on `n` states.
    pub fn identity(n: usize) -> Correspondence {
        Correspondence { map: (0..n as StateId).map(|q| StateSet::singleton(n, q)).collect() }
    }

    /// Builds a correspondence from explicit image sets.
    pub fn from_sets(map: Vec<StateSet>) -> Correspondence {
        Correspondence { map }
    }

    /// Number of states of the underlying NFA.
    #[inline]
    pub fn degree(&self) -> usize {
        self.map.len()
    }

    /// The image of a single state.
    #[inline]
    pub fn apply(&self, q: StateId) -> &StateSet {
        &self.map[q as usize]
    }

    /// The image of a set of states: `⋃_{q ∈ set} self(q)`.
    pub fn apply_set(&self, set: &StateSet) -> StateSet {
        let mut out = StateSet::new(self.degree());
        for q in set.iter() {
            out.union_with(&self.map[q as usize]);
        }
        out
    }

    /// Reverse composition: `(self ⋄ other)(q) = ⋃_{p ∈ self(q)} other(p)`.
    ///
    /// This is exactly a boolean matrix product of the relation matrices.
    pub fn then(&self, other: &Correspondence) -> Correspondence {
        debug_assert_eq!(self.degree(), other.degree());
        Correspondence { map: self.map.iter().map(|img| other.apply_set(img)).collect() }
    }

    /// Returns true if this is the identity correspondence.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, img)| img.len() == 1 && img.contains(i as StateId))
    }

    /// Total number of (state, state) pairs in the relation.
    pub fn relation_size(&self) -> usize {
        self.map.iter().map(|s| s.len()).sum()
    }

    /// Memory occupied by the image sets, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.map.iter().map(|s| std::mem::size_of_val(s.words())).sum()
    }
}

impl std::fmt::Debug for Correspondence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, img) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}↦{:?}", i, img)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformation_identity_and_apply() {
        let id = Transformation::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.degree(), 4);
        for q in 0..4 {
            assert_eq!(id.apply(q), q);
        }
        assert_eq!(id.rank(), 4);
        assert!(!id.is_constant());
    }

    #[test]
    fn transformation_composition_order() {
        // f maps 0->1, 1->2, 2->0 ; g maps everything to 2.
        let f = Transformation::from_vec(vec![1, 2, 0]);
        let g = Transformation::from_vec(vec![2, 2, 2]);
        // (f ⋄ g)(q) = g(f(q)) = 2 for all q.
        assert_eq!(f.then(&g), g);
        // (g ⋄ f)(q) = f(g(q)) = f(2) = 0.
        assert_eq!(g.then(&f), Transformation::from_vec(vec![0, 0, 0]));
        assert!(g.is_constant());
        assert_eq!(g.rank(), 1);
    }

    #[test]
    fn transformation_composition_is_associative() {
        let f = Transformation::from_vec(vec![1, 2, 0, 3]);
        let g = Transformation::from_vec(vec![0, 0, 3, 2]);
        let h = Transformation::from_vec(vec![2, 1, 1, 0]);
        assert_eq!(f.then(&g).then(&h), f.then(&g.then(&h)));
    }

    #[test]
    fn identity_is_neutral_element() {
        let f = Transformation::from_vec(vec![2, 0, 1]);
        let id = Transformation::identity(3);
        assert_eq!(id.then(&f), f);
        assert_eq!(f.then(&id), f);
    }

    #[test]
    fn transformation_paper_table1() {
        // Table I of the paper (mappings of the SFA for (ab)*, states 0..=2
        // of D1 where 2 is the dead state).
        let f0 = Transformation::from_vec(vec![0, 1, 2]); // identity
        let f1 = Transformation::from_vec(vec![1, 2, 2]); // after `a`
        let f4 = Transformation::from_vec(vec![0, 2, 2]); // after `ab`
        let f5 = Transformation::from_vec(vec![2, 1, 2]); // after `ba`... (f2 ⋄ f1)
        let f2 = Transformation::from_vec(vec![2, 0, 2]); // after `b`

        assert!(f0.is_identity());
        // Example 2, step 2: f1 ⋄ f5 = f1.
        assert_eq!(f1.then(&f5), f1);
        // and (f1 ⋄ f5) ⋄ (f2 ⋄ f4) = f1 ⋄ f2 = f4.
        let f2f4 = f2.then(&f4);
        assert_eq!(f1.then(&f5).then(&f2f4), f4);
    }

    #[test]
    fn transformation_heap_bytes() {
        let f = Transformation::identity(10);
        assert_eq!(f.heap_bytes(), 40);
    }

    #[test]
    fn correspondence_identity_and_apply() {
        let id = Correspondence::identity(3);
        assert!(id.is_identity());
        assert_eq!(id.degree(), 3);
        assert_eq!(id.apply(1).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(id.relation_size(), 3);
    }

    #[test]
    fn correspondence_composition() {
        // f: 0↦{0,1}, 1↦{2}, 2↦{} ; g: 0↦{2}, 1↦{1}, 2↦{0,2}
        let f = Correspondence::from_sets(vec![
            StateSet::from_iter(3, [0u32, 1]),
            StateSet::from_iter(3, [2u32]),
            StateSet::new(3),
        ]);
        let g = Correspondence::from_sets(vec![
            StateSet::from_iter(3, [2u32]),
            StateSet::from_iter(3, [1u32]),
            StateSet::from_iter(3, [0u32, 2]),
        ]);
        let fg = f.then(&g);
        // (f ⋄ g)(0) = g(0) ∪ g(1) = {1,2}
        assert_eq!(fg.apply(0).iter().collect::<Vec<_>>(), vec![1, 2]);
        // (f ⋄ g)(1) = g(2) = {0,2}
        assert_eq!(fg.apply(1).iter().collect::<Vec<_>>(), vec![0, 2]);
        // (f ⋄ g)(2) = ∅
        assert!(fg.apply(2).is_empty());
    }

    #[test]
    fn correspondence_composition_is_associative() {
        let f = Correspondence::from_sets(vec![
            StateSet::from_iter(3, [1u32, 2]),
            StateSet::from_iter(3, [0u32]),
            StateSet::from_iter(3, [2u32]),
        ]);
        let g = Correspondence::from_sets(vec![
            StateSet::from_iter(3, [0u32, 1]),
            StateSet::new(3),
            StateSet::from_iter(3, [1u32]),
        ]);
        let h = Correspondence::from_sets(vec![
            StateSet::from_iter(3, [2u32]),
            StateSet::from_iter(3, [1u32, 2]),
            StateSet::from_iter(3, [0u32]),
        ]);
        let left = f.then(&g).then(&h);
        let right = f.then(&g.then(&h));
        assert_eq!(left, right);
    }

    #[test]
    fn correspondence_identity_is_neutral() {
        let f =
            Correspondence::from_sets(vec![StateSet::from_iter(2, [0u32, 1]), StateSet::new(2)]);
        let id = Correspondence::identity(2);
        assert_eq!(id.then(&f), f);
        assert_eq!(f.then(&id), f);
    }

    #[test]
    fn apply_set_unions_images() {
        let f = Correspondence::from_sets(vec![
            StateSet::from_iter(3, [1u32]),
            StateSet::from_iter(3, [2u32]),
            StateSet::from_iter(3, [0u32]),
        ]);
        let s = StateSet::from_iter(3, [0u32, 1]);
        assert_eq!(f.apply_set(&s).iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
