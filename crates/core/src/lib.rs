//! # sfa-core
//!
//! Simultaneous finite automata (SFA) — the central contribution of
//! *"Simultaneous Finite Automata: An Efficient Data-Parallel Model for
//! Regular Expression Matching"* (Sin'ya, Matsuzaki, Sassa — ICPP 2013).
//!
//! An SFA extends a finite automaton so that each state *is* a mapping from
//! states to (sets of) states of the original automaton — i.e. the
//! speculative simulation of all possible start states, evaluated once at
//! construction time instead of on every byte at match time. Because the
//! composition of those mappings is associative, the input can be split at
//! arbitrary points and matched in parallel (Theorem 3), which is what
//! `sfa-matcher` exploits.
//!
//! This crate provides:
//!
//! * [`mapping::Transformation`] / [`mapping::Correspondence`] — the state
//!   mappings and their associative composition (`⋄`),
//! * [`DSfa`] — the SFA built from a DFA via the correspondence
//!   construction (Algorithm 4), plus [`LazyDSfa`] for on-the-fly
//!   construction (Section V-A),
//! * [`SfaBackend`] — the pluggable-backend abstraction the matcher layer
//!   runs on: eager, lazy or borrowed-from-an-artifact behind one surface
//!   (see [`borrowed::LoadedSfa`]),
//! * [`NSfa`] — the SFA built directly from an NFA,
//! * [`stats`] — the size reports behind Figure 3 of the paper.
//!
//! ## Which knobs apply to which backend
//!
//! | [`SfaConfig`] knob | [`DSfa`] (eager) | [`LazyDSfa`] | [`NSfa`] |
//! |---|---|---|---|
//! | `max_states` | enforced: construction fails with `TooManyStates` | **ignored** — the cache is bounded by the states actually visited (≤ one per input byte) | enforced |
//! | `premultiply` | builds the dense 256-column byte table (≤ 64 MiB packed) | **ignored** — states may never materialize, so no dense table | ignored (states are correspondences, not table rows) |
//! | `repr` | overrides the packed state-id width (never narrower than `\|S_d\|` requires) | **ignored** — the cache grows while matchers hold ids, so it stays `u32` (see [`LazyDSfa`]) | ignored (states are correspondences, not table rows) |
//!
//! ## Example
//!
//! ```
//! use sfa_core::DSfa;
//!
//! // Fig. 2 of the paper: the D-SFA of (ab)* has 6 states.
//! let sfa = DSfa::from_pattern("(ab)*").unwrap();
//! assert_eq!(sfa.num_states(), 6);
//! assert!(sfa.accepts(b"abab"));
//! assert!(!sfa.accepts(b"aba"));
//! ```

#![deny(missing_docs)]
// Without the `simd` feature this crate contains no unsafe code at all.
// With it, the only unsafe lives in `simd` (`core::arch` intrinsics behind
// `#[target_feature]` + runtime detection); everything else stays checked,
// so the lint is `deny` there and each use carries an explicit `allow` +
// safety comment.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]

pub mod backend;
pub mod borrowed;
pub mod dsfa;
pub mod lazy;
pub mod mapping;
pub mod nsfa;
#[cfg(feature = "simd")]
pub(crate) mod simd;
pub mod stats;

pub use backend::{BackendKind, SfaBackend};
pub use borrowed::{ArtifactBytes, LoadedSfa, LoadedSfaParts};
pub use dsfa::{DSfa, SfaStateId, StateIdRepr};
pub use lazy::LazyDSfa;
pub use mapping::{Correspondence, Transformation};
pub use nsfa::NSfa;
pub use stats::{GrowthClass, SizeReport};

/// Configuration of the correspondence construction (Algorithm 4).
#[derive(Clone, Debug)]
pub struct SfaConfig {
    /// Upper bound on the number of SFA states in the **eager**
    /// constructions: [`DSfa`] and [`NSfa`] fail with
    /// [`sfa_automata::CompileError::TooManyStates`] when exceeded.
    /// [`LazyDSfa`] does not consult it — the on-the-fly cache is bounded
    /// by the states an input actually visits (at most one per byte), so
    /// capping it would defeat the construction's purpose (see the
    /// [knob matrix](crate) above).
    ///
    /// The default (1 000 000) accommodates the largest automaton used in
    /// the paper's evaluation (`r_500`, with 1 000 999 states, needs the
    /// limit raised explicitly — the benchmark harness does so).
    pub max_states: usize,
    /// Build a premultiplied dense `256 × |S_d|` byte→state transition
    /// table at construction time, fusing the byte-class indirection out of
    /// the hot matching loop (one true table lookup per byte, exactly the
    /// paper's fixed-row layout). Costs `256 × |S_d|` **packed** entries of
    /// extra memory on top of the class-compressed rows — one, two or four
    /// bytes per entry depending on the selected [`StateIdRepr`] — so it is
    /// skipped, regardless of this flag, once that packed table would
    /// exceed [`SfaConfig::PREMULTIPLY_MAX_BYTES`]. Memory-constrained
    /// builds can set this to `false` to keep class rows only.
    ///
    /// Only [`DSfa`] consumes this flag; [`LazyDSfa`] (whose states may
    /// never materialize, so a dense table over them cannot be built up
    /// front) and [`NSfa`] (whose states are correspondences, not table
    /// rows) ignore it — see the [knob matrix](crate) above.
    pub premultiply: bool,
    /// Override of the packed state-id width used by the **eager**
    /// [`DSfa`] transition tables. `None` (the default) selects the
    /// narrowest width that fits `|S_d|`: `u8` up to 256 states, `u16` up
    /// to 65 536, `u32` beyond. A `Some` override *wider* than required is
    /// honored (useful to measure packing against a `u32` baseline); one
    /// narrower than `|S_d|` requires is silently widened to the automatic
    /// choice, so a forced repr can never truncate a state id.
    ///
    /// [`LazyDSfa`] ignores this knob: its table grows concurrently while
    /// matcher threads hold state ids, so repacking the cache to a
    /// narrower width mid-run would invalidate ids or serialize every
    /// worker behind the write lock — the lazy cache deliberately stays
    /// `u32` (see the [knob matrix](crate) above).
    pub repr: Option<StateIdRepr>,
}

impl SfaConfig {
    /// Hard ceiling on the premultiplied table size in **packed** bytes
    /// (64 MiB): the dense table is not built — even when
    /// [`SfaConfig::premultiply`] is set — once
    /// `256 × |S_d| × state_id_bytes` exceeds it. The state count it
    /// admits therefore depends on the selected [`StateIdRepr`]: every
    /// `u8`/`u16` automaton fits (their packed tables top out at 16 KiB
    /// and 32 MiB respectively), while `u32` automata premultiply up to
    /// 65 536 states.
    pub const PREMULTIPLY_MAX_BYTES: usize = 64 << 20;
}

impl Default for SfaConfig {
    fn default() -> Self {
        SfaConfig { max_states: 1_000_000, premultiply: true, repr: None }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfa_automata::equivalence::equivalent;
    use sfa_automata::{determinize, minimize, DfaConfig, Nfa};
    use sfa_regex_syntax::generator::{AstGenerator, GeneratorConfig};
    use sfa_regex_syntax::ByteSet;

    fn small_generator() -> AstGenerator {
        AstGenerator::with_config(GeneratorConfig {
            max_depth: 3,
            max_width: 3,
            max_repeat: 3,
            alphabet: ByteSet::range(b'a', b'd'),
            repeat_bias: 0.35,
        })
    }

    fn random_small_dfa(seed: u64) -> Option<sfa_automata::Dfa> {
        let mut rng = StdRng::seed_from_u64(seed);
        let ast = small_generator().generate(&mut rng);
        let nfa = Nfa::from_ast(&ast).ok()?;
        let dfa = determinize(&nfa, &DfaConfig { max_states: 300, ..Default::default() }).ok()?;
        Some(minimize(&dfa))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Theorem 2: the D-SFA accepts exactly the language of its source
        /// DFA (checked by full product equivalence).
        #[test]
        fn dsfa_equivalent_to_dfa(seed in any::<u64>()) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let Ok(sfa) = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 200_000, ..SfaConfig::default() }) else { return Ok(()) };
            prop_assert!(equivalent(&dfa, &sfa.as_dfa()));
        }

        /// Theorem 3 / Lemma 1: for any split of the input, composing the
        /// chunk mappings yields the mapping of the whole input.
        #[test]
        fn any_split_composes_to_whole(seed in any::<u64>(), input in "[a-d]{0,30}", cut in any::<prop::sample::Index>()) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let Ok(sfa) = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 200_000, ..SfaConfig::default() }) else { return Ok(()) };
            let bytes = input.as_bytes();
            let cut = cut.index(bytes.len() + 1).min(bytes.len());
            let (w1, w2) = bytes.split_at(cut);
            let f1 = sfa.run(w1);
            let f2 = sfa.run(w2);
            let whole = sfa.run(bytes);
            prop_assert_eq!(&sfa.compose(f1, f2), sfa.mapping(whole));
            // The composed mapping decides acceptance identically to the
            // sequential DFA run.
            let accept_via_composition =
                sfa.dfa_is_accepting(sfa.compose(f1, f2).apply(sfa.dfa_start()));
            prop_assert_eq!(accept_via_composition, dfa.accepts(bytes));
        }

        /// The lazy SFA agrees with the eager SFA and never materializes
        /// more states.
        #[test]
        fn lazy_agrees_with_eager(seed in any::<u64>(), inputs in prop::collection::vec("[a-d]{0,16}", 1..6)) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let Ok(eager) = DSfa::from_dfa(&dfa, &SfaConfig { max_states: 200_000, ..SfaConfig::default() }) else { return Ok(()) };
            let lazy = LazyDSfa::new(dfa.clone());
            for input in &inputs {
                prop_assert_eq!(eager.accepts(input.as_bytes()), lazy.accepts(input.as_bytes()));
            }
            prop_assert!(lazy.num_states_constructed() <= eager.num_states());
        }

        /// Every packed table representation — forced via the
        /// [`SfaConfig::repr`] override, with and without the
        /// premultiplied byte table — produces the same verdicts and the
        /// same final state ids as the forced-`u32` baseline and as the
        /// lazy backend.
        #[test]
        fn packed_reprs_agree_with_u32(seed in any::<u64>(), inputs in prop::collection::vec("[a-d]{0,24}", 1..5)) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let base_cfg = SfaConfig {
                max_states: 200_000,
                repr: Some(StateIdRepr::U32),
                ..SfaConfig::default()
            };
            let Ok(baseline) = DSfa::from_dfa(&dfa, &base_cfg) else { return Ok(()) };
            prop_assert_eq!(baseline.repr(), StateIdRepr::U32);
            let lazy = LazyDSfa::new(dfa.clone());
            for repr in [None, Some(StateIdRepr::U8), Some(StateIdRepr::U16), Some(StateIdRepr::U32)] {
                for premultiply in [true, false] {
                    let cfg = SfaConfig { max_states: 200_000, premultiply, repr };
                    let sfa = DSfa::from_dfa(&dfa, &cfg).unwrap();
                    for input in &inputs {
                        let bytes = input.as_bytes();
                        prop_assert_eq!(sfa.run(bytes), baseline.run(bytes));
                        prop_assert_eq!(sfa.accepts(bytes), dfa.accepts(bytes));
                        prop_assert_eq!(sfa.accepts(bytes), lazy.accepts(bytes));
                    }
                }
            }
        }

        /// The SIMD kernels (when the `simd` feature and the CPU enable
        /// them — without either, dispatch and scalar are the same code
        /// path and this degenerates to a smoke test) return exactly the
        /// states of the scalar loops: single scans via `run_from` vs
        /// `run_from_scalar`, batches via `run_from_many` vs
        /// `run_from_many_scalar`, across every repr × premultiply
        /// combination, input lengths including 0/1/lane-remainder tails,
        /// and mid-input sink entry (the `z` bytes leave most sampled
        /// alphabets).
        #[test]
        fn simd_kernels_agree_with_scalar(seed in any::<u64>(), input in "[a-dz]{0,300}", cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..10)) {
            let Some(dfa) = random_small_dfa(seed) else { return Ok(()) };
            let bytes = input.as_bytes();
            for repr in [None, Some(StateIdRepr::U8), Some(StateIdRepr::U16), Some(StateIdRepr::U32)] {
                for premultiply in [true, false] {
                    let cfg = SfaConfig { max_states: 200_000, premultiply, repr };
                    let Ok(sfa) = DSfa::from_dfa(&dfa, &cfg) else { return Ok(()) };
                    prop_assert_eq!(
                        sfa.run_from(sfa.initial(), bytes),
                        sfa.run_from_scalar(sfa.initial(), bytes)
                    );
                    // A batch of prefixes/suffixes at random cuts (plus
                    // the empty and whole input) hits the lane-grouped
                    // path with unequal tails.
                    let mut jobs: Vec<(SfaStateId, &[u8])> =
                        vec![(sfa.initial(), &bytes[..0]), (sfa.initial(), bytes)];
                    for cut in &cuts {
                        let cut = cut.index(bytes.len() + 1).min(bytes.len());
                        jobs.push((sfa.initial(), &bytes[..cut]));
                        jobs.push((sfa.run(&bytes[..cut]), &bytes[cut..]));
                    }
                    prop_assert_eq!(sfa.run_from_many(&jobs), sfa.run_from_many_scalar(&jobs));
                }
            }
        }

        /// The N-SFA accepts exactly the language of its source NFA on the
        /// tested inputs.
        #[test]
        fn nsfa_matches_nfa(seed in any::<u64>(), inputs in prop::collection::vec("[a-d]{0,12}", 1..6)) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ast = small_generator().generate(&mut rng);
            let Ok(nfa) = Nfa::from_ast(&ast) else { return Ok(()) };
            let Ok(nsfa) = NSfa::from_nfa(&nfa, &SfaConfig { max_states: 50_000, ..SfaConfig::default() }) else { return Ok(()) };
            for input in &inputs {
                prop_assert_eq!(nfa.accepts(input.as_bytes()), nsfa.accepts(input.as_bytes()));
            }
        }
    }
}
