//! Streaming log-replay scenario: a log corpus cut into arrival-time
//! blocks, the way a matcher actually receives input when it tails a log
//! file or scans a network connection.
//!
//! The blocks deliberately ignore line structure — a real `read()` returns
//! however many bytes the kernel has, so attack needles routinely straddle
//! block boundaries. Replaying the blocks through a
//! `StreamMatcher` must give the same verdict as matching the whole
//! concatenated log, which is exactly what the integration tests assert.
//!
//! Everything is deterministic for a given seed.

use rand::prelude::*;
use rand::rngs::StdRng;

/// The pinned attack-scan rule for the streaming workload: the
/// [`http_log`](crate::http_log) corpus plants its attack lines as
/// `GET /cgi-bin/ph…?id=…` probes, and this rule (also rule 0 of
/// [`IDS_SCAN_RULES`](crate::IDS_SCAN_RULES)) detects exactly those.
/// Compiled in Contains mode it yields a small synchronizing DFA — the
/// benchmark subject for convergence-guided speculation on streaming
/// input (`reproduce convergence`), so it must stay byte-identical or
/// every committed baseline goes stale.
pub const LOG_SCAN_RULE: &str = "/cgi-bin/ph[a-z]{1,8}";

/// Configuration of the streaming log-replay scenario.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of log lines in the underlying corpus.
    pub lines: usize,
    /// One attack line every `attack_every` lines (0 ⇒ no attacks) — the
    /// same knob as [`http_log`](crate::http_log).
    pub attack_every: usize,
    /// Mean arrival-block size in bytes. Actual blocks are uniform in
    /// `1..=2·mean`, so boundaries land anywhere, including mid-line and
    /// mid-needle.
    pub mean_block: usize,
    /// RNG seed (corpus and block boundaries are both derived from it).
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { lines: 1000, attack_every: 50, mean_block: 512, seed: 0 }
    }
}

/// Generates the log-replay stream: the [`http_log`](crate::http_log)
/// corpus for `(lines, attack_every, seed)`, cut into arrival blocks of
/// random size `1..=2·mean_block`.
///
/// The concatenation of the returned blocks is exactly the corpus, so a
/// streaming matcher fed block by block must agree with a whole-buffer
/// matcher run on [`log_stream_bytes`].
pub fn log_stream(config: &StreamConfig) -> Vec<Vec<u8>> {
    let corpus = log_stream_bytes(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5f5f_5f5f_5f5f_5f5f);
    let mean = config.mean_block.max(1);
    let mut blocks = Vec::with_capacity(corpus.len() / mean + 1);
    let mut start = 0;
    while start < corpus.len() {
        let len = rng.gen_range(1..=2 * mean).min(corpus.len() - start);
        blocks.push(corpus[start..start + len].to_vec());
        start += len;
    }
    blocks
}

/// The whole-buffer form of the same scenario: the concatenation of every
/// block [`log_stream`] yields for this configuration.
pub fn log_stream_bytes(config: &StreamConfig) -> Vec<u8> {
    crate::http_log(config.lines, config.attack_every, config.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_concatenate_to_the_corpus() {
        let config = StreamConfig { lines: 200, attack_every: 10, mean_block: 64, seed: 7 };
        let blocks = log_stream(&config);
        let corpus = log_stream_bytes(&config);
        let glued: Vec<u8> = blocks.iter().flatten().copied().collect();
        assert_eq!(glued, corpus);
        assert!(blocks.len() > 1);
        assert!(blocks.iter().all(|b| !b.is_empty() && b.len() <= 128));
    }

    #[test]
    fn block_boundaries_cut_lines() {
        // With a mean block far below the line length distribution, most
        // boundaries must fall mid-line — the adversarial case the
        // scenario exists for.
        let config = StreamConfig { lines: 300, attack_every: 5, mean_block: 16, seed: 3 };
        let blocks = log_stream(&config);
        let mid_line_cuts = blocks.iter().filter(|b| b.last().copied() != Some(b'\n')).count();
        assert!(mid_line_cuts * 2 > blocks.len(), "most cuts should be mid-line");
    }

    #[test]
    fn stream_is_deterministic() {
        let config = StreamConfig::default();
        assert_eq!(log_stream(&config), log_stream(&config));
        let other = StreamConfig { seed: 1, ..StreamConfig::default() };
        assert_ne!(log_stream(&config), log_stream(&other));
    }
}
