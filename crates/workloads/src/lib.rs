//! # sfa-workloads
//!
//! Workload generators for the SFA experiments: the synthetic SNORT-like
//! ruleset behind Figure 3, the `r_n` scalability family and its accepted
//! input texts behind Figures 6–10 and Table III, the streaming log-replay
//! scenario (a corpus cut into arrival-time blocks), the match-service
//! request stream (batched haystacks the way a server receives them),
//! plus generic corpora.
//!
//! Everything is deterministic for a given seed so every figure of
//! EXPERIMENTS.md can be regenerated exactly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod scalability;
pub mod service;
pub mod snort;
pub mod streaming;

pub use scalability::{
    digit_text, fig10_pattern, fig10_text, random_bytes, repeated_a_text, rn_or_a_pattern,
    rn_pattern, rn_text, window_pattern,
};
pub use service::{service_bytes, service_requests, ServiceConfig};
pub use snort::{
    corpus_1k, ruleset, SnortConfig, CORPUS_1K, CORPUS_1K_SEED, CURATED_PATTERNS, IDS_SCAN_RULES,
    SQLI_RULE,
};
pub use streaming::{log_stream, log_stream_bytes, StreamConfig, LOG_SCAN_RULE};

/// An HTTP-log-like line-oriented corpus (used by the examples): a mix of
/// benign request lines with a configurable number of "attack" lines
/// embedded at deterministic positions.
pub fn http_log(lines: usize, attack_every: usize, seed: u64) -> Vec<u8> {
    use rand::prelude::*;
    use rand::rngs::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let paths = ["/index.html", "/api/v1/users", "/static/app.js", "/login", "/healthz"];
    let agents = ["Mozilla/5.0", "curl/8.4.0", "Go-http-client/1.1", "python-requests/2.31"];
    let mut out = Vec::with_capacity(lines * 64);
    for i in 0..lines {
        if attack_every != 0 && i % attack_every == attack_every - 1 {
            out.extend_from_slice(
                format!(
                    "GET /cgi-bin/ph{}?id={} HTTP/1.1 404 {}\n",
                    ["f", "p", "book"].choose(&mut rng).unwrap(),
                    rng.gen_range(0..100000),
                    rng.gen_range(100..9999)
                )
                .as_bytes(),
            );
        } else {
            out.extend_from_slice(
                format!(
                    "GET {} HTTP/1.1 200 {} {}\n",
                    paths.choose(&mut rng).unwrap(),
                    rng.gen_range(100..99999),
                    agents.choose(&mut rng).unwrap()
                )
                .as_bytes(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_log_contains_attacks_at_requested_rate() {
        let log = http_log(100, 10, 1);
        let text = String::from_utf8(log).unwrap();
        let attacks = text.lines().filter(|l| l.contains("/cgi-bin/ph")).count();
        assert_eq!(attacks, 10);
        assert_eq!(text.lines().count(), 100);
    }

    #[test]
    fn http_log_without_attacks() {
        let log = http_log(50, 0, 2);
        let text = String::from_utf8(log).unwrap();
        assert_eq!(text.lines().count(), 50);
        assert!(!text.contains("/cgi-bin/"));
    }

    #[test]
    fn http_log_is_deterministic() {
        assert_eq!(http_log(20, 5, 9), http_log(20, 5, 9));
    }
}
