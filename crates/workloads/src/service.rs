//! Match-service traffic scenario: the request stream a multi-tenant
//! match server receives — many independent clients, each sending batches
//! of moderately sized documents (grouped log records), with attack
//! needles planted at deterministic positions.
//!
//! Unlike the [streaming](crate::streaming) scenario, the unit here is a
//! *request*: a batch of whole haystacks that one connection submits in a
//! single `MATCH` frame. The server's dispatcher flattens concurrent
//! requests into one batched scan, so the generator's job is to produce
//! enough same-shaped requests to make that flattening visible.
//!
//! Everything is deterministic for a given seed.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the match-service traffic scenario.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Haystacks (documents) per request.
    pub batch: usize,
    /// Log lines grouped into one haystack — larger groups amortize
    /// per-haystack dispatch, exactly like the batched-scan benches.
    pub lines_per_haystack: usize,
    /// One attack line every `attack_every` lines across the whole
    /// corpus (0 ⇒ no attacks), the same knob as
    /// [`http_log`](crate::http_log).
    pub attack_every: usize,
    /// RNG seed for the underlying corpus.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            requests: 64,
            batch: 32,
            lines_per_haystack: 40,
            attack_every: 97,
            seed: 0x5FA5E,
        }
    }
}

/// Generates the request stream: `requests` batches of `batch` haystacks,
/// each haystack a space-joined group of `lines_per_haystack` log lines
/// from one deterministic [`http_log`](crate::http_log) corpus.
///
/// The corpus is generated once and sliced in order, so concatenating all
/// requests' haystacks walks the log front to back and the planted attack
/// lines land in predictable haystacks — per-haystack verdicts are
/// reproducible for a given config.
pub fn service_requests(config: &ServiceConfig) -> Vec<Vec<Vec<u8>>> {
    let haystacks = config.requests * config.batch;
    let lines = haystacks * config.lines_per_haystack.max(1);
    let log = crate::http_log(lines, config.attack_every, config.seed);
    let raw: Vec<&[u8]> = log.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
    let mut grouped: Vec<Vec<u8>> =
        raw.chunks(config.lines_per_haystack.max(1)).map(|c| c.join(&b' ')).collect();
    grouped.truncate(haystacks);
    // Shuffle haystacks across requests (but keep each haystack intact):
    // concurrent clients do not replay a log in lockstep.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    grouped.shuffle(&mut rng);
    grouped.chunks(config.batch.max(1)).map(|c| c.to_vec()).collect()
}

/// Total payload bytes across every request of the stream — the
/// numerator of a service-throughput measurement.
pub fn service_bytes(requests: &[Vec<Vec<u8>>]) -> usize {
    requests.iter().flatten().map(Vec::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_shape_is_exact() {
        let config = ServiceConfig { requests: 8, batch: 4, ..Default::default() };
        let stream = service_requests(&config);
        assert_eq!(stream.len(), 8);
        assert!(stream.iter().all(|r| r.len() == 4));
        assert!(service_bytes(&stream) > 0);
    }

    #[test]
    fn stream_is_deterministic_and_carries_attacks() {
        let config = ServiceConfig::default();
        let a = service_requests(&config);
        let b = service_requests(&config);
        assert_eq!(a, b);
        let attacks =
            a.iter().flatten().filter(|h| h.windows(11).any(|w| w == b"/cgi-bin/ph")).count();
        assert!(attacks > 0, "planted attack lines must survive grouping");
    }

    #[test]
    fn different_seeds_differ() {
        let a = service_requests(&ServiceConfig::default());
        let b = service_requests(&ServiceConfig { seed: 1, ..Default::default() });
        assert_ne!(a, b);
    }
}
