//! A synthetic SNORT-like ruleset.
//!
//! The paper's Figure 3 is computed over ~20 000 PCREs extracted from the
//! SNORT 2940 rulesets, which are not redistributable here. This module
//! synthesizes a corpus with the same *structural* mix — literal content
//! strings, case-insensitive keywords, URI fragments with hex escapes,
//! bounded counted repetitions, header scans like `[^\r\n]{N,}`, IP/number
//! templates, and a small fraction of pathological patterns chaining
//! several `.*` — because those are the features that determine how the
//! D-SFA size relates to the DFA size (see DESIGN.md §4 for the
//! substitution rationale).
//!
//! The generator is fully deterministic for a given seed, so Figure 3 can
//! be regenerated bit-for-bit.

use rand::prelude::*;
use rand::rngs::StdRng;

/// A curated set of realistic, handwritten patterns in the style of SNORT
/// web/exploit rules. These anchor the corpus; the generator adds
/// parameterized variations around them.
pub const CURATED_PATTERNS: &[&str] = &[
    "(?i)user-agent\\x3a[^\\r\\n]{0,64}curl",
    "(?i)get\\s+/[a-z0-9_\\-]{1,32}\\.php\\?id=[0-9]{1,8}",
    "/cgi-bin/ph[a-z]{1,8}",
    "\\x2fscripts\\x2f\\.\\.%c0%af\\.\\.\\x2f",
    "(?i)(select|union|insert|delete)\\s+[a-z0-9_,\\* ]{1,64}\\s+from",
    "(?i)host\\x3a\\s*[a-z0-9\\.\\-]{4,64}",
    "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}",
    "(?i)content-length\\x3a\\s*[0-9]{7,12}",
    "\\x90{16,64}",
    "(?i)\\.(exe|dll|scr|pif)\\x00",
    "(?i)powershell(\\.exe)?\\s+-e[a-z]{0,16}\\s+[a-z0-9+/=]{32,256}",
    "(?i)referer\\x3a[^\\r\\n]{0,32}(casino|poker|viagra)",
    "\\x7fELF[\\x01\\x02][\\x01\\x02]",
    "(?i)jndi\\x3a(ldap|rmi|dns)\\x3a//",
    "(?i)etc/(passwd|shadow|group)",
    "(?i)cmd(\\.exe)?\\s*/c\\s+[a-z0-9_\\-\\. ]{1,40}",
    "[\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{8,32}",
    "(?i)authorization\\x3a\\s*basic\\s+[a-z0-9+/=]{8,128}",
    "(?i)<script[^>]{0,64}>",
    "(?i)eval\\(base64_decode\\(",
    "(?i)x-forwarded-for\\x3a[^\\r\\n]{0,48}[';\\-]{2,8}",
    "(?i)\\\\x5cpipe\\\\x5c(samr|lsarpc|netlogon)",
    "(?i)ssh-[12]\\.[0-9]{1,2}",
    "(?i)smtp\\s+(helo|ehlo)\\s+[a-z0-9\\.\\-]{1,48}",
    "(?i)(wget|curl)\\s+http://[a-z0-9\\./\\-]{8,64}",
];

/// The full SQL-injection scan rule of the `ids_scan` example, untamed.
///
/// Its D-SFA is the repo's canonical explosion witness: in `Contains`
/// mode the `\s+` separator, the long permissive class run and the
/// keyword alternation interact so that the *eager* correspondence
/// construction exceeds 750 000 states (measured: the combined
/// [`IDS_SCAN_RULES`] automaton blew through a 750 001-state cap while
/// its any-match minimal DFA had only 787 states; with per-rule verdict
/// tracking the combined minimal DFA is 5 668 states and the eager SFA
/// still explodes), which is why an earlier revision had to replace it
/// with a bounded `[ +]{1,3}` separator. The lazy backend
/// (`BackendChoice::Auto` / `Lazy` in `sfa-matcher`) makes the original
/// rule feasible again: scanning a multi-megabyte HTTP log materializes
/// only a few hundred states.
pub const SQLI_RULE: &str = "(?i)(select|union)\\s+[a-z0-9_, ]{1,40}\\s+from";

/// The `ids_scan` example's full ruleset — [`SQLI_RULE`] included in its
/// original, untamed form.
pub const IDS_SCAN_RULES: &[&str] = &[
    "/cgi-bin/ph[a-z]{1,8}",
    "(?i)etc/(passwd|shadow|group)",
    "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}",
    SQLI_RULE,
];

/// Size of the pinned benchmark corpus returned by [`corpus_1k`].
pub const CORPUS_1K: usize = 1_000;

/// Seed of the pinned benchmark corpus. Changing it (or the generator)
/// invalidates every committed baseline measured against [`corpus_1k`];
/// the fingerprint test below exists to make such a change loud.
pub const CORPUS_1K_SEED: u64 = 0x5FA_2013;

/// The pinned 1 000-rule benchmark corpus: the curated patterns followed
/// by generated rules from the default shape mix under
/// [`CORPUS_1K_SEED`]. This is the ruleset `benches/multimatch.rs` and
/// `reproduce multimatch` shard — byte-for-byte stable across runs and
/// machines, so committed numbers stay comparable.
pub fn corpus_1k() -> Vec<String> {
    ruleset(&SnortConfig { count: CORPUS_1K, seed: CORPUS_1K_SEED, dot_star_fraction: 0.004 })
}

/// Structural shapes the generator mixes, with weights chosen so the
/// resulting size distribution resembles the paper's Figure 3 (dominated by
/// literal-ish patterns, a thin tail of `.*`-chained ones).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// A literal keyword, possibly case-insensitive.
    Literal,
    /// keyword + bounded wildcard run + keyword (header-style rule).
    HeaderScan,
    /// Alternation of a few keywords followed by a class run.
    KeywordAlt,
    /// Numeric / IP-like template with counted repetitions.
    Numeric,
    /// Hex-escape byte run (shellcode-ish).
    HexRun,
    /// A bounded repetition of a character class.
    ClassRepeat,
    /// The pathological shape: literals separated by several `.*`.
    DotStarChain,
}

const WORDS: &[&str] = &[
    "admin", "login", "passwd", "select", "union", "script", "shell", "cmd", "root", "exec",
    "upload", "config", "backup", "token", "cookie", "session", "proxy", "agent", "host",
    "referer", "index", "search", "query", "download", "update", "install", "setup", "debug",
    "trace", "status", "health", "metrics", "attack", "payload", "exploit", "overflow",
];

/// Configuration of the synthetic ruleset generator.
#[derive(Clone, Debug)]
pub struct SnortConfig {
    /// Number of patterns to generate (the paper uses 20 312).
    pub count: usize,
    /// RNG seed (the corpus is deterministic per seed).
    pub seed: u64,
    /// Fraction (0..=1) of pathological `.*`-chained patterns; the paper
    /// observes roughly 0.3 % of rules in that family.
    pub dot_star_fraction: f64,
}

impl Default for SnortConfig {
    fn default() -> Self {
        SnortConfig { count: 20_000, seed: 0x5FA_2013, dot_star_fraction: 0.004 }
    }
}

/// Generates the synthetic ruleset: the curated patterns first, then
/// generated ones up to `config.count`.
pub fn ruleset(config: &SnortConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out: Vec<String> =
        CURATED_PATTERNS.iter().take(config.count).map(|s| s.to_string()).collect();
    while out.len() < config.count {
        out.push(generate_pattern(&mut rng, config));
    }
    out
}

fn pick_word(rng: &mut StdRng) -> &'static str {
    WORDS.choose(rng).unwrap()
}

fn generate_pattern(rng: &mut StdRng, config: &SnortConfig) -> String {
    let shape = if rng.gen_bool(config.dot_star_fraction) {
        Shape::DotStarChain
    } else {
        *[
            Shape::Literal,
            Shape::Literal,
            Shape::Literal,
            Shape::HeaderScan,
            Shape::HeaderScan,
            Shape::KeywordAlt,
            Shape::Numeric,
            Shape::HexRun,
            Shape::ClassRepeat,
        ]
        .choose(rng)
        .unwrap()
    };
    let ci = if rng.gen_bool(0.6) { "(?i)" } else { "" };
    match shape {
        Shape::Literal => {
            let sep = ["/", "_", "-", "\\x3a", "\\x2f", "="].choose(rng).unwrap();
            format!("{ci}{}{}{}", pick_word(rng), sep, pick_word(rng))
        }
        Shape::HeaderScan => {
            let bound = rng.gen_range(8..64);
            format!("{ci}{}\\x3a[^\\r\\n]{{0,{bound}}}{}", pick_word(rng), pick_word(rng))
        }
        Shape::KeywordAlt => {
            let k = rng.gen_range(2..5usize);
            let mut words: Vec<&str> = (0..k).map(|_| pick_word(rng)).collect();
            words.dedup();
            let run = rng.gen_range(1..16);
            format!("{ci}({})[a-z0-9_]{{1,{run}}}", words.join("|"))
        }
        Shape::Numeric => {
            let a = rng.gen_range(1..4);
            let b = rng.gen_range(1..6);
            format!("{}[0-9]{{1,{a}}}\\.[0-9]{{1,{b}}}\\.[0-9]{{1,{b}}}", pick_word(rng))
        }
        Shape::HexRun => {
            let byte = rng.gen_range(0x80..=0xffu32);
            let lo = rng.gen_range(4..16);
            let hi = lo + rng.gen_range(4..32);
            format!("\\x{byte:02x}{{{lo},{hi}}}")
        }
        Shape::ClassRepeat => {
            let class = ["[a-z0-9]", "[^\\r\\n]", "[a-f0-9]", "[\\x20-\\x7e]", "[0-9a-z+/=]"]
                .choose(rng)
                .unwrap();
            let lo = rng.gen_range(1..8);
            let hi = lo + rng.gen_range(1..24);
            format!("{ci}{}{class}{{{lo},{hi}}}{}", pick_word(rng), pick_word(rng))
        }
        Shape::DotStarChain => {
            // e.g. .*(T.*Y.*P.*E.*) — the over-square family of Sect. VI-A.
            let stars = rng.gen_range(3..7usize);
            let mut s = String::from(".*");
            let word = pick_word(rng);
            for ch in word.chars().take(stars) {
                s.push(ch);
                s.push_str(".*");
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_regex_syntax::parse;

    #[test]
    fn curated_patterns_all_parse() {
        for p in CURATED_PATTERNS {
            parse(p).unwrap_or_else(|e| panic!("curated pattern `{}` failed: {}", p, e));
        }
    }

    #[test]
    fn ids_scan_rules_parse_and_include_the_untamed_sqli_rule() {
        for p in IDS_SCAN_RULES {
            parse(p).unwrap_or_else(|e| panic!("ids_scan rule `{}` failed: {}", p, e));
        }
        assert!(IDS_SCAN_RULES.contains(&SQLI_RULE));
        assert!(SQLI_RULE.contains("\\s+"), "the rule must keep its untamed separator");
    }

    #[test]
    fn sqli_rule_explodes_eagerly_but_runs_lazily() {
        use sfa_matcher::{BackendChoice, BackendKind, MatchMode, Reduction, Regex, Strategy};
        // A small cap keeps the eager attempt cheap; the real automaton
        // explodes far beyond it (>750k states, measured — see
        // `SQLI_RULE`'s docs).
        let builder = Regex::builder().mode(MatchMode::Contains).max_sfa_states(2_000);
        assert!(
            builder.clone().backend(BackendChoice::Eager).build(SQLI_RULE).is_err(),
            "the untamed rule must overflow the eager construction"
        );
        let re = builder.backend(BackendChoice::Auto).build(SQLI_RULE).unwrap();
        assert_eq!(re.backend_kind(), BackendKind::Lazy);
        assert!(re.is_match(b"GET /q?u=UNION  SELECT name, pass FROM users"));
        assert!(re.is_match_with(
            &b"benign "
                .repeat(2_000)
                .into_iter()
                .chain(*b"union select x from y")
                .collect::<Vec<_>>(),
            Strategy::Parallel { threads: 4, reduction: Reduction::Tree }
        ));
        assert!(!re.is_match(b"GET /index.html HTTP/1.1"));
        let report = re.size_report();
        assert!(
            report.materialized_states < 2_000,
            "lazy matching stays bounded, got {}",
            report.materialized_states
        );
    }

    #[test]
    fn ids_scan_rules_pin_their_convergence_class() {
        use sfa_matcher::{BackendChoice, ConvergenceClass, MatchMode, Regex, RegexSet, Strategy};
        // Each rule alone, in Contains mode, compiles to a small
        // synchronizing automaton: scanning automata reset once the
        // needle (or a benign stretch) has been consumed, which is
        // exactly what makes guided speculation the right default.
        let builder = Regex::builder().mode(MatchMode::Contains).threads(4);
        let scan = builder.clone().build(crate::LOG_SCAN_RULE).unwrap();
        let report = scan.convergence_report();
        assert!(
            matches!(report.class(), ConvergenceClass::Synchronizing { .. }),
            "scan rule must be synchronizing, got {:?}",
            report.class()
        );
        assert!(report.reset_word().is_some());
        assert!(matches!(scan.auto_strategy(), Strategy::Speculative { threads: 4, .. }));
        // The streaming workload's pinned rule is ids_scan rule 0.
        assert_eq!(crate::LOG_SCAN_RULE, IDS_SCAN_RULES[0]);

        // The full tracked product automaton (5 668 DFA states) is past
        // the pair-analysis cap: the verdict degrades conservatively —
        // never to Synchronizing — so Auto keeps the SFA composition
        // path for the big set instead of speculating on 5 668 states.
        let set = RegexSet::new(
            IDS_SCAN_RULES.iter().copied(),
            &Regex::builder()
                .mode(MatchMode::Contains)
                .threads(4)
                .backend(BackendChoice::Auto)
                .max_sfa_states(2_000),
        )
        .unwrap();
        let product = set.regex();
        let report = product.convergence_report();
        assert!(!report.pair_analysis_ran(), "5 668 states must skip the O(n²) pair BFS");
        assert!(!report.prefers_speculation());
        assert!(matches!(product.auto_strategy(), Strategy::Parallel { threads: 4, .. }));
        // And the analysis surfaces through the size report.
        let size = set.size_report();
        assert_eq!(size.survivor_states, report.survivor_count());
        assert_eq!(size.convergence_horizon, report.compaction_horizon());
    }

    #[test]
    fn generated_ruleset_parses_and_is_deterministic() {
        let config = SnortConfig { count: 500, seed: 7, dot_star_fraction: 0.01 };
        let a = ruleset(&config);
        let b = ruleset(&config);
        assert_eq!(a, b, "same seed ⇒ same corpus");
        assert_eq!(a.len(), 500);
        for p in &a {
            parse(p).unwrap_or_else(|e| panic!("generated pattern `{}` failed: {}", p, e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ruleset(&SnortConfig { count: 100, seed: 1, ..Default::default() });
        let b = ruleset(&SnortConfig { count: 100, seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn corpus_contains_pathological_fraction() {
        let corpus = ruleset(&SnortConfig { count: 2000, seed: 3, dot_star_fraction: 0.01 });
        let chained = corpus.iter().filter(|p| p.matches(".*").count() >= 3).count();
        assert!(chained >= 5, "expected a handful of .*-chained patterns, got {}", chained);
        assert!(chained < 200, "the tail must stay thin, got {}", chained);
    }

    #[test]
    fn corpus_1k_is_pinned_byte_for_byte() {
        // FNV-1a over the newline-joined corpus: any change to the
        // generator, the seed, the curated prefix or the shape mix moves
        // this fingerprint and must come with a baseline refresh (see
        // BENCH_multimatch.json).
        fn fnv1a(bytes: &[u8]) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
        let corpus = corpus_1k();
        assert_eq!(corpus.len(), CORPUS_1K);
        assert_eq!(&corpus[..CURATED_PATTERNS.len()], CURATED_PATTERNS);
        assert_eq!(corpus, corpus_1k(), "pinned seed ⇒ identical corpus");
        for p in &corpus {
            parse(p).unwrap_or_else(|e| panic!("corpus rule `{}` failed: {}", p, e));
        }
        let fingerprint = fnv1a(corpus.join("\n").as_bytes());
        assert_eq!(fingerprint, 0x4fce_5e19_56e7_40ab, "corpus drifted: got {fingerprint:#x}");
    }

    #[test]
    fn small_count_returns_only_curated_prefix() {
        let corpus = ruleset(&SnortConfig { count: 5, ..Default::default() });
        assert_eq!(corpus.len(), 5);
        assert_eq!(corpus[0], CURATED_PATTERNS[0]);
    }
}
