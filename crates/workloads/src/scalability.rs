//! The scalability workloads of Section VI-B / VI-C of the paper:
//! the `r_n = ([0-4]{n}[5-9]{n})*` family, its `|a*` variant, the small
//! overhead expression of Fig. 10, and the accepted input texts they are
//! run over.

use rand::prelude::*;
use rand::rngs::StdRng;

/// The regular expression `r_n = ([0-4]{n}[5-9]{n})*` (Figures 6–8).
pub fn rn_pattern(n: usize) -> String {
    format!("([0-4]{{{n}}}[5-9]{{{n}}})*")
}

/// The regular expression `([0-4]{n}[5-9]{n})*|a*` of Figure 9.
pub fn rn_or_a_pattern(n: usize) -> String {
    format!("([0-4]{{{n}}}[5-9]{{{n}}})*|a*")
}

/// The small expression of Figure 10: `(([02468][13579]){5})*`
/// (|D| = 10, |S| ≈ 21).
pub fn fig10_pattern() -> &'static str {
    "(([02468][13579]){5})*"
}

/// Generates a text of *exactly* `len` bytes accepted by `r_n`
/// (a whole number of `[0-4]{n}[5-9]{n}` blocks; `len` is rounded down to a
/// multiple of `2n`). Digits are drawn uniformly from the allowed ranges so
/// every byte is actually read and branch-predictable shortcuts are
/// impossible, like the paper's 1 GB inputs.
pub fn rn_text(n: usize, len: usize, seed: u64) -> Vec<u8> {
    let block = 2 * n;
    let blocks = len / block;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(blocks * block);
    for _ in 0..blocks {
        for _ in 0..n {
            out.push(b'0' + rng.gen_range(0..5u8));
        }
        for _ in 0..n {
            out.push(b'5' + rng.gen_range(0..5u8));
        }
    }
    out
}

/// The Figure 9 input: a repetition of `a` of the requested length.
pub fn repeated_a_text(len: usize) -> Vec<u8> {
    vec![b'a'; len]
}

/// A text accepted by the Fig. 10 expression `(([02468][13579]){5})*`:
/// alternating even/odd digits, length rounded down to a multiple of 10.
pub fn fig10_text(len: usize, seed: u64) -> Vec<u8> {
    let blocks = len / 10;
    let mut rng = StdRng::seed_from_u64(seed);
    let even = [b'0', b'2', b'4', b'6', b'8'];
    let odd = [b'1', b'3', b'5', b'7', b'9'];
    let mut out = Vec::with_capacity(blocks * 10);
    for _ in 0..blocks * 5 {
        out.push(*even.choose(&mut rng).unwrap());
        out.push(*odd.choose(&mut rng).unwrap());
    }
    out
}

/// The sliding-window family `[0-9]*[5-9][0-9]{k}` ("a high digit exactly
/// `k` from the end"). Its minimal DFA is the binary de Bruijn automaton
/// over the high/low digit classes — `2^(k+1)` states remembering the last
/// `k + 1` positions, strongly connected, with no dead state on digit
/// input — and its D-SFA is dominated by the `2^(k+1)` *constant*
/// mappings "the last window was `w`". On [`digit_text`] the scan
/// therefore performs a uniform random walk over the whole table instead
/// of circling a short accept cycle (the `r_n` behavior), which makes the
/// family the cache-adversarial workload for the packed-table throughput
/// comparison: the touched-row footprint is `~2^(k+1) × 256` entries, and
/// the [`StateIdRepr`](sfa_matcher::StateIdRepr) width decides whether
/// that fits a cache level.
pub fn window_pattern(k: usize) -> String {
    format!("[0-9]*[5-9][0-9]{{{k}}}")
}

/// Uniformly random decimal digits. Unlike [`rn_text`] — whose accepted
/// block structure keeps the `r_n` D-SFA circling a short accept cycle —
/// unstructured digits never leave the live byte classes yet keep breaking
/// the block pattern, so the scan wanders across a large fraction of the
/// transformation space. This is the cache-stressing workload for the
/// packed-table throughput comparison: with many distinct states visited
/// in pseudo-random order, the byte-table working set approaches the full
/// `256 × |S_d|` footprint and the packed width decides whether it fits.
pub fn digit_text(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(b'0' + rng.gen_range(0..10u8));
    }
    out
}

/// Uniformly random bytes (a "no match anywhere" adversarial input).
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_matcher::{Regex, Strategy};

    #[test]
    fn rn_text_is_accepted_by_rn() {
        for n in [2usize, 5, 10] {
            let re = Regex::new(&rn_pattern(n)).unwrap();
            let text = rn_text(n, 10 * 2 * n + 3, 42);
            assert_eq!(text.len() % (2 * n), 0);
            assert!(re.is_match_with(&text, Strategy::Sequential), "n = {}", n);
        }
    }

    #[test]
    fn repeated_a_matches_fig9_pattern() {
        let re = Regex::new(&rn_or_a_pattern(5)).unwrap();
        assert!(re.is_match_with(&repeated_a_text(1000), Strategy::Sequential));
        assert!(re.is_match_with(&rn_text(5, 1000, 1), Strategy::Sequential));
        assert!(!re.is_match_with(b"aaab", Strategy::Sequential));
    }

    #[test]
    fn fig10_text_is_accepted() {
        let re = Regex::new(fig10_pattern()).unwrap();
        let text = fig10_text(1000, 7);
        assert_eq!(text.len(), 1000);
        assert!(re.is_match_with(&text, Strategy::Sequential));
        assert_eq!(re.dfa().num_live_states(), 10);
    }

    #[test]
    fn texts_are_deterministic_per_seed() {
        assert_eq!(rn_text(5, 100, 9), rn_text(5, 100, 9));
        assert_ne!(rn_text(5, 100, 9), rn_text(5, 100, 10));
        assert_eq!(random_bytes(64, 3), random_bytes(64, 3));
        assert_eq!(digit_text(64, 3), digit_text(64, 3));
    }

    #[test]
    fn digit_text_is_digits_of_exact_length() {
        let text = digit_text(1000, 5);
        assert_eq!(text.len(), 1000);
        assert!(text.iter().all(|b| b.is_ascii_digit()));
    }

    #[test]
    fn pattern_strings_are_wellformed() {
        assert_eq!(rn_pattern(5), "([0-4]{5}[5-9]{5})*");
        assert_eq!(rn_or_a_pattern(2), "([0-4]{2}[5-9]{2})*|a*");
        Regex::new(&rn_pattern(50)).unwrap();
        Regex::new(&rn_or_a_pattern(3)).unwrap();
    }
}
