//! Deterministic finite automata with dense, byte-class–indexed transition
//! tables, and the sequential matcher (Algorithm 2 of the paper).

use crate::byteclass::ByteClasses;
use crate::nfa::StateId;
use crate::pattern::PatternSet;

/// A complete deterministic finite automaton.
///
/// The transition table is dense: row `q` holds one successor per byte
/// class. With the identity byte-class partition this is exactly the
/// paper's layout ("256 symbols times 4 bytes" per state); with alphabet
/// compression the rows shrink to the number of distinct classes.
#[derive(Clone, Debug)]
pub struct Dfa {
    classes: ByteClasses,
    stride: usize,
    table: Vec<StateId>,
    accepting: Vec<bool>,
    start: StateId,
    /// Number of original patterns compiled into this automaton (see
    /// [`crate::pattern`]); 1 for single-pattern constructions.
    pattern_count: usize,
    /// Per-state index into `accept_sets` (parallel to `accepting`).
    /// Distinct accept sets are interned, so states sharing a set share
    /// one [`PatternSet`] allocation.
    accept_index: Vec<u32>,
    /// The distinct pattern accept sets; entry 0 is always the empty set.
    accept_sets: Vec<PatternSet>,
}

impl Dfa {
    /// Builds a DFA from raw parts. Panics if the parts are inconsistent.
    ///
    /// `table` must have `accepting.len() * classes.count()` entries and
    /// every entry must be a valid state id. The result is a
    /// single-pattern automaton: every accepting state's
    /// [accept set](Dfa::accept_set) is `{0}`.
    pub fn from_parts(
        classes: ByteClasses,
        table: Vec<StateId>,
        accepting: Vec<bool>,
        start: StateId,
    ) -> Dfa {
        let accept_index = accepting.iter().map(|&a| a as u32).collect();
        let accept_sets = vec![PatternSet::new(1), PatternSet::singleton(1, 0)];
        Dfa::from_parts_with_patterns(classes, table, accept_index, accept_sets, start, 1)
    }

    /// Builds a multi-pattern DFA from raw parts: each state carries an
    /// index into the interned `accept_sets` table (entry 0 must be the
    /// empty set over `pattern_count` patterns); a state is accepting
    /// exactly when its accept set is non-empty. Panics if the parts are
    /// inconsistent.
    pub fn from_parts_with_patterns(
        classes: ByteClasses,
        table: Vec<StateId>,
        accept_index: Vec<u32>,
        accept_sets: Vec<PatternSet>,
        start: StateId,
        pattern_count: usize,
    ) -> Dfa {
        let stride = classes.count();
        let num_states = accept_index.len();
        assert!(num_states > 0, "a DFA needs at least one state");
        assert_eq!(table.len(), num_states * stride, "transition table size mismatch");
        assert!((start as usize) < num_states, "start state out of range");
        assert!(table.iter().all(|&t| (t as usize) < num_states), "transition target out of range");
        assert!(!accept_sets.is_empty() && accept_sets[0].is_empty(), "accept set 0 must be empty");
        assert!(
            accept_sets.iter().all(|s| s.patterns() == pattern_count),
            "accept sets must range over pattern_count patterns"
        );
        assert!(
            accept_index.iter().all(|&i| (i as usize) < accept_sets.len()),
            "accept index out of range"
        );
        let accepting = accept_index.iter().map(|&i| !accept_sets[i as usize].is_empty()).collect();
        Dfa { classes, stride, table, accepting, start, pattern_count, accept_index, accept_sets }
    }

    /// Checks every structural invariant of the automaton and reports the
    /// first violation. Construction enforces these; `validate` re-checks
    /// them on demand so derived automata (minimized, composed, packed,
    /// sharded) and property tests can assert nothing drifted:
    ///
    /// * the byte-class table is a total, consistent map of all 256 bytes
    ///   and its class count equals the table stride,
    /// * the transition table has exactly `num_states × stride` in-range
    ///   targets and the start state is in range,
    /// * accept-set entry 0 is the empty set, every set ranges over
    ///   `pattern_count` patterns, every per-state index is in range, and
    ///   the accepting bitmap agrees with the indexed sets.
    ///
    /// Deliberately *not* an invariant: start-state liveness. The void
    /// language (e.g. an empty `RegexSet`) compiles to a DFA whose start
    /// state is already dead.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_states();
        if n == 0 {
            return Err("a DFA needs at least one state".to_string());
        }
        if !self.classes.is_valid() {
            return Err("byte-class table is not a consistent total map".to_string());
        }
        if self.classes.count() != self.stride {
            return Err(format!(
                "byte-class count {} does not match table stride {}",
                self.classes.count(),
                self.stride
            ));
        }
        if self.table.len() != n * self.stride {
            return Err(format!(
                "transition table has {} entries, expected {} states × {} classes",
                self.table.len(),
                n,
                self.stride
            ));
        }
        if self.start as usize >= n {
            return Err(format!("start state {} out of range (0..{n})", self.start));
        }
        if let Some(&t) = self.table.iter().find(|&&t| (t as usize) >= n) {
            return Err(format!("transition target {t} out of range (0..{n})"));
        }
        if self.accept_sets.is_empty() || !self.accept_sets[0].is_empty() {
            return Err("accept set 0 must be the empty set".to_string());
        }
        if let Some(s) = self.accept_sets.iter().find(|s| s.patterns() != self.pattern_count) {
            return Err(format!(
                "accept set ranges over {} patterns, expected {}",
                s.patterns(),
                self.pattern_count
            ));
        }
        if self.accept_index.len() != n {
            return Err(format!(
                "accept index table has {} entries for {n} states",
                self.accept_index.len()
            ));
        }
        if let Some(&i) =
            self.accept_index.iter().find(|&&i| (i as usize) >= self.accept_sets.len())
        {
            return Err(format!("accept index {i} out of range (0..{})", self.accept_sets.len()));
        }
        for (q, &i) in self.accept_index.iter().enumerate() {
            if self.accepting[q] == self.accept_sets[i as usize].is_empty() {
                return Err(format!("accepting bitmap disagrees with accept set of state {q}"));
            }
        }
        Ok(())
    }

    /// Number of states, including the dead state if one is reachable
    /// (the DFA is always complete).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Number of states that can still reach an accepting state.
    ///
    /// This matches the state counts reported in the paper, which treats
    /// the DFA as partial (its `|D| = 10` for `r_5` does not count the
    /// failure sink).
    pub fn num_live_states(&self) -> usize {
        self.live_states().iter().filter(|&&l| l).count()
    }

    /// The byte-class partition used by the transition table.
    #[inline]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Number of byte classes (the row width of the transition table).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.stride
    }

    /// The initial state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns true if `state` is accepting.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state as usize]
    }

    /// The accepting-state bitmap.
    pub fn accepting(&self) -> &[bool] {
        &self.accepting
    }

    /// Number of original patterns compiled into this automaton (1 for
    /// single-pattern constructions, 0 for the empty pattern list).
    #[inline]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// The set of patterns `state` accepts — the per-rule verdict of a
    /// multi-pattern automaton. Empty exactly when the state is not
    /// accepting.
    #[inline]
    pub fn accept_set(&self, state: StateId) -> &PatternSet {
        &self.accept_sets[self.accept_index[state as usize] as usize]
    }

    /// Per-state indices into [`distinct_accept_sets`](Dfa::distinct_accept_sets)
    /// (used to rebuild derived automata without re-interning).
    pub fn accept_indices(&self) -> &[u32] {
        &self.accept_index
    }

    /// The interned distinct pattern accept sets (entry 0 is the empty
    /// set).
    pub fn distinct_accept_sets(&self) -> &[PatternSet] {
        &self.accept_sets
    }

    /// Which patterns the whole input matches: run the automaton and
    /// read the final state's [accept set](Dfa::accept_set) — one pass,
    /// all per-pattern verdicts (the sequential form; the parallel and
    /// streaming forms live in `sfa-matcher`).
    pub fn matching_patterns(&self, input: &[u8]) -> &PatternSet {
        self.accept_set(self.run(input))
    }

    /// Transition on a byte class.
    #[inline]
    pub fn next_by_class(&self, state: StateId, class: u16) -> StateId {
        self.table[state as usize * self.stride + class as usize]
    }

    /// Transition on a byte (one table lookup, as in Algorithm 2).
    #[inline]
    pub fn next_state(&self, state: StateId, byte: u8) -> StateId {
        self.next_by_class(state, self.classes.class_of(byte))
    }

    /// The raw transition table (row-major, `num_states × num_classes`).
    pub fn table(&self) -> &[StateId] {
        &self.table
    }

    /// Size of the transition table in bytes (the paper's "1 KB per state"
    /// figure corresponds to the identity partition).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<StateId>()
    }

    /// **Algorithm 2** — sequential computation of the DFA: runs the input
    /// from the start state and returns the final state.
    pub fn run(&self, input: &[u8]) -> StateId {
        self.run_from(self.start, input)
    }

    /// Runs the input from an arbitrary state (used by the speculative
    /// parallel matcher and by the reductions).
    pub fn run_from(&self, state: StateId, input: &[u8]) -> StateId {
        let mut q = state;
        for &b in input {
            q = self.next_state(q, b);
        }
        q
    }

    /// Whole-input membership test (Algorithm 2 plus the acceptance check).
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// The reverse adjacency of the transition graph: `reverse[t]` lists
    /// the states with some transition into `t` (one entry per edge, so a
    /// state appears once per byte class leading to `t`). Shared by every
    /// backward-propagation analysis on the DFA.
    fn reverse_edges(&self) -> Vec<Vec<StateId>> {
        let n = self.num_states();
        let mut reverse: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for q in 0..n {
            for c in 0..self.stride {
                let t = self.table[q * self.stride + c] as usize;
                reverse[t].push(q as StateId);
            }
        }
        reverse
    }

    /// Saturates `marked` backward over `reverse`: every predecessor of a
    /// marked state becomes marked. `stack` must hold the initially
    /// marked seeds.
    fn propagate_backward(reverse: &[Vec<StateId>], marked: &mut [bool], mut stack: Vec<StateId>) {
        while let Some(q) = stack.pop() {
            for &p in &reverse[q as usize] {
                if !marked[p as usize] {
                    marked[p as usize] = true;
                    stack.push(p);
                }
            }
        }
    }

    /// For every state, whether an accepting state is reachable from it.
    pub fn live_states(&self) -> Vec<bool> {
        // Backward reachability from the accepting states.
        let reverse = self.reverse_edges();
        let mut live = vec![false; self.num_states()];
        let mut seeds: Vec<StateId> = Vec::new();
        for (q, &acc) in self.accepting.iter().enumerate() {
            if acc {
                live[q] = true;
                seeds.push(q as StateId);
            }
        }
        Self::propagate_backward(&reverse, &mut live, seeds);
        live
    }

    /// For every state, whether the boolean accept verdict is already
    /// *decided* there: every state reachable from it (itself included)
    /// agrees on accepting vs. rejecting, so no suffix can change a
    /// match-or-not answer. A streaming matcher can finalize its verdict
    /// as soon as it enters a decided state — e.g. the absorbing accept
    /// region of a `Contains`-mode scan right after the first hit.
    pub fn verdict_decided_states(&self) -> Vec<bool> {
        self.verdict_and_accept_set_decided_states().0
    }

    /// For every state, whether the full pattern *accept set* is already
    /// decided: every reachable state carries the same accept set, so no
    /// suffix can change which patterns match. Implies (and is generally
    /// stricter than) [`verdict_decided_states`](Dfa::verdict_decided_states) —
    /// in a multi-pattern `Contains` scan the boolean verdict freezes at
    /// the first rule hit, while the set verdict stays open until every
    /// rule's fate is frozen.
    pub fn accept_set_decided_states(&self) -> Vec<bool> {
        self.verdict_and_accept_set_decided_states().1
    }

    /// Both decidedness bitmaps — `(verdict, accept set)` — from one
    /// pass: each is the greatest fixpoint of "my key equals every
    /// successor's key" (the keys being the accepting bit and the accept
    /// set index), computed over a single shared reverse graph instead of
    /// rebuilding the `O(n · stride)` adjacency per bitmap. A state is
    /// *undecided* if some transition changes its key or leads to an
    /// undecided state; undecidedness propagates backward.
    pub fn verdict_and_accept_set_decided_states(&self) -> (Vec<bool>, Vec<bool>) {
        let n = self.num_states();
        let reverse = self.reverse_edges();
        // bad_set ⊇ bad_any pointwise in the end (equal accept sets imply
        // equal accepting bits), but each needs its own seeding pass.
        let mut bad_any = vec![false; n];
        let mut bad_set = vec![false; n];
        let mut seeds_any: Vec<StateId> = Vec::new();
        let mut seeds_set: Vec<StateId> = Vec::new();
        for q in 0..n {
            for c in 0..self.stride {
                let t = self.table[q * self.stride + c] as usize;
                if !bad_any[q] && self.accepting[t] != self.accepting[q] {
                    bad_any[q] = true;
                    seeds_any.push(q as StateId);
                }
                if !bad_set[q] && self.accept_index[t] != self.accept_index[q] {
                    bad_set[q] = true;
                    seeds_set.push(q as StateId);
                }
            }
        }
        Self::propagate_backward(&reverse, &mut bad_any, seeds_any);
        Self::propagate_backward(&reverse, &mut bad_set, seeds_set);
        (bad_any.into_iter().map(|b| !b).collect(), bad_set.into_iter().map(|b| !b).collect())
    }

    /// Returns the dead (failure-sink) state if the DFA has exactly one
    /// non-live state, which is the common case after minimization.
    pub fn dead_state(&self) -> Option<StateId> {
        let live = self.live_states();
        let mut dead = None;
        for (q, &l) in live.iter().enumerate() {
            if !l {
                if dead.is_some() {
                    return None;
                }
                dead = Some(q as StateId);
            }
        }
        dead
    }

    /// Returns true if the automaton accepts no word at all.
    pub fn is_empty_language(&self) -> bool {
        !self.live_states()[self.start as usize]
    }

    /// Returns true if every state is accepting (the automaton accepts every
    /// word).
    pub fn is_universal_language(&self) -> bool {
        // Forward reachability from the start over non-accepting... simpler:
        // the language is universal iff no reachable state is rejecting.
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            if !self.is_accepting(q) {
                return false;
            }
            for c in 0..self.stride {
                let t = self.table[q as usize * self.stride + c];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClasses;

    /// A hand-built DFA for `(ab)*` — Fig. 1 of the paper.
    ///
    /// State 0: start/accept, state 1: saw `a`, state 2: dead.
    pub(crate) fn paper_d1() -> Dfa {
        let classes = ByteClasses::from_sets([
            &sfa_regex_syntax::ByteSet::singleton(b'a'),
            &sfa_regex_syntax::ByteSet::singleton(b'b'),
        ]);
        let ca = classes.class_of(b'a') as usize;
        let cb = classes.class_of(b'b') as usize;
        let stride = classes.count();
        let mut table = vec![0 as StateId; 3 * stride];
        // default everything to the dead state 2
        for t in table.iter_mut() {
            *t = 2;
        }
        table[ca] = 1; // 0 --a--> 1
        table[stride + cb] = 0; // 1 --b--> 0
        Dfa::from_parts(classes, table, vec![true, false, false], 0)
    }

    #[test]
    fn validate_accepts_well_formed_and_names_the_broken_invariant() {
        let d = paper_d1();
        assert_eq!(d.validate(), Ok(()));
        // Corrupt one transition target past the state count.
        let mut broken = d.clone();
        broken.table[0] = 99;
        let err = broken.validate().unwrap_err();
        assert!(err.contains("out of range"), "unexpected message: {err}");
        // Desynchronize the accepting bitmap from the accept sets.
        let mut broken = d.clone();
        broken.accepting[1] = true;
        let err = broken.validate().unwrap_err();
        assert!(err.contains("accepting bitmap"), "unexpected message: {err}");
    }

    #[test]
    fn algorithm2_on_paper_example() {
        let d = paper_d1();
        assert!(d.accepts(b""));
        assert!(d.accepts(b"ab"));
        assert!(d.accepts(b"abab"));
        assert!(!d.accepts(b"a"));
        assert!(!d.accepts(b"ba"));
        assert!(!d.accepts(b"abx"));
        assert_eq!(d.run(b"abab"), 0);
        assert_eq!(d.run(b"aba"), 1);
        assert_eq!(d.run(b"abb"), 2);
    }

    #[test]
    fn run_from_arbitrary_state() {
        let d = paper_d1();
        assert_eq!(d.run_from(1, b"b"), 0);
        assert_eq!(d.run_from(1, b"a"), 2);
        assert_eq!(d.run_from(2, b"ababab"), 2, "dead state absorbs");
    }

    #[test]
    fn live_and_dead_states() {
        let d = paper_d1();
        let live = d.live_states();
        assert_eq!(live, vec![true, true, false]);
        assert_eq!(d.num_live_states(), 2);
        assert_eq!(d.dead_state(), Some(2));
        assert!(!d.is_empty_language());
        assert!(!d.is_universal_language());
    }

    #[test]
    fn table_size_accounting() {
        let d = paper_d1();
        assert_eq!(d.num_classes(), 3); // 'a', 'b', everything else
        assert_eq!(d.table_bytes(), 3 * 3 * 4);
    }

    #[test]
    #[should_panic(expected = "transition table size mismatch")]
    fn from_parts_validates_table_size() {
        Dfa::from_parts(ByteClasses::single(), vec![0, 0], vec![true], 0);
    }

    #[test]
    #[should_panic(expected = "start state out of range")]
    fn from_parts_validates_start() {
        Dfa::from_parts(ByteClasses::single(), vec![0], vec![true], 5);
    }

    #[test]
    fn decided_states_on_paper_example() {
        let d = paper_d1();
        // Only the dead state 2 is decided: from 0 and 1 both verdicts
        // are still reachable.
        assert_eq!(d.verdict_decided_states(), vec![false, false, true]);
        assert_eq!(d.accept_set_decided_states(), vec![false, false, true]);
        // A universal single state is decided.
        let all = Dfa::from_parts(ByteClasses::single(), vec![0], vec![true], 0);
        assert_eq!(all.verdict_decided_states(), vec![true]);
    }

    #[test]
    fn universal_and_empty_language_detection() {
        // One accepting state looping to itself on everything: universal.
        let d = Dfa::from_parts(ByteClasses::single(), vec![0], vec![true], 0);
        assert!(d.is_universal_language());
        assert!(!d.is_empty_language());
        // One rejecting state looping to itself: empty.
        let d = Dfa::from_parts(ByteClasses::single(), vec![0], vec![false], 0);
        assert!(d.is_empty_language());
        assert!(!d.is_universal_language());
        assert_eq!(d.num_live_states(), 0);
    }
}
